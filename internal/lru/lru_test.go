package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a")    // a is now more recent than b
	c.Add("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for k, want := range map[string]int{"a": 1, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Fatalf("Get(%s) = %d, %v", k, v, ok)
		}
	}
}

func TestAddReplaces(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("Get(a) = %d after replace", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
}

func TestNilCacheNeverHits(t *testing.T) {
	var c *Cache[string, int] // also what New(0) returns
	if New[string, int](0) != nil {
		t.Fatal("New(0) should return nil")
	}
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := (g*31 + i) % 100
				c.Add(k, k)
				if v, ok := c.Get(k); ok && v != k {
					panic(fmt.Sprintf("Get(%d) = %d", k, v))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// OnEvict fires once per capacity eviction, in LRU order, and never
// for Add-replacements of a live key.
func TestOnEvict(t *testing.T) {
	c := New[string, int](2)
	var evicted []string
	c.OnEvict(func(k string, v int) { evicted = append(evicted, fmt.Sprintf("%s=%d", k, v)) })
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10) // replacement: no eviction
	if len(evicted) != 0 {
		t.Fatalf("replacement evicted: %v", evicted)
	}
	c.Add("c", 3) // evicts b (a was touched by replacement)
	c.Add("d", 4) // evicts a
	want := []string{"b=2", "a=10"}
	if fmt.Sprint(evicted) != fmt.Sprint(want) {
		t.Fatalf("evictions = %v, want %v", evicted, want)
	}
	var nilCache *Cache[string, int]
	nilCache.OnEvict(func(string, int) {}) // nil cache: no-op, no panic
}

func TestAddIfAbsent(t *testing.T) {
	c := New[string, int](2)
	if !c.AddIfAbsent("a", 1) {
		t.Fatal("insert into empty cache refused")
	}
	if c.AddIfAbsent("a", 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, _ := c.Get("a"); v != 1 {
		t.Fatalf("losing insert overwrote the value: %d", v)
	}
	c.Add("b", 2)
	// Capacity eviction still applies: "b" then "a" is the recency
	// order, so the third insert sheds "a".
	if !c.AddIfAbsent("c", 3) {
		t.Fatal("insert at capacity refused")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU entry survived an AddIfAbsent eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("MRU entry evicted")
	}
	var nilCache *Cache[string, int]
	if nilCache.AddIfAbsent("x", 1) {
		t.Fatal("nil cache claimed to store")
	}
}
