// Medical-device scenario (the paper motivates RTS security with
// attacks on medical devices, ref [6]): an infusion-pump controller
// reads a redundant pressure-sensor array and adjusts the pump; a
// sensor-correlation security task — the exact mechanism §1 proposes
// "for detecting sensor manipulation" — is integrated with HYDRA-C.
// An attacker spoofs one channel mid-run; the example measures how
// fast the correlation task flags it, and verifies the escalated
// (reactive, §6) audit mode stays schedulable.
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hydrac/internal/core"
	"hydrac/internal/ids"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Pump controller: dosing loop + UI/telemetry on two cores.
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "dosing", WCET: 4, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "telemetry", WCET: 30, Period: 200, Deadline: 200, Core: 1, Priority: 1},
			{Name: "ui", WCET: 25, Period: 250, Deadline: 250, Core: 0, Priority: 2},
		},
		Security: []task.SecurityTask{
			{Name: "senscorr", WCET: 5, MaxPeriod: 2000, Priority: 0, Core: -1},
			{Name: "logaudit", WCET: 40, MaxPeriod: 6000, Priority: 1, Core: -1},
		},
	}

	// Reactive design (§6): if senscorr flags a channel, its next job
	// also cross-checks the dosing history (a1), tripling its demand.
	res, err := core.SelectPeriodsReactive(ts, []core.Escalation{
		{Task: "senscorr", AlertWCET: 15},
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Schedulable {
		log.Fatal("pump task set cannot host the reactive monitor")
	}
	fmt.Println("reactive period selection (alert-mode sized):")
	for i, s := range ts.Security {
		fmt.Printf("  %-9s T*=%-5d ms  R(normal)=%-4d R(alert)=%-4d Tmax=%d\n",
			s.Name, res.Periods[i], res.NormalResp[i], res.AlertResp[i], s.MaxPeriod)
	}

	configured := ts.Clone()
	for i := range configured.Security {
		configured.Security[i].Period = res.Periods[i]
	}
	const horizon = 20000
	attackAt := task.Time(8000)
	out, err := sim.Run(configured, sim.Config{
		Policy: sim.SemiPartitioned, Horizon: horizon, RecordIntervals: true,
		// Once the anomaly is confirmed the follow-up audit runs in
		// every subsequent senscorr job.
		ModeSwitches: []sim.ModeSwitch{{Task: "senscorr", At: attackAt, AlertWCET: 15}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if out.RTDeadlineMisses != 0 {
		log.Fatal("dosing loop missed deadlines")
	}

	// Drive the plant + sensors against the schedule: each completed
	// senscorr job takes one reading of the array.
	plant := ids.NewPlant(rng, 40, 90) // line pressure, mmHg-ish
	array := ids.NewSensorArray(rng, 4, 0.6)
	checker := ids.CorrelationChecker{Noise: 0.6, Threshold: 6}
	compromised := false
	var detectedAt task.Time = -1
	now := task.Time(0)
	for _, job := range out.JobsOf("senscorr") {
		if job.Finish < 0 {
			continue
		}
		for ; now < job.Finish; now++ {
			plant.Step()
		}
		if !compromised && job.Finish >= attackAt {
			array.Compromise(1, func(truth float64) float64 { return truth + 20 }) // overdose spoof
			compromised = true
		}
		if suspects := checker.Check(array.Read(plant.Step())); len(suspects) > 0 && compromised {
			detectedAt = job.Finish
			break
		}
	}
	if detectedAt < 0 {
		log.Fatal("sensor manipulation never detected")
	}
	fmt.Printf("\nchannel 1 spoofed (+20 units) at t=%d ms\n", attackAt)
	fmt.Printf("correlation task flags it at t=%d ms — latency %d ms (one %d ms period bound)\n",
		detectedAt, detectedAt-attackAt, res.Periods[0])
	fmt.Printf("schedule stayed clean under escalation: %d context switches, 0 RT misses\n",
		out.ContextSwitches)
}
