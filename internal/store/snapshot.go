package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hydrac"
	"hydrac/internal/faultfs"
)

// snapshotVersion guards the snapshot format; bump on incompatible
// change and teach readSnapshot both shapes.
const snapshotVersion = 1

// snapshotFile is the on-disk shape of snap-<gen>.json: the fully
// placed task set in the standard task-file format, plus the next-fit
// placement cursor that made those placements (recovery must restore
// it for future placements to stay byte-identical).
type snapshotFile struct {
	Version int             `json:"version"`
	NextFit int             `json:"next_fit"`
	Set     json.RawMessage `json:"set"`
}

func snapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d.json", gen))
}

// writeSnapshot persists generation gen atomically: the bytes land in
// a temp file which is fsynced, renamed into place, and the directory
// fsynced — a crash leaves either no snap-<gen>.json or a complete
// one, never a torn one, which is what lets readLatestSnapshot treat
// any present snapshot as authoritative. All writes go through the
// store's filesystem seam so the chaos suite can fail any step.
func writeSnapshot(fs faultfs.FS, dir string, gen uint64, set *hydrac.TaskSet, cursor int) error {
	var setBuf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&setBuf, set); err != nil {
		return fmt.Errorf("encoding snapshot set: %w", err)
	}
	payload, err := json.Marshal(snapshotFile{
		Version: snapshotVersion,
		NextFit: cursor,
		Set:     json.RawMessage(setBuf.Bytes()),
	})
	if err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	// A fixed temp name per generation is safe: writers are serialised
	// per session (the engine lock), and the suffix keeps it invisible
	// to listSnapshotGens until the rename.
	tmpPath := snapshotPath(dir, gen) + ".tmp"
	tmp, err := fs.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmpPath, snapshotPath(dir, gen)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// readSnapshot loads and validates one generation's snapshot.
func readSnapshot(dir string, gen uint64) (*hydrac.TaskSet, int, error) {
	raw, err := os.ReadFile(snapshotPath(dir, gen))
	if err != nil {
		return nil, 0, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return nil, 0, fmt.Errorf("parsing snapshot generation %d: %w", gen, err)
	}
	if sf.Version != snapshotVersion {
		return nil, 0, fmt.Errorf("snapshot generation %d has version %d, this build reads %d", gen, sf.Version, snapshotVersion)
	}
	set, err := hydrac.DecodeTaskSet(bytes.NewReader(sf.Set))
	if err != nil {
		return nil, 0, fmt.Errorf("decoding snapshot generation %d set: %w", gen, err)
	}
	return set, sf.NextFit, nil
}

// listSnapshotGens returns every generation with a snap-<gen>.json in
// dir, ascending.
func listSnapshotGens(dir string) ([]uint64, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json"), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func hasSnapshot(dir string) bool {
	gens, err := listSnapshotGens(dir)
	return err == nil && len(gens) > 0
}

// readLatestSnapshot loads the highest generation's snapshot — the
// authoritative one; snapshots are written atomically, so the highest
// present generation is always complete — and returns the superseded
// generations for cleanup. A snapshot that fails to parse is an error,
// not a fallback: falling back a generation would silently rewind
// acknowledged state.
func readLatestSnapshot(dir string) (gen uint64, set *hydrac.TaskSet, cursor int, stale []uint64, err error) {
	gens, err := listSnapshotGens(dir)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	if len(gens) == 0 {
		return 0, nil, 0, nil, fmt.Errorf("no snapshot in %s", dir)
	}
	gen = gens[len(gens)-1]
	set, cursor, err = readSnapshot(dir, gen)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	return gen, set, cursor, gens[:len(gens)-1], nil
}
