// Package hydrac is a Go implementation of HYDRA-C — "Period
// Adaptation for Continuous Security Monitoring in Multicore Real-Time
// Systems" (Hasan, Mohan, Pellizzoni, Bobba — DATE 2020).
//
// HYDRA-C integrates periodic security monitoring tasks (intrusion
// detectors, integrity checkers, …) into a legacy partitioned
// multicore real-time system without touching the RT tasks: the
// security band runs below every RT task and may migrate to whichever
// core is idle (semi-partitioned scheduling), and each security task's
// period is minimised — the monitor runs as often as possible — while
// every schedulability guarantee is preserved.
//
// This root package is a façade over the implementation packages:
//
//	internal/task       task model (RT + security, integer ticks)
//	internal/rta        uniprocessor response-time analysis (Eq. 1)
//	internal/partition  RT bin-packing with exact RTA admission
//	internal/core       HYDRA-C WCRT analysis + Algorithms 1 & 2
//	internal/baseline   HYDRA, HYDRA-TMax, GLOBAL-TMax baselines
//	internal/gen        Table-3 synthetic workload generator
//	internal/seed       per-item RNG seed derivation (splitmix64)
//	internal/sweep      parallel sweep engine (deterministic sharding)
//	internal/sim        discrete-event multicore scheduler
//	internal/ids        integrity/rootkit detection substrate
//	internal/rover      the paper's rover platform and Fig. 5 trials
//	internal/experiments  figure-by-figure reproduction harness
//
// A minimal integration looks like:
//
//	ts := &hydrac.TaskSet{Cores: 2, RT: …, Security: …}
//	res, err := hydrac.SelectPeriods(ts, hydrac.Options{})
//	if err != nil || !res.Schedulable { … }
//	configured := hydrac.Apply(ts, res)
//	out, err := hydrac.Simulate(configured, hydrac.SimConfig{
//		Policy: hydrac.SemiPartitioned, Horizon: 60000,
//	})
//
// See examples/ for runnable scenarios and DESIGN.md for the full
// system inventory.
package hydrac

import (
	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/partition"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

// Core model types.
type (
	// Time is an instant or duration in integer clock ticks.
	Time = task.Time
	// TaskSet is a complete system: cores, RT tasks, security tasks.
	TaskSet = task.Set
	// RTTask is a partitioned hard real-time task (C, T, D).
	RTTask = task.RTTask
	// SecurityTask is a security monitor (C, T, Tmax).
	SecurityTask = task.SecurityTask
)

// Period selection (the paper's primary contribution).
type (
	// Options tunes SelectPeriods; the zero value is the paper's
	// configuration.
	Options = core.Options
	// Result carries the selected periods and response times.
	Result = core.Result
)

// SelectPeriods runs Algorithm 1: minimum feasible periods for the
// security tasks of ts under semi-partitioned scheduling.
func SelectPeriods(ts *TaskSet, opt Options) (*Result, error) {
	return core.SelectPeriods(ts, opt)
}

// Apply writes selected periods into a clone of ts.
func Apply(ts *TaskSet, res *Result) *TaskSet { return core.Apply(ts, res) }

// Baseline schemes of the paper's evaluation.
type PartitionedResult = baseline.PartitionedResult

// Hydra is the DATE 2018 fully partitioned baseline (greedy placement
// with per-core period optimisation).
func Hydra(ts *TaskSet) (*PartitionedResult, error) { return baseline.Hydra(ts) }

// HydraAggressive pins each period to its WCRT on placement — the
// paper's verbatim description of HYDRA's greedy.
func HydraAggressive(ts *TaskSet) (*PartitionedResult, error) { return baseline.HydraAggressive(ts) }

// HydraTMax keeps the partitioned placement with periods at Tmax.
func HydraTMax(ts *TaskSet) (*PartitionedResult, error) { return baseline.HydraTMax(ts) }

// GlobalResult carries GLOBAL-TMax response times.
type GlobalResult = baseline.GlobalResult

// GlobalTMax checks global fixed-priority schedulability with periods
// at Tmax.
func GlobalTMax(ts *TaskSet) (*GlobalResult, error) { return baseline.GlobalTMax(ts) }

// RT task partitioning.
type PartitionHeuristic = partition.Heuristic

// Partitioning heuristics for the RT band.
const (
	BestFit  = partition.BestFit
	FirstFit = partition.FirstFit
	WorstFit = partition.WorstFit
	NextFit  = partition.NextFit
)

// Partition assigns the RT tasks of ts to cores in place.
func Partition(ts *TaskSet, h PartitionHeuristic) error { return partition.Assign(ts, h) }

// Simulation.
type (
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a run.
	SimResult = sim.Result
	// Policy selects the migration model.
	Policy = sim.Policy
)

// Scheduling policies.
const (
	// SemiPartitioned pins RT tasks and migrates the security band
	// (HYDRA-C's runtime model).
	SemiPartitioned = sim.SemiPartitioned
	// FullyPartitioned pins both bands (HYDRA's runtime model).
	FullyPartitioned = sim.FullyPartitioned
	// Global migrates everything (GLOBAL-TMax's runtime model).
	Global = sim.Global
)

// Simulate runs the discrete-event scheduler on a configured set.
func Simulate(ts *TaskSet, cfg SimConfig) (*SimResult, error) { return sim.Run(ts, cfg) }

// Gantt renders an ASCII schedule chart from a traced run.
func Gantt(r *SimResult, from, to, step Time) string { return sim.Gantt(r, from, to, step) }
