package oracle_test

import (
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/oracle"
	"hydrac/internal/task"
)

// TestVerifySelectionScreams feeds the from-scratch verifier perturbed
// claims and requires a rejection for every one — a verifier that
// accepts everything would make the large-n band vacuous.
func TestVerifySelectionScreams(t *testing.T) {
	cfg := smallConfig(2)
	const seedBase = 20260807
	checked := 0
	for g := 0; g < cfg.Groups && checked < 12; g++ {
		for i := 0; i < 20 && checked < 12; i++ {
			ts, err := cfg.GenerateAt(seedBase, g, i)
			if err != nil {
				continue
			}
			cold, err := core.SelectPeriods(ts, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := oracle.VerifySelection(ts, cold.Schedulable, cold.Periods, cold.Resp, 1); err != nil {
				t.Fatalf("verifier rejected an honest claim: %v", err)
			}
			// Flipped verdict must always be caught.
			if err := oracle.VerifySelection(ts, !cold.Schedulable, cold.Periods, cold.Resp, 1); err == nil {
				t.Fatal("verifier accepted a flipped schedulability verdict")
			}
			if !cold.Schedulable {
				continue
			}
			for j := range cold.Periods {
				perturb := func(dp, dr task.Time) error {
					p := append([]task.Time(nil), cold.Periods...)
					r := append([]task.Time(nil), cold.Resp...)
					p[j] += dp
					r[j] += dr
					return oracle.VerifySelection(ts, true, p, r, 1)
				}
				if err := perturb(0, 1); err == nil {
					t.Fatalf("verifier accepted resp[%d]+1", j)
				}
				if cold.Periods[j] > cold.Resp[j] {
					if err := perturb(-1, 0); err == nil {
						t.Fatalf("verifier accepted periods[%d]-1", j)
					}
				}
				s := secByName(ts, j)
				if cold.Periods[j] < s.MaxPeriod {
					if err := perturb(1, 0); err == nil {
						t.Fatalf("verifier accepted periods[%d]+1 (non-minimal claim)", j)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable set with perturbable levels found")
	}
}

func secByName(ts *task.Set, j int) task.SecurityTask {
	return ts.Security[j]
}
