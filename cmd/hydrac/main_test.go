package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func writeRoverFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rover.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := task.Encode(f, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	return path
}

// exec runs the CLI and returns (stdout, stderr), failing the test on
// a non-zero exit unless wantCode says otherwise.
func exec(t *testing.T, stdin string, wantCode int, args ...string) (string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	if code != wantCode {
		t.Fatalf("run(%v) exited %d, want %d\nstdout: %s\nstderr: %s", args, code, wantCode, out.String(), errb.String())
	}
	return out.String(), errb.String()
}

func TestAnalyzeHydraC(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "analyze", "-in", path)
	if !strings.Contains(out, "tripwire") || !strings.Contains(out, "7582") {
		t.Fatalf("unexpected analyze output:\n%s", out)
	}
}

func TestAnalyzeFromStdin(t *testing.T) {
	var buf bytes.Buffer
	if err := task.Encode(&buf, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	out, _ := exec(t, buf.String(), 0, "analyze", "-in", "-")
	if !strings.Contains(out, "tripwire") {
		t.Fatalf("stdin analyze output:\n%s", out)
	}
}

func TestAnalyzeJSONEnvelope(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "analyze", "-in", path, "-json")
	rep, err := hydrac.ReadReport(strings.NewReader(out))
	if err != nil {
		t.Fatalf("analyze -json is not a report envelope: %v\n%s", err, out)
	}
	if !rep.Schedulable || len(rep.Tasks) == 0 {
		t.Fatalf("report malformed: %+v", rep)
	}
}

func TestAnalyzeBaselines(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "analyze", "-in", path, "-scheme", "hydra-aggressive")
	if !strings.Contains(out, "core") || !strings.Contains(out, "463") {
		t.Fatalf("unexpected hydra-aggressive output:\n%s", out)
	}
	out, _ = exec(t, "", 0, "analyze", "-in", path, "-scheme", "hydra-tmax")
	if !strings.Contains(out, "10000") {
		t.Fatalf("unexpected hydra-tmax output:\n%s", out)
	}
	out, _ = exec(t, "", 0, "analyze", "-in", path, "-scheme", "global-tmax")
	if !strings.Contains(out, "schedulable: true") {
		t.Fatalf("unexpected global-tmax output:\n%s", out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	exec(t, "", 2, "analyze")
	path := writeRoverFile(t)
	exec(t, "", 2, "analyze", "-in", path, "-scheme", "bogus")
	exec(t, "", 2, "analyze", "-in", path, "stray-arg")
	exec(t, "", 2, "simulate", "-in", path, "-policy", "bogus")
	exec(t, "", 2, "bogus-subcommand")
	exec(t, "", 2)
}

func TestRuntimeErrorsExitOne(t *testing.T) {
	_, errOut := exec(t, "", 1, "analyze", "-in", "/nonexistent.json")
	if !strings.Contains(errOut, "hydrac:") {
		t.Fatalf("error not reported: %s", errOut)
	}
}

func TestHelpExitsZero(t *testing.T) {
	out, _ := exec(t, "", 0, "-h")
	if !strings.Contains(out, "subcommands") {
		t.Fatalf("help output:\n%s", out)
	}
	// Per-subcommand -h also exits 0 (usage goes to stderr).
	_, errOut := exec(t, "", 0, "analyze", "-h")
	if !strings.Contains(errOut, "-in") {
		t.Fatalf("analyze -h usage:\n%s", errOut)
	}
}

func TestSimulateAndGantt(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "simulate", "-in", path, "-horizon", "20000")
	if !strings.Contains(out, "context switches") {
		t.Fatalf("simulate output:\n%s", out)
	}
	out, _ = exec(t, "", 0, "gantt", "-in", path, "-to", "5000")
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "legend") {
		t.Fatalf("gantt output:\n%s", out)
	}
}

func TestGenerateEmitsValidSet(t *testing.T) {
	out, _ := exec(t, "", 0, "generate", "-cores", "2", "-group", "2", "-seed", "5")
	ts, err := task.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("generated set does not round-trip: %v\n%s", err, out)
	}
	if ts.Cores != 2 || len(ts.RT) == 0 || len(ts.Security) == 0 {
		t.Fatalf("generated set malformed: %+v", ts)
	}
}

func TestExampleRoundTrips(t *testing.T) {
	out, _ := exec(t, "", 0, "example")
	if _, err := task.Decode(strings.NewReader(out)); err != nil {
		t.Fatalf("example set does not decode: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]sim.Policy{
		"semi": sim.SemiPartitioned, "partitioned": sim.FullyPartitioned, "global": sim.Global,
	} {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestConfigureRespectsExistingPeriods(t *testing.T) {
	ts := rover.TaskSet()
	for i := range ts.Security {
		ts.Security[i].Period = 9000
	}
	got, err := configure(ts, sim.SemiPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got.Security {
		if s.Period != 9000 {
			t.Fatalf("configure overwrote an explicit period: %+v", s)
		}
	}
}

func TestSensitivitySubcommand(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "sensitivity", "-in", path)
	if !strings.Contains(out, "headroom") || !strings.Contains(out, "uniform scale factor") {
		t.Fatalf("sensitivity output malformed:\n%s", out)
	}
	exec(t, "", 2, "sensitivity")
}

func TestAnalyzeExplain(t *testing.T) {
	path := writeRoverFile(t)
	out, _ := exec(t, "", 0, "analyze", "-in", path, "-explain")
	if !strings.Contains(out, "interference") || !strings.Contains(out, "RT band") {
		t.Fatalf("explain output malformed:\n%s", out)
	}
}

func TestGanttSVGFlag(t *testing.T) {
	path := writeRoverFile(t)
	svg := filepath.Join(t.TempDir(), "sched.svg")
	exec(t, "", 0, "gantt", "-in", path, "-to", "3000", "-svg", svg)
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatalf("SVG file malformed: %.80s", data)
	}
}

func TestAdmitReplay(t *testing.T) {
	base := writeRoverFile(t)
	deltaPath := filepath.Join(t.TempDir(), "deltas.json")
	log := `[
  {"add_security": [{"name": "extra_mon", "wcet": 2, "max_period": 9000, "priority": 99}]},
  {"add_security": [{"name": "hog", "wcet": 4000, "max_period": 4100, "priority": 98}]},
  {"remove": ["extra_mon"]}
]`
	if err := os.WriteFile(deltaPath, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := exec(t, "", 0, "admit", "-in", base, "-deltas", deltaPath)
	for _, want := range []string{"delta 0: admitted", "delta 1: DENIED", "delta 2: admitted", "tripwire"} {
		if !strings.Contains(out, want) {
			t.Fatalf("admit output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "extra_mon") || strings.Contains(out, "hog") {
		t.Fatalf("final table should hold only the base monitors:\n%s", out)
	}
}

// With -json the final envelope must be byte-identical to a cold
// `analyze -json` of the same base (the replay ends where it started).
func TestAdmitReplayJSONMatchesAnalyze(t *testing.T) {
	base := writeRoverFile(t)
	deltaPath := filepath.Join(t.TempDir(), "deltas.json")
	log := `[
  {"add_security": [{"name": "extra_mon", "wcet": 2, "max_period": 9000, "priority": 99}]},
  {"remove": ["extra_mon"]}
]`
	if err := os.WriteFile(deltaPath, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	admitOut, _ := exec(t, "", 0, "admit", "-in", base, "-deltas", deltaPath, "-json")
	analyzeOut, _ := exec(t, "", 0, "analyze", "-in", base, "-json")
	admitRep, err := hydrac.ReadReport(strings.NewReader(admitOut))
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := hydrac.ReadReport(strings.NewReader(analyzeOut))
	if err != nil {
		t.Fatal(err)
	}
	coldRep.Timing, coldRep.FromCache = nil, false
	var a, b bytes.Buffer
	hydrac.WriteReport(&a, admitRep)
	hydrac.WriteReport(&b, coldRep)
	if a.String() != b.String() {
		t.Fatalf("admit -json final differs from analyze -json:\nadmit:   %s\nanalyze: %s", a.String(), b.String())
	}
}

func TestAdmitUsageErrors(t *testing.T) {
	exec(t, "", 2, "admit")
	exec(t, "", 2, "admit", "-in", "x.json")
}

// The golden conformance corpus, second surface: `analyze -json` on
// each corpus set must reproduce the same goldens the library and
// HTTP tests assert.
func TestCorpusGoldenCLI(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range paths {
		if strings.HasSuffix(p, ".golden.json") {
			continue
		}
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			out, _ := exec(t, "", 0, "analyze", "-in", p, "-json")
			rep, err := hydrac.ReadReport(strings.NewReader(out))
			if err != nil {
				t.Fatal(err)
			}
			rep.Timing, rep.FromCache = nil, false
			var got bytes.Buffer
			hydrac.WriteReport(&got, rep)
			want, err := os.ReadFile(strings.TrimSuffix(p, ".json") + ".golden.json")
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(want) {
				t.Errorf("CLI report drifted from golden:\n got: %s\nwant: %s", got.String(), want)
			}
		})
		checked++
	}
	if checked < 5 {
		t.Fatalf("corpus too thin: %d sets", checked)
	}
}
