package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hydrac/internal/faultfs"
)

// openAppend opens a log in dir with opt, appends every record, and
// closes it.
func openAppend(t *testing.T, dir string, opt Options, recs ...[]byte) {
	t.Helper()
	l, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// recovered opens the log read-write and returns the records.
func recovered(t *testing.T, dir string, opt Options) [][]byte {
	t.Helper()
	l, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return recs
}

func wantRecords(t *testing.T, got [][]byte, want ...[]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xAB}, 1000)}
	openAppend(t, dir, Options{}, recs...)
	wantRecords(t, recovered(t, dir, Options{}), recs...)

	// A second append session continues where the first stopped.
	openAppend(t, dir, Options{}, []byte("four"))
	wantRecords(t, recovered(t, dir, Options{}), append(recs, []byte("four"))...)
}

func TestEmptyDirStartsFreshLog(t *testing.T) {
	dir := t.TempDir()
	l, recs, err := Open(dir, Options{Prefix: "g0-"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || l.Count() != 0 {
		t.Fatalf("fresh log recovered %d records, count %d", len(recs), l.Count())
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 1 {
		t.Fatalf("count = %d after one append", l.Count())
	}
	l.Close()
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 64} // rotate every couple of records
	var recs [][]byte
	for i := 0; i < 20; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%02d-padding-padding", i)))
	}
	openAppend(t, dir, opt, recs...)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected several segments, got %d files", len(entries))
	}
	wantRecords(t, recovered(t, dir, opt), recs...)
}

func TestPrefixIsolatesGenerations(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, Options{Prefix: "g0-"}, []byte("old"))
	openAppend(t, dir, Options{Prefix: "g1-"}, []byte("new"))
	wantRecords(t, recovered(t, dir, Options{Prefix: "g0-"}), []byte("old"))
	wantRecords(t, recovered(t, dir, Options{Prefix: "g1-"}), []byte("new"))

	if err := RemoveGeneration(faultfs.OS{}, dir, "g0-"); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, recovered(t, dir, Options{Prefix: "g0-"}))
	wantRecords(t, recovered(t, dir, Options{Prefix: "g1-"}), []byte("new"))
}

// lastSegment returns the path of the highest-numbered segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, last)
}

func TestTornTailTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	openAppend(t, dir, Options{}, recs...)

	// Chop bytes off the tail: the torn last record must be dropped
	// and the file repaired so a re-open sees a clean log.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < frameHeaderBytes+len("gamma"); cut++ {
		if err := os.WriteFile(seg, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecords(t, recovered(t, dir, Options{}), recs[0], recs[1])
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(len(data)) - int64(frameHeaderBytes+len("gamma")); fi.Size() != want {
			t.Fatalf("cut %d: repaired size %d, want %d", cut, fi.Size(), want)
		}
		// Restore for the next cut width.
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTornTailGarbageAppended(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, Options{}, []byte("alpha"))
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// An implausible length prefix — e.g. zeros from a preallocated
	// page, or random garbage.
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wantRecords(t, recovered(t, dir, Options{}), []byte("alpha"))

	// Repair must be durable: the garbage is gone from disk.
	wantRecords(t, recovered(t, dir, Options{}), []byte("alpha"))
}

func TestTornTailCRCFlip(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("alpha"), []byte("beta")}
	openAppend(t, dir, Options{}, recs...)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the LAST record's payload: CRC catches it and the
	// record is dropped as a torn tail.
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, recovered(t, dir, Options{}), []byte("alpha"))
}

func TestCorruptionBeforeFinalSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 32}
	openAppend(t, dir, opt, []byte("record-one-long-enough"), []byte("record-two-long-enough"), []byte("record-three"))

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("test needs >= 2 segments, got %d", len(entries))
	}
	first := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadAll(dir, opt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll over mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapIsAnError(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 32}
	long := bytes.Repeat([]byte("x"), 40) // every frame > SegmentBytes: one record per segment
	openAppend(t, dir, opt, long, long, long)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("test needs 3 segments, got %d", len(entries))
	}
	if err := os.Remove(filepath.Join(dir, entries[1].Name())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a segment gap: err = %v, want ErrCorrupt", err)
	}
}

func TestNoSyncFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, recovered(t, dir, Options{}), []byte("buffered"))
}

func TestAppendRejectsEmptyAndOversized(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestCountSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, Options{}, []byte("a"), []byte("b"))
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Count() != 2 {
		t.Fatalf("Count() = %d after reopen, want 2", l.Count())
	}
	if err := l.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 3 {
		t.Fatalf("Count() = %d after append, want 3", l.Count())
	}
}

func TestReadAllLeavesTornTailInPlace(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, Options{}, []byte("alpha"), []byte("beta"))
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, recs, []byte("alpha"))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(data)-2) {
		t.Fatalf("ReadAll modified the segment: size %d", fi.Size())
	}
}

// A frame whose write landed but whose fsync failed must not resurface
// at recovery as a phantom commit: the failed append rolls the segment
// back to the last acknowledged record.
func TestFailedSyncRollsBackUnacknowledgedFrame(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.Wrap(nil)
	l, _, err := Open(dir, Options{Prefix: "g0-", FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	in.Fail(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 1})
	if err := l.Append([]byte("failed")); err == nil {
		t.Fatal("append over a failing fsync should error")
	}
	l.f.Close() // the log is failed; release the handle without syncing

	wantRecords(t, recovered(t, dir, Options{Prefix: "g0-"}), []byte("acked"))
}

// Same discipline for a torn write: the half-landed frame is cut away
// immediately, not left for recovery to repair.
func TestTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.Wrap(nil)
	l, _, err := Open(dir, Options{Prefix: "g0-", FS: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	in.Fail(faultfs.Rule{Op: faultfs.OpWrite, Path: ".wal", Nth: 1, Torn: true})
	if err := l.Append([]byte("torn-away")); err == nil {
		t.Fatal("torn append should error")
	}
	l.f.Close()

	// The segment holds exactly the acknowledged record — byte-clean,
	// no torn tail for Open to repair.
	recs, validLen, err := readSegment(faultfs.OS{}, filepath.Join(dir, segmentName("g0-", 1)))
	if err != nil {
		t.Fatalf("segment not byte-clean after rollback: %v", err)
	}
	wantRecords(t, recs, []byte("acked"))
	if fi, _ := os.Stat(filepath.Join(dir, segmentName("g0-", 1))); fi.Size() != validLen {
		t.Fatalf("segment size %d != valid length %d", fi.Size(), validLen)
	}
}
