package gen

import (
	"math"
	"math/rand"
	"testing"

	"hydrac/internal/rta"
)

func TestRandFixedSumSumAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(12)
		lo := rng.Float64() * 0.2
		hi := lo + 0.1 + rng.Float64()*0.8
		total := float64(n)*lo + rng.Float64()*float64(n)*(hi-lo)
		xs, err := RandFixedSum(rng, n, total, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %v (n=%d total=%g lo=%g hi=%g)", trial, err, n, total, lo, hi)
		}
		var sum float64
		for _, x := range xs {
			if x < lo-1e-9 || x > hi+1e-9 {
				t.Fatalf("trial %d: value %g outside [%g, %g]", trial, x, lo, hi)
			}
			sum += x
		}
		if math.Abs(sum-total) > 1e-6*math.Max(1, math.Abs(total)) {
			t.Fatalf("trial %d: sum %g != total %g", trial, sum, total)
		}
	}
}

func TestRandFixedSumErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := RandFixedSum(rng, 0, 1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandFixedSum(rng, 3, 4, 0, 1); err == nil {
		t.Error("unreachable sum accepted")
	}
	if _, err := RandFixedSum(rng, 3, -1, 0, 1); err == nil {
		t.Error("negative sum accepted")
	}
	if _, err := RandFixedSum(rng, 3, 0.5, 1, 0); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRandFixedSumDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, err := RandFixedSum(rng, 1, 0.7, 0, 1)
	if err != nil || len(xs) != 1 || xs[0] != 0.7 {
		t.Fatalf("n=1: %v %v", xs, err)
	}
	xs, err = RandFixedSum(rng, 4, 2.0, 0.5, 0.5)
	if err != nil {
		t.Fatalf("lo==hi: %v", err)
	}
	for _, x := range xs {
		if x != 0.5 {
			t.Fatalf("lo==hi: got %v", xs)
		}
	}
}

// The generator must not collapse to a corner: across many draws the
// per-position mean approaches total/n (the distribution is exchangeable
// after the shuffle) and individual values vary.
func TestRandFixedSumSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, trials = 5, 4000
	total := 2.0
	means := make([]float64, n)
	var varAcc float64
	for i := 0; i < trials; i++ {
		xs, err := RandFixedSum(rng, n, total, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for j, x := range xs {
			means[j] += x
			d := x - total/n
			varAcc += d * d
		}
	}
	for j := range means {
		means[j] /= trials
		if math.Abs(means[j]-total/float64(n)) > 0.02 {
			t.Errorf("position %d mean %.4f, want ≈ %.4f", j, means[j], total/float64(n))
		}
	}
	if varAcc/float64(trials*n) < 1e-3 {
		t.Error("values are nearly constant; generator degenerate")
	}
}

func TestLogUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := map[bool]int{}
	for i := 0; i < 5000; i++ {
		v := LogUniform(rng, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("LogUniform out of range: %d", v)
		}
		counts[v < 100] = counts[v < 100] + 1
	}
	// log-uniform: P(v < 100) = log(100/10)/log(1000/10) = 0.5.
	frac := float64(counts[true]) / 5000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("P(v<100) = %.3f, want ≈ 0.5 under log-uniform", frac)
	}
	if LogUniform(rng, 7, 7) != 7 {
		t.Error("degenerate range must return lo")
	}
}

func TestTableThreeMatchesPaper(t *testing.T) {
	cfg := TableThree(4)
	if cfg.Cores != 4 || cfg.RTTasksMin != 12 || cfg.RTTasksMax != 40 ||
		cfg.SecTasksMin != 8 || cfg.SecTasksMax != 20 {
		t.Errorf("task-count bounds wrong: %+v", cfg)
	}
	if cfg.RTPeriodMin != 10 || cfg.RTPeriodMax != 1000 ||
		cfg.SecMaxPeriodMin != 1500 || cfg.SecMaxPeriodMax != 3000 {
		t.Errorf("period bounds wrong: %+v", cfg)
	}
	if cfg.SecurityShare != 0.30 || cfg.Groups != 10 || cfg.SetsPerGroup != 250 {
		t.Errorf("shares/groups wrong: %+v", cfg)
	}
	lo, hi := cfg.GroupRange(0)
	if math.Abs(lo-0.01) > 1e-12 || math.Abs(hi-0.1) > 1e-12 {
		t.Errorf("group 0 range = [%g, %g]", lo, hi)
	}
	lo, hi = cfg.GroupRange(9)
	if math.Abs(lo-0.91) > 1e-12 || math.Abs(hi-1.0) > 1e-12 {
		t.Errorf("group 9 range = [%g, %g]", lo, hi)
	}
}

func TestGenerateStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := TableThree(2)
	for g := 0; g < 5; g++ {
		ts, err := cfg.Generate(rng, g)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("group %d: invalid set: %v", g, err)
		}
		if n := len(ts.RT); n < cfg.RTTasksMin || n > cfg.RTTasksMax {
			t.Errorf("group %d: N_R = %d outside [%d, %d]", g, n, cfg.RTTasksMin, cfg.RTTasksMax)
		}
		if n := len(ts.Security); n < cfg.SecTasksMin || n > cfg.SecTasksMax {
			t.Errorf("group %d: N_S = %d outside [%d, %d]", g, n, cfg.SecTasksMin, cfg.SecTasksMax)
		}
		if !rta.SetSchedulable(ts) {
			t.Errorf("group %d: RT band not schedulable after partitioning", g)
		}
		lo, hi := cfg.GroupRange(g)
		// WCET rounding distorts utilisation slightly; allow slack.
		u := ts.NormalizedUtilization()
		if u < lo-0.06 || u > hi+0.06 {
			t.Errorf("group %d: normalised utilisation %.3f outside [%.2f, %.2f]±0.06", g, u, lo, hi)
		}
		for _, s := range ts.Security {
			if s.MaxPeriod < cfg.SecMaxPeriodMin*cfg.TicksPerMS || s.MaxPeriod > cfg.SecMaxPeriodMax*cfg.TicksPerMS {
				t.Errorf("group %d: Tmax %d outside scaled bounds", g, s.MaxPeriod)
			}
			if s.Core != -1 {
				t.Errorf("group %d: security task pre-bound to core %d", g, s.Core)
			}
		}
	}
}

func TestGenerateSecurityShare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TableThree(2)
	var rtU, secU float64
	for i := 0; i < 30; i++ {
		ts, err := cfg.Generate(rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		rtU += ts.RTUtilization()
		secU += ts.SecurityMinUtilization()
	}
	share := secU / (rtU + secU)
	if share < 0.22 || share > 0.38 {
		t.Errorf("security share %.3f, want ≈ 0.30", share)
	}
}

func TestGenerateOutOfRangeGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := TableThree(2)
	if _, err := cfg.Generate(rng, -1); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := cfg.Generate(rng, cfg.Groups); err == nil {
		t.Error("group == Groups accepted")
	}
}

func TestGenerateHighUtilizationEventuallyFails(t *testing.T) {
	// Group 9 with a tiny attempt budget must either produce a valid
	// partitioned set or a descriptive error — never hang or panic.
	rng := rand.New(rand.NewSource(9))
	cfg := TableThree(4)
	cfg.MaxAttempts = 2
	for i := 0; i < 5; i++ {
		ts, err := cfg.Generate(rng, 9)
		if err == nil {
			if vErr := ts.Validate(); vErr != nil {
				t.Fatalf("invalid set: %v", vErr)
			}
		}
	}
}

func TestPeriodClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := TableThree(2)
	// Automotive classes at the config's tick scale.
	classes := make([]int64, 0, 9)
	for _, p := range AutomotivePeriodsMS() {
		classes = append(classes, p*cfg.TicksPerMS)
	}
	cfg.PeriodClasses = classes
	allowed := map[int64]bool{}
	for _, p := range classes {
		allowed[p] = true
	}
	found := map[int64]bool{}
	for i := 0; i < 10; i++ {
		ts, err := cfg.Generate(rng, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, rt := range ts.RT {
			if !allowed[rt.Period] {
				t.Fatalf("period %d not an automotive class", rt.Period)
			}
			found[rt.Period] = true
		}
	}
	if len(found) < 4 {
		t.Errorf("only %d distinct classes drawn across 10 sets", len(found))
	}
}
