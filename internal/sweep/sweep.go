// Package sweep is the parallel sweep engine behind the design-space
// experiments: it shards a (group × index) work grid across a pool of
// workers while guaranteeing that the aggregate result is *identical*
// — bitwise, including floating-point accumulation order — at any
// worker count and any chunk size.
//
// Determinism rests on two rules (see DESIGN.md for the full
// contract):
//
//  1. Item independence. Work items must derive all randomness from
//     seed.At(base, group, index) (package internal/seed), never from
//     a shared stream, so an item's outcome does not depend on which
//     worker runs it or when.
//  2. Ordered reduction. The flat item space [0, Groups×PerGroup) is
//     split into contiguous chunks; each chunk accumulates into its
//     own partial, and partials are merged strictly in chunk order
//     after all workers finish. Concatenating contiguous ranges in
//     order reproduces the serial accumulation order exactly, so even
//     order-sensitive reductions (float sums over raw samples) agree.
//
// Workers pull chunks from a shared queue (dynamic load balancing —
// high-utilisation groups cost far more per item than low ones), which
// is safe because chunk *boundaries* never influence results, only the
// merge order does.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Item identifies one unit of work: set Index within utilisation
// Group. Flat order is group-major: item (g, i) has rank g×PerGroup+i.
type Item struct {
	Group, Index int
}

// Config shapes one engine run.
type Config struct {
	// Groups and PerGroup define the work grid (Groups × PerGroup
	// items).
	Groups, PerGroup int
	// Workers is the pool size: 0 (or negative) uses GOMAXPROCS, 1
	// forces serial execution. The result is identical at any value.
	Workers int
	// ChunkSize overrides the scheduling granularity; 0 picks a size
	// that gives each worker several chunks to balance load. Results
	// do not depend on it.
	ChunkSize int
	// Progress, when non-nil, receives (done, total) item counts as
	// chunks complete. Calls are serialised; done is monotone and
	// reaches total on success.
	Progress func(done, total int)
	// Context, when non-nil, cancels the run: workers stop picking up
	// chunks once it is done, in-flight items finish, and Run returns
	// Context.Err(). A nil Context never cancels.
	Context context.Context
}

// Run executes proc on every item of the grid and returns the ordered
// merge of the per-chunk partials.
//
// newPartial allocates an empty accumulator; proc folds one item into
// the accumulator it is handed (no locking needed — a partial is owned
// by one goroutine at a time); merge folds src into dst. Run calls
// merge once per chunk, in flat item order, after all workers stop.
//
// A proc error aborts the run: in-flight chunks finish their current
// item, no new chunks start, and Run returns one of the recorded
// errors (the earliest in chunk order among those observed).
func Run[P any](cfg Config, newPartial func() P, proc func(p P, it Item) error, merge func(dst, src P)) (P, error) {
	var zero P
	if cfg.Groups < 0 || cfg.PerGroup < 0 {
		return zero, fmt.Errorf("sweep: negative grid %d×%d", cfg.Groups, cfg.PerGroup)
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	out := newPartial()
	total := cfg.Groups * cfg.PerGroup
	if total == 0 {
		return out, ctx.Err()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		// Several chunks per worker so a slow chunk (high-utilisation
		// groups retry generation hundreds of times) doesn't strand
		// the pool; boundaries are irrelevant to the result.
		chunk = total / (workers * chunksPerWorker)
		if chunk < 1 {
			chunk = 1
		}
	}
	nChunks := (total + chunk - 1) / chunk

	partials := make([]P, nChunks)
	errs := make([]error, nChunks)
	var (
		next, done atomic.Int64
		failed     atomic.Bool
		progressMu sync.Mutex
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks || failed.Load() {
					return
				}
				if ctx.Err() != nil {
					failed.Store(true)
					return
				}
				p := newPartial()
				partials[c] = p
				lo := c * chunk
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				for flat := lo; flat < hi; flat++ {
					if failed.Load() {
						return
					}
					if err := proc(p, Item{Group: flat / cfg.PerGroup, Index: flat % cfg.PerGroup}); err != nil {
						errs[c] = err
						failed.Store(true)
						return
					}
				}
				if cfg.Progress != nil {
					// Count and report under one lock so callbacks
					// observe strictly increasing done values.
					progressMu.Lock()
					cfg.Progress(int(done.Add(int64(hi-lo))), total)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return zero, err
	}
	for c := 0; c < nChunks; c++ {
		if errs[c] != nil {
			return zero, errs[c]
		}
	}
	for c := 0; c < nChunks; c++ {
		merge(out, partials[c])
	}
	return out, nil
}

const chunksPerWorker = 8

// ProgressPrinter returns a Config.Progress callback that writes one
// label-prefixed line per ~10% of progress (and always the final
// count) to w. CI-log friendly: whole lines, no carriage returns.
func ProgressPrinter(w io.Writer, label string) func(done, total int) {
	lastDecile := -1
	return func(done, total int) {
		decile := done * 10 / total
		if decile == lastDecile && done != total {
			return
		}
		lastDecile = decile
		fmt.Fprintf(w, "%s %d/%d (%d%%)\n", label, done, total, done*100/total)
	}
}
