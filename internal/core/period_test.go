package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/gen"
	"hydrac/internal/task"
)

func roverLikeSet() *task.Set {
	// The paper's rover configuration (§5.1.2), in milliseconds.
	return &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "nav", WCET: 240, Period: 500, Deadline: 500, Core: 0, Priority: 0},
			{Name: "cam", WCET: 1120, Period: 5000, Deadline: 5000, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "kmod", WCET: 223, MaxPeriod: 10000, Priority: 0, Core: -1},
			{Name: "tripwire", WCET: 5342, MaxPeriod: 10000, Priority: 1, Core: -1},
		},
	}
}

func TestSelectPeriodsRover(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatalf("SelectPeriods: %v", err)
	}
	if !res.Schedulable {
		t.Fatal("rover set reported unschedulable")
	}
	for i, s := range ts.Security {
		if res.Periods[i] < res.Resp[i] || res.Periods[i] > s.MaxPeriod {
			t.Errorf("%s: period %d outside [R=%d, Tmax=%d]", s.Name, res.Periods[i], res.Resp[i], s.MaxPeriod)
		}
	}
	// The whole point of period adaptation: periods must be far below
	// Tmax on this lightly loaded platform.
	for i, s := range ts.Security {
		if res.Periods[i] >= s.MaxPeriod {
			t.Errorf("%s: period %d not minimised below Tmax %d", s.Name, res.Periods[i], s.MaxPeriod)
		}
	}
}

func TestSelectPeriodsFinalStateConsistent(t *testing.T) {
	// With the final periods substituted back, every response time must
	// still satisfy Rs ≤ Ts ≤ Tmax (self-consistency of Algorithm 1).
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	applied := Apply(ts, res)
	sys := NewSystem(applied)
	sec := applied.SecurityByPriority()
	periods := make([]task.Time, len(sec))
	for i, s := range sec {
		periods[i] = s.Period
	}
	resp := sys.ResponseTimes(sec, periods, Dominance)
	for i, s := range sec {
		if resp[i] > periods[i] {
			t.Errorf("%s: final R %d exceeds selected period %d", s.Name, resp[i], periods[i])
		}
		if periods[i] > s.MaxPeriod {
			t.Errorf("%s: period %d exceeds Tmax %d", s.Name, periods[i], s.MaxPeriod)
		}
	}
}

func TestSelectPeriodsUnschedulable(t *testing.T) {
	ts := roverLikeSet()
	// Shrink Tmax below any feasible response time of tripwire.
	for i := range ts.Security {
		if ts.Security[i].Name == "tripwire" {
			ts.Security[i].MaxPeriod = 5400 // R is > 5342 + interference
		}
	}
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("expected unschedulable (Tmax below achievable WCRT)")
	}
}

func TestSelectPeriodsRejectsUnpartitioned(t *testing.T) {
	ts := roverLikeSet()
	ts.RT[0].Core = -1
	if _, err := SelectPeriods(ts, Options{}); err == nil {
		t.Fatal("unpartitioned RT band accepted")
	}
}

func TestSelectPeriodsRejectsInfeasibleRTBand(t *testing.T) {
	ts := roverLikeSet()
	ts.RT[0].WCET = 499
	ts.RT[1].Core = 0
	ts.RT[1].Deadline = 1200
	ts.RT[1].Period = 1200
	if _, err := SelectPeriods(ts, Options{}); err == nil {
		t.Fatal("unschedulable RT band accepted")
	}
}

func TestSelectPeriodsSkipOptimization(t *testing.T) {
	ts := roverLikeSet()
	res, err := SelectPeriods(ts, Options{SkipOptimization: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("unschedulable")
	}
	for i, s := range ts.Security {
		if res.Periods[i] != s.MaxPeriod {
			t.Errorf("%s: period %d, want Tmax %d", s.Name, res.Periods[i], s.MaxPeriod)
		}
	}
}

func TestSelectPeriodsEmptySecurity(t *testing.T) {
	ts := roverLikeSet()
	ts.Security = nil
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || len(res.Periods) != 0 {
		t.Fatalf("empty security band: %+v", res)
	}
}

// Algorithm 2's logarithmic search must agree with the brute-force
// downward scan. Monotonicity of feasibility in the period makes the
// binary search exact; this is the regression test for that claim.
func TestLogSearchMatchesLinearOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("linear oracle is slow")
	}
	rng := rand.New(rand.NewSource(21))
	cfg := gen.Config{
		Cores:      2,
		RTTasksMin: 3, RTTasksMax: 6,
		SecTasksMin: 2, SecTasksMax: 4,
		RTPeriodMin: 10, RTPeriodMax: 100,
		SecMaxPeriodMin: 150, SecMaxPeriodMax: 400,
		SecurityShare: 0.3,
		Groups:        10,
		SetsPerGroup:  1,
		MaxAttempts:   50,
	}
	checked := 0
	for g := 1; g <= 5 && checked < 20; g++ {
		for i := 0; i < 8 && checked < 20; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			fast, err := SelectPeriods(ts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := SelectPeriods(ts, Options{LinearSearch: true})
			if err != nil {
				t.Fatal(err)
			}
			if fast.Schedulable != slow.Schedulable {
				t.Fatalf("schedulability mismatch: log=%v linear=%v", fast.Schedulable, slow.Schedulable)
			}
			if !fast.Schedulable {
				continue
			}
			for j := range fast.Periods {
				if fast.Periods[j] != slow.Periods[j] {
					t.Fatalf("period mismatch for %s: log=%d linear=%d",
						ts.Security[j].Name, fast.Periods[j], slow.Periods[j])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable task sets generated; tune the test config")
	}
}

// Randomised invariant check over generated workloads: every
// schedulable result satisfies R ≤ T* ≤ Tmax per task, and the final
// configuration re-validates.
func TestSelectPeriodsRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cfg := gen.TableThree(2)
	cfg.SetsPerGroup = 1
	cfg.MaxAttempts = 30
	count := 0
	for g := 0; g < 7; g++ {
		for i := 0; i < 5; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			res, err := SelectPeriods(ts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue
			}
			count++
			for j, s := range ts.Security {
				if res.Resp[j] > res.Periods[j] {
					t.Fatalf("%s: R %d > T* %d", s.Name, res.Resp[j], res.Periods[j])
				}
				if res.Periods[j] > s.MaxPeriod {
					t.Fatalf("%s: T* %d > Tmax %d", s.Name, res.Periods[j], s.MaxPeriod)
				}
				if res.Periods[j] < s.WCET {
					t.Fatalf("%s: T* %d < WCET %d", s.Name, res.Periods[j], s.WCET)
				}
			}
			applied := Apply(ts, res)
			if err := applied.Validate(); err != nil {
				t.Fatalf("applied set invalid: %v", err)
			}
		}
	}
	if count == 0 {
		t.Fatal("no schedulable sets exercised")
	}
}

// Carry-in mode must not change schedulability decisions drastically:
// exhaustive accepts whenever dominance accepts (dominance is the
// pessimistic one).
func TestSelectPeriodsCarryInModes(t *testing.T) {
	ts := roverLikeSet()
	dom, err := SelectPeriods(ts, Options{CarryIn: Dominance})
	if err != nil {
		t.Fatal(err)
	}
	exh, err := SelectPeriods(ts, Options{CarryIn: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if dom.Schedulable && !exh.Schedulable {
		t.Fatal("exhaustive rejected a dominance-accepted set")
	}
	if dom.Schedulable && exh.Schedulable {
		for i := range dom.Periods {
			if exh.Periods[i] > dom.Periods[i] {
				t.Errorf("task %d: exhaustive period %d worse than dominance %d",
					i, exh.Periods[i], dom.Periods[i])
			}
		}
	}
}

func TestApplyPanicsOnUnschedulable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply did not panic on unschedulable result")
		}
	}()
	Apply(roverLikeSet(), &Result{Schedulable: false})
}
