package hydradhttp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

// fleetNode is one in-process fleet member: a real listener (the URL
// is needed before the handler exists, since every handler's fleet
// view must carry all URLs) behind a swappable handler.
type fleetNode struct {
	srv     *httptest.Server
	handler atomic.Pointer[hydradhttp.Handler]
	fl      *fleet.Fleet
	st      *store.Store
}

func (n *fleetNode) url() string { return n.srv.URL }

// startFleetPair boots two fleet members. durable=true gives each its
// own store; false runs memory-mode sessions.
func startFleetPair(t *testing.T, durable bool) (a, b *fleetNode) {
	t.Helper()
	an, err := hydrac.New(hydrac.WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*fleetNode{{}, {}}
	for _, n := range nodes {
		n := n
		n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := n.handler.Load(); h != nil {
				h.ServeHTTP(w, r)
				return
			}
			http.Error(w, "booting", http.StatusServiceUnavailable)
		}))
		t.Cleanup(n.srv.Close)
	}
	peers := []string{nodes[0].url(), nodes[1].url()}
	for _, n := range nodes {
		fl, err := fleet.New(fleet.Options{Self: n.url(), Peers: peers, ProbeEvery: -1, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		n.fl = fl
		cfg := hydradhttp.Config{Analyzer: an, MaxSessions: 64, CacheSize: 16, Fleet: fl, Logf: t.Logf}
		if durable {
			st, err := store.Open(t.TempDir(), an, store.Options{ProbeEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			n.st = st
			cfg.Store = st
		}
		n.handler.Store(hydradhttp.NewHandler(cfg))
	}
	return nodes[0], nodes[1]
}

// noRedirect returns a client that surfaces 307s instead of following
// them, so tests can assert the redirect envelope itself.
func noRedirect() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

func TestFleetCreateMintsSelfOwnedIDs(t *testing.T) {
	a, b := startFleetPair(t, false)
	for i := 0; i < 8; i++ {
		id := createSession(t, a.url())
		if !a.fl.Owns(id) {
			t.Fatalf("node A minted id %s it does not own", id)
		}
		if b.fl.Owns(id) {
			t.Fatalf("both nodes claim id %s", id)
		}
	}
}

// A non-owner answers 307 + X-Hydra-Owner + Location, and following
// the Location serves the session — both for GET and for POST admit
// (307 preserves method and body).
func TestFleetNonOwnerRedirects(t *testing.T) {
	a, b := startFleetPair(t, true)
	id := createSession(t, a.url())

	nr := noRedirect()
	resp, err := nr.Get(b.url() + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("GET on non-owner: %d, want 307", resp.StatusCode)
	}
	if owner := resp.Header.Get("X-Hydra-Owner"); owner != a.url() {
		t.Fatalf("X-Hydra-Owner = %q, want %q", owner, a.url())
	}
	if loc := resp.Header.Get("Location"); loc != a.url()+"/v1/session/"+id {
		t.Fatalf("Location = %q", loc)
	}

	// A standards-following client (http.Post replays the body on 307)
	// admits through the wrong node transparently.
	resp2, body := post(t, b.url()+"/v1/session/"+id+"/admit", admitBody(t, 0))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("admit via non-owner: %d %s", resp2.StatusCode, body)
	}
	if resp2.Header.Get("X-Hydra-Admitted") != "true" {
		t.Fatalf("delta not admitted: %s", body)
	}
}

// Drain hands every durable session to the peer; the drained node
// then redirects session traffic and new creates, and its healthz
// says draining.
func TestFleetDrainHandsOffAndRedirects(t *testing.T) {
	a, b := startFleetPair(t, true)
	var ids []string
	for i := 0; i < 3; i++ {
		id := createSession(t, a.url())
		resp, body := post(t, a.url()+"/v1/session/"+id+"/admit", admitBody(t, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit: %d %s", resp.StatusCode, body)
		}
		ids = append(ids, id)
	}
	// Control states, captured before the drain.
	want := map[string][]byte{}
	for _, id := range ids {
		resp, body := get(t, a.url()+"/v1/session/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-drain GET: %d", resp.StatusCode)
		}
		want[id] = body
	}

	moved, kept := a.handler.Load().Drain(context.Background())
	if moved != len(ids) || kept != 0 {
		t.Fatalf("Drain moved %d kept %d, want %d/0", moved, kept, len(ids))
	}

	// The drained node's healthz reports draining.
	resp, body := get(t, a.url()+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
		Fleet  struct {
			Self  string `json:"self"`
			Peers []struct {
				Addr  string `json:"addr"`
				State string `json:"state"`
			} `json:"peers"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz body: %v (%s)", err, body)
	}
	if hz.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", hz.Status)
	}
	if hz.Fleet.Self != a.url() || len(hz.Fleet.Peers) != 2 {
		t.Fatalf("healthz fleet block: %+v", hz.Fleet)
	}

	// Sessions now live on B, bit-identical, and A redirects to B.
	nr := noRedirect()
	for _, id := range ids {
		resp, err := nr.Get(a.url() + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("drained node GET: %d, want 307", resp.StatusCode)
		}
		if owner := resp.Header.Get("X-Hydra-Owner"); owner != b.url() {
			t.Fatalf("post-drain owner %q, want %q", owner, b.url())
		}
		got, body := get(t, b.url()+"/v1/session/"+id)
		if got.StatusCode != http.StatusOK {
			t.Fatalf("GET on new owner: %d %s", got.StatusCode, body)
		}
		if !bytes.Equal(body, want[id]) {
			t.Fatalf("session %s state diverged across handoff:\ngot  %s\nwant %s", id, body, want[id])
		}
	}

	// New creates on the draining node redirect to a healthy peer.
	resp3, err := nr.Post(a.url()+"/v1/session", "application/json", bytes.NewReader(baseBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("create on draining node: %d, want 307", resp3.StatusCode)
	}
	if owner := resp3.Header.Get("X-Hydra-Owner"); owner != b.url() {
		t.Fatalf("create redirect owner %q", owner)
	}

	// And a draining node refuses incoming handoffs.
	hreq, _ := json.Marshal(map[string]any{
		"version": 1, "session_id": "bounce", "next_fit": 0,
		"set": json.RawMessage(baseBody(t)), "deltas": []json.RawMessage{},
	})
	resp4, _ := post(t, a.url()+"/v1/handoff", hreq)
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("handoff to draining node: %d, want 503", resp4.StatusCode)
	}
}

// Handoff replays into memory mode too: no -data-dir on the receiver
// still accepts the stream (durability is per-node).
func TestFleetHandoffIntoMemoryMode(t *testing.T) {
	a, b := startFleetPair(t, false)
	id := createSession(t, b.url())
	for i := 0; i < 2; i++ {
		resp, body := post(t, b.url()+"/v1/session/"+id+"/admit", admitBody(t, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit: %d %s", resp.StatusCode, body)
		}
	}
	_, wantBody := get(t, b.url()+"/v1/session/"+id)

	// Hand the session to A by hand (memory mode has no Drain path):
	// ship the CURRENT set as snapshot with no deltas.
	hreq, _ := json.Marshal(map[string]any{
		"version": 1, "session_id": "copy-" + id, "next_fit": 0,
		"set": json.RawMessage(wantBody), "deltas": []json.RawMessage{},
	})
	resp, body := post(t, a.url()+"/v1/handoff", hreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: %d %s", resp.StatusCode, body)
	}
	// Duplicate import conflicts.
	resp2, _ := post(t, a.url()+"/v1/handoff", hreq)
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate handoff: %d, want 409", resp2.StatusCode)
	}
	// Bad version rejected.
	bad, _ := json.Marshal(map[string]any{"version": 99, "session_id": "x", "set": json.RawMessage(wantBody)})
	resp3, _ := post(t, a.url()+"/v1/handoff", bad)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad version: %d, want 400", resp3.StatusCode)
	}
}

// healthz carries uptime_seconds on plain single-node daemons too.
func TestHealthzUptime(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a}))
	defer srv.Close()
	_, body := get(t, srv.URL+"/healthz")
	var hz struct {
		Uptime *float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Uptime == nil || *hz.Uptime < 0 {
		t.Fatalf("uptime_seconds missing or negative in %s", body)
	}
}
