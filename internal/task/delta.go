package task

import (
	"encoding/json"
	"fmt"
	"io"
)

// Delta is one admission request against a live task set: tasks to
// remove (by name) and tasks to add, applied in that order so a
// replace is expressed as a remove and an add of the same name in one
// delta. Deltas are the unit of the incremental admission engine
// (internal/admit): a session applies a sequence of deltas and the
// engine re-analyses only what each delta can affect.
//
// Unlike whole-set files, delta tasks never receive defaulted
// priorities: rate-monotonic or max-period-monotonic renumbering is a
// whole-set operation and would silently reorder the tasks already
// admitted. Every added task must carry its priority explicitly.
type Delta struct {
	// Remove lists task names (RT or security) to drop first.
	Remove []string
	// AddRT lists real-time tasks to add. Core -1 asks the engine to
	// place the task with its partitioning heuristic.
	AddRT []RTTask
	// AddSecurity lists security tasks to add. Priorities must be
	// distinct from every retained security task.
	AddSecurity []SecurityTask
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.Remove) == 0 && len(d.AddRT) == 0 && len(d.AddSecurity) == 0
}

// RemovalOnly reports whether the delta only drops tasks. Removals
// never make a schedulable set unschedulable, so the admission engine
// commits them unconditionally.
func (d *Delta) RemovalOnly() bool {
	return len(d.Remove) > 0 && len(d.AddRT) == 0 && len(d.AddSecurity) == 0
}

// deltaFormat is the wire schema of one delta, reusing the task
// records of the file format.
type deltaFormat struct {
	Remove      []string    `json:"remove,omitempty"`
	AddRT       []rtRecord  `json:"add_rt,omitempty"`
	AddSecurity []secRecord `json:"add_security,omitempty"`
}

// DecodeDelta reads one delta from JSON. Deadlines default to the
// period and cores to -1 as in the file format, but priorities are
// required (see Delta).
func DecodeDelta(r io.Reader) (*Delta, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f deltaFormat
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("decoding delta: %w", err)
	}
	return deltaFromFormat(&f)
}

// DecodeDeltaLog reads a delta log: a JSON array of delta objects,
// applied in order. It is the format cmd/hydrac's admit subcommand
// replays.
func DecodeDeltaLog(r io.Reader) ([]Delta, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fs []deltaFormat
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("decoding delta log: %w", err)
	}
	out := make([]Delta, 0, len(fs))
	for i := range fs {
		d, err := deltaFromFormat(&fs[i])
		if err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
		out = append(out, *d)
	}
	return out, nil
}

func deltaFromFormat(f *deltaFormat) (*Delta, error) {
	d := &Delta{Remove: append([]string(nil), f.Remove...)}
	for _, rec := range f.AddRT {
		if rec.Priority == nil {
			return nil, fmt.Errorf("RT task %s: deltas require an explicit priority (defaulting would renumber the admitted set)", rec.Name)
		}
		t := RTTask{Name: rec.Name, WCET: rec.WCET, Period: rec.Period, Deadline: rec.Deadline, Core: -1, Priority: *rec.Priority}
		if rec.Core != nil {
			t.Core = *rec.Core
		}
		if t.Deadline == 0 {
			t.Deadline = t.Period
		}
		d.AddRT = append(d.AddRT, t)
	}
	for _, rec := range f.AddSecurity {
		if rec.Priority == nil {
			return nil, fmt.Errorf("security task %s: deltas require an explicit priority (defaulting would renumber the admitted set)", rec.Name)
		}
		s := SecurityTask{Name: rec.Name, WCET: rec.WCET, MaxPeriod: rec.MaxPeriod, Period: rec.Period, Core: -1, Priority: *rec.Priority}
		if rec.Core != nil {
			s.Core = *rec.Core
		}
		d.AddSecurity = append(d.AddSecurity, s)
	}
	return d, nil
}

func deltaToFormat(d *Delta) deltaFormat {
	f := deltaFormat{Remove: append([]string(nil), d.Remove...)}
	for _, t := range d.AddRT {
		p, c := t.Priority, t.Core
		f.AddRT = append(f.AddRT, rtRecord{Name: t.Name, WCET: t.WCET, Period: t.Period, Deadline: t.Deadline, Core: &c, Priority: &p})
	}
	for _, s := range d.AddSecurity {
		p, c := s.Priority, s.Core
		rec := secRecord{Name: s.Name, WCET: s.WCET, MaxPeriod: s.MaxPeriod, Period: s.Period, Priority: &p}
		if c >= 0 {
			rec.Core = &c
		}
		f.AddSecurity = append(f.AddSecurity, rec)
	}
	return f
}

// EncodeDelta writes one delta as indented JSON.
func EncodeDelta(w io.Writer, d *Delta) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(deltaToFormat(d))
}

// EncodeDeltaLog writes a delta sequence in the format DecodeDeltaLog
// reads.
func EncodeDeltaLog(w io.Writer, ds []Delta) error {
	fs := make([]deltaFormat, 0, len(ds))
	for i := range ds {
		fs = append(fs, deltaToFormat(&ds[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
