package core

import "hydrac/internal/task"

// This file is the hot Eq. 5–8 kernel: an allocation-free,
// staircase-accelerated evaluation of the interference function Ω and
// its Eq. 7 fixed point. The naive forms in wcrt.go (omegaDominance,
// fixedPoint) remain the readable reference — the Exhaustive mode and
// the equivalence property tests still run them — but every production
// path goes through a Scratch.
//
// Three observations drive the design:
//
//  1. The Eq. 7 refinement sequence is the contract. The iteration
//     budget (MaxFixpointIterations) is part of the analysis
//     definition — a set the naive creep abandons mid-iteration must
//     stay abandoned — so the kernel never changes WHICH refinements
//     happen, only how cheaply they are computed and counted.
//
//  2. Ω is piecewise LINEAR in the window length x. Every elementary
//     term — an Eq. 2 staircase, an Eq. 4 carry-in bound, the
//     x−Cs+1 interference clamp of Eqs. 3/5, and the top-(M−1)
//     dominance selection of Eq. 6 — is linear between breakpoints:
//     task release-structure edges, clamp crossovers, and changes of
//     the selected carry-in set. One pass over the tasks yields the
//     exact value, slope and next breakpoint of Ω at x (omegaLine).
//     On such a piece every refinement is three integer operations,
//     and when the slope is exactly M the stride is constant, so the
//     clamp-bound creep the iteration budget exists for — millions of
//     one-tick refinements — is counted in closed form and resolved
//     in O(1).
//
//  3. Creep betrays itself: slope-M pieces produce runs of EQUAL
//     short strides. The kernel therefore runs a lean value-only
//     evaluation (omegaValue — the naive arithmetic without the sort
//     or the allocations) and drops into the piecewise-linear escape
//     only when two consecutive strides match below creepStride;
//     after the piece is resolved it returns to the fast path. Long-
//     stride iterations — the common converging case — never pay for
//     piece geometry they would not use.
//
// Because both evaluators compute the identical Ω and the escape
// replays (or batch-counts) the identical refinements, results are
// bit-identical to the naive creep in every case, including the
// conservative MaxFixpointIterations verdicts. The equivalence is
// property-tested against the reference creep in scratch_test.go and
// pinned end-to-end by the differential oracle corpus.

// Scratch is the reusable per-analysis workspace of the kernel: the
// RT band flattened into structure-of-arrays form plus the buffers the
// fixpoint and the period-selection helpers need. One Scratch serves
// one analysis at a time — SelectPeriodsCtx, SelectPeriodsResumable
// and the admission engine each own one — and must never be shared
// across goroutines. Reset re-primes it for a new System, reusing all
// capacity, so steady-state analyses allocate nothing.
type Scratch struct {
	sys  *System
	sysM int

	// coreEnd delimits the RT band per core: core m's tasks span
	// rtWin[coreEnd[m−1]:coreEnd[m]] (built once per Reset).
	coreEnd []int

	// diffs is the Eq. 6 carry-in selection buffer.
	diffs []diffTerm

	// rtWin is the RT band's period-window cache: each task carries
	// its current period window [lo, hi) and the completed-jobs
	// workload qc, so the hot path computes an Eq. 2 workload with a
	// compare and a subtract instead of a 64-bit div+mod. A window is
	// a pure function of the window length, so it stays valid across
	// calls — the division reruns only when an evaluation leaves the
	// window on either side. One packed struct per task keeps the
	// walk on ~1.5 cache lines per four tasks.
	rtWin []rtWindow

	// probeResp/probeCand/probeFrom capture the response-time vector
	// of the most recent fully-feasible Algorithm 2 probe, so the
	// line-8 refresh after a search can reuse the star probe's
	// fixpoints instead of re-running them (the last feasible probe of
	// the binary search IS the star, with identical inputs).
	probeResp []task.Time
	probeCand task.Time
	probeFrom int

	// hp is the probe-scoped interferer buffer shared by the leaf
	// helpers (responseTimes, lowerPrioritySchedulable,
	// recomputeBelow), which never nest. hpOuter is the selection-loop
	// prefix of SelectPeriodsResumable, which is live across probes.
	hp, hpOuter []Interferer

	// hpWin caches the higher-priority migrating band's Eq. 2/4
	// staircases as period windows, exactly as rtWin does for the RT
	// band: primeHP loads it at every MigratingWCRT entry (the hp
	// set is fixed for the duration of one fixpoint), after which each
	// Eq. 5 term costs a compare and a subtract per iteration instead
	// of the two 64-bit divisions of workloadNC + workloadCI. Priming
	// keeps the longest prefix whose derived fields already match, so
	// the selection loops — which re-prime the same interferer prefix
	// hundreds of times per search — carry the warm window caches and
	// the demand-bound order across probes instead of rebuilding them.
	hpWin []hpWindow

	// hpOrder holds the indices of hpWin sorted by ascending x̄: the
	// dominance difference I^CI − I^NC of an entry is provably ≤ 0
	// until the window length exceeds its x̄ (the carry-in staircase is
	// the non-carry-in one shifted right by x̄ plus a min(y, C−1) tail
	// that never beats the W^NC(y) ≥ min(y, C) floor under the shared
	// clamp), so a carry-in scan at window length y visits only the
	// prefix with x̄ < y — on paper-scale chains a small fraction of
	// the band. Maintained incrementally by primeHP's prefix match and
	// insertOrder's binary insertion.
	hpOrder []int32

	// topk is the bounded min-heap over the k = M−1 largest carry-in
	// differences (values only; the top-k SUM is selection-order
	// independent, so a value heap reproduces the reference sort).
	topk []task.Time

	// heapIdx is omegaLine's bounded min-heap of diff indices, ordered
	// by the reference selection key (value desc, slope desc, index
	// asc) so the selected SET — which the piece geometry depends on —
	// is exactly the reference's.
	heapIdx []int32

	// resp/periods back the per-analysis working vectors of the
	// period-selection entry points.
	resp, periods []task.Time

	// rtAt/ncAt/ckAt split Ω_j(resp[j]) = RT + ΣNC + top-k into its
	// components, cached per task under the currently stored
	// periods/resp state (valid iff rtAt[j] ≥ 0). rtAt and ncAt are
	// exact; ckAt is an upper bound on the top-k term (exact whenever
	// it was refreshed by an evaluation, possibly slack after
	// bound-layer accepts — the slack only costs an extra recheck
	// later, never correctness). The RT band depends only on the
	// window length; the non-carry-in sum moves only with a chain
	// entry's PERIOD, by an exact two-staircase-read correction; the
	// top-k term moves with periods and response times, bounded
	// per-entry by diffShift (a top-k sum is 1-Lipschitz in each
	// candidate). warmResp in period.go layers these: O(1) bound
	// check, then an exact pruned carry-in rescan, then the fixpoint.
	// probeRT/probeNC/probeCK capture the per-probe values the way
	// probeResp captures the responses; the line-8 capture promotes
	// them together. chg lists the chain entries the current
	// probe/refresh has perturbed relative to the cached state.
	rtAt, ncAt, ckAt, probeRT, probeNC, probeCK []task.Time
	chg                                         []chainDelta
	// lastViol remembers which task sank the most recent infeasible
	// probe: violators are sticky across a binary search, and a
	// victim-first recheck against the stale chain (a certified lower
	// bound on the in-probe interference) rejects most infeasible
	// candidates without touching the tasks in between.
	lastViol int
	// chgWild marks a chg list that could not describe the current
	// perturbation (an unbounded response entered the chain); the
	// bound layer stands down until the next chain rebuild.
	chgWild bool

	// aggY/aggV/aggS/aggBP/aggCS cache the whole migrating
	// non-carry-in band as one line: ΣNC clamped is piecewise linear
	// in the window length, and security periods dwarf the strides a
	// fixpoint takes, so one O(n) build at aggY serves every
	// evaluation until aggBP (the earliest piece end or clamp
	// crossing). Valid only for the WCET it was clamped against
	// (aggCS; −1 invalid) and until primeHP mutates the band.
	aggY, aggV, aggS, aggBP, aggCS task.Time

	// lastY/lastRT/lastNC/lastCK record the component split of the
	// most recent omegaValue evaluation, so a fixpoint that converges
	// on a value evaluation (lastY == result) hands its caller the
	// exact split for re-caching without extra work.
	lastY, lastRT, lastNC, lastCK task.Time

	// rtLine caches each core's unclamped Eq. 3 staircase sum as a
	// local line (value at y0, slope, valid on [y0, bp)): at large n a
	// refinement moves y far less than one piece, so the steady-state
	// RT-band read is O(cores) instead of O(RT tasks).
	rtLine []coreLine
}

// coreLine is one core's cached staircase-sum piece.
type coreLine struct {
	y0, v, s, bp task.Time
}

// chainDelta is one perturbed chain entry: an interferer whose period
// and/or recorded response time differs from the state the component
// caches were computed under.
type chainDelta struct {
	c, oldP, newP, oldR, newR task.Time
}

// diffShift bounds, from above, how much this entry's perturbation
// can raise the top-k dominance term at window length y for a task
// with WCET cs: replacing one candidate difference d by d' moves a
// top-k sum by at most max(0, d'−d) upward (1-Lipschitz per element;
// candidates below zero never enter, hence the floors). Inputs must
// be sane (responses at or below periods); the callers poison the
// bound layer otherwise.
func (e *chainDelta) diffShift(y, cs task.Time) task.Time {
	ncOld := clampInterference(workloadNC(y, e.c, e.oldP), y, cs)
	ncNew := ncOld
	if e.newP != e.oldP {
		ncNew = clampInterference(workloadNC(y, e.c, e.newP), y, cs)
	}
	dOld := clampInterference(workloadCI(y, e.c, e.oldP, e.oldR), y, cs) - ncOld
	dNew := clampInterference(workloadCI(y, e.c, e.newP, e.newR), y, cs) - ncNew
	if dOld < 0 {
		dOld = 0
	}
	if dNew < 0 {
		dNew = 0
	}
	if dNew > dOld {
		return dNew - dOld
	}
	return 0
}

// rtWindow is one staircase task's demand and current period window.
type rtWindow struct {
	c, t, qc, lo, hi task.Time
}

// hpWindow is one higher-priority migrating task's pair of cached
// staircases: the Eq. 2 non-carry-in workload over the window length
// y, and the Eq. 4 carry-in staircase over the shifted coordinate
// z = y − x̄ (its tail term min(y, C−1) is division-free and computed
// inline).
type hpWindow struct {
	nc   rtWindow
	ci   rtWindow
	xbar task.Time
	cm1  task.Time
}

// primeHP loads the interferer band into the scratch's staircase
// window caches. The windows start invalid (hi = −1) and fill lazily
// at first use, so priming costs one pass of plain stores — no
// divisions — and pays for itself from the second fixpoint iteration
// on.
//
// Priming preserves the longest already-loaded prefix whose derived
// fields (C, T, x̄) match the new band. The selection loops prime the
// same 0..i prefix for every probe and grow the chain one interferer
// per task, so in steady state a prime costs a prefix of equality
// compares plus one ordered insert — the warm period windows (valid
// for any window length once filled, being pure functions of (C, T))
// and the descending-cm1 order survive instead of being rebuilt and
// re-sorted per MigratingWCRT entry.
func (sc *Scratch) primeHP(hp []Interferer) {
	hw := sc.hpWin
	oldN := len(hw)
	p := 0
	for p < len(hw) && p < len(hp) {
		h := &hp[p]
		w := &hw[p]
		if w.nc.c != h.WCET || w.nc.t != h.Period || w.xbar != h.WCET-1+h.Period-h.Resp {
			break
		}
		p++
	}
	hw = hw[:p]
	if len(sc.hpOrder) > p {
		ord := sc.hpOrder[:0]
		for _, j := range sc.hpOrder {
			if int(j) < p {
				ord = append(ord, j)
			}
		}
		sc.hpOrder = ord
	}
	if p != oldN || len(hp) != oldN {
		sc.aggCS = -1
	}
	for j := p; j < len(hp); j++ {
		h := &hp[j]
		hw = append(hw, hpWindow{
			nc:   rtWindow{c: h.WCET, t: h.Period, hi: -1},
			ci:   rtWindow{c: h.WCET, t: h.Period, hi: -1},
			xbar: h.WCET - 1 + h.Period - h.Resp,
			cm1:  h.WCET - 1,
		})
		sc.hpWin = hw
		sc.insertOrder(int32(j))
	}
	sc.hpWin = hw
}

// insertOrder files hpWin index j into hpOrder's ascending-x̄
// arrangement (ties by ascending index, so priming order never
// influences results).
func (sc *Scratch) insertOrder(j int32) {
	xbar := sc.hpWin[j].xbar
	ord := sc.hpOrder
	lo, hi := 0, len(ord)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		o := ord[mid]
		if sc.hpWin[o].xbar < xbar || (sc.hpWin[o].xbar == xbar && o < j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ord = append(ord, 0)
	copy(ord[lo+1:], ord[lo:])
	ord[lo] = j
	sc.hpOrder = ord
}

// diffTerm is one higher-priority migrating task's carry-in minus
// non-carry-in interference difference — a plain value for the fast
// evaluator, a linear function of the window length (v, s) for the
// piecewise escape.
type diffTerm struct {
	v, s task.Time
	sel  bool
}

// NewScratch returns a workspace primed for sys (which may be nil;
// call Reset before use then).
func NewScratch(sys *System) *Scratch {
	sc := &Scratch{}
	if sys != nil {
		sc.Reset(sys)
	}
	return sc
}

// Reset primes the scratch for a new System, reusing every buffer.
func (sc *Scratch) Reset(sys *System) {
	sc.sys = sys
	sc.sysM = sys.M
	sc.rtWin = sc.rtWin[:0]
	sc.coreEnd = sc.coreEnd[:0]
	for _, demands := range sys.RTCores {
		for _, d := range demands {
			sc.rtWin = append(sc.rtWin, rtWindow{c: d.WCET, t: d.Period, hi: -1})
		}
		sc.coreEnd = append(sc.coreEnd, len(sc.rtWin))
	}
	if cap(sc.rtLine) < len(sc.coreEnd) {
		sc.rtLine = make([]coreLine, len(sc.coreEnd))
	}
	sc.rtLine = sc.rtLine[:len(sc.coreEnd)]
	for i := range sc.rtLine {
		sc.rtLine[i] = coreLine{y0: 1} // y0 > bp: primed invalid
	}
	if k := sys.M - 1; k > 1 {
		if cap(sc.topk) < k {
			sc.topk = make([]task.Time, 0, k)
		}
		if cap(sc.heapIdx) < k {
			sc.heapIdx = make([]int32, 0, k)
		}
	}
	sc.probeFrom = -1
	sc.aggCS = -1
	sc.lastViol = -1
}

// refill recomputes the task's period window at window length y. The
// first period — where every call starts, since the iteration begins
// at Cs — needs no division. The body must stay under the compiler's
// inlining budget: it sits on the innermost staircase walk, and a
// call here costs more than the division it wraps.
func (w *rtWindow) refill(y task.Time) {
	if y < w.t {
		w.lo, w.hi, w.qc = 0, w.t, 0
		return
	}
	q := y / w.t
	w.lo = q * w.t
	w.hi = satAdd(w.lo, w.t)
	w.qc = q * w.c
}

// rtCore reads one core's unclamped staircase sum through the cached
// line, rebuilding the piece from the core's windows only when y has
// left it. Exactness is the same argument as omegaLine's RT band: the
// sum is linear with slope = climbing windows until the first window
// crosses into its flat tail (lo+c) or its next period (hi).
func (sc *Scratch) rtCore(c int, wins []rtWindow, y task.Time) (v, s, bp task.Time) {
	cl := &sc.rtLine[c]
	if y >= cl.y0 && y < cl.bp {
		return cl.v + cl.s*(y-cl.y0), cl.s, cl.bp
	}
	bp = task.Infinity
	for i := range wins {
		win := &wins[i]
		if y >= win.hi || y < win.lo {
			win.refill(y)
		}
		if r := y - win.lo; r < win.c {
			v += win.qc + r
			s++
			if b := win.lo + win.c; b < bp {
				bp = b
			}
		} else {
			v += win.qc + win.c
			if win.hi < bp {
				bp = win.hi
			}
		}
	}
	cl.y0, cl.v, cl.s, cl.bp = y, v, s, bp
	return v, s, bp
}

// ensure pre-sizes the selection buffers for a security band of n
// tasks so the steady-state selection loops never grow them.
func (sc *Scratch) ensure(n int) {
	if cap(sc.hp) < n {
		sc.hp = make([]Interferer, 0, n)
	}
	if cap(sc.hpOuter) < n {
		sc.hpOuter = make([]Interferer, 0, n)
	}
	if cap(sc.diffs) < n {
		sc.diffs = make([]diffTerm, 0, n)
	}
	if cap(sc.hpWin) < n {
		sc.hpWin = make([]hpWindow, 0, n)
		sc.hpOrder = sc.hpOrder[:0]
	}
	if cap(sc.hpOrder) < n {
		ord := make([]int32, len(sc.hpOrder), n)
		copy(ord, sc.hpOrder)
		sc.hpOrder = ord
	}
	if cap(sc.resp) < n {
		sc.resp = make([]task.Time, 0, n)
	}
	if cap(sc.periods) < n {
		sc.periods = make([]task.Time, 0, n)
	}
	if cap(sc.probeResp) < n {
		sc.probeResp = make([]task.Time, n)
	}
	sc.probeResp = sc.probeResp[:n]
	if cap(sc.chg) < n {
		sc.chg = make([]chainDelta, 0, n)
	}
	for _, b := range []*[]task.Time{&sc.rtAt, &sc.ncAt, &sc.ckAt, &sc.probeRT, &sc.probeNC, &sc.probeCK} {
		if cap(*b) < n {
			*b = make([]task.Time, n)
		}
		*b = (*b)[:n]
	}
	for i := range sc.rtAt {
		sc.rtAt[i] = -1
	}
	sc.probeFrom = -1
}

// replayCeiling bounds the in-piece offsets the replay multiplies the
// slope by; past it the kernel re-evaluates Ω instead, avoiding
// overflow on sets with 2^60-scale ticks. The fallback stays exact —
// an evaluation is stateless.
const replayCeiling task.Time = 1 << 50

// creepStride is the refinement stride below which a run of equal
// strides is treated as clamp-bound creep and handed to the
// piecewise-linear escape. The trigger is a pure evaluation-strategy
// switch — the refinement sequence is identical on both sides — so
// the value moves constant factors, never results.
const creepStride task.Time = 64

// MigratingWCRT is the scratch-backed form of System.MigratingWCRT:
// identical results — the identical refinement sequence, with
// clamp-bound creep resolved through the piecewise-linear form of Ω
// instead of one full evaluation per tick — and no steady-state
// allocations. The Exhaustive mode delegates to the literal Eq. 8
// enumeration (a test oracle; it allocates freely).
func (sc *Scratch) MigratingWCRT(cs task.Time, hp []Interferer, limit task.Time, mode CarryInMode) (task.Time, bool) {
	if cs > limit {
		return task.Infinity, false
	}
	if mode == Exhaustive {
		return sc.sys.migratingWCRTExhaustive(cs, hp, limit)
	}
	sc.primeHP(hp)
	return sc.fixpointPrimed(cs, cs, limit)
}

// fixpointPrimed runs the Eq. 7 refinement on the already-primed
// interferer band, starting from start — which must be a sound lower
// bound on the least fixed point (cs always is; the warm-started
// probes pass the pre-probe response time, see probeWarm). Iterating
// a monotone f from any x₀ ≤ lfp climbs monotonically to the SAME
// least fixed point — f(x₀) < x₀ would put a fixed point below x₀ by
// Knaster–Tarski, contradicting x₀ ≤ lfp — so the start only changes
// how many refinements are spent, never the result.
//
// A convergence decided by a value evaluation leaves the exact Ω
// component split in lastY/lastRT/lastNC (lastY == result then);
// line-mode convergences do not refresh them, which callers detect by
// lastY ≠ result.
func (sc *Scratch) fixpointPrimed(cs, start, limit task.Time) (task.Time, bool) {
	m := task.Time(sc.sysM)
	x := start
	iters := 0
	lastStride := task.Time(-1)
	// One line build walks every interferer; a pruned value evaluation
	// walks a small prefix. Line mode therefore has to save that many
	// evaluations to break even, so the switch waits for a stall — a
	// run of short, non-growing strides — proportional to the band
	// size before engaging. Pure evaluation strategy: the refinement
	// sequence is identical on both sides of the trigger.
	stallFor := 2 + (len(sc.hpWin)+len(sc.rtWin))/32
	stalled := 0
	for iters < MaxFixpointIterations {
		iters++
		next := sc.omegaValue(x, cs)/m + cs
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			return task.Infinity, false
		}
		stride := next - x
		x = next
		if stride >= creepStride || stride > lastStride || lastStride < 0 {
			lastStride = stride
			stalled = 0
			continue
		}
		lastStride = stride
		if stalled++; stalled < stallFor {
			continue
		}
		stalled = 0
		lastStride = -1

		// A short stride that failed to grow: the signature of a
		// creep region (slope-M pieces hold their stride constant;
		// growth phases strictly lengthen it), where the naive creep
		// would grind one full evaluation per refinement. Switch to
		// line mode:
		// one line evaluation per piece, the in-piece refinements
		// replayed at three integer ops each — or counted in closed
		// form when the slope really is M. Line mode is sticky across
		// consecutive creeping pieces (a creep region is many short
		// pieces in a row) and hands back to the fast path as soon as
		// a long stride shows the creep is over.
	lineMode:
		for iters < MaxFixpointIterations {
			omega, slope, bp := sc.omegaLine(x, cs)
			x0 := x
			for iters < MaxFixpointIterations {
				if x-x0 >= replayCeiling {
					break // refresh the line before the products get risky
				}
				iters++
				next := (omega+slope*(x-x0))/m + cs
				if next == x {
					return x, true
				}
				if next > limit || next < x {
					return task.Infinity, false
				}
				if next >= bp {
					// Crossed into the next piece.
					crossed := next - x
					x = next
					if crossed >= creepStride {
						break lineMode // long stride: creep over, fast path resumes
					}
					break
				}
				if slope == m {
					// Constant stride δ = next − x through the rest of
					// the piece: count the remaining refinements in
					// closed form instead of one at a time. This is
					// the MaxFixpointIterations pathology reduced to
					// O(1).
					delta := next - x
					steps := (bp - next + delta - 1) / delta // refinements from next to reach ≥ bp
					if firstPast := (limit-next)/delta + 1; firstPast <= steps {
						// One of them overshoots the limit first.
						return task.Infinity, false
					}
					if steps > task.Time(MaxFixpointIterations-iters) {
						// The naive creep exhausts the budget inside
						// the piece: the same conservative verdict.
						return task.Infinity, false
					}
					iters += int(steps)
					x = next + steps*delta
					break
				}
				// slope ≠ M: the gap f(y) − y strictly drifts
				// (shrinking toward the fixed point below M, growing
				// past the breakpoint above it), so this loop is
				// short.
				x = next
			}
		}
	}
	return task.Infinity, false
}

// shiftFix folds one committed chain-entry perturbation into the
// component caches of every task in sec[from:]: the non-carry-in sums
// move by an exact clamped-staircase difference (the NC band enters Ω
// as a plain sum; only period changes touch it), the top-k bounds by
// diffShift's Lipschitz correction, and the RT component not at all
// (it does not depend on the chain). A cache whose inputs have left
// the sane range is invalidated instead.
func (sc *Scratch) shiftFix(sec []task.SecurityTask, resp []task.Time, from int, e chainDelta) {
	sane := e.oldR <= e.oldP && e.newR <= e.newP
	for j := from; j < len(sec); j++ {
		if sc.rtAt[j] < 0 {
			continue
		}
		rj, cj := resp[j], sec[j].WCET
		if !sane || rj > sec[j].MaxPeriod {
			sc.rtAt[j] = -1
			continue
		}
		if e.newP != e.oldP {
			sc.ncAt[j] += clampInterference(workloadNC(rj, e.c, e.newP), rj, cj) - clampInterference(workloadNC(rj, e.c, e.oldP), rj, cj)
		}
		sc.ckAt[j] += e.diffShift(rj, cj)
	}
}

// omegaValue evaluates Eq. 6 at window length y exactly as
// omegaDominance does — same workload formulas, same clamp, same
// top-(M−1) dominance sum — without the sort, the allocations, or any
// piece bookkeeping: every staircase (RT band and, via primeHP, the
// migrating band) reads through its period window, so the
// steady-state cost per task is a compare and a subtract. It is the
// kernel's fast-path evaluator. The RT and non-carry-in components it
// computes are recorded in lastY/lastRT/lastNC for the exact per-task
// caches (see warmResp).
func (sc *Scratch) omegaValue(y, cs task.Time) task.Time {
	capv := y - cs + 1
	var rt task.Time
	start := 0
	rtWin := sc.rtWin
	for c, end := range sc.coreEnd {
		w, _, _ := sc.rtCore(c, rtWin[start:end], y)
		start = end
		if w > capv {
			w = capv
		}
		rt += w
	}
	// Non-carry-in band, served from the aggregate line when the
	// evaluation point is still inside its validity span.
	var ncSum task.Time
	if y > 0 {
		if sc.aggCS == cs && y >= sc.aggY && y < sc.aggBP {
			ncSum = sc.aggV + sc.aggS*(y-sc.aggY)
		} else {
			ncSum = sc.buildNCAgg(y, cs)
		}
	}
	ck := sc.carryIn(y, cs)
	sc.lastY, sc.lastRT, sc.lastNC, sc.lastCK = y, rt, ncSum, ck
	return rt + ncSum + ck
}

// buildNCAgg folds the whole migrating non-carry-in band into one
// exact line at window length y > 0: each interferer's Eq. 2 windowed
// read is a piece (slope 1 inside the first C ticks of its period
// window, flat after), the per-entry clamp min(·, y−cs+1) is a slope-1
// line through the same point, and the min of two lines is linear
// until they cross — so the clamped sum is linear on [y, aggBP) with
// aggBP the earliest piece end or clamp crossing. Every evaluation in
// that span then costs one multiply instead of an O(n) walk.
func (sc *Scratch) buildNCAgg(y, cs task.Time) task.Time {
	capv := y - cs + 1
	var V, S task.Time
	bp := task.Infinity
	hw := sc.hpWin
	for j := range hw {
		h := &hw[j]
		w := &h.nc
		if y >= w.hi || y < w.lo {
			w.refill(y)
		}
		var v, sl, b task.Time
		if r := y - w.lo; r < w.c {
			v, sl, b = w.qc+r, 1, w.lo+w.c
		} else {
			v, sl, b = w.qc+w.c, 0, w.hi
		}
		if v >= capv {
			// The clamp binds now. A slope-1 piece holds the gap, so
			// the clamp keeps binding through the piece; a flat piece
			// is overtaken when the clamp line reaches it.
			if sl == 0 {
				if c := v + cs; c < b {
					b = c
				}
			}
			v, sl = capv, 1
		}
		// v < capv: the entry binds and cannot re-cross inside the
		// piece (its slope never exceeds the clamp's).
		V += v
		S += sl
		if b < bp {
			bp = b
		}
	}
	sc.aggY, sc.aggV, sc.aggS, sc.aggBP, sc.aggCS = y, V, S, bp, cs
	return V
}

// carryIn evaluates the Eq. 5/6 dominance term — the sum of the
// at-most-(M−1) largest positive carry-in minus non-carry-in
// differences — visiting interferers in ascending order of x̄ and
// stopping at the first entry with x̄ ≥ y. Entries past the stop
// cannot contribute: with z = y − x̄ ≤ 0 the carry-in bound collapses
// to min(y, C−1), which the non-carry-in floor W^NC(y) ≥ min(y, C)
// matches or beats under the shared clamp, so their difference is
// never positive and the reference selection skips them identically.
// On paper-scale chains only tasks whose response runs close to their
// period have small x̄, so the scanned prefix is a small fraction of
// the band — the pruning that makes thousand-interferer refinements
// affordable. Each scanned entry's Eq. 2 term is read inline, so the
// scan stands alone: warmResp's exact recheck pays for the scanned
// prefix only, with the other Ω components served from its caches.
func (sc *Scratch) carryIn(y, cs task.Time) task.Time {
	k := sc.sysM - 1
	if k <= 0 || y <= 0 {
		return 0
	}
	capv := y - cs + 1
	hw := sc.hpWin
	if k == 1 {
		// M == 2: the carry-in set has at most one member, so the
		// selection is a running maximum with the same early stop.
		var best task.Time
		for _, j := range sc.hpOrder {
			h := &hw[j]
			if h.xbar >= y {
				break
			}
			ci := min(y, h.cm1)
			if z := y - h.xbar; z > 0 {
				w := &h.ci
				if z >= w.hi || z < w.lo {
					w.refill(z)
				}
				r := z - w.lo
				if r > w.c {
					r = w.c
				}
				ci += w.qc + r
			}
			if ci > capv {
				ci = capv
			}
			w := &h.nc
			if y >= w.hi || y < w.lo {
				w.refill(y)
			}
			r := y - w.lo
			if r > w.c {
				r = w.c
			}
			nc := w.qc + r
			if nc > capv {
				nc = capv
			}
			if d := ci - nc; d > best {
				best = d
			}
		}
		return best
	}
	// General M: a bounded min-heap of the k largest differences. The
	// heap keys on values alone — the top-k SUM is selection-order
	// independent, so ties resolve to the same total as the reference
	// sort. An entry displaces the root only when strictly larger, and
	// the scan stops when the next demand bound cannot beat the root.
	heap := sc.topk[:0]
	for _, j := range sc.hpOrder {
		h := &hw[j]
		if h.xbar >= y {
			break
		}
		ci := min(y, h.cm1)
		if z := y - h.xbar; z > 0 {
			w := &h.ci
			if z >= w.hi || z < w.lo {
				w.refill(z)
			}
			r := z - w.lo
			if r > w.c {
				r = w.c
			}
			ci += w.qc + r
		}
		if ci > capv {
			ci = capv
		}
		w := &h.nc
		if y >= w.hi || y < w.lo {
			w.refill(y)
		}
		r := y - w.lo
		if r > w.c {
			r = w.c
		}
		nc := w.qc + r
		if nc > capv {
			nc = capv
		}
		d := ci - nc
		if d <= 0 {
			continue
		}
		if len(heap) < k {
			heap = append(heap, d)
			siftUpTime(heap, len(heap)-1)
		} else if d > heap[0] {
			heap[0] = d
			siftDownTime(heap)
		}
	}
	sc.topk = heap
	var omega task.Time
	for _, d := range heap {
		omega += d
	}
	return omega
}

// siftUpTime restores the min-heap property after appending h[i].
func siftUpTime(h []task.Time, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDownTime restores the min-heap property after replacing h[0].
func siftDownTime(h []task.Time) {
	i, n := 0, len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && h[r] < h[l] {
			s = r
		}
		if h[i] <= h[s] {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// omegaLine evaluates Eq. 6 at window length y exactly as
// omegaDominance does, and additionally reports the slope of Ω and the
// next breakpoint bp > y such that Ω is linear with that slope on
// [y, bp). It allocates nothing in steady state. The interferer band
// must be primed (primeHP) — MigratingWCRT always has.
func (sc *Scratch) omegaLine(y, cs task.Time) (omega, slope, bp task.Time) {
	capv := y - cs + 1
	bp = task.Infinity

	// Eq. 3: the partitioned RT band, one clamped staircase sum per
	// core, read through the same period windows as the fast path.
	start := 0
	rtWin := sc.rtWin
	for c, end := range sc.coreEnd {
		wv, ws, wb := sc.rtCore(c, rtWin[start:end], y)
		start = end
		v, s, b := clampLine(y, cs, wv, ws, wb, capv)
		omega += v
		slope += s
		if b < bp {
			bp = b
		}
	}

	// Eq. 5: higher-priority migrating tasks. Every task contributes
	// its non-carry-in interference; the carry-in/non-carry-in
	// differences feed the top-(M−1) dominance selection (skipped
	// entirely when M == 1, where the carry-in set is empty).
	k := sc.sysM - 1
	diffs := sc.diffs[:0]
	hw := sc.hpWin
	for j := range hw {
		h := &hw[j]
		nv, ns, nb := h.nc.lineAt(y)
		nv, ns, nb = clampLine(y, cs, nv, ns, nb, capv)
		omega += nv
		slope += ns
		if nb < bp {
			bp = nb
		}
		if k > 0 {
			cv, cslope, cb := h.lineCI(y)
			cv, cslope, cb = clampLine(y, cs, cv, cslope, cb, capv)
			if cb < bp {
				bp = cb
			}
			diffs = append(diffs, diffTerm{v: cv - nv, s: cslope - ns})
		}
	}
	sc.diffs = diffs

	if len(diffs) > 0 {
		// Select the at-most-k largest positive differences. The
		// selected SET (not just its sum) shapes the piece — slope and
		// breakpoint depend on which members are in — so the selection
		// reproduces the reference's max-extraction order exactly:
		// value ties break toward the larger slope (the selection then
		// matches Ω's forward behaviour and stays stable for at least
		// one tick), remaining ties toward the lower index. That total
		// order lets a bounded min-heap of indices replace the k-pass
		// scan: the k best under the order are the k the passes pick.
		nsel := 0
		if len(diffs) <= k {
			for i := range diffs {
				if diffs[i].v > 0 {
					diffs[i].sel = true
					nsel++
					omega += diffs[i].v
					slope += diffs[i].s
				}
			}
		} else {
			ih := sc.heapIdx[:0]
			for i := range diffs {
				if diffs[i].v <= 0 {
					continue
				}
				if len(ih) < k {
					ih = append(ih, int32(i))
					siftUpDiff(diffs, ih, len(ih)-1)
				} else if diffWorse(diffs, ih[0], int32(i)) {
					ih[0] = int32(i)
					siftDownDiff(diffs, ih)
				}
			}
			sc.heapIdx = ih
			for _, i := range ih {
				diffs[i].sel = true
				omega += diffs[i].v
				slope += diffs[i].s
			}
			nsel = len(ih)
		}
		// The piece ends wherever the selected set could change: a
		// selected difference decaying to zero, a non-positive one
		// turning positive while slots are free, or an unselected one
		// overtaking a selected one with smaller slope. The overtake
		// cut uses a conservative proxy instead of the pairwise scan:
		// the line (vmin, smin) built from the minimum selected value
		// and minimum selected slope lies at or below every selected
		// line for offsets ≥ 0, so an unselected line crosses it no
		// later than it crosses any real selected line. A bp that is
		// merely early is harmless — the piece ends sooner and the next
		// build re-evaluates exactly — while a late one would be a bug;
		// the proxy errs only early.
		vmin, smin := task.Infinity, task.Infinity
		for i := range diffs {
			d := &diffs[i]
			if !d.sel {
				continue
			}
			if d.v < vmin {
				vmin = d.v
			}
			if d.s < smin {
				smin = d.s
			}
			if d.s < 0 {
				if b := satAdd(y, floorDiv(d.v-1, -d.s)+1); b < bp {
					bp = b
				}
			}
		}
		for i := range diffs {
			d := &diffs[i]
			if d.sel {
				continue
			}
			if d.v <= 0 && d.s <= 0 {
				continue
			}
			if d.v <= 0 && nsel < k {
				if b := satAdd(y, floorDiv(-d.v, d.s)+1); b < bp {
					bp = b
				}
				continue
			}
			if nsel > 0 && d.s > smin {
				if b := satAdd(y, floorDiv(vmin-d.v, d.s-smin)+1); b < bp {
					bp = b
				}
			}
		}
	}

	if bp <= y {
		bp = y + 1
	}
	return omega, slope, bp
}

// diffWorse reports whether diffs[a] ranks strictly below diffs[b]
// under omegaLine's selection order: value descending, slope
// descending, index ascending. The order is total (indices are
// distinct), so the k best under it are exactly the k entries the
// reference max-extraction passes pick.
func diffWorse(diffs []diffTerm, a, b int32) bool {
	da, db := &diffs[a], &diffs[b]
	if da.v != db.v {
		return da.v < db.v
	}
	if da.s != db.s {
		return da.s < db.s
	}
	return a > b
}

// siftUpDiff restores the min-heap-by-diffWorse property after
// appending h[i].
func siftUpDiff(diffs []diffTerm, h []int32, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !diffWorse(diffs, h[i], h[p]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDownDiff restores the min-heap-by-diffWorse property after
// replacing h[0].
func siftDownDiff(diffs []diffTerm, h []int32) {
	i, n := 0, len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && diffWorse(diffs, h[r], h[l]) {
			s = r
		}
		if !diffWorse(diffs, h[s], h[i]) {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// lineAt is workloadNC (Eq. 2) as a linear piece read through the
// cached window: value and slope at window length y, plus the
// absolute position of the next kink.
func (w *rtWindow) lineAt(y task.Time) (v, s, b task.Time) {
	if y <= 0 {
		// Below one tick the workload is pinned at zero; the first
		// job's ramp starts at y = 0.
		if w.c > 0 {
			return 0, 1, satAdd(y, w.c)
		}
		return 0, 0, task.Infinity
	}
	if y >= w.hi || y < w.lo {
		w.refill(y)
	}
	r := y - w.lo
	if r < w.c {
		return w.qc + r, 1, satAdd(y, w.c-r)
	}
	return w.qc + w.c, 0, satAdd(y, w.t-r)
}

// lineCI is workloadCI (Eq. 4) as a linear piece, read through the
// cached shifted window.
func (h *hpWindow) lineCI(y task.Time) (v, s, b task.Time) {
	var hv, hs, hb task.Time
	if y <= h.xbar {
		// The shifted staircase has not started: flat zero through
		// xbar, first ramp tick at xbar+1.
		hv, hs, hb = 0, 0, satAdd(h.xbar, 1)
	} else {
		hv, hs, hb = h.ci.lineAt(y - h.xbar)
		hb = satAdd(h.xbar, hb)
	}
	tv, ts, tb := h.cm1, task.Time(0), task.Infinity
	if y < h.cm1 {
		tv, ts, tb = y, 1, h.cm1+1
	}
	return hv + tv, hs + ts, min(hb, tb)
}

// clampLine applies the Eq. 3/5 interference clamp min(w, y−Cs+1) to a
// linear workload piece (wv, ws) valid until wb, tightening the kink
// to the clamp crossover when the two lines meet inside the piece
// (the clamp line has slope 1, so a crossover from below needs
// ws ≥ 2). While the clamp binds the term ignores the workload's
// internal kinks entirely, so the piece extends past wb to wherever
// the clamp could first release: the workload never shrinks, hence
// w(y) ≥ wv, and the cap line y−cs+1 cannot reach wv before
// y = wv + cs. That one observation turns the clamp-bound creep — the
// regime the iteration budget exists for — from a kink-by-kink walk
// into a single piece per clamp release.
func clampLine(y, cs, wv, ws, wb, capv task.Time) (task.Time, task.Time, task.Time) {
	if wv <= capv {
		b := wb
		if ws >= 2 {
			if cb := satAdd(y, floorDiv(capv-wv, ws-1)+1); cb < b {
				b = cb
			}
		}
		return wv, ws, b
	}
	b := satAdd(wv, cs)
	if ws >= 1 && wb > b {
		// The workload line outruns the cap line for as long as it
		// stays structurally valid, so the clamp holds to wb too.
		b = wb
	}
	return capv, 1, b
}

// responseTimes is ResponseTimes on the scratch: identical top-down
// computation, interferer list and result storage reused.
func (sc *Scratch) responseTimes(sec []task.SecurityTask, periods []task.Time, mode CarryInMode, resp []task.Time) []task.Time {
	resp = resp[:0]
	hp := sc.hp[:0]
	for i, s := range sec {
		r, ok := sc.MigratingWCRT(s.WCET, hp, s.MaxPeriod, mode)
		sc.rtAt[i] = -1
		if ok && mode != Exhaustive && sc.lastY == r {
			sc.rtAt[i], sc.ncAt[i], sc.ckAt[i] = sc.lastRT, sc.lastNC, sc.lastCK
		}
		if !ok {
			// A diverged task still interferes with lower-priority
			// ones; bound its carry-in pessimistically with R = T so
			// the analysis of the rest remains sound.
			resp = append(resp, task.Infinity)
			hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: periods[i]})
			continue
		}
		resp = append(resp, r)
		hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: r})
	}
	sc.hp = hp[:0]
	return resp
}

// floorDiv returns ⌊a/b⌋ for b > 0 and any a (Go's / truncates toward
// zero, which differs for negative a).
func floorDiv(a, b task.Time) task.Time {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// satAdd adds a delta to a position, saturating at task.Infinity
// instead of wrapping (periods near the 2^62 sentinel would otherwise
// overflow the breakpoint arithmetic).
func satAdd(a, b task.Time) task.Time {
	if s := a + b; s >= a {
		return s
	}
	return task.Infinity
}
