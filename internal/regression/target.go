package regression

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

// ErrUnsupported reports that the target build does not know a flag
// this case needs (e.g. a merge-base hydrad predating -data-dir). The
// runner turns it into a skipped verdict instead of a failure, so a
// case gating a brand-new feature self-heals once the feature is in
// the base.
var ErrUnsupported = errors.New("target does not support this case's configuration")

// Target boots one fresh service instance for one load sample. Every
// sample gets its own instance so cache state, session stores and GC
// history never leak between samples or sides.
type Target interface {
	Start(d DaemonOpts) (url string, stop func() error, err error)
}

// BinaryTarget runs a hydrad binary as a subprocess on an ephemeral
// loopback port — the production configuration, and the only way to
// run a build from a different commit (the merge-base worktree).
type BinaryTarget struct {
	// Bin is the hydrad executable to launch.
	Bin string
}

// startTimeout bounds how long a daemon may take to report its
// listening address.
const startTimeout = 10 * time.Second

func (t BinaryTarget) Start(d DaemonOpts) (string, func() error, error) {
	if d.Fleet >= 2 {
		return t.startFleet(d)
	}
	args, cleanupData, err := daemonArgs(d, "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return t.launch(args, cleanupData)
}

// daemonArgs builds the hydrad flag list for one node of a sample,
// creating a fresh temporary data dir when the case is durable.
func daemonArgs(d DaemonOpts, addr string) (args []string, cleanup func(), err error) {
	args = []string{
		"-addr", addr,
		"-cache", strconv.Itoa(d.Cache),
		"-sessions", strconv.Itoa(d.Sessions),
	}
	if d.MaxInflight > 0 {
		// Pass the whole gate triple so the subprocess matches what
		// HandlerTarget boots from the same DaemonOpts exactly; a base
		// build predating the flags turns into ErrUnsupported below.
		args = append(args,
			"-max-inflight", strconv.Itoa(d.MaxInflight),
			"-max-queue", strconv.Itoa(d.MaxQueue),
			"-queue-wait", d.QueueWait.String(),
		)
	}
	cleanup = func() {}
	if d.DataDir {
		dataDir, err := os.MkdirTemp("", "hydraperf-data-*")
		if err != nil {
			return nil, nil, err
		}
		args = append(args, "-data-dir", dataDir)
		cleanup = func() { _ = os.RemoveAll(dataDir) }
	}
	return args, cleanup, nil
}

// startFleet boots d.Fleet hydrad subprocesses joined by -peers/-self
// and returns their URLs comma-joined (the runner splits the list and
// spreads load round-robin). Ports are reserved up front: every
// member's -peers list must name every member before any of them
// boots, so the usual -addr :0 dance cannot work here.
func (t BinaryTarget) startFleet(d DaemonOpts) (string, func() error, error) {
	addrs, err := reservePorts(d.Fleet)
	if err != nil {
		return "", nil, err
	}
	peers := make([]string, len(addrs))
	for i, a := range addrs {
		peers[i] = "http://" + a
	}
	peersCSV := strings.Join(peers, ",")
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for i, addr := range addrs {
		args, cleanupData, err := daemonArgs(d, addr)
		if err != nil {
			stopAll()
			return "", nil, err
		}
		args = append(args, "-peers", peersCSV, "-self", peers[i])
		if _, stop, err := t.launch(args, cleanupData); err != nil {
			stopAll()
			// ErrUnsupported propagates untouched: a base build
			// predating -peers skips the case, it does not fail it.
			return "", nil, err
		} else {
			stops = append(stops, stop)
		}
	}
	return peersCSV, stopAll, nil
}

// reservePorts binds n ephemeral loopback listeners, records their
// addresses, and releases them all at once (releasing one at a time
// could hand a later Listen the same port back). The window between
// release and the daemon re-binding is a benign race on loopback.
func reservePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// launch starts one hydrad subprocess and waits for its listening
// address line.
func (t BinaryTarget) launch(args []string, cleanupData func()) (string, func() error, error) {
	cmd := exec.Command(t.Bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		cleanupData()
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		cleanupData()
		return "", nil, fmt.Errorf("starting %s: %w", t.Bin, err)
	}
	// hydrad reports "hydrad: listening on HOST:PORT" once its
	// listener is bound; -addr :0 makes the port ephemeral, so this
	// line is the only way to learn it.
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(addr):
				default:
				}
			}
			// An older build rejecting a flag it predates (merge-base
			// hydrad vs a case needing -data-dir): not a regression,
			// just a configuration the base cannot run.
			if strings.Contains(line, "flag provided but not defined") {
				select {
				case errc <- fmt.Errorf("%w: %s", ErrUnsupported, strings.TrimSpace(line)):
				default:
				}
			}
		}
		select {
		case errc <- sc.Err():
		default:
		}
	}()
	stop := func() error {
		defer cleanupData()
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			return nil
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			return fmt.Errorf("%s ignored SIGTERM; killed", t.Bin)
		}
	}
	select {
	case addr := <-addrc:
		return "http://" + addr, stop, nil
	case err := <-errc:
		stop()
		if errors.Is(err, ErrUnsupported) {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%s exited before listening (stderr closed: %v)", t.Bin, err)
	case <-time.After(startTimeout):
		stop()
		return "", nil, fmt.Errorf("%s did not report a listening address within %s", t.Bin, startTimeout)
	}
}

// HandlerTarget mounts the real hydrad handler (internal/hydradhttp)
// on an httptest server in-process. It exists for the harness's own
// tests and self-test modes: Wrap lets a test inject a synthetic
// regression (e.g. a sleep before the analyze handler) into ONE side
// of a paired run.
type HandlerTarget struct {
	// Wrap, when non-nil, decorates the handler (middleware).
	Wrap func(http.Handler) http.Handler
}

func (t HandlerTarget) Start(d DaemonOpts) (string, func() error, error) {
	if d.Fleet >= 2 {
		return t.startFleet(d)
	}
	h, cleanup, err := t.node(d, nil)
	if err != nil {
		return "", nil, err
	}
	srv := httptest.NewServer(h)
	stop := func() error {
		srv.Close()
		cleanup()
		return nil
	}
	return srv.URL, stop, nil
}

// node builds one in-process hydrad handler — a fleet member when fl
// is non-nil, standalone otherwise. The returned cleanup releases the
// node's store and data dir.
func (t HandlerTarget) node(d DaemonOpts, fl *fleet.Fleet) (http.Handler, func(), error) {
	a, err := hydrac.New(hydrac.WithCache(d.Cache))
	if err != nil {
		return nil, nil, err
	}
	cfg := hydradhttp.Config{
		Analyzer:    a,
		Summary:     map[string]any{"cache": d.Cache},
		MaxSessions: d.Sessions,
		CacheSize:   d.Cache,
		Fleet:       fl,
	}
	if d.MaxInflight > 0 {
		cfg.MaxInflight = d.MaxInflight
		cfg.MaxQueue = d.MaxQueue
		cfg.QueueWait = d.QueueWait
	}
	cleanup := func() {}
	if d.DataDir {
		dataDir, err := os.MkdirTemp("", "hydraperf-data-*")
		if err != nil {
			return nil, nil, err
		}
		st, err := store.Open(dataDir, a, store.Options{MaxLive: d.Sessions})
		if err != nil {
			_ = os.RemoveAll(dataDir)
			return nil, nil, err
		}
		cfg.Store = st
		cleanup = func() {
			_ = st.Close()
			_ = os.RemoveAll(dataDir)
		}
	}
	var h http.Handler = hydradhttp.NewHandler(cfg)
	if t.Wrap != nil {
		h = t.Wrap(h)
	}
	return h, cleanup, nil
}

// startFleet boots d.Fleet in-process members joined into one
// consistent-hash fleet and returns their URLs comma-joined. The
// servers start before the handlers exist (each member's peer list
// needs every member's URL, which httptest only assigns at start), so
// each server fronts an atomic handler slot that answers 503 until
// its node is installed — the same indirection the fleet HTTP tests
// use. Probing is disabled: the members never go down mid-sample, and
// a prober would add unpaired background traffic.
func (t HandlerTarget) startFleet(d DaemonOpts) (string, func() error, error) {
	n := d.Fleet
	holders := make([]atomic.Value, n)
	srvs := make([]*httptest.Server, n)
	for i := range srvs {
		i := i
		srvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h, ok := holders[i].Load().(http.Handler); ok {
				h.ServeHTTP(w, r)
				return
			}
			http.Error(w, "booting", http.StatusServiceUnavailable)
		}))
	}
	peers := make([]string, n)
	for i, s := range srvs {
		peers[i] = s.URL
	}
	var cleanups []func()
	stop := func() error {
		for _, s := range srvs {
			s.Close()
		}
		for _, c := range cleanups {
			c()
		}
		return nil
	}
	for i := range srvs {
		fl, err := fleet.New(fleet.Options{Self: peers[i], Peers: peers, ProbeEvery: -1})
		if err != nil {
			stop()
			return "", nil, err
		}
		h, cleanup, err := t.node(d, fl)
		if err != nil {
			stop()
			return "", nil, err
		}
		cleanups = append(cleanups, cleanup)
		holders[i].Store(h)
	}
	return strings.Join(peers, ","), stop, nil
}

// SleepInjector returns a Wrap middleware that delays every request
// by d — the canonical synthetic regression for harness self-tests
// (ISSUE 6's "sleep in the analyze handler").
func SleepInjector(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(d)
			next.ServeHTTP(w, r)
		})
	}
}
