// Command sweep reproduces the paper's synthetic design-space
// exploration (§5.2): Fig. 6 (achievable period distance), Fig. 7a
// (acceptance ratios) and Fig. 7b (period-vector differences), for 2-
// and 4-core platforms, plus the Table 3 generator configuration.
//
// Usage:
//
//	sweep [-fig 6|7a|7b|all] [-cores 2|4|0] [-sets N] [-seed S]
//	      [-parallel N] [-progress] [-json] [-table3]
//
// -cores 0 runs both core counts, as the paper does. -parallel shards
// each sweep over N workers (0 = all CPUs); for a fixed seed the
// output is identical at any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hydrac/internal/experiments"
	"hydrac/internal/gen"
	"hydrac/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// renderable is any figure result; figGen regenerates one from a
// sweep configuration.
type (
	renderable interface{ Render() string }
	figGen     func(experiments.SweepConfig) (renderable, error)
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "which figure to regenerate: 6 | 7a | 7b | all")
	cores := fs.Int("cores", 0, "core count: 2, 4, or 0 for both")
	sets := fs.Int("sets", 250, "task sets per utilisation group (paper: 250)")
	seed := fs.Int64("seed", 2020, "random seed")
	parallel := fs.Int("parallel", 0, "sweep workers: 0 = all CPUs, 1 = serial; results are identical at any value")
	progress := fs.Bool("progress", false, "report sweep progress on stderr")
	table3 := fs.Bool("table3", false, "print the Table 3 generator configuration and exit")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *table3 {
		printTable3(stdout)
		return 0
	}

	figures := []struct {
		name string
		gen  figGen
	}{
		{"6", func(c experiments.SweepConfig) (renderable, error) { return experiments.Fig6(c) }},
		{"7a", func(c experiments.SweepConfig) (renderable, error) { return experiments.Fig7a(c) }},
		{"7b", func(c experiments.SweepConfig) (renderable, error) { return experiments.Fig7b(c) }},
	}
	if *fig != "all" {
		known := false
		for _, f := range figures {
			known = known || f.name == *fig
		}
		if !known {
			fmt.Fprintf(stderr, "sweep: -fig %q is not one of 6 | 7a | 7b | all\n", *fig)
			return 2
		}
	}

	var coreCounts []int
	switch {
	case *cores == 0:
		coreCounts = []int{2, 4}
	case *cores >= 2 && *cores <= 16:
		// The paper evaluates 2 and 4; larger counts are supported as
		// a scalability extension.
		coreCounts = []int{*cores}
	default:
		fmt.Fprintln(stderr, "sweep: -cores must be 0 (both paper configs) or 2..16")
		return 2
	}

	for _, m := range coreCounts {
		cfg := experiments.DefaultSweepConfig(m)
		cfg.SetsPerGroup = *sets
		cfg.Seed = *seed
		cfg.Parallel = *parallel
		for _, f := range figures {
			if *fig != f.name && *fig != "all" {
				continue
			}
			if *progress {
				cfg.Progress = sweep.ProgressPrinter(stderr, fmt.Sprintf("sweep: fig %s (M=%d)", f.name, m))
			}
			res, err := f.gen(cfg)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			if *jsonOut {
				if err := experiments.WriteJSON(stdout, res); err != nil {
					fmt.Fprintln(stderr, "sweep:", err)
					return 1
				}
				continue
			}
			fmt.Fprint(stdout, res.Render())
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

func printTable3(w io.Writer) {
	for _, m := range []int{2, 4} {
		c := gen.TableThree(m)
		fmt.Fprintf(w, "Table 3 (M=%d): N_R∈[%d,%d] N_S∈[%d,%d] T_r∈[%d,%d]ms Tmax∈[%d,%d]ms security share %.0f%% groups %d sets/group %d partition %v\n",
			m, c.RTTasksMin, c.RTTasksMax, c.SecTasksMin, c.SecTasksMax,
			c.RTPeriodMin, c.RTPeriodMax, c.SecMaxPeriodMin, c.SecMaxPeriodMax,
			100*c.SecurityShare, c.Groups, c.SetsPerGroup, c.Partition)
	}
}
