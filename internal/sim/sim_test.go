package sim

import (
	"strings"
	"testing"

	"hydrac/internal/task"
)

// oneCoreOneTask: a single RT task must run back to back with no
// misses and exact response times.
func TestRunSingleRTTask(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 3, Period: 10, Deadline: 10, Core: 0}},
	}
	res, err := Run(ts, Config{Horizon: 100, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats["a"]
	if s.Completed != 10 {
		t.Errorf("completed %d jobs, want 10", s.Completed)
	}
	if s.MaxResponse != 3 {
		t.Errorf("max response %d, want 3", s.MaxResponse)
	}
	if res.RTDeadlineMisses != 0 {
		t.Errorf("deadline misses: %d", res.RTDeadlineMisses)
	}
	if res.CoreBusy[0] != 30 {
		t.Errorf("busy %d, want 30", res.CoreBusy[0])
	}
}

// Two RT tasks on one core: the low-priority task is preempted and its
// response time matches hand analysis. C=(2,3), T=(5,10):
// R_b = 3 + ceil(x/5)*2 -> x0=3:5 ; x=5: 3+2=5. R_b = 5.
func TestRunPreemption(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "a", WCET: 2, Period: 5, Deadline: 5, Core: 0, Priority: 0},
			{Name: "b", WCET: 3, Period: 10, Deadline: 10, Core: 0, Priority: 1},
		},
	}
	res, err := Run(ts, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTDeadlineMisses != 0 {
		t.Fatalf("unexpected misses: %d", res.RTDeadlineMisses)
	}
	if got := res.Stats["b"].MaxResponse; got != 5 {
		t.Errorf("R_b = %d, want 5", got)
	}
	if got := res.Stats["a"].MaxResponse; got != 2 {
		t.Errorf("R_a = %d, want 2", got)
	}
}

// A migrating security task moves to the free core when its own core
// is occupied: with one RT hog pinned to core 0, the security task
// finishes with response = WCET on core 1.
func TestSecurityMigratesToIdleCore(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "hog", WCET: 80, Period: 100, Deadline: 100, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 50, Period: 100, MaxPeriod: 100, Priority: 0, Core: -1},
		},
	}
	res, err := Run(ts, Config{Policy: SemiPartitioned, Horizon: 1000, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["mon"].MaxResponse; got != 50 {
		t.Errorf("mon max response = %d, want 50 (runs on the idle core)", got)
	}
	if res.SecurityDeadlineMisses != 0 {
		t.Errorf("security misses: %d", res.SecurityDeadlineMisses)
	}
}

// Under the fully-partitioned policy the same security task pinned to
// the hog's core must wait for the hog's completion.
func TestPartitionedSecurityWaits(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "hog", WCET: 80, Period: 100, Deadline: 100, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 15, Period: 100, MaxPeriod: 100, Priority: 0, Core: 0},
		},
	}
	res, err := Run(ts, Config{Policy: FullyPartitioned, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["mon"].MaxResponse; got != 95 {
		t.Errorf("mon max response = %d, want 95 (waits behind the 80-tick hog)", got)
	}
}

// Semi-partitioned continuity: when the security task is preempted on
// its core it continues immediately on the other, so its execution
// intervals cover WCET ticks with no internal gap.
func TestContinuousExecutionAcrossCores(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			// Alternating load: core 0 busy [0,30), core 1 busy [30,60).
			{Name: "p0", WCET: 30, Period: 60, Deadline: 60, Core: 0, Priority: 0},
			{Name: "p1", WCET: 30, Period: 60, Deadline: 60, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 40, Period: 60, MaxPeriod: 60, Priority: 0, Core: -1},
		},
	}
	off := map[string]task.Time{"p1": 30}
	res, err := Run(ts, Config{Policy: SemiPartitioned, Horizon: 60, Offsets: off, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	jobs := res.JobsOf("mon")
	if len(jobs) == 0 {
		t.Fatal("no mon jobs traced")
	}
	j := jobs[0]
	var execd task.Time
	for _, iv := range j.Intervals {
		execd += iv.Duration()
	}
	if execd != 40 {
		t.Fatalf("mon executed %d ticks, want 40; intervals %+v", execd, j.Intervals)
	}
	if j.Finish != 40 {
		t.Fatalf("mon finished at %d, want 40 (continuous execution on whichever core is free)", j.Finish)
	}
	if res.Migrations == 0 {
		t.Error("expected at least one migration")
	}
}

// Global policy: two RT tasks with one shared core preference migrate
// freely; with 2 cores and 2 tasks both run immediately.
func TestGlobalPolicy(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 50, Period: 100, Deadline: 100, Core: 0, Priority: 0},
			{Name: "b", WCET: 50, Period: 100, Deadline: 100, Core: 0, Priority: 1},
		},
	}
	res, err := Run(ts, Config{Policy: Global, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["b"].MaxResponse; got != 50 {
		t.Errorf("b response = %d, want 50 (runs in parallel under global)", got)
	}
}

func TestRunValidation(t *testing.T) {
	ts := &task.Set{
		Cores:    1,
		RT:       []task.RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
		Security: []task.SecurityTask{{Name: "s", WCET: 1, MaxPeriod: 50, Priority: 0, Core: -1}},
	}
	if _, err := Run(ts, Config{Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Run(ts, Config{Horizon: 100}); err == nil {
		t.Error("security task without period accepted")
	}
	ts.Security[0].Period = 50
	if _, err := Run(ts, Config{Horizon: 100, Policy: FullyPartitioned}); err == nil {
		t.Error("partitioned policy without security core binding accepted")
	}
	ts2 := ts.Clone()
	ts2.RT[0].Core = -1
	if _, err := Run(ts2, Config{Horizon: 100}); err == nil {
		t.Error("unpinned RT task accepted under semi-partitioned policy")
	}
}

func TestOffsetsDelayFirstRelease(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
	}
	res, err := Run(ts, Config{Horizon: 100, Offsets: map[string]task.Time{"a": 55}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["a"].Completed; got != 5 {
		t.Errorf("completed %d, want 5 (releases at 55..95)", got)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "a", WCET: 6, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 6, Period: 12, Deadline: 12, Core: 0, Priority: 1},
		},
	}
	res, err := Run(ts, Config{Horizon: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTDeadlineMisses == 0 {
		t.Error("overloaded core reported no deadline misses")
	}
	res2, err := Run(ts, Config{Horizon: 200, StopOnDeadlineMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RTDeadlineMisses == 0 {
		t.Error("StopOnDeadlineMiss lost the miss")
	}
}

func TestGanttRendering(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "nav", WCET: 3, Period: 10, Deadline: 10, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 4, Period: 20, MaxPeriod: 20, Priority: 0, Core: -1},
		},
	}
	res, err := Run(ts, Config{Horizon: 40, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	g := Gantt(res, 0, 40, 1)
	if !strings.Contains(g, "core 0") || !strings.Contains(g, "core 1") {
		t.Fatalf("missing core rows:\n%s", g)
	}
	if !strings.Contains(g, "N=nav") || !strings.Contains(g, "M=mon") {
		t.Fatalf("missing legend:\n%s", g)
	}
	if !strings.Contains(g, "N") {
		t.Fatalf("nav never drawn:\n%s", g)
	}
}

func TestResultHelpers(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "a", WCET: 5, Period: 10, Deadline: 10, Core: 0}},
	}
	res, err := Run(ts, Config{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if idle := res.TotalIdle(); idle != 150 {
		t.Errorf("TotalIdle = %d, want 150", idle)
	}
	if u := res.Utilization(); u < 0.24 || u > 0.26 {
		t.Errorf("Utilization = %v, want 0.25", u)
	}
	if s := res.Summary(); !strings.Contains(s, "context switches") {
		t.Errorf("Summary lacks counters: %s", s)
	}
}
