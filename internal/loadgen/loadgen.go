// Package loadgen is the closed-loop load engine behind cmd/hydrabench
// and the regression harness (internal/regression, cmd/hydraperf).
// It drives an HTTP target at one or more concurrency levels and
// reports throughput (requests per second) and latency quantiles
// (p50/p95/p99) per level.
//
// Closed loop means every worker issues a request, waits for the full
// response, then issues the next: the offered load adapts to the
// service, so the measured RPS is the service's sustainable throughput
// at that concurrency, not a drop rate under a fixed arrival schedule.
//
// Traffic shape is pluggable through Source: a fixed body re-posted
// forever (dup-heavy, exercising hydrad's digest cache), a rotating
// pool of distinct bodies (cold traffic, defeating the caches), a
// per-worker admission session issuing admit/remove deltas, or a
// weighted mix of any of these.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"hydrac/internal/hydraclient"
)

// Request is one unit of closed-loop work: Method on target+Path with
// Body (nil for GET).
type Request struct {
	Method string
	Path   string
	Body   []byte
}

// Stream yields one worker's request sequence. Next(i) returns the
// i-th request; streams are used by a single worker goroutine and need
// not be safe for concurrent use.
type Stream interface {
	Next(i int) Request
}

// Source builds per-worker request streams. NewStream runs before the
// measurement window opens, so setup traffic (e.g. opening an
// admission session) never pollutes the recorded latencies.
type Source interface {
	NewStream(client *http.Client, target string, worker int) (Stream, error)
}

// LevelResult is one concurrency level's aggregate outcome. The JSON
// shape is part of cmd/hydrabench's output contract.
//
// Failed requests are split three ways because they mean three
// different things when reading an overload run: Shed (429) is the
// server protecting itself — expected and healthy under deliberate
// overload; ServerErrors (any other non-200) is the server failing;
// TransportErrors is the request never completing at the HTTP layer.
// Errors = ServerErrors + TransportErrors: shed traffic is NOT an
// error, so gates that fail a run on errors stay meaningful when a
// case drives the daemon past its admission limits on purpose.
type LevelResult struct {
	Concurrency     int     `json:"concurrency"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	Shed            int     `json:"shed"`
	ServerErrors    int     `json:"server_errors"`
	TransportErrors int     `json:"transport_errors"`
	Redirects       int     `json:"redirects"`
	DurationS       float64 `json:"duration_s"`
	RPS             float64 `json:"rps"`
	MeanMS          float64 `json:"mean_ms"`
	P50MS           float64 `json:"p50_ms"`
	P95MS           float64 `json:"p95_ms"`
	P99MS           float64 `json:"p99_ms"`
}

// TargetLevelResult is one target's share of a fleet level: the same
// aggregate shape, tagged with the target that served it. Redirect
// hops are attributed to the worker's HOME target (the node it aimed
// at), since that is the node whose routing pushed the request away.
type TargetLevelResult struct {
	Target string `json:"target"`
	LevelResult
}

// FleetLevelResult is one concurrency level swept across several
// targets at once: the fleet-wide aggregate plus a per-target split.
type FleetLevelResult struct {
	Aggregate LevelResult         `json:"aggregate"`
	Targets   []TargetLevelResult `json:"targets"`
}

// Config shapes one Run.
type Config struct {
	// Levels is the concurrency sweep; at least one level is required.
	Levels []int
	// Duration is the measurement window per level.
	Duration time.Duration
	// Warmup is the number of untimed requests each worker issues
	// before its level's window opens; negative means none, zero means
	// the default of one (validating the target/source pairing and
	// warming server caches out of band).
	Warmup int
	// Client overrides the HTTP client; nil builds one sized to the
	// largest level so the sweep never starves on idle connections.
	Client *http.Client
	// Retries, when positive, routes every request through a retrying
	// client (internal/hydraclient): capped exponential backoff with
	// jitter, Retry-After honoured, up to Retries extra attempts per
	// request. The recorded latency then covers the whole retry loop —
	// which is the latency a well-behaved client actually experiences
	// against a shedding server. 0 keeps the historical fire-once
	// behaviour.
	Retries int
}

// NewClient returns an HTTP client whose idle-connection pool fits
// maxConc concurrent workers against one host.
func NewClient(maxConc int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc,
		MaxIdleConnsPerHost: maxConc,
	}}
}

// Run sweeps the configured concurrency levels against target.
// A Stream setup failure (Source.NewStream) aborts the run; request
// failures during the window are counted per level instead.
func Run(target string, src Source, cfg Config) ([]LevelResult, error) {
	fleet, err := RunFleet([]string{target}, src, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]LevelResult, len(fleet))
	for i, f := range fleet {
		out[i] = f.Aggregate
	}
	return out, nil
}

// RunFleet sweeps the configured concurrency levels across several
// targets at once: worker w aims at targets[w%len(targets)], so each
// level spreads its workers round-robin over the fleet and the
// aggregate is the fleet's combined sustainable throughput. Every
// request rides the redirect-following client, so a worker whose
// session was handed off (or that posts to a non-owner) transparently
// follows the 307 and the hop is counted, not failed.
func RunFleet(targets []string, src Source, cfg Config) ([]FleetLevelResult, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("loadgen: no concurrency levels")
	}
	client := cfg.Client
	if client == nil {
		maxConc := 0
		for _, c := range cfg.Levels {
			if c > maxConc {
				maxConc = c
			}
		}
		client = NewClient(maxConc)
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = 1
	}
	retries := cfg.Retries
	if retries <= 0 {
		retries = -1 // fire each request once, but still follow redirects
	}
	hc := hydraclient.New(hydraclient.Config{Client: client, MaxRetries: retries})
	var out []FleetLevelResult
	for _, c := range cfg.Levels {
		res, err := runLevel(client, hc, targets, src, c, cfg.Duration, warmup)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// runLevel drives one closed-loop concurrency level for d and
// aggregates its latencies, fleet-wide and per target. Streams are
// created and warmed before the window opens.
func runLevel(client *http.Client, hc *hydraclient.Client, targets []string, src Source, conc int, d time.Duration, warmup int) (FleetLevelResult, error) {
	streams := make([]Stream, conc)
	for w := 0; w < conc; w++ {
		s, err := src.NewStream(client, targets[w%len(targets)], w)
		if err != nil {
			return FleetLevelResult{}, fmt.Errorf("loadgen: stream for worker %d: %w", w, err)
		}
		streams[w] = s
	}
	// issue fires one request through the retrying, redirect-following
	// client and reports the final status (0 on transport error) plus
	// redirect hops.
	issue := func(target string, req Request) (int, int, error) {
		method := req.Method
		if method == "" {
			method = http.MethodPost
		}
		contentType := ""
		if req.Body != nil {
			contentType = "application/json"
		}
		return hc.DoCount(context.Background(), method, target+req.Path, contentType, req.Body)
	}
	type workerOut struct {
		lat                                []time.Duration
		shed, server, transport, redirects int
	}
	outs := make([]workerOut, conc)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, target := streams[w], targets[w%len(targets)]
			i := 0
			for ; i < warmup; i++ {
				issue(target, s.Next(i))
			}
			for time.Now().Before(deadline) {
				req := s.Next(i)
				i++
				t0 := time.Now()
				status, hops, err := issue(target, req)
				outs[w].redirects += hops
				switch {
				case err != nil:
					outs[w].transport++
				case status == http.StatusOK:
					outs[w].lat = append(outs[w].lat, time.Since(t0))
				case status == http.StatusTooManyRequests:
					outs[w].shed++
				default:
					outs[w].server++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Fold worker outputs per home target, then fleet-wide.
	perTarget := make([]workerOut, len(targets))
	for w, o := range outs {
		t := &perTarget[w%len(targets)]
		t.lat = append(t.lat, o.lat...)
		t.shed += o.shed
		t.server += o.server
		t.transport += o.transport
		t.redirects += o.redirects
	}
	res := FleetLevelResult{}
	var all []time.Duration
	var agg workerOut
	for ti, t := range perTarget {
		res.Targets = append(res.Targets, TargetLevelResult{
			Target:      targets[ti],
			LevelResult: levelStats(conc/len(targets), elapsed, t.lat, t.shed, t.server, t.transport, t.redirects),
		})
		all = append(all, t.lat...)
		agg.shed += t.shed
		agg.server += t.server
		agg.transport += t.transport
		agg.redirects += t.redirects
	}
	res.Aggregate = levelStats(conc, elapsed, all, agg.shed, agg.server, agg.transport, agg.redirects)
	return res, nil
}

// levelStats folds one latency population into a LevelResult.
func levelStats(conc int, elapsed time.Duration, lat []time.Duration, shed, server, transport, redirects int) LevelResult {
	res := LevelResult{
		Concurrency:     conc,
		Requests:        len(lat),
		Errors:          server + transport,
		Shed:            shed,
		ServerErrors:    server,
		TransportErrors: transport,
		Redirects:       redirects,
		DurationS:       elapsed.Seconds(),
	}
	if len(lat) == 0 {
		return res
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	res.RPS = float64(len(sorted)) / elapsed.Seconds()
	res.MeanMS = sum.Seconds() * 1000 / float64(len(sorted))
	res.P50MS = Quantile(sorted, 0.50).Seconds() * 1000
	res.P95MS = Quantile(sorted, 0.95).Seconds() * 1000
	res.P99MS = Quantile(sorted, 0.99).Seconds() * 1000
	return res
}

// Do issues one request against target and drains the response; any
// transport failure or non-200 status is an error.
func Do(client *http.Client, target string, req Request) error {
	status, err := DoStatus(client, target, req)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d from %s%s", status, target, req.Path)
	}
	return nil
}

// DoStatus issues one request against target, drains the response,
// and returns its status code — letting callers distinguish a 429
// shed from a 5xx failure. A non-nil error means the request never
// produced a status (transport failure).
func DoStatus(client *http.Client, target string, req Request) (int, error) {
	method := req.Method
	if method == "" {
		method = http.MethodPost
	}
	var body io.Reader
	if req.Body != nil {
		body = bytes.NewReader(req.Body)
	}
	hr, err := http.NewRequest(method, target+req.Path, body)
	if err != nil {
		return 0, err
	}
	if req.Body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(hr)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// Quantile reads the q-quantile of sorted latencies by the
// nearest-rank rule.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
