#!/usr/bin/env bash
# Thin wrapper over cmd/hydraperf, which replaced the old
# BENCH_PR*.json snapshot flow: instead of hand-curated before/after
# benchmark means, hydraperf measures the declarative case tree under
# test/regression/ PAIRED against the merge-base build and judges each
# case's optimization goal with a significance test.
#
# Usage:
#   scripts/bench.sh                     # paired run vs merge-base, verdict table
#   scripts/bench.sh check               # same, but exit nonzero on regression
#   BASE=<rev> scripts/bench.sh          # compare against an explicit base
#   SAMPLES=9 scripts/bench.sh           # more samples per side
#   CASES=cold-analyze,dup-heavy scripts/bench.sh   # subset of cases
#   RECORD=pr7 scripts/bench.sh          # append results to test/regression/history/
#
# Per-case results land in ${OUT:-bench-results/} as one JSON file per
# case; `go run ./cmd/hydraperf history <case>` renders a case's
# recorded trajectory.
set -eu
cd "$(dirname "$0")/.."

CMD="${1:-run}"
ARGS=(
  -base "${BASE:-auto}"
  -samples "${SAMPLES:-5}"
  -out "${OUT:-bench-results}"
)
[ -n "${CASES:-}" ] && ARGS+=(-cases "$CASES")
[ -n "${RECORD:-}" ] && ARGS+=(-record "$RECORD")

exec go run ./cmd/hydraperf "$CMD" "${ARGS[@]}"
