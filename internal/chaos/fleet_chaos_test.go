package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

// fleetChaosNode is one member of an in-test hydrad fleet: a real TCP
// listener (so the address survives a kill and a restart rebinds it),
// a durable store, a manually probed fleet view, and the production
// handler.
type fleetChaosNode struct {
	addr string // http://127.0.0.1:port — stable across restarts
	dir  string // durable session root — survives the kill
	an   *hydrac.Analyzer
	st   *store.Store
	fl   *fleet.Fleet
	h    *hydradhttp.Handler
	srv  *http.Server
}

// bootFleetCluster pre-binds n loopback listeners (every node's fleet
// view needs all addresses before any node exists), then boots a
// durable hydrad on each. probeClient, when non-nil, is installed as
// node 0's probe transport — the hook for partition injection.
func bootFleetCluster(t *testing.T, n int, probeClient *http.Client) []*fleetChaosNode {
	t.Helper()
	lns := make([]net.Listener, n)
	nodes := make([]*fleetChaosNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	for i := range nodes {
		node := &fleetChaosNode{addr: addrs[i], dir: t.TempDir(), an: newAnalyzer(t)}
		opt := fleet.Options{Self: node.addr, Peers: addrs, ProbeEvery: -1, Logf: t.Logf}
		if i == 0 && probeClient != nil {
			opt.Client = probeClient
		}
		fl, err := fleet.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		node.fl = fl
		node.start(t, lns[i])
		nodes[i] = node
		t.Cleanup(func() {
			_ = node.srv.Close()
			_ = node.st.Close()
		})
	}
	return nodes
}

// start opens the node's store and serves its handler on ln. Also the
// restart path: a fresh store over the same dir is exactly the
// recovery a crashed daemon performs.
func (node *fleetChaosNode) start(t *testing.T, ln net.Listener) {
	t.Helper()
	st, err := store.Open(node.dir, node.an, store.Options{ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	node.st = st
	node.h = hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: node.an, Store: st, Fleet: node.fl, Logf: t.Logf,
	})
	node.srv = &http.Server{Handler: node.h}
	go func(srv *http.Server) { _ = srv.Serve(ln) }(node.srv)
}

// kill severs the node abruptly: listener and connections die
// mid-request and the store is NOT closed — no flush, no goodbye —
// which is as close to kill -9 as an in-process test gets while the
// WAL's per-commit fsync keeps the disk state crash-equivalent.
func (node *fleetChaosNode) kill() {
	_ = node.srv.Close()
}

// restart rebinds the node's original address and recovers its store
// from the same directory.
func (node *fleetChaosNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", strings.TrimPrefix(node.addr, "http://"))
	if err != nil {
		t.Fatalf("rebinding %s: %v", node.addr, err)
	}
	node.start(t, ln)
}

// probeAll drives every fleet view through `rounds` manual probe
// cycles — the deterministic stand-in for the background prober.
func probeAll(nodes []*fleetChaosNode, rounds int) {
	for i := 0; i < rounds; i++ {
		for _, n := range nodes {
			n.fl.ProbeOnce(context.Background())
		}
	}
}

// peerStateOn reads how node views peer.
func peerStateOn(t *testing.T, node *fleetChaosNode, peer string) string {
	t.Helper()
	for _, v := range node.fl.View() {
		if v.Addr == peer {
			return v.State
		}
	}
	t.Fatalf("%s has no view of %s", node.addr, peer)
	return ""
}

// do issues one request, following up to three fleet 307s by hand (no
// retries — chaos tests must see every failure, not paper over it).
func fleetDo(client *http.Client, method, url string, body []byte) (*http.Response, []byte, error) {
	for hop := 0; ; hop++ {
		var rd io.Reader
		if body != nil {
			rd = strings.NewReader(string(body))
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode == http.StatusTemporaryRedirect && hop < 3 {
			next := resp.Header.Get("Location")
			if next == "" {
				next = resp.Header.Get("X-Hydra-Owner") + req.URL.RequestURI()
			}
			url = next
			continue
		}
		return resp, b, nil
	}
}

// noFollowClient surfaces 307s to fleetDo instead of letting net/http
// follow them invisibly.
func noFollowClient() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// createOn opens one durable session on node (creates always mint a
// locally owned id) and returns its id.
func createOn(t *testing.T, client *http.Client, node *fleetChaosNode) string {
	t.Helper()
	resp, body, err := fleetDo(client, http.MethodPost, node.addr+"/v1/session", setBytes(t, base()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create on %s: %d %s", node.addr, resp.StatusCode, body)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !node.fl.Owns(created.SessionID) {
		t.Fatalf("node %s minted id %s it does not own", node.addr, created.SessionID)
	}
	return created.SessionID
}

// admitLoop drives sequential probe deltas for one session through
// rotating entry nodes (exercising 307 routing on every other
// request) until stopc closes or a request fails. It returns how many
// deltas were POSITIVELY acked — status 200 with X-Hydra-Admitted —
// which is exactly the set the durability contract covers. A delta
// that died mid-flight may have committed unacked; it is allowed to
// survive, never required to.
func admitLoop(t *testing.T, nodes []*fleetChaosNode, id, prefix string, stopc <-chan struct{}) int {
	client := noFollowClient()
	acked := 0
	for k := 0; ; k++ {
		select {
		case <-stopc:
			return acked
		default:
		}
		entry := nodes[k%len(nodes)]
		resp, _, err := fleetDo(client, http.MethodPost,
			entry.addr+"/v1/session/"+id+"/admit", deltaBytes(t, monitorDelta(prefix, k)))
		if err != nil || resp.StatusCode != http.StatusOK || resp.Header.Get("X-Hydra-Admitted") != "true" {
			return acked
		}
		acked++
	}
}

// verifySession asserts the fleet's recovered copy of one session
// against the ground truth: reachable through any entry node, holding
// every acked delta, its monitors forming a contiguous prefix (acked
// history plus at most the commits that were in flight at the kill),
// and the whole placed set bit-identical to an uninterrupted control
// replay of that prefix.
func verifySession(t *testing.T, an *hydrac.Analyzer, entry *fleetChaosNode, id, prefix string, acked int) {
	t.Helper()
	client := noFollowClient()
	resp, body, err := fleetDo(client, http.MethodGet, entry.addr+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatalf("session %s unreachable after recovery: %v", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session %s: %d %s", id, resp.StatusCode, body)
	}
	set, err := hydrac.DecodeTaskSet(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("session %s body: %v", id, err)
	}
	present := map[int]bool{}
	count := 0
	for _, s := range set.Security {
		rest, ok := strings.CutPrefix(s.Name, prefix)
		if !ok {
			continue
		}
		if k, err := strconv.Atoi(rest); err == nil {
			present[k] = true
			count++
		}
	}
	if count < acked {
		t.Fatalf("session %s: %d monitors survived, %d were acked — acked-delta loss", id, count, acked)
	}
	for k := 0; k < count; k++ {
		if !present[k] {
			t.Fatalf("session %s: %d monitors present but %s%03d missing — history has a hole", id, count, prefix, k)
		}
	}
	var deltas []hydrac.Delta
	for k := 0; k < count; k++ {
		deltas = append(deltas, monitorDelta(prefix, k))
	}
	if want := controlSet(t, an, deltas); string(body) != string(want) {
		t.Fatalf("session %s diverged from the uninterrupted control over its %d-delta history:\ngot  %s\nwant %s",
			id, count, body, want)
	}
}

// Kill -9 one of three nodes under load: routing converges on the
// survivors (views agree the node is down), a restart recovers every
// one of its sessions from disk, views converge back to up, and not
// one acked delta is lost anywhere in the fleet.
func TestFleetKillNodeUnderLoad(t *testing.T) {
	nodes := bootFleetCluster(t, 3, nil)
	client := noFollowClient()

	// Two sessions per node, so the victim holds real state.
	type sessInfo struct {
		id, prefix string
		owner      int
		acked      int
	}
	var sessions []*sessInfo
	for i, n := range nodes {
		for j := 0; j < 2; j++ {
			si := &sessInfo{id: createOn(t, client, n), prefix: fmt.Sprintf("m%d%d", i, j), owner: i}
			sessions = append(sessions, si)
		}
	}

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for _, si := range sessions {
		wg.Add(1)
		go func(si *sessInfo) {
			defer wg.Done()
			si.acked = admitLoop(t, nodes, si.id, si.prefix, stopc)
		}(si)
	}

	time.Sleep(100 * time.Millisecond)
	victim := nodes[1]
	victim.kill()
	// Survivors keep taking load for a while with the victim dark, then
	// the window closes. Workers on victim-owned sessions die with
	// their first post-kill request; their acked count stands.
	time.Sleep(100 * time.Millisecond)
	close(stopc)
	wg.Wait()

	// Two probe rounds trip the down hysteresis; both survivors agree.
	probeAll([]*fleetChaosNode{nodes[0], nodes[2]}, 2)
	for _, n := range []*fleetChaosNode{nodes[0], nodes[2]} {
		if got := peerStateOn(t, n, victim.addr); got != fleet.StateDown {
			t.Fatalf("%s sees victim as %q after probes, want down", n.addr, got)
		}
	}
	// Routing converged: the victim's ids now route to a live successor.
	for _, si := range sessions {
		if si.owner != 1 {
			continue
		}
		if addr, _ := nodes[0].fl.Route(si.id); addr == victim.addr {
			t.Fatalf("id %s still routes to the dead node", si.id)
		}
	}

	victim.restart(t)
	probeAll([]*fleetChaosNode{nodes[0], nodes[2]}, 2)
	for _, n := range []*fleetChaosNode{nodes[0], nodes[2]} {
		if got := peerStateOn(t, n, victim.addr); got != fleet.StateUp {
			t.Fatalf("%s sees restarted victim as %q, want up (views did not re-converge)", n.addr, got)
		}
	}

	// Zero acked-delta loss fleet-wide, entering through a non-owner so
	// recovery AND routing are both on trial.
	for _, si := range sessions {
		entry := nodes[(si.owner+1)%len(nodes)]
		verifySession(t, nodes[0].an, entry, si.id, si.prefix, si.acked)
	}
}

// Drain one node while load is running: every session moves (none
// kept), the drained node redirects, the receivers serve bit-identical
// state, and no acked delta is lost across the handoff.
func TestFleetDrainUnderLoadHandsOffSessions(t *testing.T) {
	nodes := bootFleetCluster(t, 3, nil)
	client := noFollowClient()

	type sessInfo struct {
		id, prefix string
		acked      int
	}
	var sessions []*sessInfo
	for j := 0; j < 3; j++ {
		sessions = append(sessions, &sessInfo{id: createOn(t, client, nodes[0]), prefix: fmt.Sprintf("d%d", j)})
	}

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	for _, si := range sessions {
		wg.Add(1)
		go func(si *sessInfo) {
			defer wg.Done()
			si.acked = admitLoop(t, nodes, si.id, si.prefix, stopc)
		}(si)
	}

	time.Sleep(75 * time.Millisecond)
	moved, kept := nodes[0].h.Drain(context.Background())
	time.Sleep(75 * time.Millisecond)
	close(stopc)
	wg.Wait()

	if moved != len(sessions) || kept != 0 {
		t.Fatalf("drain moved %d kept %d, want %d/0 (both peers were healthy)", moved, kept, len(sessions))
	}
	if nodes[0].st.Len() != 0 {
		t.Fatalf("drained node still holds %d sessions on disk", nodes[0].st.Len())
	}
	// The drained node redirects its former sessions rather than 404ing.
	nr := noFollowClient()
	for _, si := range sessions {
		req, _ := http.NewRequest(http.MethodGet, nodes[0].addr+"/v1/session/"+si.id, nil)
		resp, err := nr.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("drained node answered %d for moved session %s, want 307", resp.StatusCode, si.id)
		}
	}
	for _, si := range sessions {
		verifySession(t, nodes[0].an, nodes[1], si.id, si.prefix, si.acked)
	}
}

// A probe partition (node A cannot reach node B's health endpoint,
// node C can) must make ONLY A route around B, survive the
// single-failure hysteresis check without flapping, and converge back
// once the partition heals.
func TestFleetProbePartitionRoutesAroundUnreachablePeer(t *testing.T) {
	part := &partitionTransport{}
	nodes := bootFleetCluster(t, 3, &http.Client{Transport: part, Timeout: 2 * time.Second})
	a, b, c := nodes[0], nodes[1], nodes[2]
	part.block.Store(strings.TrimPrefix(b.addr, "http://"))

	// An id in B's ring share, found deterministically.
	bID := ""
	for i := 0; i < 4096 && bID == ""; i++ {
		if id := fmt.Sprintf("partition-probe-%04d", i); b.fl.Owns(id) {
			bID = id
		}
	}
	if bID == "" {
		t.Fatal("could not find an id owned by node B")
	}

	part.active.Store(true)
	// One failed probe is NOT enough: hysteresis absorbs blips.
	probeAll(nodes[:1], 1)
	if got := peerStateOn(t, a, b.addr); got != fleet.StateUp {
		t.Fatalf("A marked B %q after one failed probe — flapping", got)
	}
	// The second consecutive failure trips it.
	probeAll(nodes[:1], 1)
	probeAll([]*fleetChaosNode{c}, 2)
	if got := peerStateOn(t, a, b.addr); got != fleet.StateDown {
		t.Fatalf("A sees B as %q after two failed probes, want down", got)
	}
	if got := peerStateOn(t, c, b.addr); got != fleet.StateUp {
		t.Fatalf("C sees B as %q, want up (partition is A's alone)", got)
	}
	// A routes around B; C still routes to B. B itself serves as usual.
	if addr, _ := a.fl.Route(bID); addr == b.addr {
		t.Fatal("A still routes B's ids to B across the partition")
	}
	if addr, _ := c.fl.Route(bID); addr != b.addr {
		t.Fatalf("C routes B's id to %s, want B", addr)
	}

	// Heal: two clean probes re-arm B on A — full convergence.
	part.active.Store(false)
	probeAll(nodes[:1], 2)
	if got := peerStateOn(t, a, b.addr); got != fleet.StateUp {
		t.Fatalf("A sees B as %q after heal, want up", got)
	}
	if addr, _ := a.fl.Route(bID); addr != b.addr {
		t.Fatalf("A routes B's id to %s after heal, want B", addr)
	}
}

// partitionTransport fails requests to one host while active — an
// injectable network partition for the probe path only.
type partitionTransport struct {
	active atomic.Bool
	block  atomic.Value // "host:port"
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.active.Load() {
		if host, _ := p.block.Load().(string); host != "" && req.URL.Host == host {
			return nil, fmt.Errorf("injected partition: %s unreachable", host)
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}
