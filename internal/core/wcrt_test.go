package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

func TestMigratingWCRTIdleSystem(t *testing.T) {
	sys := &System{M: 2, RTCores: make([][]Demand, 2)}
	r, ok := sys.MigratingWCRT(7, nil, 100, Dominance)
	if !ok || r != 7 {
		t.Fatalf("idle system: got (%d, %v), want (7, true)", r, ok)
	}
}

func TestMigratingWCRTWCETBeyondLimit(t *testing.T) {
	sys := &System{M: 2}
	if _, ok := sys.MigratingWCRT(11, nil, 10, Dominance); ok {
		t.Fatal("WCET beyond Tmax accepted")
	}
}

// On a single core with only partitioned RT interference the
// semi-partitioned analysis must agree with classic uniprocessor RTA:
// with M = 1 the busy period serialises and Ω/1 + Cs is the familiar
// recurrence (the clamp min(·, x−Cs+1) is never the binding term at
// the fixed point when the task is schedulable).
func TestMigratingWCRTReducesToUniprocessor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(4)
		demands := make([]Demand, n)
		hpRTA := make([]rta.Demand, n)
		var util float64
		for i := 0; i < n; i++ {
			p := task.Time(10 + rng.Intn(90))
			c := 1 + task.Time(rng.Int63n(int64(p)/3+1))
			demands[i] = Demand{WCET: c, Period: p}
			hpRTA[i] = rta.Demand{WCET: c, Period: p}
			util += float64(c) / float64(p)
		}
		if util > 0.8 {
			continue
		}
		cs := 1 + task.Time(rng.Intn(10))
		limit := task.Time(100000)
		sys := &System{M: 1, RTCores: [][]Demand{demands}}
		got, okGot := sys.MigratingWCRT(cs, nil, limit, Dominance)
		want, okWant := rta.ResponseTime(cs, hpRTA, limit)
		if okGot != okWant || (okGot && got != want) {
			t.Fatalf("trial %d: semi-partitioned M=1 gave (%d,%v), uniprocessor RTA gave (%d,%v)\ndemands=%+v cs=%d",
				trial, got, okGot, want, okWant, demands, cs)
		}
	}
}

// Hand-checked two-core example. RT: core0 has (C=2,T=4), core1 has
// (C=3,T=6). Security task cs=4, no higher-priority security tasks.
//
// Iteration from x=4: Ω(4) = min(W0(4), 1) + min(W1(4), 1) = 1+1 = 2;
// x ← ⌊2/2⌋+4 = 5. Ω(5) = min(4,2)+min(3,2) = 4; x ← 6.
// Ω(6) = min(4,3)+min(3,3) = 6; x ← 7. Ω(7) = min(4,4)+min(6,4) = 8;
// x ← 8. Ω(8) = min(4,5)+min(6,5) = 9; x ← 8 (⌊9/2⌋=4). Fixed at 8.
func TestMigratingWCRTTwoCoreExample(t *testing.T) {
	sys := &System{M: 2, RTCores: [][]Demand{
		{{WCET: 2, Period: 4}},
		{{WCET: 3, Period: 6}},
	}}
	r, ok := sys.MigratingWCRT(4, nil, 100, Dominance)
	if !ok || r != 8 {
		t.Fatalf("got (%d, %v), want (8, true)", r, ok)
	}
}

// A migrating task on M cores is never worse off than the same task
// pinned to the single most-loaded core (migration only adds slack).
func TestMigratingBeatsPinnedWorstCore(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		m := 2 + rng.Intn(3)
		sys := &System{M: m, RTCores: make([][]Demand, m)}
		worstUni := task.Time(0)
		cs := 1 + task.Time(rng.Intn(10))
		limit := task.Time(1 << 30)
		feasibleEverywhere := true
		for k := 0; k < m; k++ {
			n := rng.Intn(3)
			var hpRTA []rta.Demand
			var util float64
			for i := 0; i < n; i++ {
				p := task.Time(10 + rng.Intn(90))
				c := 1 + task.Time(rng.Int63n(int64(p)/4+1))
				sys.RTCores[k] = append(sys.RTCores[k], Demand{WCET: c, Period: p})
				hpRTA = append(hpRTA, rta.Demand{WCET: c, Period: p})
				util += float64(c) / float64(p)
			}
			if util > 0.7 {
				feasibleEverywhere = false
				break
			}
			r, ok := rta.ResponseTime(cs, hpRTA, limit)
			if !ok {
				feasibleEverywhere = false
				break
			}
			if r > worstUni {
				worstUni = r
			}
		}
		if !feasibleEverywhere {
			continue
		}
		got, ok := sys.MigratingWCRT(cs, nil, limit, Dominance)
		if !ok {
			t.Fatalf("trial %d: migrating task diverged where every pinned core converges", trial)
		}
		if got > worstUni {
			t.Fatalf("trial %d: migrating WCRT %d exceeds worst pinned-core WCRT %d", trial, got, worstUni)
		}
	}
}

// Dominance must upper-bound the literal Eq. 8 enumeration — never
// report a smaller response time or accept where Exhaustive rejects.
func TestDominanceUpperBoundsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(2)
		sys := &System{M: m, RTCores: make([][]Demand, m)}
		for k := 0; k < m; k++ {
			if rng.Intn(2) == 0 {
				p := task.Time(20 + rng.Intn(80))
				c := 1 + task.Time(rng.Int63n(int64(p)/4+1))
				sys.RTCores[k] = append(sys.RTCores[k], Demand{WCET: c, Period: p})
			}
		}
		nhp := rng.Intn(4)
		hp := make([]Interferer, nhp)
		for i := range hp {
			p := task.Time(50 + rng.Intn(200))
			c := 1 + task.Time(rng.Int63n(int64(p)/4+1))
			r := c + task.Time(rng.Int63n(int64(p-c)+1))
			hp[i] = Interferer{WCET: c, Period: p, Resp: r}
		}
		cs := 1 + task.Time(rng.Intn(15))
		limit := task.Time(2000)

		rd, okd := sys.MigratingWCRT(cs, hp, limit, Dominance)
		re, oke := sys.MigratingWCRT(cs, hp, limit, Exhaustive)
		switch {
		case !okd && !oke:
			// both diverge: fine
		case okd && !oke:
			t.Fatalf("trial %d: dominance accepted (R=%d) where exhaustive diverged", trial, rd)
		case !okd && oke:
			// dominance more pessimistic: acceptable by construction
		default:
			if rd < re {
				t.Fatalf("trial %d: dominance R=%d below exhaustive R=%d (unsound)", trial, rd, re)
			}
		}
	}
}

// With a single higher-priority migrating task and M ≥ 2 the
// exhaustive and dominance analyses coincide (one carry-in candidate,
// which dominance always takes when it helps).
func TestDominanceExactForOneInterferer(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		sys := &System{M: 2, RTCores: make([][]Demand, 2)}
		p := task.Time(30 + rng.Intn(100))
		c := 1 + task.Time(rng.Int63n(int64(p)/3+1))
		r := c + task.Time(rng.Int63n(int64(p-c)+1))
		hp := []Interferer{{WCET: c, Period: p, Resp: r}}
		cs := 1 + task.Time(rng.Intn(10))
		limit := task.Time(5000)
		rd, okd := sys.MigratingWCRT(cs, hp, limit, Dominance)
		re, oke := sys.MigratingWCRT(cs, hp, limit, Exhaustive)
		if okd != oke || (okd && rd != re) {
			t.Fatalf("trial %d: dominance (%d,%v) != exhaustive (%d,%v)", trial, rd, okd, re, oke)
		}
	}
}

func TestResponseTimesTopDown(t *testing.T) {
	// Two security tasks on an idle 2-core system: the top one runs
	// unimpeded (R = C); the second runs in parallel on the other core
	// (M=2, one interferer: still R = C because a single hp task can
	// only occupy one core).
	sys := &System{M: 2, RTCores: make([][]Demand, 2)}
	sec := []task.SecurityTask{
		{Name: "hi", WCET: 10, MaxPeriod: 100, Priority: 0},
		{Name: "lo", WCET: 20, MaxPeriod: 300, Priority: 1},
	}
	resp := sys.ResponseTimes(sec, []task.Time{100, 300}, Dominance)
	if resp[0] != 10 {
		t.Errorf("R(hi) = %d, want 10", resp[0])
	}
	if resp[1] != 20 {
		t.Errorf("R(lo) = %d, want 20 (parallel execution on the free core)", resp[1])
	}

	// On one core they serialise instead.
	sys1 := &System{M: 1, RTCores: make([][]Demand, 1)}
	resp1 := sys1.ResponseTimes(sec, []task.Time{100, 300}, Dominance)
	if resp1[0] != 10 {
		t.Errorf("M=1 R(hi) = %d, want 10", resp1[0])
	}
	if resp1[1] <= 20 {
		t.Errorf("M=1 R(lo) = %d, want > 20 (serialised behind hi)", resp1[1])
	}
}

func TestNewSystemGroupsByCore(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 1, Priority: 0},
			{Name: "b", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 1},
			{Name: "c", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 2},
		},
	}
	sys := NewSystem(ts)
	if sys.M != 2 {
		t.Fatalf("M = %d, want 2", sys.M)
	}
	if len(sys.RTCores[0]) != 1 || sys.RTCores[0][0].WCET != 2 {
		t.Errorf("core 0 demands = %+v, want [{2 20}]", sys.RTCores[0])
	}
	if len(sys.RTCores[1]) != 2 {
		t.Errorf("core 1 demands = %+v, want two entries", sys.RTCores[1])
	}
}
