package core

import (
	"fmt"
	"sort"
	"strings"

	"hydrac/internal/task"
)

// Diagnostics: a per-task breakdown of where the interference in the
// WCRT fixed point comes from. This is the explanation a designer
// needs when a period lands far from Tmax (or the set is rejected):
// which core's RT tasks, and which higher-priority monitors, eat the
// budget. cmd/hydrac exposes it behind `analyze -explain`.

// InterferenceTerm is one contributor to Ω at the converged window.
type InterferenceTerm struct {
	// Source names the contributor: "core 3 RT band" or a security
	// task name.
	Source string
	// Workload is the raw workload bound (Eq. 2/4) at the fixed point.
	Workload task.Time
	// Interference is the clamped contribution to Ω (Eq. 3/5).
	Interference task.Time
	// CarryIn reports whether the dominance step charged the carry-in
	// bound for this (security-task) source.
	CarryIn bool
}

// Diagnosis explains one security task's converged response time.
type Diagnosis struct {
	Task string
	// Resp is the WCRT; Schedulable is false when the fixed point
	// diverged past Tmax (Resp is then task.Infinity).
	Resp        task.Time
	Schedulable bool
	// Omega is the total interference at the fixed point and Terms its
	// breakdown, largest contribution first.
	Omega task.Time
	Terms []InterferenceTerm
}

// Diagnose recomputes the WCRT of every security task under the given
// periods (ts.Security order; pass the periods from SelectPeriods, or
// Tmax values) and returns the interference breakdown at each task's
// fixed point.
func Diagnose(ts *task.Set, periods []task.Time, mode CarryInMode) ([]Diagnosis, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if len(periods) != len(ts.Security) {
		return nil, fmt.Errorf("core: %d periods for %d security tasks", len(periods), len(ts.Security))
	}
	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	ordered := make([]task.Time, len(sec))
	for i, s := range sec {
		ordered[i] = periods[indexByName(ts.Security, s.Name)]
	}
	resp := sys.ResponseTimes(sec, ordered, mode)

	out := make([]Diagnosis, len(ts.Security))
	hp := make([]Interferer, 0, len(sec))
	for i, s := range sec {
		d := Diagnosis{Task: s.Name, Resp: resp[i], Schedulable: resp[i] <= s.MaxPeriod}
		x := resp[i]
		if !d.Schedulable {
			x = s.MaxPeriod // explain the interference at the bound instead
		}
		d.Omega, d.Terms = sys.breakdown(x, s.WCET, hp)
		sort.Slice(d.Terms, func(a, b int) bool { return d.Terms[a].Interference > d.Terms[b].Interference })
		out[indexByName(ts.Security, s.Name)] = d

		r := resp[i]
		if r > s.MaxPeriod {
			r = ordered[i]
		}
		hp = append(hp, Interferer{WCET: s.WCET, Period: ordered[i], Resp: r})
	}
	return out, nil
}

// breakdown evaluates Eq. 6 at window x and records each term.
func (sys *System) breakdown(x, cs task.Time, hp []Interferer) (task.Time, []InterferenceTerm) {
	var terms []InterferenceTerm
	var total task.Time
	for m, demands := range sys.RTCores {
		var w task.Time
		for _, d := range demands {
			w += workloadNC(x, d.WCET, d.Period)
		}
		i := clampInterference(w, x, cs)
		total += i
		if len(demands) > 0 {
			terms = append(terms, InterferenceTerm{
				Source: fmt.Sprintf("core %d RT band", m), Workload: w, Interference: i,
			})
		}
	}
	type diff struct {
		idx  int
		gain task.Time
	}
	var diffs []diff
	base := make([]task.Time, len(hp))
	for i, h := range hp {
		wnc := workloadNC(x, h.WCET, h.Period)
		inc := clampInterference(wnc, x, cs)
		ici := clampInterference(workloadCI(x, h.WCET, h.Period, h.Resp), x, cs)
		base[i] = inc
		total += inc
		if g := ici - inc; g > 0 {
			diffs = append(diffs, diff{idx: i, gain: g})
		}
	}
	carried := map[int]task.Time{}
	sort.Slice(diffs, func(a, b int) bool { return diffs[a].gain > diffs[b].gain })
	for k := 0; k < len(diffs) && k < sys.M-1; k++ {
		total += diffs[k].gain
		carried[diffs[k].idx] = diffs[k].gain
	}
	for i, h := range hp {
		gain, ci := carried[i]
		terms = append(terms, InterferenceTerm{
			Source:       fmt.Sprintf("security hp#%d (C=%d, T=%d)", i, h.WCET, h.Period),
			Workload:     workloadNC(x, h.WCET, h.Period),
			Interference: base[i] + gain,
			CarryIn:      ci,
		})
	}
	return total, terms
}

// Render formats a diagnosis for terminal output.
func (d Diagnosis) Render() string {
	var b strings.Builder
	verdict := "schedulable"
	if !d.Schedulable {
		verdict = "UNSCHEDULABLE"
	}
	fmt.Fprintf(&b, "%s: R=%s, Ω=%d (%s)\n", d.Task, fmtTime(d.Resp), d.Omega, verdict)
	for _, t := range d.Terms {
		ci := ""
		if t.CarryIn {
			ci = " +carry-in"
		}
		fmt.Fprintf(&b, "  %-28s workload %-8d interference %-8d%s\n", t.Source, t.Workload, t.Interference, ci)
	}
	return b.String()
}

func fmtTime(t task.Time) string {
	if t >= task.Infinity {
		return "∞"
	}
	return fmt.Sprintf("%d", t)
}
