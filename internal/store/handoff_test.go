package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hydrac"
)

func handoffAnalyzer(t *testing.T) *hydrac.Analyzer {
	t.Helper()
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func handoffBase() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 200, Core: -1, Priority: 0},
		},
	}
}

func handoffDelta(k int) hydrac.Delta {
	return hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: fmt.Sprintf("mon%03d", k), WCET: 1,
		MaxPeriod: hydrac.Time(500 + 10*k), Core: -1, Priority: 100 + k,
	}}}
}

func encodeSet(t *testing.T, set *hydrac.TaskSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sessionBytes(t *testing.T, st *Store, id string) []byte {
	t.Helper()
	ctx := context.Background()
	sess, release, err := st.Acquire(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	return encodeSet(t, sess.Set())
}

// TestDetachImportRoundTripBitIdentical is the core handoff guarantee:
// a session detached from store A and imported into store B serves the
// exact bytes an uninterrupted control session would — across a
// compaction boundary, so the export carries both a non-trivial
// snapshot generation and trailing WAL deltas.
func TestDetachImportRoundTripBitIdentical(t *testing.T) {
	ctx := context.Background()
	a := handoffAnalyzer(t)
	src, err := Open(t.TempDir(), a, Options{ProbeEvery: -1, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir(), a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	const id = "sess-roundtrip"
	if _, err := src.Create(ctx, id, handoffBase()); err != nil {
		t.Fatal(err)
	}
	// 10 deltas with CompactEvery=4: two compactions plus a WAL tail.
	control, _, err := a.NewSession(ctx, handoffBase())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		d := handoffDelta(k)
		sess, release, err := src.Acquire(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if _, admitted, err := sess.Admit(ctx, d); err != nil || !admitted {
			t.Fatalf("admit %d: admitted=%v err=%v", k, admitted, err)
		}
		release()
		if _, admitted, err := control.Admit(ctx, d); err != nil || !admitted {
			t.Fatalf("control admit %d: admitted=%v err=%v", k, admitted, err)
		}
	}

	var exported Export
	if err := src.Detach(ctx, id, func(exp Export) error {
		exported = exp
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(exported.Set) == 0 {
		t.Fatal("export carries no snapshot set")
	}
	if err := dst.Import(ctx, id, exported, ""); err != nil {
		t.Fatal(err)
	}

	want := encodeSet(t, control.Set())
	if got := sessionBytes(t, dst, id); !bytes.Equal(got, want) {
		t.Fatalf("imported session state diverged from uninterrupted control:\ngot  %s\nwant %s", got, want)
	}

	// The source surrendered the session: ErrMoved, and no disk state.
	if _, _, err := src.Acquire(ctx, id); !errors.Is(err, ErrMoved) {
		t.Fatalf("Acquire on detached session: %v, want ErrMoved", err)
	}
	if _, err := os.Stat(filepath.Join(src.dir, id)); !os.IsNotExist(err) {
		t.Fatalf("source still holds %s on disk (stat err %v)", id, err)
	}
	if err := src.Detach(ctx, id, func(Export) error { return nil }); !errors.Is(err, ErrMoved) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Detach: %v", err)
	}

	// The destination can keep admitting — the hook re-attached.
	sess, release, err := dst.Acquire(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, admitted, err := sess.Admit(ctx, handoffDelta(10)); err != nil || !admitted {
		t.Fatalf("post-import admit: admitted=%v err=%v", admitted, err)
	}
	release()
	if _, admitted, err := control.Admit(ctx, handoffDelta(10)); err != nil || !admitted {
		t.Fatalf("control post admit: admitted=%v err=%v", admitted, err)
	}
	if got, want := sessionBytes(t, dst, id), encodeSet(t, control.Set()); !bytes.Equal(got, want) {
		t.Fatal("post-import admission diverged from control")
	}

	// And the import survives a restart of the destination store.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dst.dir, a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := sessionBytes(t, re, id), encodeSet(t, control.Set()); !bytes.Equal(got, want) {
		t.Fatal("imported session did not survive restart bit-identically")
	}
}

// A failed transfer must leave the session fully local and intact —
// the drain loop logs and moves on, and the node's plain shutdown
// still has the state on disk.
func TestDetachTransferFailureKeepsSessionLocal(t *testing.T) {
	ctx := context.Background()
	a := handoffAnalyzer(t)
	st, err := Open(t.TempDir(), a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const id = "sess-keep"
	if _, err := st.Create(ctx, id, handoffBase()); err != nil {
		t.Fatal(err)
	}
	before := sessionBytes(t, st, id)

	boom := errors.New("receiver exploded")
	if err := st.Detach(ctx, id, func(Export) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Detach error = %v, want wrapped transfer error", err)
	}
	// Still served, still identical (re-hydrated from disk).
	if got := sessionBytes(t, st, id); !bytes.Equal(got, before) {
		t.Fatal("session state changed after failed handoff")
	}
}

func TestImportRejectsBadPayloads(t *testing.T) {
	ctx := context.Background()
	a := handoffAnalyzer(t)
	st, err := Open(t.TempDir(), a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Import(ctx, "bad id!", Export{}, ""); err == nil {
		t.Error("invalid id accepted")
	}
	if err := st.Import(ctx, "garbage-set", Export{Set: []byte("{nope")}, ""); err == nil {
		t.Error("undecodable set accepted")
	}
	if _, err := os.Stat(filepath.Join(st.dir, "garbage-set")); !os.IsNotExist(err) {
		t.Error("failed import left a directory behind")
	}

	const id = "sess-dup"
	if _, err := st.Create(ctx, id, handoffBase()); err != nil {
		t.Fatal(err)
	}
	if err := st.Import(ctx, id, Export{Set: encodeSet(t, handoffBase())}, ""); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate import: %v, want ErrExists", err)
	}
	// A garbage delta must fail the import and leave nothing behind.
	if err := st.Import(ctx, "bad-delta", Export{
		Set:    encodeSet(t, handoffBase()),
		Deltas: [][]byte{[]byte("not a delta")},
	}, ""); err == nil {
		t.Error("undecodable delta accepted")
	}
	if _, err := os.Stat(filepath.Join(st.dir, "bad-delta")); !os.IsNotExist(err) {
		t.Error("failed delta import left a directory behind")
	}
}

// A retried Import carrying the token its first attempt committed
// with is acknowledged (nil), not conflicted: the sender deletes or
// keeps its local copy on exactly this verdict, and answering a
// committed transfer with ErrExists would leave the session alive on
// both nodes. The commit record must survive both a receiver restart
// and the session being handed onward.
func TestImportIdempotentWithToken(t *testing.T) {
	ctx := context.Background()
	a := handoffAnalyzer(t)
	st, err := Open(t.TempDir(), a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const id, token = "sess-token", "tok-1"
	exp := Export{Set: encodeSet(t, handoffBase())}
	if err := st.Import(ctx, id, exp, token); err != nil {
		t.Fatal(err)
	}
	before := sessionBytes(t, st, id)

	// Duplicate with the matching token: acknowledged, state untouched.
	if err := st.Import(ctx, id, exp, token); err != nil {
		t.Fatalf("retried import with matching token: %v, want nil", err)
	}
	if got := sessionBytes(t, st, id); !bytes.Equal(got, before) {
		t.Fatal("idempotent retry changed session state")
	}
	// A different token, or none, is a genuine conflict.
	if err := st.Import(ctx, id, exp, "tok-other"); !errors.Is(err, ErrExists) {
		t.Fatalf("import with mismatched token: %v, want ErrExists", err)
	}
	if err := st.Import(ctx, id, exp, ""); !errors.Is(err, ErrExists) {
		t.Fatalf("tokenless duplicate import: %v, want ErrExists", err)
	}
	// The confirm probe agrees, and never vouches for other tokens,
	// unknown ids, or locally created sessions.
	if !st.ImportedWith(id, token) {
		t.Error("ImportedWith(matching token) = false")
	}
	if st.ImportedWith(id, "tok-other") {
		t.Error("ImportedWith(mismatched token) = true")
	}
	if st.ImportedWith("sess-unknown", token) {
		t.Error("ImportedWith(unknown id) = true")
	}
	if _, err := st.Create(ctx, "sess-local", handoffBase()); err != nil {
		t.Fatal(err)
	}
	if st.ImportedWith("sess-local", token) {
		t.Error("ImportedWith vouches for a locally created session")
	}
	// A failed import leaves no commit record behind.
	if err := st.Import(ctx, "sess-bad", Export{
		Set:    encodeSet(t, handoffBase()),
		Deltas: [][]byte{[]byte("not a delta")},
	}, "tok-bad"); err == nil {
		t.Fatal("undecodable delta accepted")
	}
	if st.ImportedWith("sess-bad", "tok-bad") {
		t.Error("failed import left a confirmable commit record")
	}

	// The record survives a restart: the sender's retry window can
	// span a receiver crash.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(st.dir, a, Options{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Import(ctx, id, exp, token); err != nil {
		t.Fatalf("retried import after receiver restart: %v, want nil", err)
	}
	if !re.ImportedWith(id, token) {
		t.Error("ImportedWith after restart = false")
	}

	// ...and survives the session moving onward: "your handoff
	// committed here" stays true after a Detach.
	if err := re.Detach(ctx, id, func(Export) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !re.ImportedWith(id, token) {
		t.Error("ImportedWith after onward detach = false")
	}
}
