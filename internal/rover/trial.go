package rover

import (
	"fmt"
	"math/rand"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/ids"
	"hydrac/internal/metrics"
	"hydrac/internal/seed"
	"hydrac/internal/sim"
	"hydrac/internal/sweep"
	"hydrac/internal/task"
)

// TrialConfig drives the Fig. 5 experiments.
type TrialConfig struct {
	// Trials is the number of attack trials (paper: 35).
	Trials int
	// Seed makes runs reproducible. Each trial's attack scenario is
	// drawn from a private stream derived from (Seed, trial), so
	// results are independent of Parallel.
	Seed int64
	// Objects is the number of files in the protected image store
	// (each Tripwire job sweeps all of them).
	Objects int
	// DetectionHorizon bounds each trial's simulation, ms.
	DetectionHorizon task.Time
	// AttackWindow bounds the random attack instant, ms.
	AttackWindow task.Time
	// Parallel is the trial worker count: 0 uses GOMAXPROCS, 1 forces
	// serial execution. Results are identical at any value.
	Parallel int
	// Progress, when non-nil, receives (done, total) trial counts as
	// the run advances. Calls are serialised.
	Progress func(done, total int)
}

// DefaultTrialConfig mirrors the paper: 35 trials, attacks at random
// points early in the run, a 64-image data store.
func DefaultTrialConfig() TrialConfig {
	return TrialConfig{
		Trials:           35,
		Seed:             1,
		Objects:          64,
		DetectionHorizon: 90_000,
		AttackWindow:     20_000,
	}
}

// SchemeResult aggregates one scheme's trials.
type SchemeResult struct {
	// Scheme is "HYDRA-C" or "HYDRA".
	Scheme string
	// TripwirePeriod and KmodPeriod are the periods the scheme chose.
	TripwirePeriod, KmodPeriod task.Time
	// DetectionMS collects per-trial detection latencies (both attack
	// kinds pooled, as Fig. 5a's single bar per scheme does).
	DetectionMS metrics.Sample
	// TripwireMS and KmodMS split the latency by attack kind.
	TripwireMS, KmodMS metrics.Sample
	// ContextSwitches collects per-trial context-switch counts over
	// the 45 s observation window (Fig. 5b).
	ContextSwitches metrics.Sample
	// Undetected counts attacks not caught within the horizon.
	Undetected int
}

// MeanDetectionCycles reports the Fig. 5a quantity: mean detection
// time in ARM cycle-counter units.
func (r *SchemeResult) MeanDetectionCycles() float64 {
	return Cycles(1) * r.DetectionMS.Mean()
}

// RunTrials performs the Fig. 5 comparison: the same attack schedule
// is replayed against HYDRA-C (periods from Algorithm 1, migrating
// security band) and HYDRA (greedy partitioned placement, pinned
// band), measuring detection latency and context switches.
func RunTrials(cfg TrialConfig) (hydraC, hydra *SchemeResult, err error) {
	base := TaskSet()

	cres, err := core.SelectPeriods(base, core.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("rover: HYDRA-C period selection: %w", err)
	}
	if !cres.Schedulable {
		return nil, nil, fmt.Errorf("rover: HYDRA-C reports the rover set unschedulable")
	}
	cSet := core.Apply(base, cres)

	// The paper's verbatim HYDRA description: greedy best-response
	// placement with each period pinned to its WCRT on arrival.
	hres, err := baseline.HydraAggressive(base)
	if err != nil {
		return nil, nil, fmt.Errorf("rover: HYDRA baseline: %w", err)
	}
	if !hres.Schedulable {
		return nil, nil, fmt.Errorf("rover: HYDRA reports the rover set unschedulable")
	}
	hSet := baseline.ApplyPartitioned(base, hres)

	return runTrialSweep(cfg, trialStreamFull, base,
		schemePlan{"HYDRA-C", cSet, sim.SemiPartitioned},
		schemePlan{"HYDRA", hSet, sim.FullyPartitioned})
}

// Stream discriminators for seed.At: the full-pipeline and controlled
// comparisons must draw disjoint attack scenarios from the same base
// seed.
const (
	trialStreamFull = iota
	trialStreamControlled
)

// schemePlan is one side of a trial comparison: a configured task set
// under a runtime policy, reported under Name.
type schemePlan struct {
	Name   string
	Set    *task.Set
	Policy sim.Policy
}

// trialPair accumulates both schemes' results over a shard of trials.
type trialPair struct {
	a, b *SchemeResult
}

// runTrialSweep replays the same per-trial attack scenario against
// both schemes, sharding trials across cfg.Parallel workers. Each
// trial draws its scenario from seed.At(cfg.Seed, stream, trial), and
// shard partials merge in trial order, so results are identical at
// any worker count.
func runTrialSweep(cfg TrialConfig, stream int, base *task.Set, a, b schemePlan) (*SchemeResult, *SchemeResult, error) {
	res, err := sweep.Run(
		sweep.Config{Groups: 1, PerGroup: cfg.Trials, Workers: cfg.Parallel, Progress: cfg.Progress},
		func() *trialPair {
			return &trialPair{newSchemeResult(a.Name, a.Set), newSchemeResult(b.Name, b.Set)}
		},
		func(p *trialPair, it sweep.Item) error {
			// One shared attack scenario per trial.
			rng := rand.New(rand.NewSource(seed.At(cfg.Seed, stream, it.Index)))
			twAttack := task.Time(rng.Int63n(int64(cfg.AttackWindow)))
			kmAttack := task.Time(rng.Int63n(int64(cfg.AttackWindow)))
			victim := rng.Intn(cfg.Objects)
			offsets := randomOffsets(rng, base)

			if err := runTrial(p.a, a.Set, a.Policy, cfg, offsets, twAttack, kmAttack, victim); err != nil {
				return err
			}
			return runTrial(p.b, b.Set, b.Policy, cfg, offsets, twAttack, kmAttack, victim)
		},
		func(dst, src *trialPair) {
			dst.a.merge(src.a)
			dst.b.merge(src.b)
		})
	if err != nil {
		return nil, nil, err
	}
	return res.a, res.b, nil
}

// merge folds another shard's trials into r, preserving trial order.
func (r *SchemeResult) merge(o *SchemeResult) {
	r.DetectionMS.Merge(&o.DetectionMS)
	r.TripwireMS.Merge(&o.TripwireMS)
	r.KmodMS.Merge(&o.KmodMS)
	r.ContextSwitches.Merge(&o.ContextSwitches)
	r.Undetected += o.Undetected
}

func newSchemeResult(name string, ts *task.Set) *SchemeResult {
	r := &SchemeResult{Scheme: name}
	for _, s := range ts.Security {
		switch s.Name {
		case "tripwire":
			r.TripwirePeriod = s.Period
		case "kmodcheck":
			r.KmodPeriod = s.Period
		}
	}
	return r
}

// randomOffsets jitters every task's first release within one period,
// standing in for the arbitrary phase at which the paper's trials
// launched attacks against the running rover.
func randomOffsets(rng *rand.Rand, ts *task.Set) map[string]task.Time {
	off := map[string]task.Time{}
	for _, t := range ts.RT {
		off[t.Name] = task.Time(rng.Int63n(int64(t.Period)))
	}
	// Security offsets are drawn against Tmax so both schemes see the
	// same jitter despite different selected periods.
	for _, s := range ts.Security {
		off[s.Name] = task.Time(rng.Int63n(int64(s.MaxPeriod)))
	}
	return off
}

func runTrial(out *SchemeResult, ts *task.Set, policy sim.Policy, cfg TrialConfig,
	offsets map[string]task.Time, twAttack, kmAttack task.Time, victim int) error {

	// Clamp security offsets to the scheme's actual periods.
	off := map[string]task.Time{}
	for _, t := range ts.RT {
		off[t.Name] = offsets[t.Name]
	}
	for _, s := range ts.Security {
		off[s.Name] = offsets[s.Name] % s.Period
	}

	res, err := sim.Run(ts, sim.Config{
		Policy: policy, Horizon: cfg.DetectionHorizon,
		Offsets: off, RecordIntervals: true,
	})
	if err != nil {
		return fmt.Errorf("rover: %s simulation: %w", out.Scheme, err)
	}
	if res.RTDeadlineMisses != 0 {
		return fmt.Errorf("rover: %s: RT deadline misses in an accepted configuration", out.Scheme)
	}

	tw, err := ids.DetectionTime(res.JobsOf("tripwire"),
		ids.ScanModel{WCET: TripwireWCET, Objects: cfg.Objects}, twAttack, victim)
	if err != nil {
		return err
	}
	km, err := ids.DetectionTime(res.JobsOf("kmodcheck"),
		ids.ScanModel{WCET: KmodWCET, Objects: 1}, kmAttack, 0)
	if err != nil {
		return err
	}
	for _, d := range []struct {
		det    ids.Detection
		sample *metrics.Sample
	}{{tw, &out.TripwireMS}, {km, &out.KmodMS}} {
		if !d.det.Detected {
			out.Undetected++
			continue
		}
		d.sample.Add(float64(d.det.Latency))
		out.DetectionMS.Add(float64(d.det.Latency))
	}

	// Fig. 5b: context switches over the 45 s perf window.
	csRun, err := sim.Run(ts, sim.Config{Policy: policy, Horizon: ObservationWindowMS, Offsets: off})
	if err != nil {
		return err
	}
	out.ContextSwitches.Add(float64(csRun.ContextSwitches))
	return nil
}

// RunControlled performs the scheduler-isolated variant of the Fig. 5
// comparison: both policies run the *same* task set with the *same*
// period vector (HYDRA's assignment), so the only difference is
// whether the security band may migrate. This separates the paper's
// two mechanisms — period adaptation (compared in RunTrials) and
// continuous cross-core execution (compared here). Returned results
// are labelled "pinned" and "migrating".
func RunControlled(cfg TrialConfig) (migrating, pinned *SchemeResult, err error) {
	base := TaskSet()
	hres, err := baseline.HydraAggressive(base)
	if err != nil {
		return nil, nil, err
	}
	if !hres.Schedulable {
		return nil, nil, fmt.Errorf("rover: HYDRA cannot configure the rover set")
	}
	ts := baseline.ApplyPartitioned(base, hres)

	return runTrialSweep(cfg, trialStreamControlled, base,
		schemePlan{"migrating", ts, sim.SemiPartitioned},
		schemePlan{"pinned", ts, sim.FullyPartitioned})
}
