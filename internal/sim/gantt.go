package sim

import (
	"fmt"
	"sort"
	"strings"

	"hydrac/internal/task"
)

// Gantt renders an ASCII schedule chart from a traced run (the run
// must have used Config.RecordIntervals). Each core gets one row;
// every column is `step` ticks wide and shows the first letter of the
// task occupying the core (('.') for idle). It is the textual analogue
// of the paper's Fig. 1 schedule illustration.
func Gantt(r *Result, from, to, step task.Time) string {
	if step <= 0 {
		step = 1
	}
	if to > r.Horizon {
		to = r.Horizon
	}
	cores := len(r.CoreBusy)
	cols := int((to - from + step - 1) / step)
	if cols <= 0 || cores == 0 {
		return ""
	}
	grid := make([][]byte, cores)
	for m := range grid {
		grid[m] = []byte(strings.Repeat(".", cols))
	}
	letters := letterMap(r)
	for _, rec := range r.JobLog {
		for _, iv := range rec.Intervals {
			if iv.End <= from || iv.Start >= to {
				continue
			}
			s, e := iv.Start, iv.End
			if s < from {
				s = from
			}
			if e > to {
				e = to
			}
			for c := (s - from) / step; c < (e-from+step-1)/step; c++ {
				grid[iv.Core][c] = letters[rec.Task]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t = %d .. %d (one column = %d ticks)\n", from, to, step)
	for m := 0; m < cores; m++ {
		fmt.Fprintf(&b, "core %d |%s|\n", m, grid[m])
	}
	var names []string
	for n := range letters {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("legend:")
	for _, n := range names {
		fmt.Fprintf(&b, " %c=%s", letters[n], n)
	}
	b.WriteString("\n")
	return b.String()
}

// letterMap assigns each task a distinct display letter: the first
// letter of its name when free, otherwise successive alphabet letters.
func letterMap(r *Result) map[string]byte {
	var names []string
	seen := map[string]bool{}
	for _, rec := range r.JobLog {
		if !seen[rec.Task] {
			seen[rec.Task] = true
			names = append(names, rec.Task)
		}
	}
	sort.Strings(names)
	used := map[byte]bool{'.': true}
	out := map[string]byte{}
	for _, n := range names {
		c := byte('?')
		if len(n) > 0 {
			c = upper(n[0])
		}
		for used[c] {
			c = nextLetter(c)
		}
		out[n] = c
		used[c] = true
	}
	return out
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func nextLetter(c byte) byte {
	if c < 'A' || c >= 'Z' {
		return 'A'
	}
	return c + 1
}
