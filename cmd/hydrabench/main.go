// Command hydrabench is a closed-loop load generator for hydrad: it
// drives POST /v1/analyze at one or more concurrency levels and
// reports throughput (requests per second) and latency quantiles
// (p50/p95/p99) as JSON — the numbers that turn "the hot path feels
// faster" into a recorded baseline (BENCH_PR5.json keeps one).
//
// Usage:
//
//	hydrabench [-url http://HOST:PORT] [-set file.json]
//	           [-c 1,4,16] [-d 2s] [-endpoint /v1/analyze] [-out -]
//
// Without -url, hydrabench serves an in-process hydrad handler over
// httptest and loads that — a self-contained smoke mode for CI and
// laptops (no ports, no daemon lifecycle). Without -set, the rover
// task set ships as the workload.
//
// Closed loop means every worker posts, waits for the full response,
// then posts again: the offered load adapts to the service, so the
// measured RPS is the service's sustainable throughput at that
// concurrency, not a drop rate under a fixed arrival schedule.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hydrac"
	"hydrac/internal/lru"
	"hydrac/internal/rover"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// levelResult is one concurrency level's aggregate outcome.
type levelResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationS   float64 `json:"duration_s"`
	RPS         float64 `json:"rps"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// output is the JSON document hydrabench emits.
type output struct {
	Target   string        `json:"target"`
	Endpoint string        `json:"endpoint"`
	Levels   []levelResult `json:"levels"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hydrabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target base URL (e.g. http://127.0.0.1:8080); empty loads an in-process handler")
	setPath := fs.String("set", "", "task-set JSON file to post; empty uses the built-in rover set")
	levels := fs.String("c", "1,4,16", "comma-separated concurrency levels to sweep")
	dur := fs.Duration("d", 2*time.Second, "measurement duration per level")
	endpoint := fs.String("endpoint", "/v1/analyze", "path to load")
	outPath := fs.String("out", "-", "write the JSON results here (- for stdout)")
	cache := fs.Int("cache", 1024, "report cache size of the in-process handler (ignored with -url)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hydrabench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	body, err := loadBody(*setPath)
	if err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 2
	}
	concs, err := parseLevels(*levels)
	if err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 2
	}

	target := *url
	if target == "" {
		srv, err := inProcessServer(*cache)
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		defer srv.Close()
		target = srv.URL
	}

	maxConc := 0
	for _, c := range concs {
		if c > maxConc {
			maxConc = c
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc,
		MaxIdleConnsPerHost: maxConc,
	}}

	doc := output{Target: target, Endpoint: *endpoint}
	full := target + *endpoint
	// One request up front validates the pairing of set and endpoint
	// and warms the server's caches out of band.
	if err := post(client, full, body); err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 1
	}
	for _, c := range concs {
		res := runLevel(client, full, body, c, *dur)
		doc.Levels = append(doc.Levels, res)
		fmt.Fprintf(stderr, "hydrabench: c=%d  %0.f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  (%d requests, %d errors)\n",
			c, res.RPS, res.P50MS, res.P95MS, res.P99MS, res.Requests, res.Errors)
	}

	out := stdout
	if *outPath != "-" && *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "hydrabench:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(stderr, "hydrabench:", err)
		return 1
	}
	return 0
}

// loadBody returns the task-set bytes to post.
func loadBody(path string) ([]byte, error) {
	if path == "" {
		var buf bytes.Buffer
		if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return os.ReadFile(path)
}

// parseLevels parses the -c sweep list.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q (want positive integers, e.g. -c 1,4,16)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("no concurrency levels")
	}
	return out, nil
}

// inProcessServer mounts hydrad's analyze hot path on an httptest
// server, so the smoke mode measures the production pipeline minus
// the TCP stack between processes. The route mirrors hydrad's
// /v1/analyze exactly: pooled body read, body-digest replay cache
// in front of decode, Analyzer.AnalyzeEnvelope, one Write. (hydrad's
// handler lives in its own main package; keep this mirror in sync
// with cmd/hydrad when the route changes.)
func inProcessServer(cache int) (*httptest.Server, error) {
	a, err := hydrac.New(hydrac.WithCache(cache))
	if err != nil {
		return nil, err
	}
	respCache := lru.New[[sha256.Size]byte, []byte](cache)
	bodyPool := sync.Pool{New: func() any { return new(bytes.Buffer) }}
	// maxBodyBytes mirrors hydrad's request-size cap.
	const maxBodyBytes = 1 << 20
	writeErr := func(w http.ResponseWriter, status int, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		buf := bodyPool.Get().(*bytes.Buffer)
		buf.Reset()
		defer bodyPool.Put(buf)
		if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
			status := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			writeErr(w, status, err)
			return
		}
		var key [sha256.Size]byte
		if respCache != nil {
			key = sha256.Sum256(buf.Bytes())
			if body, ok := respCache.Get(key); ok {
				w.Header().Set("Content-Type", "application/json")
				w.Write(body)
				return
			}
		}
		ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		body, fromCache, err := a.AnalyzeEnvelope(r.Context(), ts)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		if respCache != nil && fromCache {
			respCache.Add(key, body)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	return httptest.NewServer(mux), nil
}

// post issues one request and drains the response.
func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d from %s", resp.StatusCode, url)
	}
	return nil
}

// runLevel drives one closed-loop concurrency level for d and
// aggregates its latencies.
func runLevel(client *http.Client, url string, body []byte, conc int, d time.Duration) levelResult {
	type workerOut struct {
		lat  []time.Duration
		errs int
	}
	outs := make([]workerOut, conc)
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				err := post(client, url, body)
				if err != nil {
					outs[w].errs++
					continue
				}
				outs[w].lat = append(outs[w].lat, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, o := range outs {
		all = append(all, o.lat...)
		errs += o.errs
	}
	res := levelResult{
		Concurrency: conc,
		Requests:    len(all),
		Errors:      errs,
		DurationS:   elapsed.Seconds(),
	}
	if len(all) == 0 {
		return res
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, l := range all {
		sum += l
	}
	res.RPS = float64(len(all)) / elapsed.Seconds()
	res.MeanMS = sum.Seconds() * 1000 / float64(len(all))
	res.P50MS = quantile(all, 0.50).Seconds() * 1000
	res.P95MS = quantile(all, 0.95).Seconds() * 1000
	res.P99MS = quantile(all, 0.99).Seconds() * 1000
	return res
}

// quantile reads the q-quantile of sorted latencies by the
// nearest-rank rule.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
