// Package ids is the intrusion-detection substrate standing in for the
// paper's security applications (§5.1.2): Tripwire checking the
// rover's image data store, and a custom checker comparing loaded
// kernel modules against an expected profile. The package provides
//
//   - a synthetic object store with content hashing and a baseline
//     snapshot (the Tripwire database),
//   - a kernel-module registry with rootkit insertion,
//   - attack injection (data-store tampering / module insertion), and
//   - detection-latency computation that maps a security job's
//     execution trace from the scheduler simulator onto scan progress,
//     reproducing the paper's measurement: the time from the attack
//     instant until the scanning task actually re-reads the tampered
//     artifact.
package ids

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// File is one object in the protected data store (an image captured by
// the rover's camera task, in the paper's setup).
type File struct {
	Name string
	Data []byte
}

// FileSystem is a synthetic flat object store.
type FileSystem struct {
	files []File
}

// NewFileSystem creates n files with deterministic pseudo-random
// content of the given size.
func NewFileSystem(rng *rand.Rand, n, size int) *FileSystem {
	fs := &FileSystem{files: make([]File, n)}
	for i := range fs.files {
		data := make([]byte, size)
		rng.Read(data)
		fs.files[i] = File{Name: fmt.Sprintf("img_%04d.raw", i), Data: data}
	}
	return fs
}

// FromFiles builds a store from explicit file contents (e.g. the
// frames a simulated camera task produced).
func FromFiles(files []File) *FileSystem {
	return &FileSystem{files: append([]File(nil), files...)}
}

// Len returns the number of files.
func (fs *FileSystem) Len() int { return len(fs.files) }

// Name returns the name of file k.
func (fs *FileSystem) Name(k int) string { return fs.files[k].Name }

// Hash returns the FNV-64a digest of file k's content.
func (fs *FileSystem) Hash(k int) uint64 {
	h := fnv.New64a()
	h.Write(fs.files[k].Data)
	return h.Sum64()
}

// Tamper simulates the paper's ARM-shellcode attack: it overwrites a
// portion of file k, changing its digest. It reports whether the
// digest actually changed (it always does for non-empty files).
func (fs *FileSystem) Tamper(rng *rand.Rand, k int) bool {
	f := &fs.files[k]
	if len(f.Data) == 0 {
		f.Data = []byte{0x90}
		return true
	}
	before := fs.Hash(k)
	// Flip a random byte; re-roll on the astronomically unlikely
	// digest collision.
	for {
		i := rng.Intn(len(f.Data))
		f.Data[i] ^= byte(1 + rng.Intn(255))
		if fs.Hash(k) != before {
			return true
		}
	}
}

// Baseline is the integrity database: name → digest at snapshot time
// (Tripwire's database file).
type Baseline map[string]uint64

// Snapshot records the current digest of every file.
func (fs *FileSystem) Snapshot() Baseline {
	b := make(Baseline, len(fs.files))
	for k := range fs.files {
		b[fs.files[k].Name] = fs.Hash(k)
	}
	return b
}

// CheckObject compares file k against the baseline and reports a
// mismatch (true = integrity violation detected).
func (b Baseline) CheckObject(fs *FileSystem, k int) bool {
	want, ok := b[fs.Name(k)]
	return !ok || want != fs.Hash(k)
}

// Scan verifies every object and returns the indices that mismatch —
// the whole-filesystem pass a single unpreempted Tripwire job
// performs.
func (b Baseline) Scan(fs *FileSystem) []int {
	var bad []int
	for k := 0; k < fs.Len(); k++ {
		if b.CheckObject(fs, k) {
			bad = append(bad, k)
		}
	}
	return bad
}
