package regression

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"hydrac/internal/loadgen"
)

// Side is one arm of a paired run: the merge-base build or the head
// build.
type Side struct {
	Name string
	SHA  string
	// Target boots the hydrad service for load cases; nil skips them.
	Target Target
	// TreeDir is a checkout to build gobench test binaries in; empty
	// skips gobench cases (e.g. under in-process self-test, where
	// there is no second tree to compile).
	TreeDir string
}

// Runner executes cases paired: N samples per side, interleaved —
// base, head, head, base, base, head, ... — so slow drift of the
// machine (thermal, noisy neighbours) hits both sides evenly instead
// of biasing whichever side ran last.
type Runner struct {
	Base, Head Side
	// Samples per side (default 5).
	Samples int
	// Logf receives progress lines; nil is quiet.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) samples() int {
	if r.Samples > 0 {
		return r.Samples
	}
	return 5
}

// RunCases measures every case and returns the results in order.
func (r *Runner) RunCases(cases []Case) []CaseResult {
	out := make([]CaseResult, 0, len(cases))
	for _, c := range cases {
		out = append(out, r.RunCase(c))
	}
	return out
}

// RunCase measures one case paired and judges it.
func (r *Runner) RunCase(c Case) CaseResult {
	start := time.Now()
	metric, unit := c.Experiment.Goal.Metric()
	res := CaseResult{
		Case:      c.Name,
		Goal:      c.Experiment.Goal,
		Metric:    metric,
		Unit:      unit,
		BaseSHA:   r.Base.SHA,
		HeadSHA:   r.Head.SHA,
		Samples:   r.samples(),
		Alpha:     c.Experiment.Alpha,
		Tolerance: c.Experiment.Tolerance,
	}
	fail := func(err error) CaseResult {
		res.Verdict = VerdictError
		res.Error = err.Error()
		res.WallS = time.Since(start).Seconds()
		return res
	}

	var sample func(s *Side) (float64, error)
	switch c.Profile.Kind {
	case KindLoad:
		if r.Base.Target == nil || r.Head.Target == nil {
			res.Verdict = VerdictSkipped
			res.Error = "no service target configured for load cases"
			res.WallS = time.Since(start).Seconds()
			return res
		}
		src, err := c.BuildSource()
		if err != nil {
			return fail(err)
		}
		sample = func(s *Side) (float64, error) { return r.loadSample(&c, s, src) }
	case KindGobench:
		if r.Base.TreeDir == "" || r.Head.TreeDir == "" {
			res.Verdict = VerdictSkipped
			res.Error = "no source trees configured for gobench cases"
			res.WallS = time.Since(start).Seconds()
			return res
		}
		bins := map[string]string{}
		tmp, err := os.MkdirTemp("", "hydraperf-gobench-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(tmp)
		for _, s := range []*Side{&r.Base, &r.Head} {
			// A side whose tree predates the benchmarked package (a
			// merge-base without the new subsystem) skips the case
			// rather than failing it; the gate self-heals once the
			// package reaches the base.
			if _, err := os.Stat(filepath.Join(s.TreeDir, filepath.FromSlash(strings.TrimPrefix(c.Profile.Package, "./")))); err != nil {
				res.Verdict = VerdictSkipped
				res.Error = fmt.Sprintf("%s tree has no package %s", s.Name, c.Profile.Package)
				res.WallS = time.Since(start).Seconds()
				return res
			}
			bin := filepath.Join(tmp, s.Name+".test")
			if err := buildTestBinary(s.TreeDir, c.Profile.Package, bin); err != nil {
				return fail(fmt.Errorf("building %s test binary: %w", s.Name, err))
			}
			bins[s.Name] = bin
		}
		_, unit := c.Experiment.Goal.Metric()
		sample = func(s *Side) (float64, error) {
			v, err := gobenchSample(bins[s.Name], s.TreeDir, c.Profile, unit)
			if err != nil && errors.Is(err, errNoBenchMatch) && s == &r.Base {
				// The bench was added in this PR inside a pre-existing
				// package, so the base binary builds but has nothing to
				// run. Skip — the gate self-heals once the bench reaches
				// the merge-base. A head-side miss stays a hard failure:
				// the head tree must always contain its own benches.
				return 0, fmt.Errorf("%w: %v", ErrUnsupported, err)
			}
			return v, err
		}
	default:
		return fail(fmt.Errorf("unknown case kind %q", c.Profile.Kind))
	}

	n := r.samples()
	for i := 0; i < n; i++ {
		// ABBA ordering: alternate which side goes first so linear
		// drift cancels instead of systematically favouring one side.
		order := []*Side{&r.Base, &r.Head}
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, s := range order {
			v, err := sample(s)
			if err != nil {
				if errors.Is(err, ErrUnsupported) {
					// One side cannot run this configuration at all
					// (e.g. a merge-base hydrad without -data-dir):
					// nothing to compare, nothing to gate.
					res.Verdict = VerdictSkipped
					res.Error = fmt.Sprintf("%s: %v", s.Name, err)
					res.WallS = time.Since(start).Seconds()
					return res
				}
				return fail(fmt.Errorf("%s sample %d: %w", s.Name, i, err))
			}
			if s == &r.Base {
				res.Base = append(res.Base, v)
			} else {
				res.Head = append(res.Head, v)
			}
			r.logf("%s: %s sample %d/%d: %s = %s", c.Name, s.Name, i+1, n, res.Metric, formatValue(v, res.Unit))
		}
	}
	res.judge()
	res.WallS = time.Since(start).Seconds()
	return res
}

// loadSample boots a fresh service on s, drives the case's load
// profile against it, and extracts the goal metric. Any failed
// request fails the sample: a gate that quietly measured errors would
// compare nonsense.
func (r *Runner) loadSample(c *Case, s *Side, src loadgen.Source) (float64, error) {
	url, stop, err := s.Target.Start(c.Profile.Daemon)
	if err != nil {
		return 0, err
	}
	defer stop()
	// A fleet target returns its members' URLs comma-joined; workers
	// spread round-robin and 307 ownership redirects are followed, so
	// a hop is routing, not an error. A single URL degenerates to the
	// historical single-target run.
	fleetLevels, err := loadgen.RunFleet(strings.Split(url, ","), src, loadgen.Config{
		Levels:   c.Profile.Concurrency,
		Duration: c.Profile.Duration,
		Warmup:   2,
		Retries:  c.Profile.Retries,
	})
	if err != nil {
		return 0, err
	}
	totalReq, totalDur, errs := 0, 0.0, 0
	p99 := 0.0
	for _, fl := range fleetLevels {
		l := fl.Aggregate
		totalReq += l.Requests
		totalDur += l.DurationS
		errs += l.Errors
		if l.P99MS > p99 {
			p99 = l.P99MS
		}
	}
	if errs > 0 {
		return 0, fmt.Errorf("%d failed requests during the measurement window", errs)
	}
	if totalReq == 0 {
		return 0, fmt.Errorf("no requests completed — duration too short for this profile")
	}
	switch c.Experiment.Goal {
	case GoalThroughput:
		return float64(totalReq) / totalDur, nil
	case GoalP99:
		return p99, nil
	}
	return 0, fmt.Errorf("goal %s is not a load metric", c.Experiment.Goal)
}

// buildTestBinary compiles pkg's test binary inside tree.
func buildTestBinary(tree, pkg, out string) error {
	cmd := exec.Command("go", "test", "-c", "-o", out, pkg)
	cmd.Dir = tree
	if b, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("%v: %s", err, strings.TrimSpace(string(b)))
	}
	return nil
}

// benchLine matches `go test -bench` result lines, e.g.
// "BenchmarkAnalyzeCold-8  100  488986 ns/op  14448 B/op  88 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// errNoBenchMatch reports a bench regexp that selected nothing in a
// side's test binary.
var errNoBenchMatch = errors.New("no benchmark matched")

// gobenchSample runs one -count=1 iteration of the profile's
// benchmark and returns the mean of the requested per-op unit
// ("allocs/op" or "ns/op") across matched benchmarks.
func gobenchSample(bin, dir string, p Profile, unit string) (float64, error) {
	cmd := exec.Command(bin,
		"-test.run", "^$",
		"-test.bench", p.Bench,
		"-test.benchmem",
		"-test.benchtime", p.Benchtime,
		"-test.count", "1",
	)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("%v: %s", err, strings.TrimSpace(string(out)))
	}
	sum, count := 0.0, 0
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i++ {
			if fields[i+1] == unit {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parsing %s from %q: %w", unit, line, err)
				}
				sum += v
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("%w %q (output: %s)", errNoBenchMatch, p.Bench, firstLines(string(out), 3))
	}
	return sum / float64(count), nil
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(strings.TrimSpace(s), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, " | ")
}
