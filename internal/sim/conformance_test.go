package sim

import (
	"math/rand"
	"testing"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/task"
)

// The central soundness check of the whole repository: whenever the
// HYDRA-C analysis accepts a task set (periods selected by Algorithm
// 1), the simulator — synchronous release, strictly periodic — must
// observe (a) zero RT deadline misses, and (b) security response times
// never above the analytic WCRT bound.
func TestAnalysisBoundsSimulatedResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 40
	checked := 0
	for g := 0; g < 8; g++ {
		for i := 0; i < 6; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			res, err := core.SelectPeriods(ts, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue
			}
			applied := core.Apply(ts, res)
			horizon := longestPeriod(applied) * 6
			out, err := Run(applied, Config{Policy: SemiPartitioned, Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			if out.RTDeadlineMisses != 0 {
				t.Fatalf("group %d: RT deadline misses in an analysis-accepted set", g)
			}
			for j, s := range applied.Security {
				st := out.Stats[s.Name]
				if st == nil || st.Completed == 0 {
					continue
				}
				if st.MaxResponse > res.Resp[j] {
					t.Fatalf("group %d: %s observed response %d exceeds analytic WCRT %d (period %d)",
						g, s.Name, st.MaxResponse, res.Resp[j], s.Period)
				}
			}
			if out.SecurityDeadlineMisses != 0 {
				t.Fatalf("group %d: security deadline misses despite Rs ≤ Ts", g)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d schedulable sets exercised; generator or analysis too restrictive", checked)
	}
	t.Logf("conformance checked on %d schedulable task sets", checked)
}

// Same soundness direction for the HYDRA baseline: partitioned
// placement with per-core period minimisation must simulate cleanly
// under the fully-partitioned policy.
func TestHydraBaselineConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 40
	checked := 0
	for g := 0; g < 6; g++ {
		for i := 0; i < 5; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			res, err := baseline.Hydra(ts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue
			}
			applied := baseline.ApplyPartitioned(ts, res)
			horizon := longestPeriod(applied) * 6
			out, err := Run(applied, Config{Policy: FullyPartitioned, Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			if out.RTDeadlineMisses != 0 {
				t.Fatalf("group %d: RT misses under HYDRA placement", g)
			}
			for j, s := range applied.Security {
				st := out.Stats[s.Name]
				if st == nil || st.Completed == 0 {
					continue
				}
				if st.MaxResponse > res.Resp[j] {
					t.Fatalf("group %d: %s observed %d > HYDRA bound %d", g, s.Name, st.MaxResponse, res.Resp[j])
				}
			}
			if out.Migrations != 0 {
				t.Fatalf("group %d: fully-partitioned run migrated %d times", g, out.Migrations)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d sets exercised", checked)
	}
}

// On identical workloads, migration can only help the *highest-
// priority* security task: it keeps its preference for its bound core
// and may additionally use any other idle core, while the RT
// interference it sees is unchanged. (Lower-priority tasks can lose:
// migrating higher-priority security tasks steal slack from cores
// that were private to them under pinning.)
func TestMigrationNeverHurtsMeanResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 40
	checked := 0
	for g := 1; g < 7; g++ {
		ts, err := cfg.Generate(rng, g)
		if err != nil {
			continue
		}
		hres, err := baseline.Hydra(ts)
		if err != nil {
			t.Fatal(err)
		}
		if !hres.Schedulable {
			continue
		}
		applied := baseline.ApplyPartitioned(ts, hres)
		horizon := longestPeriod(applied) * 6
		pinned, err := Run(applied, Config{Policy: FullyPartitioned, Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		migrating, err := Run(applied, Config{Policy: SemiPartitioned, Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		top := applied.SecurityByPriority()[0]
		p, m := pinned.Stats[top.Name], migrating.Stats[top.Name]
		if p != nil && m != nil && p.Completed > 0 && m.Completed > 0 {
			if m.MaxResponse > p.MaxResponse {
				t.Fatalf("group %d: top-priority %s max response worsened under migration: %d vs %d",
					g, top.Name, m.MaxResponse, p.MaxResponse)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no HYDRA-schedulable draws")
	}
}

func longestPeriod(ts *task.Set) task.Time {
	var longest task.Time
	for _, rt := range ts.RT {
		if rt.Period > longest {
			longest = rt.Period
		}
	}
	for _, s := range ts.Security {
		if s.Period > longest {
			longest = s.Period
		}
	}
	return longest
}
