package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hydrac/internal/rover"
)

func smallSweep(cores int) SweepConfig {
	cfg := DefaultSweepConfig(cores)
	cfg.SetsPerGroup = 12
	return cfg
}

func TestFig6ShapesAndRender(t *testing.T) {
	res, err := Fig6(smallSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 10 {
		t.Fatalf("groups = %d, want 10", len(res.Groups))
	}
	// Paper shape: the distance shrinks as utilisation grows. Compare
	// the mean of the three lowest groups against the highest
	// non-empty group.
	lowMean := (res.Groups[0].Distance.Mean() + res.Groups[1].Distance.Mean() + res.Groups[2].Distance.Mean()) / 3
	var high float64
	found := false
	for g := len(res.Groups) - 1; g >= 5; g-- {
		if res.Groups[g].Distance.N() > 0 {
			high = res.Groups[g].Distance.Mean()
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no schedulable sets in the upper half of the sweep")
	}
	if lowMean <= high {
		t.Errorf("Fig. 6 shape violated: low-util distance %.3f !> high-util distance %.3f", lowMean, high)
	}
	for _, g := range res.Groups {
		if m := g.Distance.Mean(); m < 0 || m > 1 {
			t.Errorf("distance %.3f outside [0,1]", m)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "[0.01,0.10]") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig7aShapesAndRender(t *testing.T) {
	res, err := Fig7a(smallSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	// Low-utilisation groups: everything near 100%.
	for _, s := range res.Schemes {
		if r := res.Groups[0].Acceptance[s].Ratio(); r < 90 {
			t.Errorf("group 0 acceptance for %s = %.1f, want ≈ 100", s, r)
		}
	}
	// Paper shape: HYDRA's (greedy, period-pinning) acceptance
	// collapses with utilisation while HYDRA-C stays high.
	mid := res.Groups[5]
	if hc, h := mid.Acceptance[SchemeHydraC].Ratio(), mid.Acceptance[SchemeHydra].Ratio(); hc <= h {
		t.Errorf("group 5: HYDRA-C %.1f%% !> HYDRA %.1f%%", hc, h)
	}
	// Monotone-ish collapse at the top for every scheme.
	top := res.Groups[9]
	for _, s := range res.Schemes {
		if top.Acceptance[s].Ratio() > res.Groups[0].Acceptance[s].Ratio() {
			t.Errorf("%s acceptance grew with utilisation", s)
		}
	}
	out := res.Render()
	for _, s := range res.Schemes {
		if !strings.Contains(out, string(s)) {
			t.Errorf("render missing scheme %s", s)
		}
	}
}

func TestFig7bShapesAndRender(t *testing.T) {
	res, err := Fig7b(smallSweep(2))
	if err != nil {
		t.Fatal(err)
	}
	// The vs-no-optimisation distance must be positive wherever
	// HYDRA-C schedules anything (period adaptation always moves
	// some period below Tmax on these workloads).
	for g, grp := range res.Groups {
		if grp.VsNoOpt.N() > 0 && grp.VsNoOpt.Mean() <= 0 {
			t.Errorf("group %d: vs-no-opt distance %.4f not positive", g, grp.VsNoOpt.Mean())
		}
		if grp.VsHydra.N() > 0 && grp.VsHydra.Mean() < 0 {
			t.Errorf("group %d: negative norm", g)
		}
	}
	// The paper notes HYDRA stops producing data points at high
	// utilisation; the joint sample must vanish before the HYDRA-C
	// sample does.
	lastJoint, lastHC := -1, -1
	for g, grp := range res.Groups {
		if grp.VsHydra.N() > 0 {
			lastJoint = g
		}
		if grp.VsNoOpt.N() > 0 {
			lastHC = g
		}
	}
	if lastJoint > lastHC {
		t.Errorf("joint sample survives (%d) beyond HYDRA-C sample (%d)", lastJoint, lastHC)
	}
	out := res.Render()
	if !strings.Contains(out, "HYDRA-C vs HYDRA") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig5RunsAndRenders(t *testing.T) {
	cfg := rover.DefaultTrialConfig()
	cfg.Trials = 5
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Fig. 5a", "Fig. 5b", "HYDRA-C", "Controlled", "CS ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if res.Migrating.ContextSwitches.Mean() <= res.Pinned.ContextSwitches.Mean() {
		t.Error("controlled comparison lost the Fig. 5b shape")
	}
}

// TestSerialParallelEquivalence is the sweep engine's determinism
// contract at the figure level: for a fixed seed, every figure is
// bitwise identical at any worker count — including the raw sample
// sequences behind the means, which reflect.DeepEqual sees through
// the unexported metrics.Sample fields.
func TestSerialParallelEquivalence(t *testing.T) {
	cfg := smallSweep(2)
	cfg.SetsPerGroup = 6
	runs := map[string]func(SweepConfig) (any, error){
		"Fig6":  func(c SweepConfig) (any, error) { return Fig6(c) },
		"Fig7a": func(c SweepConfig) (any, error) { return Fig7a(c) },
		"Fig7b": func(c SweepConfig) (any, error) { return Fig7b(c) },
	}
	for name, fig := range runs {
		serial := cfg
		serial.Parallel = 1
		ref, err := fig(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, workers := range []int{3, 4, 0} {
			par := cfg
			par.Parallel = workers
			got, err := fig(par)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: parallel=%d result differs from serial", name, workers)
			}
		}
	}
}

// TestFig5SerialParallelEquivalence extends the contract to the rover
// trial sweeps.
func TestFig5SerialParallelEquivalence(t *testing.T) {
	cfg := rover.DefaultTrialConfig()
	cfg.Trials = 5
	cfg.Parallel = 1
	ref, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 0} {
		cfg.Parallel = workers
		got, err := Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("Fig5 parallel=%d differs from serial", workers)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	res, err := Fig7a(SweepConfig{Cores: 2, SetsPerGroup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Cores  int `json:"Cores"`
		Groups []struct {
			Lo         float64            `json:"lo"`
			Hi         float64            `json:"hi"`
			Acceptance map[string]float64 `json:"acceptance_pct"`
		} `json:"Groups"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("archive does not parse: %v\n%s", err, buf.String())
	}
	if back.Cores != 2 || len(back.Groups) != 10 {
		t.Fatalf("archive malformed: %+v", back)
	}
	if _, ok := back.Groups[0].Acceptance["HYDRA-C"]; !ok {
		t.Fatalf("acceptance map missing HYDRA-C: %+v", back.Groups[0])
	}

	// Fig6 archives sample summaries.
	f6, err := Fig6(SweepConfig{Cores: 2, SetsPerGroup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"mean"`) {
		t.Fatalf("Fig6 archive lacks sample summaries:\n%s", buf.String())
	}
}
