package ids

import (
	"math"
	"math/rand"
)

// Hardware event monitoring substrate (Table 1's perf/OProfile row):
// statistical anomaly detection over hardware performance counters
// (Woo et al., DATE 2018 style). The platform exposes periodic counter
// samples (instructions, cache misses, branches); a security task
// fits a baseline distribution during a calibration phase and then
// flags samples whose z-score leaves the expected band — e.g. a
// crypto-mining payload inflating cache misses, or a rootkit hook
// inflating branch counts.

// CounterSample is one reading of the monitored counters.
type CounterSample struct {
	Instructions float64
	CacheMisses  float64
	Branches     float64
}

// CounterModel synthesises counter readings for a workload, with an
// optional compromise that shifts the distributions.
type CounterModel struct {
	rng        *rand.Rand
	base       CounterSample
	noise      float64 // relative std of benign noise
	compromise float64 // relative shift applied when compromised
	bad        bool
}

// NewCounterModel creates a benign counter source around the given
// means with the given relative noise.
func NewCounterModel(rng *rand.Rand, base CounterSample, noise float64) *CounterModel {
	return &CounterModel{rng: rng, base: base, noise: noise, compromise: 0.5}
}

// Compromise shifts subsequent samples by the model's compromise
// factor (default +50% cache misses and branches) — the observable
// footprint of the injected payload.
func (m *CounterModel) Compromise() { m.bad = true }

// Restore returns the model to benign behaviour.
func (m *CounterModel) Restore() { m.bad = false }

// Sample draws one reading.
func (m *CounterModel) Sample() CounterSample {
	jitter := func(mean float64) float64 {
		return mean * (1 + m.noise*m.rng.NormFloat64())
	}
	s := CounterSample{
		Instructions: jitter(m.base.Instructions),
		CacheMisses:  jitter(m.base.CacheMisses),
		Branches:     jitter(m.base.Branches),
	}
	if m.bad {
		s.CacheMisses *= 1 + m.compromise
		s.Branches *= 1 + m.compromise
	}
	return s
}

// HWMonitor is the statistical detector: calibrated mean/std per
// counter, then z-score thresholding.
type HWMonitor struct {
	n            int
	meanCM, m2CM float64
	meanBR, m2BR float64
	Threshold    float64
	calibrated   bool
}

// NewHWMonitor creates a detector with the given z-score threshold
// (3.0 is the usual three-sigma rule).
func NewHWMonitor(threshold float64) *HWMonitor {
	return &HWMonitor{Threshold: threshold}
}

// Calibrate folds one benign sample into the baseline (Welford).
func (h *HWMonitor) Calibrate(s CounterSample) {
	h.n++
	d := s.CacheMisses - h.meanCM
	h.meanCM += d / float64(h.n)
	h.m2CM += d * (s.CacheMisses - h.meanCM)
	d = s.Branches - h.meanBR
	h.meanBR += d / float64(h.n)
	h.m2BR += d * (s.Branches - h.meanBR)
	h.calibrated = h.n >= 2
}

// std returns the calibrated standard deviations.
func (h *HWMonitor) std() (cm, br float64) {
	if h.n < 2 {
		return 0, 0
	}
	return math.Sqrt(h.m2CM / float64(h.n-1)), math.Sqrt(h.m2BR / float64(h.n-1))
}

// Check classifies one sample; true means anomalous. An uncalibrated
// monitor never alarms (fail-safe for the RT system, fail-open for
// the attacker — the examples calibrate first).
func (h *HWMonitor) Check(s CounterSample) bool {
	if !h.calibrated {
		return false
	}
	cmStd, brStd := h.std()
	if cmStd == 0 || brStd == 0 {
		return false
	}
	zCM := math.Abs(s.CacheMisses-h.meanCM) / cmStd
	zBR := math.Abs(s.Branches-h.meanBR) / brStd
	return zCM > h.Threshold || zBR > h.Threshold
}

// Samples returns how many calibration samples were folded in.
func (h *HWMonitor) Samples() int { return h.n }
