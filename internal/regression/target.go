package regression

import (
	"bufio"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

// ErrUnsupported reports that the target build does not know a flag
// this case needs (e.g. a merge-base hydrad predating -data-dir). The
// runner turns it into a skipped verdict instead of a failure, so a
// case gating a brand-new feature self-heals once the feature is in
// the base.
var ErrUnsupported = errors.New("target does not support this case's configuration")

// Target boots one fresh service instance for one load sample. Every
// sample gets its own instance so cache state, session stores and GC
// history never leak between samples or sides.
type Target interface {
	Start(d DaemonOpts) (url string, stop func() error, err error)
}

// BinaryTarget runs a hydrad binary as a subprocess on an ephemeral
// loopback port — the production configuration, and the only way to
// run a build from a different commit (the merge-base worktree).
type BinaryTarget struct {
	// Bin is the hydrad executable to launch.
	Bin string
}

// startTimeout bounds how long a daemon may take to report its
// listening address.
const startTimeout = 10 * time.Second

func (t BinaryTarget) Start(d DaemonOpts) (string, func() error, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-cache", strconv.Itoa(d.Cache),
		"-sessions", strconv.Itoa(d.Sessions),
	}
	if d.MaxInflight > 0 {
		// Pass the whole gate triple so the subprocess matches what
		// HandlerTarget boots from the same DaemonOpts exactly; a base
		// build predating the flags turns into ErrUnsupported below.
		args = append(args,
			"-max-inflight", strconv.Itoa(d.MaxInflight),
			"-max-queue", strconv.Itoa(d.MaxQueue),
			"-queue-wait", d.QueueWait.String(),
		)
	}
	var dataDir string
	if d.DataDir {
		var err error
		dataDir, err = os.MkdirTemp("", "hydraperf-data-*")
		if err != nil {
			return "", nil, err
		}
		args = append(args, "-data-dir", dataDir)
	}
	cleanupData := func() {
		if dataDir != "" {
			_ = os.RemoveAll(dataDir)
		}
	}
	cmd := exec.Command(t.Bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		cleanupData()
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		cleanupData()
		return "", nil, fmt.Errorf("starting %s: %w", t.Bin, err)
	}
	// hydrad reports "hydrad: listening on HOST:PORT" once its
	// listener is bound; -addr :0 makes the port ephemeral, so this
	// line is the only way to learn it.
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(addr):
				default:
				}
			}
			// An older build rejecting a flag it predates (merge-base
			// hydrad vs a case needing -data-dir): not a regression,
			// just a configuration the base cannot run.
			if strings.Contains(line, "flag provided but not defined") {
				select {
				case errc <- fmt.Errorf("%w: %s", ErrUnsupported, strings.TrimSpace(line)):
				default:
				}
			}
		}
		select {
		case errc <- sc.Err():
		default:
		}
	}()
	stop := func() error {
		defer cleanupData()
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			return nil
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			return fmt.Errorf("%s ignored SIGTERM; killed", t.Bin)
		}
	}
	select {
	case addr := <-addrc:
		return "http://" + addr, stop, nil
	case err := <-errc:
		stop()
		if errors.Is(err, ErrUnsupported) {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%s exited before listening (stderr closed: %v)", t.Bin, err)
	case <-time.After(startTimeout):
		stop()
		return "", nil, fmt.Errorf("%s did not report a listening address within %s", t.Bin, startTimeout)
	}
}

// HandlerTarget mounts the real hydrad handler (internal/hydradhttp)
// on an httptest server in-process. It exists for the harness's own
// tests and self-test modes: Wrap lets a test inject a synthetic
// regression (e.g. a sleep before the analyze handler) into ONE side
// of a paired run.
type HandlerTarget struct {
	// Wrap, when non-nil, decorates the handler (middleware).
	Wrap func(http.Handler) http.Handler
}

func (t HandlerTarget) Start(d DaemonOpts) (string, func() error, error) {
	a, err := hydrac.New(hydrac.WithCache(d.Cache))
	if err != nil {
		return "", nil, err
	}
	cfg := hydradhttp.Config{
		Analyzer:    a,
		Summary:     map[string]any{"cache": d.Cache},
		MaxSessions: d.Sessions,
		CacheSize:   d.Cache,
	}
	if d.MaxInflight > 0 {
		cfg.MaxInflight = d.MaxInflight
		cfg.MaxQueue = d.MaxQueue
		cfg.QueueWait = d.QueueWait
	}
	var dataDir string
	if d.DataDir {
		dataDir, err = os.MkdirTemp("", "hydraperf-data-*")
		if err != nil {
			return "", nil, err
		}
		st, err := store.Open(dataDir, a, store.Options{MaxLive: d.Sessions})
		if err != nil {
			_ = os.RemoveAll(dataDir)
			return "", nil, err
		}
		cfg.Store = st
	}
	h := hydradhttp.NewHandler(cfg)
	if t.Wrap != nil {
		h = t.Wrap(h)
	}
	srv := httptest.NewServer(h)
	stop := func() error {
		srv.Close()
		if cfg.Store != nil {
			_ = cfg.Store.Close()
			_ = os.RemoveAll(dataDir)
		}
		return nil
	}
	return srv.URL, stop, nil
}

// SleepInjector returns a Wrap middleware that delays every request
// by d — the canonical synthetic regression for harness self-tests
// (ISSUE 6's "sleep in the analyze handler").
func SleepInjector(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(d)
			next.ServeHTTP(w, r)
		})
	}
}
