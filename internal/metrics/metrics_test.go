package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hydrac/internal/task"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNormalizedPeriodDistance(t *testing.T) {
	maxP := []task.Time{100, 100}
	// Periods at the bound: distance 0.
	if d := NormalizedPeriodDistance([]task.Time{100, 100}, maxP); !almost(d, 0) {
		t.Errorf("distance at bound = %v, want 0", d)
	}
	// Periods halved: ||(50,50)|| / ||(100,100)|| = 0.5.
	if d := NormalizedPeriodDistance([]task.Time{50, 50}, maxP); !almost(d, 0.5) {
		t.Errorf("halved periods distance = %v, want 0.5", d)
	}
	// Degenerate inputs.
	if d := NormalizedPeriodDistance(nil, nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
	if d := NormalizedPeriodDistance([]task.Time{1}, []task.Time{1, 2}); d != 0 {
		t.Errorf("length mismatch distance = %v", d)
	}
}

func TestNormalizedVectorDistance(t *testing.T) {
	a := []task.Time{30, 40}
	b := []task.Time{0, 0}
	ref := []task.Time{50, 0}
	// ||(30,40)|| = 50, ||ref|| = 50 → 1.
	if d := NormalizedVectorDistance(a, b, ref); !almost(d, 1) {
		t.Errorf("distance = %v, want 1", d)
	}
	if d := NormalizedVectorDistance(a, b, []task.Time{0, 0}); d != 0 {
		t.Errorf("zero reference distance = %v, want 0", d)
	}
}

func TestAcceptance(t *testing.T) {
	var a Acceptance
	if a.Ratio() != 0 {
		t.Errorf("empty ratio = %v", a.Ratio())
	}
	a.Add(true)
	a.Add(true)
	a.Add(false)
	a.Add(true)
	if !almost(a.Ratio(), 75) {
		t.Errorf("ratio = %v, want 75", a.Ratio())
	}
	if a.Accepted != 3 || a.Total != 4 {
		t.Errorf("counters = %+v", a)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample must report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic set: sqrt(32/7).
	if !almost(s.Std(), math.Sqrt(32.0/7)) {
		t.Errorf("std = %v, want %v", s.Std(), math.Sqrt(32.0/7))
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 4 {
		t.Errorf("p50 = %v, want 4", got)
	}
	if got := s.Percentile(0); got != 2 {
		t.Errorf("p0 = %v, want 2", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Errorf("p100 = %v, want 9", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("p%.0f = %v, want 42", p, got)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	for _, v := range []float64{5, 30, 31, 99, -10, 150} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	// -10 clamps into bucket 0; 150 clamps into bucket 3.
	want := []int{2, 2, 0, 2}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("render malformed:\n%s", out)
	}
	var s Sample
	s.Add(10)
	s.Add(20)
	h.AddSample(&s)
	if h.N() != 8 {
		t.Errorf("AddSample: N = %d", h.N())
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestSampleSummaryJSON(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 100} {
		s.Add(v)
	}
	sum := s.Summary()
	if sum.N != 5 || sum.Min != 1 || sum.Max != 100 || sum.P50 != 3 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	raw, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back SampleSummary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != sum {
		t.Fatalf("round trip: %+v vs %+v", back, sum)
	}
}

// Merging contiguous shard partials in shard order must reproduce the
// serial sample exactly — value order included — and acceptance counts
// must combine additively. This is what the parallel sweep engine
// relies on.
func TestSampleMergePreservesOrder(t *testing.T) {
	var serial, shardA, shardB, merged Sample
	values := []float64{0.3, 0.1, 0.7, 0.2, 0.9}
	for _, v := range values {
		serial.Add(v)
	}
	for _, v := range values[:2] {
		shardA.Add(v)
	}
	for _, v := range values[2:] {
		shardB.Add(v)
	}
	merged.Merge(&shardA)
	merged.Merge(&shardB)
	if merged.N() != serial.N() || merged.Mean() != serial.Mean() || merged.Std() != serial.Std() {
		t.Fatalf("merged sample diverged: n=%d mean=%v std=%v, want n=%d mean=%v std=%v",
			merged.N(), merged.Mean(), merged.Std(), serial.N(), serial.Mean(), serial.Std())
	}
	if merged.Percentile(50) != serial.Percentile(50) {
		t.Fatal("percentile diverged after merge")
	}
	// Merging an empty sample is a no-op in both directions.
	var empty Sample
	before := merged.N()
	merged.Merge(&empty)
	if merged.N() != before {
		t.Fatal("merging empty changed N")
	}
	empty.Merge(&merged)
	if empty.N() != before {
		t.Fatal("merge into empty lost values")
	}
}

func TestAcceptanceMerge(t *testing.T) {
	var a, b Acceptance
	a.Add(true)
	a.Add(false)
	b.Add(true)
	b.Add(true)
	a.Merge(&b)
	if a.Accepted != 3 || a.Total != 4 {
		t.Fatalf("merged acceptance %d/%d, want 3/4", a.Accepted, a.Total)
	}
	if r := a.Ratio(); r != 75 {
		t.Fatalf("ratio %v, want 75", r)
	}
}
