package seed

import (
	"math"
	"math/rand"
	"testing"
)

func TestAtIndependence(t *testing.T) {
	seen := map[int64][2]int{}
	for g := 0; g < 50; g++ {
		for i := 0; i < 50; i++ {
			s := At(2020, g, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d)", g, i, prev[0], prev[1])
			}
			seen[s] = [2]int{g, i}
		}
	}
	// Different base seeds must decorrelate the whole grid.
	if At(1, 0, 0) == At(2, 0, 0) {
		t.Error("base seed ignored")
	}
	// Streams must look uniform enough that neighbouring items don't
	// produce correlated first draws.
	var mean float64
	const n = 2000
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(At(9, 0, i)))
		mean += rng.Float64()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.03 {
		t.Errorf("first-draw mean %.3f across consecutive items, want ≈ 0.5", mean)
	}
}
