// Package ring is the deterministic consistent-hash ring behind
// hydrad's fleet tier: it maps session ids to an owner node so that
// every node in a peer group, given the same membership list, computes
// the same owner without any coordination — and so that membership
// changes move only the minimal share of ids.
//
// The construction is the classic virtual-node ring: each node is
// hashed onto Replicas points of a 64-bit circle, and an id is owned
// by the node whose point follows the id's hash clockwise. Hashing is
// FNV-1a finished with a splitmix64-style mixer — cheap, dependency
// free, and byte-for-byte reproducible across processes, platforms
// and Go versions, which is what makes uncoordinated agreement work.
// Removing a node deletes only that node's points, so only ids that
// landed on those points move (to their ring successor); everything
// else keeps its owner. The property tests pin both halves: exact
// "only the leaver's ids move" on membership change, and an upper
// bound on the moved share near the ideal K/N.
package ring

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per node. 128 points per
// node keeps the expected ownership imbalance within a few percent
// for fleets of 2-100 nodes while construction stays trivially cheap.
const DefaultReplicas = 128

// point is one virtual node: a position on the hash circle and the
// index (into the sorted node list) of the node that owns it.
type point struct {
	hash uint64
	node int32
}

// Ring maps ids to owner nodes. Immutable after New; safe for
// concurrent use.
type Ring struct {
	nodes    []string // sorted, deduplicated
	points   []point  // sorted by (hash, node)
	replicas int
}

// New builds a ring over nodes. The node list is sorted and must be
// free of duplicates and non-empty; order of the input does not
// matter — two processes given the same set in any order build the
// identical ring. replicas <= 0 means DefaultReplicas.
func New(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("ring: duplicate node %q", sorted[i])
		}
	}
	r := &Ring{nodes: sorted, replicas: replicas}
	r.points = make([]point, 0, len(sorted)*replicas)
	for ni, n := range sorted {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: vnodeHash(n, v), node: int32(ni)})
		}
	}
	// Ties between distinct nodes' points are broken by node order so
	// the winner never depends on input ordering; a 64-bit collision
	// is astronomically unlikely but must not be a source of
	// nondeterminism.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node owning id: the first virtual node at or
// after the id's hash, wrapping at the top of the circle.
func (r *Ring) Owner(id string) string {
	return r.nodes[r.points[r.successor(hashID(id))].node]
}

// Successors returns every node in ring-walk order starting at id's
// owner: Successors(id)[0] == Owner(id), and each later element is
// the next DISTINCT node encountered clockwise. This is the failover
// order — when an owner is down, the id is served by the first
// healthy node in this list.
func (r *Ring) Successors(id string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	start := r.successor(hashID(id))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// successor finds the index of the first point with hash >= h,
// wrapping to 0 past the last point.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashID hashes a session id onto the circle: FNV-1a 64 plus a final
// mix, so ids differing only in their last byte still spread.
func hashID(id string) uint64 {
	return mix64(fnv1a(id))
}

// vnodeHash places virtual node v of a node on the circle. The vnode
// name ("node#v") is hashed the same way as ids so points and keys
// share one distribution.
func vnodeHash(node string, v int) uint64 {
	h := fnv1a(node)
	h = fnv1aAdd(h, "#")
	h = fnv1aAdd(h, strconv.Itoa(v))
	return mix64(h)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(s string) uint64 { return fnv1aAdd(fnvOffset64, s) }

func fnv1aAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap avalanche so FNV's weak
// low-byte diffusion cannot cluster points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
