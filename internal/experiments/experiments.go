// Package experiments regenerates every figure of the paper's
// evaluation (§5) from this repository's implementations: the rover
// intrusion-detection trials (Figs. 5a, 5b) and the synthetic
// design-space exploration (Figs. 6, 7a, 7b). The same entry points
// back cmd/rover, cmd/sweep and the root-level benchmarks, so a figure
// is always reproduced by exactly one code path.
package experiments

import (
	"fmt"
	"strings"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/metrics"
	"hydrac/internal/sweep"
	"hydrac/internal/task"
)

// SweepConfig parameterises the synthetic experiments.
type SweepConfig struct {
	// Cores is M (the paper evaluates 2 and 4).
	Cores int
	// SetsPerGroup is the number of task sets per utilisation group
	// (paper: 250; benches use fewer).
	SetsPerGroup int
	// Seed makes sweeps reproducible. Every task set is drawn from a
	// private stream derived from (Seed, group, index), so the figures
	// are a pure function of this configuration — independent of
	// Parallel and of execution order.
	Seed int64
	// CarryIn selects the Eq. 8 strategy for HYDRA-C (ablations flip
	// this to core.Exhaustive).
	CarryIn core.CarryInMode
	// Parallel is the sweep worker count: 0 uses GOMAXPROCS, 1 forces
	// serial execution. Results are identical at any value (see
	// DESIGN.md for the determinism contract).
	Parallel int
	// Progress, when non-nil, receives (done, total) task-set counts
	// as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

// engine maps the sweep parameters onto the generic runner.
func (c SweepConfig) engine(gcfg gen.Config) sweep.Config {
	return sweep.Config{
		Groups:   gcfg.Groups,
		PerGroup: c.SetsPerGroup,
		Workers:  c.Parallel,
		Progress: c.Progress,
	}
}

// DefaultSweepConfig returns the paper's configuration for M cores.
func DefaultSweepConfig(cores int) SweepConfig {
	return SweepConfig{Cores: cores, SetsPerGroup: 250, Seed: 2020}
}

func (c SweepConfig) genConfig() gen.Config {
	g := gen.TableThree(c.Cores)
	g.SetsPerGroup = c.SetsPerGroup
	return g
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Group is one utilisation bin of Fig. 6.
type Fig6Group struct {
	// Lo and Hi bound the normalised utilisation of the group.
	Lo, Hi float64
	// Distance is the mean normalised Euclidean distance between the
	// HYDRA-C period vector and the Tmax vector over the group's
	// schedulable sets; larger = security tasks run more frequently.
	Distance metrics.Sample
	// Schedulable counts the sets HYDRA-C accepted; Generated counts
	// the sets drawn (generation failures excluded, as in the paper).
	Schedulable, Generated int
}

// Fig6Result is the full Fig. 6 series for one core count.
type Fig6Result struct {
	Cores  int
	Groups []Fig6Group
}

// Fig6 regenerates the paper's Fig. 6: how far below Tmax the periods
// land per utilisation group. The sweep is sharded across
// cfg.Parallel workers with per-item seeding, so the result is
// identical at any worker count.
func Fig6(cfg SweepConfig) (*Fig6Result, error) {
	gcfg := cfg.genConfig()
	newPartial := func() *Fig6Result {
		out := &Fig6Result{Cores: cfg.Cores, Groups: make([]Fig6Group, gcfg.Groups)}
		for g := range out.Groups {
			out.Groups[g].Lo, out.Groups[g].Hi = gcfg.GroupRange(g)
		}
		return out
	}
	return sweep.Run(cfg.engine(gcfg), newPartial,
		func(p *Fig6Result, it sweep.Item) error {
			grp := &p.Groups[it.Group]
			ts, err := gcfg.GenerateAt(cfg.Seed, it.Group, it.Index)
			if err != nil {
				return nil // no partitionable draw: skipped, as in the paper
			}
			grp.Generated++
			res, err := core.SelectPeriods(ts, core.Options{CarryIn: cfg.CarryIn})
			if err != nil {
				return err
			}
			if !res.Schedulable {
				return nil
			}
			grp.Schedulable++
			grp.Distance.Add(metrics.NormalizedPeriodDistance(res.Periods, maxPeriods(ts)))
			return nil
		},
		func(dst, src *Fig6Result) {
			for g := range dst.Groups {
				d, s := &dst.Groups[g], &src.Groups[g]
				d.Generated += s.Generated
				d.Schedulable += s.Schedulable
				d.Distance.Merge(&s.Distance)
			}
		})
}

// Render prints the Fig. 6 series as the paper's bar values.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — distance from maximum period vs normalised utilisation (%d cores)\n", r.Cores)
	fmt.Fprintf(&b, "%-12s %-10s %-12s %s\n", "util U/M", "sets", "schedulable", "mean distance (±std)")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "[%.2f,%.2f]  %-10d %-12d %.3f ±%.3f\n",
			g.Lo, g.Hi, g.Generated, g.Schedulable, g.Distance.Mean(), g.Distance.Std())
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 7a

// SchemeName identifies one scheme column of Fig. 7a.
type SchemeName string

// The four schemes of Fig. 7a plus the lookahead HYDRA variant kept as
// an ablation column.
const (
	SchemeHydraC         SchemeName = "HYDRA-C"
	SchemeHydra          SchemeName = "HYDRA"
	SchemeGlobalTMax     SchemeName = "GLOBAL-TMax"
	SchemeHydraTMax      SchemeName = "HYDRA-TMax"
	SchemeHydraLookahead SchemeName = "HYDRA-LA"
)

// Fig7aGroup is one utilisation bin with per-scheme acceptance.
type Fig7aGroup struct {
	Lo, Hi     float64
	Acceptance map[SchemeName]*metrics.Acceptance
}

// Fig7aResult is the acceptance-ratio series of Fig. 7a.
type Fig7aResult struct {
	Cores   int
	Schemes []SchemeName
	Groups  []Fig7aGroup
}

// Fig7a regenerates the acceptance-ratio comparison. Draws that cannot
// even partition their RT band count as rejected for every scheme
// (they are unschedulable as legacy systems).
func Fig7a(cfg SweepConfig) (*Fig7aResult, error) {
	gcfg := cfg.genConfig()
	schemes := []SchemeName{SchemeHydraC, SchemeHydra, SchemeGlobalTMax, SchemeHydraTMax, SchemeHydraLookahead}
	newPartial := func() *Fig7aResult {
		out := &Fig7aResult{Cores: cfg.Cores, Schemes: schemes, Groups: make([]Fig7aGroup, gcfg.Groups)}
		for g := range out.Groups {
			grp := &out.Groups[g]
			grp.Lo, grp.Hi = gcfg.GroupRange(g)
			grp.Acceptance = map[SchemeName]*metrics.Acceptance{}
			for _, s := range schemes {
				grp.Acceptance[s] = &metrics.Acceptance{}
			}
		}
		return out
	}
	return sweep.Run(cfg.engine(gcfg), newPartial,
		func(p *Fig7aResult, it sweep.Item) error {
			grp := &p.Groups[it.Group]
			ts, err := gcfg.GenerateAt(cfg.Seed, it.Group, it.Index)
			if err != nil {
				for _, s := range schemes {
					grp.Acceptance[s].Add(false)
				}
				return nil
			}
			cres, err := core.SelectPeriods(ts, core.Options{CarryIn: cfg.CarryIn})
			if err != nil {
				return err
			}
			grp.Acceptance[SchemeHydraC].Add(cres.Schedulable)

			ares, err := baseline.HydraAggressive(ts)
			if err != nil {
				return err
			}
			grp.Acceptance[SchemeHydra].Add(ares.Schedulable)

			gres, err := baseline.GlobalTMax(ts)
			if err != nil {
				return err
			}
			grp.Acceptance[SchemeGlobalTMax].Add(gres.Schedulable)

			tres, err := baseline.HydraTMax(ts)
			if err != nil {
				return err
			}
			grp.Acceptance[SchemeHydraTMax].Add(tres.Schedulable)

			lres, err := baseline.Hydra(ts)
			if err != nil {
				return err
			}
			grp.Acceptance[SchemeHydraLookahead].Add(lres.Schedulable)
			return nil
		},
		func(dst, src *Fig7aResult) {
			for g := range dst.Groups {
				for _, s := range schemes {
					dst.Groups[g].Acceptance[s].Merge(src.Groups[g].Acceptance[s])
				}
			}
		})
}

// Render prints the Fig. 7a acceptance table.
func (r *Fig7aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7a — acceptance ratio (%%) vs normalised utilisation (%d cores)\n", r.Cores)
	fmt.Fprintf(&b, "%-12s", "util U/M")
	for _, s := range r.Schemes {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "[%.2f,%.2f] ", g.Lo, g.Hi)
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %12.1f", g.Acceptance[s].Ratio())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 7b

// Fig7bGroup is one utilisation bin of Fig. 7b.
type Fig7bGroup struct {
	Lo, Hi float64
	// VsHydra is ‖T*_HYDRA-C − T*_HYDRA‖/‖Tmax‖ over the sets both
	// schemes accept (the dashed series of Fig. 7b).
	VsHydra metrics.Sample
	// VsNoOpt is ‖T*_HYDRA-C − Tmax‖/‖Tmax‖ over HYDRA-C-schedulable
	// sets (the dotted series: GLOBAL-TMax / HYDRA-TMax use Tmax).
	VsNoOpt metrics.Sample
	// HydraCShorter / HydraShorter count, among the jointly
	// schedulable sets, whose aggregate period vector sits closer to
	// zero — the directional information Fig. 7b's caption claims.
	HydraCShorter, HydraShorter int
}

// Fig7bResult is the period-vector-difference series of Fig. 7b.
type Fig7bResult struct {
	Cores  int
	Groups []Fig7bGroup
}

// Fig7b regenerates the period-vector comparison of Fig. 7b.
func Fig7b(cfg SweepConfig) (*Fig7bResult, error) {
	gcfg := cfg.genConfig()
	newPartial := func() *Fig7bResult {
		out := &Fig7bResult{Cores: cfg.Cores, Groups: make([]Fig7bGroup, gcfg.Groups)}
		for g := range out.Groups {
			out.Groups[g].Lo, out.Groups[g].Hi = gcfg.GroupRange(g)
		}
		return out
	}
	return sweep.Run(cfg.engine(gcfg), newPartial,
		func(p *Fig7bResult, it sweep.Item) error {
			grp := &p.Groups[it.Group]
			ts, err := gcfg.GenerateAt(cfg.Seed, it.Group, it.Index)
			if err != nil {
				return nil
			}
			cres, err := core.SelectPeriods(ts, core.Options{CarryIn: cfg.CarryIn})
			if err != nil {
				return err
			}
			if !cres.Schedulable {
				return nil
			}
			maxp := maxPeriods(ts)
			grp.VsNoOpt.Add(metrics.NormalizedVectorDistance(cres.Periods, maxp, maxp))

			ares, err := baseline.HydraAggressive(ts)
			if err != nil {
				return err
			}
			if !ares.Schedulable {
				return nil // fewer data points at high utilisation, as the paper notes
			}
			grp.VsHydra.Add(metrics.NormalizedVectorDistance(cres.Periods, ares.Periods, maxp))
			dc := metrics.NormalizedPeriodDistance(cres.Periods, maxp)
			dh := metrics.NormalizedPeriodDistance(ares.Periods, maxp)
			switch {
			case dc > dh+1e-12:
				grp.HydraCShorter++
			case dh > dc+1e-12:
				grp.HydraShorter++
			}
			return nil
		},
		func(dst, src *Fig7bResult) {
			for g := range dst.Groups {
				d, s := &dst.Groups[g], &src.Groups[g]
				d.VsHydra.Merge(&s.VsHydra)
				d.VsNoOpt.Merge(&s.VsNoOpt)
				d.HydraCShorter += s.HydraCShorter
				d.HydraShorter += s.HydraShorter
			}
		})
}

// Render prints the Fig. 7b series.
func (r *Fig7bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7b — normalised period-vector difference (%d cores)\n", r.Cores)
	fmt.Fprintf(&b, "%-12s %-22s %-22s %s\n", "util U/M", "HYDRA-C vs HYDRA", "HYDRA-C vs w/o opt", "shorter-periods count (HC/H)")
	for _, g := range r.Groups {
		vh := "-"
		if g.VsHydra.N() > 0 {
			vh = fmt.Sprintf("%.3f (n=%d)", g.VsHydra.Mean(), g.VsHydra.N())
		}
		vn := "-"
		if g.VsNoOpt.N() > 0 {
			vn = fmt.Sprintf("%.3f (n=%d)", g.VsNoOpt.Mean(), g.VsNoOpt.N())
		}
		fmt.Fprintf(&b, "[%.2f,%.2f]  %-22s %-22s %d/%d\n", g.Lo, g.Hi, vh, vn, g.HydraCShorter, g.HydraShorter)
	}
	return b.String()
}

func maxPeriods(ts *task.Set) []task.Time {
	out := make([]task.Time, len(ts.Security))
	for i, s := range ts.Security {
		out[i] = s.MaxPeriod
	}
	return out
}
