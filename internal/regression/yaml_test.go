package regression

import (
	"reflect"
	"testing"
)

func TestParseYAMLProfileShape(t *testing.T) {
	doc := `
# a load profile
kind: load            # trailing comment
duration: 700ms
concurrency: [1, 4]
daemon:
  cache: 16
  sessions: 64
mix:
  cold: 3
  dup: 1
workload:
  cores: 4
  group: 4
  seed: 601
  sets: 64
note: "quoted: with colon"
tags:
  - fast
  - 'cold path'
`
	got, err := parseYAML(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"kind":        "load",
		"duration":    "700ms",
		"concurrency": []any{int64(1), int64(4)},
		"daemon":      map[string]any{"cache": int64(16), "sessions": int64(64)},
		"mix":         map[string]any{"cold": int64(3), "dup": int64(1)},
		"workload": map[string]any{
			"cores": int64(4), "group": int64(4), "seed": int64(601), "sets": int64(64),
		},
		"note": "quoted: with colon",
		"tags": []any{"fast", "cold path"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", got, want)
	}
}

func TestParseYAMLScalars(t *testing.T) {
	got, err := parseYAML("a: true\nb: 1.5\nc: -3\nd: plain text\ne: 0.05\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"a": true, "b": 1.5, "c": int64(-3), "d": "plain text", "e": 0.05}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %#v, want %#v", got, want)
	}
}

func TestParseYAMLDeepNesting(t *testing.T) {
	got, err := parseYAML("a:\n  b:\n    c: 1\n  d: 2\ne: 3\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"a": map[string]any{"b": map[string]any{"c": int64(1)}, "d": int64(2)},
		"e": int64(3),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %#v, want %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	bad := map[string]string{
		"dangling key":         "a:\n",
		"dangling nested key":  "a:\n  b:\nc: 1\n",
		"tab indent":           "a:\n\tb: 1\n",
		"duplicate key":        "a: 1\na: 2\n",
		"top-level sequence":   "- a\n- b\n",
		"sequence of mappings": "a:\n  - b: 1\n",
		"flow mapping":         "a: {b: 1}\n",
		"unterminated quote":   "a: \"oops\n",
		"unterminated flow":    "a: [1, 2\n",
		"anchor":               "a: &x\n",
		"keyless line":         "a: 1\nnot a pair\n",
	}
	for name, doc := range bad {
		if _, err := parseYAML(doc); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	got, err := parseYAML("\n# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %#v from empty doc", got)
	}
}
