package sim

import (
	"testing"

	"hydrac/internal/task"
)

func modeSwitchSet() *task.Set {
	return &task.Set{
		Cores: 1,
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 10, Period: 100, MaxPeriod: 200, Priority: 0, Core: -1},
		},
	}
}

func TestModeSwitchEscalatesDemand(t *testing.T) {
	ts := modeSwitchSet()
	res, err := Run(ts, Config{
		Horizon:         1000,
		RecordIntervals: true,
		ModeSwitches:    []ModeSwitch{{Task: "mon", At: 300, Until: 500, AlertWCET: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.JobsOf("mon") {
		var exec task.Time
		for _, iv := range j.Intervals {
			exec += iv.Duration()
		}
		want := task.Time(10)
		if j.Release >= 300 && j.Release < 500 {
			want = 40
		}
		if j.Finish >= 0 && exec != want {
			t.Errorf("job released at %d executed %d ticks, want %d", j.Release, exec, want)
		}
	}
}

func TestModeSwitchOpenEnded(t *testing.T) {
	ts := modeSwitchSet()
	res, err := Run(ts, Config{
		Horizon:         1000,
		RecordIntervals: true,
		ModeSwitches:    []ModeSwitch{{Task: "mon", At: 500, AlertWCET: 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	escalated := 0
	for _, j := range res.JobsOf("mon") {
		if j.Release < 500 || j.Finish < 0 {
			continue
		}
		var exec task.Time
		for _, iv := range j.Intervals {
			exec += iv.Duration()
		}
		if exec != 25 {
			t.Errorf("job at %d executed %d, want 25 (open-ended switch)", j.Release, exec)
		}
		escalated++
	}
	if escalated == 0 {
		t.Fatal("no escalated jobs observed")
	}
}

func TestModeSwitchIgnoresOtherTasks(t *testing.T) {
	ts := modeSwitchSet()
	ts.Security = append(ts.Security, task.SecurityTask{
		Name: "other", WCET: 5, Period: 100, MaxPeriod: 200, Priority: 1, Core: -1,
	})
	res, err := Run(ts, Config{
		Horizon:         500,
		RecordIntervals: true,
		ModeSwitches:    []ModeSwitch{{Task: "mon", At: 0, AlertWCET: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.JobsOf("other") {
		var exec task.Time
		for _, iv := range j.Intervals {
			exec += iv.Duration()
		}
		if j.Finish >= 0 && exec != 5 {
			t.Errorf("unrelated task escalated: %d ticks", exec)
		}
	}
}
