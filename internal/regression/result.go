package regression

import (
	"fmt"
	"sort"
	"strings"
)

// Verdicts a paired run can reach.
const (
	// VerdictImproved: significant change in the goal's good direction
	// beyond tolerance.
	VerdictImproved = "improved"
	// VerdictNoChange: no more-than-random change beyond tolerance.
	VerdictNoChange = "no-change"
	// VerdictRegressed: significant change in the bad direction beyond
	// tolerance — this is what fails `hydraperf check`.
	VerdictRegressed = "regressed"
	// VerdictSkipped: the case could not run in this configuration
	// (e.g. a gobench case under in-process self-test).
	VerdictSkipped = "skipped"
	// VerdictError: the harness failed to measure (build failure,
	// daemon crash, failed requests) — also fails `hydraperf check`,
	// since an unmeasurable gate protects nothing.
	VerdictError = "error"
)

// CaseResult is one case's paired outcome; `hydraperf run` writes one
// JSON document per case and appends the condensed form to the
// case's history.
type CaseResult struct {
	Case    string    `json:"case"`
	Goal    Goal      `json:"goal"`
	Metric  string    `json:"metric"`
	Unit    string    `json:"unit"`
	BaseSHA string    `json:"base_sha,omitempty"`
	HeadSHA string    `json:"head_sha,omitempty"`
	Samples int       `json:"samples"`
	Base    []float64 `json:"base_samples,omitempty"`
	Head    []float64 `json:"head_samples,omitempty"`
	// BaseMedian/HeadMedian summarise the samples; Change is the
	// relative move (head-base)/base of the medians.
	BaseMedian float64 `json:"base_median"`
	HeadMedian float64 `json:"head_median"`
	Change     float64 `json:"change"`
	// P is the two-sided Mann–Whitney p-value; Alpha and Tolerance the
	// gate parameters it was judged against.
	P         float64 `json:"p"`
	Alpha     float64 `json:"alpha"`
	Tolerance float64 `json:"tolerance"`
	Verdict   string  `json:"verdict"`
	Error     string  `json:"error,omitempty"`
	// WallS is how long the paired case took to measure.
	WallS float64 `json:"wall_s"`
}

// judge fills the statistical fields of a result whose samples are
// complete: medians, relative change, p-value and verdict.
func (r *CaseResult) judge() {
	r.BaseMedian = median(r.Base)
	r.HeadMedian = median(r.Head)
	if r.BaseMedian != 0 {
		r.Change = (r.HeadMedian - r.BaseMedian) / r.BaseMedian
	}
	r.P = MannWhitneyP(r.Base, r.Head)
	significant := r.P < r.Alpha && abs(r.Change) > r.Tolerance
	switch {
	case !significant:
		r.Verdict = VerdictNoChange
	case (r.Change > 0) == r.Goal.HigherIsBetter():
		r.Verdict = VerdictImproved
	default:
		r.Verdict = VerdictRegressed
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Failed reports whether this result should fail a gating run.
func (r *CaseResult) Failed() bool {
	return r.Verdict == VerdictRegressed || r.Verdict == VerdictError
}

// MarkdownTable renders the goal-by-goal verdict table the CI gate
// comments on pull requests.
func MarkdownTable(results []CaseResult) string {
	var b strings.Builder
	b.WriteString("| case | goal | base | head | change | p | verdict |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
	for _, r := range results {
		icon := ""
		switch r.Verdict {
		case VerdictImproved:
			icon = "✅ "
		case VerdictRegressed, VerdictError:
			icon = "❌ "
		}
		detail := r.Verdict
		if r.Verdict == VerdictError {
			detail = fmt.Sprintf("error: %s", r.Error)
		}
		if r.Verdict == VerdictSkipped || r.Verdict == VerdictError {
			fmt.Fprintf(&b, "| %s | %s | – | – | – | – | %s%s |\n", r.Case, r.Goal, icon, detail)
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %+.1f%% | %.3f | %s%s |\n",
			r.Case, r.Goal,
			formatValue(r.BaseMedian, r.Unit), formatValue(r.HeadMedian, r.Unit),
			100*r.Change, r.P, icon, detail)
	}
	return b.String()
}

// TextTable renders the same verdicts for terminals.
func TextTable(results []CaseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-11s %14s %14s %9s %7s  %s\n",
		"CASE", "GOAL", "BASE", "HEAD", "CHANGE", "P", "VERDICT")
	for _, r := range results {
		if r.Verdict == VerdictSkipped || r.Verdict == VerdictError {
			detail := r.Verdict
			if r.Error != "" {
				detail += ": " + r.Error
			}
			fmt.Fprintf(&b, "%-22s %-11s %14s %14s %9s %7s  %s\n",
				r.Case, r.Goal, "-", "-", "-", "-", detail)
			continue
		}
		fmt.Fprintf(&b, "%-22s %-11s %14s %14s %+8.1f%% %7.3f  %s\n",
			r.Case, r.Goal,
			formatValue(r.BaseMedian, r.Unit), formatValue(r.HeadMedian, r.Unit),
			100*r.Change, r.P, r.Verdict)
	}
	return b.String()
}

// formatValue pretty-prints a metric value with its unit.
func formatValue(v float64, unit string) string {
	switch {
	case v == 0:
		return "0 " + unit
	case abs(v) >= 10000:
		return fmt.Sprintf("%.0f %s", v, unit)
	case abs(v) >= 10:
		return fmt.Sprintf("%.1f %s", v, unit)
	default:
		return fmt.Sprintf("%.3f %s", v, unit)
	}
}
