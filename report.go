package hydrac

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ReportVersion is the version of the Report wire format produced by
// WriteReport/WriteReports. Readers reject other versions so a client
// never silently misparses a response from a newer daemon.
const ReportVersion = 1

// SecurityVerdict is the per-security-task outcome of an analysis:
// the selected period, its worst-case response time, and where the
// task runs. Period and WCRT are zero when the owning scheme found the
// set unschedulable.
type SecurityVerdict struct {
	Name      string `json:"name"`
	Period    Time   `json:"period"`
	WCRT      Time   `json:"wcrt"`
	MaxPeriod Time   `json:"max_period"`
	// Core is the core a partitioned scheme bound the task to;
	// -1 means the task migrates (HYDRA-C, GLOBAL-TMax).
	Core int `json:"core"`
}

// RTVerdict carries a real-time task's response time under a scheme
// that re-analyses the RT band (GLOBAL-TMax).
type RTVerdict struct {
	Name     string `json:"name"`
	WCRT     Time   `json:"wcrt"`
	Deadline Time   `json:"deadline"`
}

// RTAssignment records where the pipeline placed one RT task, so a
// report of an auto-partitioned set is self-contained: ApplyTo can
// reconstruct the exact configuration that was analysed.
type RTAssignment struct {
	Name string `json:"name"`
	Core int    `json:"core"`
}

// BaselineVerdict is the outcome of one comparison scheme.
type BaselineVerdict struct {
	Scheme      Scheme `json:"scheme"`
	Schedulable bool   `json:"schedulable"`
	// Tasks follows the order of the analysed set's Security slice.
	// Empty when the scheme could not place the tasks at all.
	Tasks []SecurityVerdict `json:"tasks,omitempty"`
	// RT is populated by schemes that re-analyse the RT band
	// (GLOBAL-TMax); order follows the set's RT slice.
	RT []RTVerdict `json:"rt,omitempty"`
	// Placement records the RT core assignments the partitioned
	// schemes analysed (input's own, or the Analyzer heuristic's when
	// the set arrived unassigned), so ApplyTo reconstructs them.
	// Absent for GLOBAL-TMax, where the RT band migrates.
	Placement []RTAssignment `json:"placement,omitempty"`
}

// SimSummary condenses a simulation run to its scheduling-level
// observables.
type SimSummary struct {
	Policy                 string  `json:"policy"`
	Horizon                Time    `json:"horizon"`
	ContextSwitches        int     `json:"context_switches"`
	Migrations             int     `json:"migrations"`
	RTDeadlineMisses       int     `json:"rt_deadline_misses"`
	SecurityDeadlineMisses int     `json:"security_deadline_misses"`
	Utilization            float64 `json:"utilization"`
}

// Timing records wall-clock cost per pipeline stage, in nanoseconds.
// It is stamped on reports returned by Analyze and deliberately absent
// from cached canonical reports and AnalyzeBatch results, which must
// be bit-identical across runs and worker counts.
type Timing struct {
	PartitionNS  int64 `json:"partition_ns,omitempty"`
	SelectionNS  int64 `json:"selection_ns,omitempty"`
	BaselinesNS  int64 `json:"baselines_ns,omitempty"`
	SimulationNS int64 `json:"simulation_ns,omitempty"`
	TotalNS      int64 `json:"total_ns,omitempty"`
}

// Report is the structured outcome of one Analyzer pipeline run over
// one task set: the HYDRA-C admission verdict and selected periods,
// plus whatever baselines and simulation the Analyzer was configured
// with.
type Report struct {
	// Scheme names the analysis that produced the top-level verdict:
	// SchemeHydraC for Analyzer.Analyze, or the baseline scheme when a
	// tool wraps a single baseline run in a report (cmd/hydrac
	// analyze -scheme X -json). Consumers must check it before reading
	// Schedulable as an admission verdict.
	Scheme Scheme `json:"scheme"`
	// Schedulable is the Scheme's verdict; for hydra-c, every security
	// task admits a period within [WCRT, Tmax].
	Schedulable bool `json:"schedulable"`
	// Heuristic names the partitioning heuristic the Analyzer applied,
	// or "" when the input arrived already partitioned.
	Heuristic string `json:"heuristic,omitempty"`
	// RT records the per-task core placement the pipeline analysed —
	// the input's own assignments, or the heuristic's when the set
	// arrived unpartitioned. Order follows the input's RT slice.
	RT []RTAssignment `json:"rt,omitempty"`
	// TaskSetHash is the canonical hash of the analysed set — the
	// cache key, echoed so clients can correlate requests.
	TaskSetHash string `json:"task_set_hash"`
	Cores       int    `json:"cores"`
	// Tasks follows the order of the input set's Security slice.
	Tasks []SecurityVerdict `json:"tasks"`
	// Baselines appear in the order the Analyzer was configured with.
	Baselines []BaselineVerdict `json:"baselines,omitempty"`
	// Simulation is present when the Analyzer simulates admitted sets.
	Simulation *SimSummary `json:"simulation,omitempty"`
	// Timing is stamped by Analyze; nil on batch results.
	Timing *Timing `json:"timing,omitempty"`
	// FromCache reports whether Analyze served this report from the
	// LRU cache. Always false on batch results.
	FromCache bool `json:"from_cache,omitempty"`
}

// Clone returns a deep copy.
func (r *Report) Clone() *Report {
	cp := *r
	cp.RT = append([]RTAssignment(nil), r.RT...)
	cp.Tasks = append([]SecurityVerdict(nil), r.Tasks...)
	cp.Baselines = make([]BaselineVerdict, len(r.Baselines))
	for i, b := range r.Baselines {
		cp.Baselines[i] = b
		cp.Baselines[i].Tasks = append([]SecurityVerdict(nil), b.Tasks...)
		cp.Baselines[i].RT = append([]RTVerdict(nil), b.RT...)
		cp.Baselines[i].Placement = append([]RTAssignment(nil), b.Placement...)
	}
	if len(r.Baselines) == 0 {
		cp.Baselines = nil
	}
	if r.Simulation != nil {
		s := *r.Simulation
		cp.Simulation = &s
	}
	if r.Timing != nil {
		t := *r.Timing
		cp.Timing = &t
	}
	return &cp
}

// ApplyTo writes the report's configuration into a clone of ts, ready
// for simulation: the selected periods and core bindings of the
// security tasks, and — when the pipeline partitioned the set — the
// RT placements it analysed. Entries are matched to ts by position,
// with names cross-checked, so the natural call is against the very
// set that was analysed.
func (r *Report) ApplyTo(ts *TaskSet) (*TaskSet, error) {
	if !r.Schedulable {
		return nil, errors.New("report is not schedulable; no periods to apply")
	}
	if len(r.Tasks) != len(ts.Security) {
		return nil, fmt.Errorf("report covers %d security tasks, set has %d", len(r.Tasks), len(ts.Security))
	}
	if len(r.RT) != 0 && len(r.RT) != len(ts.RT) {
		return nil, fmt.Errorf("report covers %d RT tasks, set has %d", len(r.RT), len(ts.RT))
	}
	cp := ts.Clone()
	for i, asgn := range r.RT {
		if asgn.Name != cp.RT[i].Name {
			return nil, fmt.Errorf("RT assignment %d is for task %q, set has %q at that position", i, asgn.Name, cp.RT[i].Name)
		}
		cp.RT[i].Core = asgn.Core
	}
	for i := range cp.Security {
		v := r.Tasks[i]
		if v.Name != cp.Security[i].Name {
			return nil, fmt.Errorf("verdict %d is for task %q, set has %q at that position", i, v.Name, cp.Security[i].Name)
		}
		cp.Security[i].Period = v.Period
		cp.Security[i].Core = v.Core
	}
	return cp, nil
}

// ApplyTo writes a partitioned baseline's configuration into a clone
// of ts for simulation under the FullyPartitioned policy: the RT
// placement the scheme analysed, then the security periods and core
// bindings. It matches by position with name cross-checks, like
// Report.ApplyTo.
func (v *BaselineVerdict) ApplyTo(ts *TaskSet) (*TaskSet, error) {
	if !v.Schedulable {
		return nil, fmt.Errorf("%s verdict is not schedulable; nothing to apply", v.Scheme)
	}
	if len(v.Tasks) != len(ts.Security) {
		return nil, fmt.Errorf("%s verdict covers %d security tasks, set has %d", v.Scheme, len(v.Tasks), len(ts.Security))
	}
	if len(v.Placement) != 0 && len(v.Placement) != len(ts.RT) {
		return nil, fmt.Errorf("%s verdict places %d RT tasks, set has %d", v.Scheme, len(v.Placement), len(ts.RT))
	}
	cp := ts.Clone()
	for i, asgn := range v.Placement {
		if asgn.Name != cp.RT[i].Name {
			return nil, fmt.Errorf("placement %d is for task %q, set has %q at that position", i, asgn.Name, cp.RT[i].Name)
		}
		cp.RT[i].Core = asgn.Core
	}
	for i := range cp.Security {
		t := v.Tasks[i]
		if t.Name != cp.Security[i].Name {
			return nil, fmt.Errorf("verdict %d is for task %q, set has %q at that position", i, t.Name, cp.Security[i].Name)
		}
		cp.Security[i].Period = t.Period
		cp.Security[i].Core = t.Core
	}
	return cp, nil
}

// reportEnvelope is the versioned wire format: one of Report/Reports
// is set depending on the endpoint. Reports is a slice pointer so an
// empty batch ("reports": []) stays distinguishable from a
// non-batch envelope with the field absent.
type reportEnvelope struct {
	Version int        `json:"version"`
	Report  *Report    `json:"report,omitempty"`
	Reports *[]*Report `json:"reports,omitempty"`
}

// WriteReport writes r as versioned, indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	return writeEnvelope(w, reportEnvelope{Version: ReportVersion, Report: r})
}

// WriteReports writes a batch of reports as versioned, indented JSON.
func WriteReports(w io.Writer, rs []*Report) error {
	if rs == nil {
		rs = []*Report{}
	}
	return writeEnvelope(w, reportEnvelope{Version: ReportVersion, Reports: &rs})
}

func writeEnvelope(w io.Writer, env reportEnvelope) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// marshalReportEnvelope renders exactly the bytes WriteReport writes
// (indented envelope plus trailing newline), as a slice the service
// hot path can cache and replay with a single Write.
func marshalReportEnvelope(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(reportEnvelope{Version: ReportVersion, Report: r}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ReadReport reads a single-report envelope written by WriteReport.
func ReadReport(r io.Reader) (*Report, error) {
	env, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if env.Report == nil {
		return nil, errors.New("report envelope carries no report")
	}
	return env.Report, nil
}

// ReadReports reads a batch envelope written by WriteReports.
func ReadReports(r io.Reader) ([]*Report, error) {
	env, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	// WriteReports always emits at least "reports": []; an envelope
	// without the field is not a batch response, not an empty one.
	if env.Reports == nil {
		return nil, errors.New("expected a batch envelope (missing \"reports\")")
	}
	return *env.Reports, nil
}

func readEnvelope(r io.Reader) (*reportEnvelope, error) {
	var env reportEnvelope
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding report: %w", err)
	}
	if env.Version != ReportVersion {
		return nil, fmt.Errorf("unsupported report version %d (this build speaks %d)", env.Version, ReportVersion)
	}
	return &env, nil
}
