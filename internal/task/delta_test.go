package task

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDeltaJSONRoundTrip(t *testing.T) {
	d := Delta{
		Remove: []string{"old_monitor"},
		AddRT: []RTTask{
			{Name: "rtx", WCET: 2, Period: 20, Deadline: 18, Core: 1, Priority: 7},
			{Name: "rty", WCET: 1, Period: 40, Deadline: 40, Core: -1, Priority: 8},
		},
		AddSecurity: []SecurityTask{
			{Name: "scan", WCET: 3, MaxPeriod: 300, Core: -1, Priority: 4},
		},
	}
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, &d); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, d) {
		t.Fatalf("round trip changed the delta:\n got %+v\nwant %+v", *got, d)
	}
}

func TestDeltaLogRoundTrip(t *testing.T) {
	ds := []Delta{
		{AddSecurity: []SecurityTask{{Name: "a", WCET: 1, MaxPeriod: 100, Core: -1, Priority: 0}}},
		{Remove: []string{"a"}},
	}
	var buf bytes.Buffer
	if err := EncodeDeltaLog(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeltaLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip changed the log:\n got %+v\nwant %+v", got, ds)
	}
}

func TestDecodeDeltaRequiresExplicitPriorities(t *testing.T) {
	for _, in := range []string{
		`{"add_rt": [{"name": "x", "wcet": 1, "period": 10}]}`,
		`{"add_security": [{"name": "y", "wcet": 1, "max_period": 100}]}`,
	} {
		if _, err := DecodeDelta(strings.NewReader(in)); err == nil {
			t.Errorf("decoded %s without an explicit priority", in)
		} else if !strings.Contains(err.Error(), "priority") {
			t.Errorf("error %q does not mention the missing priority", err)
		}
	}
}

func TestDecodeDeltaDefaults(t *testing.T) {
	in := `{"add_rt": [{"name": "x", "wcet": 1, "period": 10, "priority": 3}]}`
	d, err := DecodeDelta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.AddRT[0].Deadline != 10 {
		t.Errorf("deadline = %d, want the period 10", d.AddRT[0].Deadline)
	}
	if d.AddRT[0].Core != -1 {
		t.Errorf("core = %d, want -1 (engine places it)", d.AddRT[0].Core)
	}
}

func TestDecodeDeltaRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeDelta(strings.NewReader(`{"add": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDeltaPredicates(t *testing.T) {
	if !(&Delta{}).Empty() {
		t.Error("zero delta not Empty")
	}
	rm := &Delta{Remove: []string{"a"}}
	if !rm.RemovalOnly() || rm.Empty() {
		t.Error("pure removal misclassified")
	}
	add := &Delta{AddSecurity: []SecurityTask{{Name: "s"}}, Remove: []string{"a"}}
	if add.RemovalOnly() {
		t.Error("delta with adds classified as removal-only")
	}
}

func TestCoreHash(t *testing.T) {
	a := []RTTask{
		{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
		{Name: "b", WCET: 3, Period: 20, Deadline: 15, Core: 0, Priority: 1},
	}
	// Names and core indices do not enter Eq. 1: a renamed copy on a
	// different core must share the cache entry.
	b := []RTTask{
		{Name: "x", WCET: 2, Period: 10, Deadline: 10, Core: 3, Priority: 0},
		{Name: "y", WCET: 3, Period: 20, Deadline: 15, Core: 3, Priority: 1},
	}
	if CoreHash(a) != CoreHash(b) {
		t.Error("renamed/relocated core hashed differently")
	}
	// Any analysis-relevant change must change the hash.
	c := append([]RTTask(nil), a...)
	c[1].Deadline = 14
	if CoreHash(a) == CoreHash(c) {
		t.Error("deadline change did not change the hash")
	}
	// Order is significant (the input is priority-sorted).
	d := []RTTask{a[1], a[0]}
	if CoreHash(a) == CoreHash(d) {
		t.Error("reordered core hashed identically")
	}
	if CoreHash(nil) == CoreHash(a) {
		t.Error("empty core collides with a populated one")
	}
}
