package rta

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hydrac/internal/task"
)

func TestResponseTimeNoInterference(t *testing.T) {
	r, ok := ResponseTime(7, nil, 100)
	if !ok || r != 7 {
		t.Fatalf("got (%d, %v), want (7, true)", r, ok)
	}
}

func TestResponseTimeClassicExample(t *testing.T) {
	// Textbook example: C=(1,2,3), T=(4,6,10) on one core.
	// R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3; R3 = 3 + ceil(x/4)*1 + ceil(x/6)*2.
	// x0=3 -> 3+1+2=6; x=6 -> 3+2+2=7; x=7 -> 3+2+4=9; x=9 -> 3+3+4=10;
	// x=10 -> 3+3+4=10. R3 = 10.
	hp := []Demand{{WCET: 1, Period: 4}, {WCET: 2, Period: 6}}
	r, ok := ResponseTime(3, hp, 10)
	if !ok || r != 10 {
		t.Fatalf("R3 = (%d, %v), want (10, true)", r, ok)
	}
	// Deadline 9 makes it unschedulable.
	if _, ok := ResponseTime(3, hp, 9); ok {
		t.Fatal("accepted despite deadline 9 < R 10")
	}
}

func TestResponseTimeMidPriority(t *testing.T) {
	hp := []Demand{{WCET: 1, Period: 4}}
	r, ok := ResponseTime(2, hp, 6)
	if !ok || r != 3 {
		t.Fatalf("R2 = (%d, %v), want (3, true)", r, ok)
	}
}

func TestResponseTimeOverloadDiverges(t *testing.T) {
	// Utilisation 1.5: iteration must hit the limit, not loop forever.
	hp := []Demand{{WCET: 5, Period: 10}, {WCET: 10, Period: 10}}
	if _, ok := ResponseTime(1, hp, 1000); ok {
		t.Fatal("overloaded core accepted")
	}
}

func TestResponseTimeWCETBeyondLimit(t *testing.T) {
	if _, ok := ResponseTime(11, nil, 10); ok {
		t.Fatal("WCET beyond limit accepted")
	}
}

func TestCoreSchedulable(t *testing.T) {
	ok := []task.RTTask{
		{Name: "a", WCET: 1, Period: 4, Deadline: 4, Priority: 0},
		{Name: "b", WCET: 2, Period: 6, Deadline: 6, Priority: 1},
		{Name: "c", WCET: 3, Period: 10, Deadline: 10, Priority: 2},
	}
	if !CoreSchedulable(ok) {
		t.Error("schedulable core rejected")
	}
	bad := []task.RTTask{
		{Name: "a", WCET: 3, Period: 4, Deadline: 4, Priority: 0},
		{Name: "b", WCET: 3, Period: 6, Deadline: 6, Priority: 1},
	}
	if CoreSchedulable(bad) {
		t.Error("overloaded core accepted")
	}
}

func TestCoreResponseTimes(t *testing.T) {
	tasks := []task.RTTask{
		{Name: "a", WCET: 1, Period: 4, Deadline: 4, Priority: 0},
		{Name: "b", WCET: 2, Period: 6, Deadline: 6, Priority: 1},
		{Name: "c", WCET: 3, Period: 10, Deadline: 10, Priority: 2},
	}
	got := CoreResponseTimes(tasks)
	want := []task.Time{1, 3, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("R[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSetSchedulable(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 2, Period: 4, Deadline: 4, Core: 0, Priority: 0},
			{Name: "b", WCET: 2, Period: 8, Deadline: 8, Core: 0, Priority: 1},
			{Name: "c", WCET: 5, Period: 10, Deadline: 10, Core: 1, Priority: 2},
		},
	}
	if !SetSchedulable(ts) {
		t.Error("schedulable set rejected")
	}
	ts.RT[1].WCET = 5 // core 0 now has demand 2/4 + 5/8 > 1
	if SetSchedulable(ts) {
		t.Error("overloaded set accepted")
	}
}

// Property: the response time is at least the WCET plus one full burst
// of every higher-priority task, and never below the WCET.
func TestResponseTimeLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := rng.Intn(4)
		hp := make([]Demand, n)
		var burst task.Time
		for i := range hp {
			hp[i] = Demand{WCET: 1 + task.Time(rng.Intn(5)), Period: 10 + task.Time(rng.Intn(90))}
			burst += hp[i].WCET
		}
		c := 1 + task.Time(rng.Intn(8))
		r, ok := ResponseTime(c, hp, 1<<20)
		if !ok {
			return true // divergence is legal under overload
		}
		return r >= c && r >= c+burst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: adding an interferer never decreases the response time.
func TestResponseTimeMonotoneInInterference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		hp := make([]Demand, n)
		for i := range hp {
			hp[i] = Demand{WCET: 1 + task.Time(rng.Intn(4)), Period: 8 + task.Time(rng.Intn(40))}
		}
		c := 1 + task.Time(rng.Intn(6))
		rSmall, okSmall := ResponseTime(c, hp[:n-1], 1<<20)
		rBig, okBig := ResponseTime(c, hp, 1<<20)
		if !okSmall && okBig {
			t.Fatalf("trial %d: adding interference made the task schedulable", trial)
		}
		if okSmall && okBig && rBig < rSmall {
			t.Fatalf("trial %d: R decreased from %d to %d after adding interference", trial, rSmall, rBig)
		}
	}
}

// Property: the returned fixed point actually satisfies Eq. 1 with
// equality of the recurrence.
func TestResponseTimeIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(4)
		hp := make([]Demand, n)
		for i := range hp {
			hp[i] = Demand{WCET: 1 + task.Time(rng.Intn(4)), Period: 10 + task.Time(rng.Intn(50))}
		}
		c := 1 + task.Time(rng.Intn(6))
		r, ok := ResponseTime(c, hp, 1<<20)
		if !ok {
			continue
		}
		sum := c
		for _, d := range hp {
			sum += ceilDiv(r, d.Period) * d.WCET
		}
		if sum != r {
			t.Fatalf("trial %d: fixed point violated: recurrence(%d) = %d", trial, r, sum)
		}
	}
}

// Regression: a core whose higher-priority demand sits at exactly 100%
// utilisation has no fixed point for any task below it. Before the
// divergence screen, ResponseTime with an effectively unbounded limit
// (task.Infinity) would creep a few ticks per iteration for ~2^62
// steps — an effective hang. The test passing at all is the fix.
func TestResponseTimeExactlyFullUtilizationDiverges(t *testing.T) {
	hp := []Demand{{WCET: 1, Period: 2}, {WCET: 1, Period: 2}} // ΣC/T = 1 exactly
	if r, ok := ResponseTime(1, hp, task.Infinity); ok {
		t.Fatalf("accepted a task under exactly-100%% higher-priority load: R=%d", r)
	}
	// Same demand, finite limit: identical verdict.
	if _, ok := ResponseTime(1, hp, 1<<40); ok {
		t.Fatal("accepted under exactly-100%% load with a finite limit")
	}
	// Sanity: the screen must not fire below 100%.
	hp = []Demand{{WCET: 1, Period: 2}, {WCET: 1, Period: 3}} // 5/6
	if _, ok := ResponseTime(1, hp, task.Infinity); !ok {
		t.Fatal("rejected a schedulable task under 5/6 load")
	}
}

// A zero-WCET probe converges at 0 even under full load; the
// divergence screen must not reject it.
func TestResponseTimeZeroWCETUnderFullLoad(t *testing.T) {
	hp := []Demand{{WCET: 1, Period: 2}, {WCET: 1, Period: 2}}
	r, ok := ResponseTime(0, hp, task.Infinity)
	if !ok || r != 0 {
		t.Fatalf("got (%d, %v), want (0, true)", r, ok)
	}
}

// Documented consistency: CoreSchedulable(tasks) iff
// CoreResponseTimes(tasks) has no Infinity entry, on random cores
// spanning schedulable and overloaded demand.
func TestCoreSchedulableConsistentWithCoreResponseTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		tasks := make([]task.RTTask, n)
		for i := range tasks {
			period := task.Time(4 + rng.Intn(40))
			wcet := 1 + task.Time(rng.Intn(int(period)))
			deadline := wcet + task.Time(rng.Intn(int(period-wcet)+1))
			tasks[i] = task.RTTask{
				Name: "t", WCET: wcet, Period: period,
				Deadline: deadline, Priority: i,
			}
		}
		sched := CoreSchedulable(tasks)
		resp := CoreResponseTimes(tasks)
		anyInf := false
		for _, r := range resp {
			if r == task.Infinity {
				anyInf = true
			}
		}
		if sched == anyInf {
			t.Fatalf("trial %d: CoreSchedulable=%v but CoreResponseTimes=%v", trial, sched, resp)
		}
	}
}

// naiveResponseTime is the pre-jump reference iteration: one full
// demand evaluation per refinement, identical utilisation screen and
// budget. The staircase shortcut must match it bit for bit.
func naiveResponseTime(wcet task.Time, hp []Demand, limit task.Time) (task.Time, bool) {
	if wcet > limit {
		return task.Infinity, false
	}
	var u float64
	for _, d := range hp {
		u += float64(d.WCET) / float64(d.Period)
	}
	if u >= 1 && wcet > 0 {
		return task.Infinity, false
	}
	x := wcet
	for iter := 0; iter < MaxIterations; iter++ {
		next := wcet
		for _, d := range hp {
			next += ((x + d.Period - 1) / d.Period) * d.WCET
		}
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			return task.Infinity, false
		}
		x = next
	}
	return task.Infinity, false
}

// The staircase shortcut (returning the refinement that lands on the
// same demand step) must agree with the naive creep on dense random
// cores, including near-overload divergence verdicts.
func TestResponseTimeStaircaseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5000; trial++ {
		var hp []Demand
		for n := rng.Intn(6); n > 0; n-- {
			p := task.Time(1 + rng.Intn(50))
			c := 1 + rng.Int63n(int64(p))
			hp = append(hp, Demand{WCET: c, Period: p})
		}
		wcet := task.Time(1 + rng.Intn(30))
		limit := wcet + rng.Int63n(4000)
		gotR, gotOK := ResponseTime(wcet, hp, limit)
		wantR, wantOK := naiveResponseTime(wcet, hp, limit)
		if gotR != wantR || gotOK != wantOK {
			t.Fatalf("trial %d (%d hp, wcet=%d, limit=%d): jump (%d,%v) != naive (%d,%v)",
				trial, len(hp), wcet, limit, gotR, gotOK, wantR, wantOK)
		}
	}
}

// The Eq. 1 fixpoint is the admission engine's per-core screen; it
// must not allocate.
func TestResponseTimeAllocFree(t *testing.T) {
	hp := []Demand{{WCET: 2, Period: 10}, {WCET: 7, Period: 35}, {WCET: 11, Period: 90}}
	if avg := testing.AllocsPerRun(200, func() {
		ResponseTime(9, hp, 1_000_000)
	}); avg != 0 {
		t.Fatalf("ResponseTime allocates %.1f objects per call; want 0", avg)
	}
}

// SetSchedulableWorkers must agree with the serial screen at every
// worker count, schedulable or not, and SetResponseTimesWorkers must
// reproduce the per-core vectors exactly (ordered merge of
// independent cores).
func TestSetSchedulableWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		cores := 1 + rng.Intn(6)
		ts := &task.Set{Cores: cores}
		for i := 0; i < cores*(1+rng.Intn(4)); i++ {
			period := task.Time(5 + rng.Intn(100))
			wcet := task.Time(1 + rng.Int63n(int64(period)))
			ts.RT = append(ts.RT, task.RTTask{
				Name:     fmt.Sprintf("t%d", i),
				WCET:     wcet,
				Period:   period,
				Deadline: period,
				Core:     rng.Intn(cores),
				Priority: i,
			})
		}
		want := SetSchedulable(ts)
		for _, workers := range []int{1, 2, 3, 16} {
			if got := SetSchedulableWorkers(ts, workers); got != want {
				t.Fatalf("trial %d workers=%d: %v != serial %v", trial, workers, got, want)
			}
		}
		wantRT := SetResponseTimesWorkers(ts, 1)
		for _, workers := range []int{2, 16} {
			gotRT := SetResponseTimesWorkers(ts, workers)
			for m := range wantRT {
				if len(gotRT[m]) != len(wantRT[m]) {
					t.Fatalf("trial %d workers=%d core %d: length drifted", trial, workers, m)
				}
				for i := range wantRT[m] {
					if gotRT[m][i] != wantRT[m][i] {
						t.Fatalf("trial %d workers=%d core %d task %d: %d != %d",
							trial, workers, m, i, gotRT[m][i], wantRT[m][i])
					}
				}
			}
		}
	}
}
