package metrics

import "encoding/json"

// SampleSummary is the JSON-stable aggregate view of a Sample, used
// when archiving experiment results.
type SampleSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// Summary computes the aggregate view.
func (s *Sample) Summary() SampleSummary {
	return SampleSummary{
		N:    s.N(),
		Mean: s.Mean(),
		Std:  s.Std(),
		Min:  s.Min(),
		Max:  s.Max(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
	}
}

// MarshalJSON serialises the sample as its summary (raw observations
// are not archived).
func (s *Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Summary())
}
