package core

import (
	"sort"

	"hydrac/internal/task"
)

// System is the fixed platform the migrating band runs on: M identical
// cores, with the partitioned RT tasks of core m listed in
// RTCores[m]. A System with empty RTCores and M cores models pure
// global scheduling (used by the GLOBAL-TMax baseline).
type System struct {
	M       int
	RTCores [][]Demand
}

// NewSystem builds the analysis view of a validated task set whose RT
// tasks are already partitioned.
func NewSystem(ts *task.Set) *System {
	sys := &System{M: ts.Cores, RTCores: make([][]Demand, ts.Cores)}
	for m := 0; m < ts.Cores; m++ {
		for _, t := range ts.RTOnCore(m) {
			sys.RTCores[m] = append(sys.RTCores[m], Demand{WCET: t.WCET, Period: t.Period})
		}
	}
	return sys
}

// CarryInMode selects how the analysis maximises over carry-in sets
// (Eq. 8).
type CarryInMode int

const (
	// Dominance picks, at every window length x, the at-most-(M−1)
	// higher-priority tasks with the largest carry-in/non-carry-in
	// interference difference. This upper-bounds every explicit
	// partition in Z(τs) and is the production path (Guan et al.'s
	// technique).
	Dominance CarryInMode = iota
	// Exhaustive enumerates every partition of hpS(τs) into carry-in
	// and non-carry-in subsets with |CI| ≤ M−1 and takes the maximum
	// fixed point (literal Eq. 8). Exponential; used in tests to
	// validate Dominance.
	Exhaustive
)

// MigratingWCRT computes the worst-case response time of a migrating
// task with execution time cs, under interference from the partitioned
// RT band of sys and the higher-priority migrating tasks hp (whose
// periods and response times are already known). The fixed-point
// iteration (Eq. 7)
//
//	x ← ⌊Ω(x)/M⌋ + Cs
//
// starts at x = Cs and stops at the least fixed point, or reports
// failure once x exceeds limit (the task is then unschedulable within
// its period bound, §4.4).
//
// This convenience form borrows a Scratch from DefaultScratchPool for
// the call; hot paths (period selection, the admission engine, the
// baselines) thread one Scratch through instead. Results are
// identical either way.
func (sys *System) MigratingWCRT(cs task.Time, hp []Interferer, limit task.Time, mode CarryInMode) (task.Time, bool) {
	sc := DefaultScratchPool.Get(sys, max(len(hp), sys.rtCount()))
	defer DefaultScratchPool.Put(sc)
	return sc.MigratingWCRT(cs, hp, limit, mode)
}

// MaxFixpointIterations bounds the Eq. 7 iteration. Near the clamp
// boundary (every core's interference bound x − Cs + 1 binding at
// once) the naive recurrence can creep upward one tick per step, so
// with 2^40-scale tick resolutions an unbounded loop could take
// ~10^11 refinements to settle — an effective hang. A task that has
// not converged after this many refinements is reported unschedulable.
// The verdict is conservative and part of the analysis definition:
// internal/oracle applies the identical bound, so the differential
// corpus stays byte-identical even if a pathological set ever trips
// it. Paper-scale workloads converge orders of magnitude below it.
//
// The production kernel (Scratch.MigratingWCRT) advances at least one
// interference breakpoint per iteration instead of one tick, so it
// reaches the same verdicts in no more iterations than the naive
// creep; the budget is shared so the two kernels stay comparable.
const MaxFixpointIterations = 1 << 22

// fixedPoint runs Eq. 7 with the supplied total-interference function,
// one refinement at a time. It is the reference creep the staircase
// kernel is property-tested against, and the engine of the Exhaustive
// mode.
func (sys *System) fixedPoint(cs, limit task.Time, omega func(task.Time) task.Time) (task.Time, bool) {
	x := cs
	for iter := 0; iter < MaxFixpointIterations; iter++ {
		next := omega(x)/task.Time(sys.M) + cs
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			return task.Infinity, false
		}
		x = next
	}
	return task.Infinity, false
}

// omegaDominance is Eq. 6 with the carry-in set chosen by dominance:
// every higher-priority migrating task contributes its non-carry-in
// interference, and the at-most-(M−1) largest positive differences
// I(W^CI) − I(W^NC) are added on top. This is the readable reference
// form; the production path is Scratch.omegaLine, which computes the
// identical value without allocating and with the piece geometry the
// staircase jump needs.
func (sys *System) omegaDominance(x, cs task.Time, hp []Interferer) task.Time {
	var total task.Time
	for _, demands := range sys.RTCores {
		total += rtCoreInterference(x, cs, demands)
	}
	diffs := make([]task.Time, 0, len(hp))
	for _, h := range hp {
		inc := clampInterference(workloadNC(x, h.WCET, h.Period), x, cs)
		ici := clampInterference(workloadCI(x, h.WCET, h.Period, h.Resp), x, cs)
		total += inc
		if d := ici - inc; d > 0 {
			diffs = append(diffs, d)
		}
	}
	if len(diffs) > 0 {
		sort.Slice(diffs, func(i, j int) bool { return diffs[i] > diffs[j] })
		k := min(len(diffs), sys.M-1)
		for _, d := range diffs[:k] {
			total += d
		}
	}
	return total
}

// migratingWCRTExhaustive is the literal Eq. 8: the maximum over all
// partitions of hp into (Γ^NC, Γ^CI) with |Γ^CI| ≤ M−1 of the fixed
// point for that partition. If any partition diverges past limit the
// task is unschedulable.
func (sys *System) migratingWCRTExhaustive(cs task.Time, hp []Interferer, limit task.Time) (task.Time, bool) {
	var best task.Time
	n := len(hp)
	kmax := sys.M - 1
	ok := true
	var walk func(i, picked int, mask []bool)
	walk = func(i, picked int, mask []bool) {
		if !ok {
			return
		}
		if i == n {
			r, fine := sys.fixedPoint(cs, limit, func(x task.Time) task.Time {
				var total task.Time
				for _, demands := range sys.RTCores {
					total += rtCoreInterference(x, cs, demands)
				}
				for j, h := range hp {
					var w task.Time
					if mask[j] {
						w = workloadCI(x, h.WCET, h.Period, h.Resp)
					} else {
						w = workloadNC(x, h.WCET, h.Period)
					}
					total += clampInterference(w, x, cs)
				}
				return total
			})
			if !fine {
				ok = false
				return
			}
			if r > best {
				best = r
			}
			return
		}
		mask[i] = false
		walk(i+1, picked, mask)
		if picked < kmax {
			mask[i] = true
			walk(i+1, picked+1, mask)
			mask[i] = false
		}
	}
	walk(0, 0, make([]bool, n))
	if !ok {
		return task.Infinity, false
	}
	return best, true
}

// ResponseTimes computes, highest priority first, the WCRT of every
// migrating task in sec given the period vector periods (same order as
// sec). A task's carry-in bound needs its own response time, so the
// computation proceeds top-down, feeding each result into the
// interferer list of the tasks below. The returned slice parallels
// sec; entries are task.Infinity when the fixed point diverges past
// the task's own period bound (min(periods[i], limit rule): a security
// task with implicit deadline must finish within its period, and is
// hopeless past Tmax).
func (sys *System) ResponseTimes(sec []task.SecurityTask, periods []task.Time, mode CarryInMode) []task.Time {
	sc := DefaultScratchPool.Get(sys, max(len(sec), sys.rtCount()))
	defer DefaultScratchPool.Put(sc)
	sc.ensure(len(sec))
	return sc.responseTimes(sec, periods, mode, make([]task.Time, 0, len(sec)))
}

// rtCount is the size of the partitioned RT band — the tier-hint
// component the convenience wrappers use so a pooled scratch files
// and fetches under the same class.
func (sys *System) rtCount() int {
	n := 0
	for _, demands := range sys.RTCores {
		n += len(demands)
	}
	return n
}
