package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/task"
)

func TestWorkloadNC(t *testing.T) {
	cases := []struct {
		x, c, tt, want task.Time
	}{
		{0, 3, 10, 0},
		{-5, 3, 10, 0},
		{1, 3, 10, 1},
		{3, 3, 10, 3},
		{5, 3, 10, 3},
		{10, 3, 10, 3},
		{11, 3, 10, 4},
		{13, 3, 10, 6},
		{20, 3, 10, 6},
		{25, 3, 10, 9},
		{10, 10, 10, 10}, // full-utilisation task fills the window
		{21, 10, 10, 21},
	}
	for _, tc := range cases {
		if got := workloadNC(tc.x, tc.c, tc.tt); got != tc.want {
			t.Errorf("workloadNC(%d, C=%d, T=%d) = %d, want %d", tc.x, tc.c, tc.tt, got, tc.want)
		}
	}
}

func TestWorkloadNCProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		tt := 1 + task.Time(rng.Intn(50))
		c := 1 + task.Time(rng.Int63n(int64(tt)))
		x := task.Time(rng.Intn(500))
		w := workloadNC(x, c, tt)
		if w < 0 || w > x {
			t.Fatalf("workloadNC(%d, %d, %d) = %d out of [0, x]", x, c, tt, w)
		}
		// Monotone in x.
		if w2 := workloadNC(x+1, c, tt); w2 < w {
			t.Fatalf("workloadNC not monotone at x=%d (C=%d, T=%d): %d then %d", x, c, tt, w, w2)
		}
		// Sub-additive across whole periods: W(x+T) = W(x) + C.
		if w3 := workloadNC(x+tt, c, tt); w3 != w+c {
			t.Fatalf("workloadNC(x+T) = %d, want W(x)+C = %d", w3, w+c)
		}
	}
}

func TestWorkloadCI(t *testing.T) {
	// C=3, T=10, R=5 -> x̄ = 3-1+10-5 = 7.
	// W^CI(x) = W^NC(max(x-7, 0)) + min(x, 2).
	cases := []struct{ x, want task.Time }{
		{0, 0},
		{1, 1},
		{2, 2},
		{7, 2},
		{8, 2 + 1},  // W^NC(1)=1
		{10, 2 + 3}, // W^NC(3)=3
		{17, 2 + 3}, // W^NC(10)=3
		{18, 2 + 4}, // W^NC(11)=4
	}
	for _, tc := range cases {
		if got := workloadCI(tc.x, 3, 10, 5); got != tc.want {
			t.Errorf("workloadCI(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestWorkloadCIProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		tt := 2 + task.Time(rng.Intn(50))
		c := 1 + task.Time(rng.Int63n(int64(tt)))
		r := c + task.Time(rng.Int63n(int64(tt-c)+1)) // R ∈ [C, T]
		x := task.Time(rng.Intn(500))
		wci := workloadCI(x, c, tt, r)
		wnc := workloadNC(x, c, tt)
		if wci < 0 {
			t.Fatalf("negative carry-in workload")
		}
		// The carry-in job adds at most C−1 beyond the synchronous bound.
		if wci > wnc+c-1 {
			t.Fatalf("workloadCI(%d, C=%d, T=%d, R=%d) = %d exceeds W^NC+C-1 = %d",
				x, c, tt, r, wci, wnc+c-1)
		}
		// Monotone in x.
		if w2 := workloadCI(x+1, c, tt, r); w2 < wci {
			t.Fatalf("workloadCI not monotone at x=%d", x)
		}
		// Monotone in R: a larger response time shifts x̄ down, never
		// reducing the bound.
		if r < tt {
			if w3 := workloadCI(x, c, tt, r+1); w3 < wci {
				t.Fatalf("workloadCI not monotone in R at x=%d", x)
			}
		}
	}
}

func TestClampInterference(t *testing.T) {
	// With x = cs the clamp is 1, never 0 — the paper's '+1' that keeps
	// the fixed-point search from stopping at x = Cs spuriously.
	if got := clampInterference(100, 5, 5); got != 1 {
		t.Errorf("clamp at x=cs: got %d, want 1", got)
	}
	if got := clampInterference(2, 10, 5); got != 2 {
		t.Errorf("clamp above workload: got %d, want 2", got)
	}
	if got := clampInterference(100, 10, 5); got != 6 {
		t.Errorf("clamp below workload: got %d, want 6", got)
	}
}

func TestRTCoreInterference(t *testing.T) {
	demands := []Demand{{WCET: 2, Period: 5}, {WCET: 1, Period: 10}}
	// x=10, cs=3: workloads 4 and 1, sum 5; clamp 10-3+1=8 -> 5.
	if got := rtCoreInterference(10, 3, demands); got != 5 {
		t.Errorf("got %d, want 5", got)
	}
	// x=4, cs=3: workloads 2 and 1, sum 3; clamp 2 -> 2.
	if got := rtCoreInterference(4, 3, demands); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}
