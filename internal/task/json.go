package task

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON schema understood by cmd/hydrac.
// It is deliberately close to the in-memory model but keeps explicit
// field names so task-set files remain stable if internals change.
type fileFormat struct {
	Cores    int            `json:"cores"`
	RT       []rtRecord     `json:"rt_tasks"`
	Security []secRecord    `json:"security_tasks"`
	Meta     map[string]any `json:"meta,omitempty"`
}

type rtRecord struct {
	Name     string `json:"name"`
	WCET     Time   `json:"wcet"`
	Period   Time   `json:"period"`
	Deadline Time   `json:"deadline,omitempty"` // defaults to period (implicit deadline)
	Core     *int   `json:"core,omitempty"`     // defaults to -1 (unassigned; the Analyzer partitions)
	Priority *int   `json:"priority,omitempty"` // defaults to rate-monotonic
}

type secRecord struct {
	Name      string `json:"name"`
	WCET      Time   `json:"wcet"`
	MaxPeriod Time   `json:"max_period"`
	Period    Time   `json:"period,omitempty"`
	Priority  *int   `json:"priority,omitempty"` // defaults to max-period-monotonic
	Core      *int   `json:"core,omitempty"`     // defaults to -1 (migrating)
}

// Decode reads a task set from JSON. Missing deadlines default to the
// period; missing priorities default to rate-monotonic (RT) and
// max-period-monotonic (security) order; missing cores default to -1
// (unassigned — the Analyzer partitions such sets itself).
func Decode(r io.Reader) (*Set, error) {
	var f fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("decoding task set: %w", err)
	}
	ts := &Set{Cores: f.Cores}
	explicitRT := true
	for _, rec := range f.RT {
		t := RTTask{Name: rec.Name, WCET: rec.WCET, Period: rec.Period, Deadline: rec.Deadline, Core: -1}
		if rec.Core != nil {
			t.Core = *rec.Core
		}
		if t.Deadline == 0 {
			t.Deadline = t.Period
		}
		if rec.Priority != nil {
			t.Priority = *rec.Priority
		} else {
			explicitRT = false
		}
		ts.RT = append(ts.RT, t)
	}
	if !explicitRT {
		AssignRateMonotonic(ts.RT)
	}
	explicitSec := true
	for _, rec := range f.Security {
		s := SecurityTask{Name: rec.Name, WCET: rec.WCET, MaxPeriod: rec.MaxPeriod, Period: rec.Period, Core: -1}
		if rec.Core != nil {
			s.Core = *rec.Core
		}
		if rec.Priority != nil {
			s.Priority = *rec.Priority
		} else {
			explicitSec = false
		}
		ts.Security = append(ts.Security, s)
	}
	if !explicitSec {
		AssignMaxPeriodMonotonic(ts.Security)
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// Encode writes the task set as indented JSON.
func Encode(w io.Writer, ts *Set) error {
	f := fileFormat{Cores: ts.Cores}
	for _, t := range ts.RT {
		p, c := t.Priority, t.Core
		f.RT = append(f.RT, rtRecord{Name: t.Name, WCET: t.WCET, Period: t.Period, Deadline: t.Deadline, Core: &c, Priority: &p})
	}
	for _, s := range ts.Security {
		p, c := s.Priority, s.Core
		rec := secRecord{Name: s.Name, WCET: s.WCET, MaxPeriod: s.MaxPeriod, Period: s.Period, Priority: &p}
		if c >= 0 {
			rec.Core = &c // migrating (-1) stays implicit, as in hand-written files
		}
		f.Security = append(f.Security, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
