// Package hydradhttp is the HTTP surface of the hydrad daemon: the
// routes, error mapping, pooled body handling, and duplicate-request
// byte cache that cmd/hydrad serves. It lives in its own package so
// every consumer of the service hot path mounts the SAME handler —
// the daemon binary, cmd/hydrabench's in-process smoke mode, and the
// regression harness's self-test targets — instead of keeping
// hand-rolled mirrors in sync.
package hydradhttp

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/lru"
	"hydrac/internal/store"
)

// MaxBodyBytes bounds request bodies; the largest paper-scale task
// sets encode to a few kilobytes, so a megabyte leaves two orders of
// magnitude of headroom while keeping hostile payloads cheap.
const MaxBodyBytes = 1 << 20

// Config assembles a handler; see NewHandler.
type Config struct {
	// Analyzer runs every analysis; required.
	Analyzer *hydrac.Analyzer
	// Summary is echoed on /healthz.
	Summary map[string]any
	// MaxSessions bounds live sessions (0 disables the session
	// endpoints in memory mode; with a Store it is advisory — the
	// store's own MaxLive bounds materialised engines).
	MaxSessions int
	// CacheSize bounds the duplicate-request byte cache (0 disables
	// it, matching a cacheless analyzer where replayable hit envelopes
	// never exist).
	CacheSize int
	// Store, when non-nil, makes sessions durable: creation snapshots
	// to disk, commits append to a WAL before acknowledgement, and
	// LRU-evicted sessions re-hydrate transparently on next touch.
	// When nil, sessions live in a bounded in-memory LRU and eviction
	// loses them (surfaced as 410 Gone, not a bare 404).
	Store *store.Store
	// Logf receives operational log lines (evictions, recovery);
	// nil is quiet.
	Logf func(format string, args ...any)

	// Fleet, when non-nil, makes this node one member of a hydrad
	// peer group: session ids are owned by consistent-hash ring
	// position, requests for a session this node does not own answer
	// 307 + X-Hydra-Owner, POST /v1/handoff imports sessions streamed
	// from a draining peer, and Handler.Drain hands local sessions
	// off. Nil keeps the exact single-node behaviour.
	Fleet *fleet.Fleet

	// MaxInflight bounds concurrently executing requests; 0 disables
	// the admission gate (unlimited, the pre-gate behaviour).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxInflight; anything past executing+waiting is shed with 429.
	// Only meaningful with MaxInflight > 0.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed (default DefaultQueueWait).
	QueueWait time.Duration
	// RequestTimeout, when positive, deadlines every gated request's
	// context; expiry surfaces as 503.
	RequestTimeout time.Duration
}

// server carries the shared analyzer behind the HTTP surface.
type server struct {
	analyzer *hydrac.Analyzer
	summary  map[string]any
	// store is the durable session tier; nil means in-memory sessions.
	store *store.Store
	// sessions is sharded by session-id hash: ids are random hex, so
	// concurrent sessions spread across shard locks instead of
	// serialising on one store mutex per request. Unused (nil) when
	// store is set.
	sessions *lru.Sharded[*hydrac.Session]
	// evicted remembers ids the in-memory store dropped, so clients
	// can tell "evicted" (410 Gone — your session existed, run with
	// -data-dir to keep it) from "never existed" (404). Bounded like
	// any cache; an id old enough to rotate out degrades to 404.
	evicted *lru.Cache[string, struct{}]
	// respCache short-circuits exact-byte duplicate /v1/analyze
	// requests: body digest → the canonical cache-hit envelope bytes.
	// A hit costs one digest and one Write — no task-set decode, no
	// report marshal. Entries are only ever populated from analyzer
	// cache hits, so the replayed bytes are the canonical envelope
	// (FromCache true, no per-call Timing), which is identical for
	// every duplicate of those bytes; analysis is deterministic, so
	// entries never go stale.
	respCache *lru.Cache[[sha256.Size]byte, []byte]
	// handoffTokens remembers, in memory mode, the handoff token each
	// imported session arrived with, so a retried /v1/handoff POST (or
	// the sender's confirm probe) for a committed transfer answers 200
	// instead of an ambiguous 409. The durable store keeps its own
	// record; this exists only when sessions do not outlive the
	// process anyway. Nil outside memory mode.
	handoffTokens *lru.Cache[string, string]
	logf          func(format string, args ...any)
	// gate is the overload-protection front; always non-nil (a
	// zero-limit gate passes everything through) so healthz can
	// report admission stats unconditionally.
	gate *gate
	// fleet is the peer-group view; nil on a single node.
	fleet *fleet.Fleet
	// start anchors healthz's monotonic uptime_seconds.
	start time.Time
}

// sessionShards spreads the session store's locking; 16 shards keeps
// contention negligible up to hundreds of concurrent sessions while
// costing nothing at -sessions values this small.
const sessionShards = 16

// Handler is the assembled hydrad HTTP surface. It serves requests
// through the admission gate and, on a fleet member, owns the drain
// path (Drain).
type Handler struct {
	srv *server
}

// ServeHTTP dispatches through the admission gate.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.srv.gate.ServeHTTP(w, r)
}

// NewHandler wires the routes; cmd/hydrad serves it and tests mount
// it on httptest servers.
func NewHandler(cfg Config) *Handler {
	s := &server{
		analyzer:  cfg.Analyzer,
		summary:   cfg.Summary,
		store:     cfg.Store,
		respCache: lru.New[[sha256.Size]byte, []byte](cfg.CacheSize),
		logf:      cfg.Logf,
		fleet:     cfg.Fleet,
		start:     time.Now(),
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if s.store == nil {
		s.sessions = lru.NewSharded[*hydrac.Session](cfg.MaxSessions, sessionShards)
		if s.sessions != nil {
			// Keep the evicted-id memory an order of magnitude deeper
			// than the live window: a client only needs the 410 until
			// it notices and re-creates.
			capEvicted := 4 * cfg.MaxSessions
			if capEvicted < 1024 {
				capEvicted = 1024
			}
			s.evicted = lru.New[string, struct{}](capEvicted)
			// Token memory matches the evicted-id depth: a token is
			// only consulted within a drain's retry window, far shorter
			// than this cache's churn.
			s.handoffTokens = lru.New[string, string](capEvicted)
			s.sessions.OnEvict(func(id string, _ *hydrac.Session) {
				s.evicted.Add(id, struct{}{})
				s.logf("session %s evicted from the in-memory session store (run with -data-dir to make sessions durable)", id)
			})
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.analyze)
	mux.HandleFunc("/v1/analyze/batch", s.analyzeBatch)
	mux.HandleFunc("/v1/session", s.sessionCreate)
	mux.HandleFunc("/v1/session/", s.sessionRoute)
	mux.HandleFunc("/v1/handoff", s.handoff)
	mux.HandleFunc("/healthz", s.healthz)
	s.gate = newGate(mux, cfg)
	return &Handler{srv: s}
}

// bodyPool recycles request read buffers: every handler slurps the
// (bounded) body once, decodes from the buffer, and returns it, so
// steady-state traffic stops allocating per-request scratch space.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody reads the whole (size-capped) request body into a pooled
// buffer. The caller must putBody the buffer when done with its
// bytes.
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, MaxBodyBytes)); err != nil {
		bodyPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func putBody(buf *bytes.Buffer) { bodyPool.Put(buf) }

// batchRequest is the body of POST /v1/analyze/batch. Each element is
// one task set in the standard file schema.
type batchRequest struct {
	TaskSets []json.RawMessage `json:"task_sets"`
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)

	// Exact-byte duplicate of a previously analysed request: one
	// digest, one Write. Admission-control traffic is dominated by
	// re-posts of the same deployment manifest, so this is the
	// steady-state path.
	var key [sha256.Size]byte
	if s.respCache != nil {
		key = sha256.Sum256(buf.Bytes())
		if body, ok := s.respCache.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
	}

	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	body, fromCache, err := s.analyzer.AnalyzeEnvelope(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	if s.respCache != nil && fromCache {
		// Only hit envelopes are replayable: they carry no per-call
		// Timing, so every future duplicate of these bytes gets the
		// identical response.
		s.respCache.Add(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *server) analyzeBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.TaskSets) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch request carries no task sets"))
		return
	}
	sets := make([]*hydrac.TaskSet, len(req.TaskSets))
	for i, raw := range req.TaskSets {
		ts, err := hydrac.DecodeTaskSet(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task set %d: %w", i, err))
			return
		}
		sets[i] = ts
	}
	reps, err := s.analyzer.AnalyzeBatch(r.Context(), sets)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hydrac.WriteReports(w, reps)
}

// sessionCreateResponse is the body of a successful POST /v1/session:
// the standard report envelope fields plus the session id.
type sessionCreateResponse struct {
	Version   int            `json:"version"`
	SessionID string         `json:"session_id"`
	Report    *hydrac.Report `json:"report"`
}

func (s *server) sessionCreate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.store == nil && s.sessions == nil {
		// -sessions 0: the store never retains anything, so handing
		// out a session id would be a dead credential.
		writeError(w, http.StatusNotFound, errors.New("sessions are disabled on this daemon (-sessions 0)"))
		return
	}
	if s.fleet != nil && s.fleet.Draining() {
		// A draining node takes no new sessions: it is busy shipping
		// the ones it has. Send the client to a healthy peer.
		if target := s.fleet.CreateTarget(); target != "" {
			s.redirect(w, r, target)
			return
		}
		writeError(w, http.StatusServiceUnavailable, errors.New("node is draining and no healthy peer is available for new sessions"))
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	putBody(buf)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	id, err := s.newOwnedSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var rep *hydrac.Report
	if s.store != nil {
		// Durable: Create snapshots the base set and opens the WAL
		// before the id is handed out, so an acknowledged session
		// already survives a crash.
		rep, err = s.store.Create(r.Context(), id, ts)
		if err != nil {
			if errors.Is(err, store.ErrStorage) {
				writeStorageError(w, err)
				return
			}
			writeAnalysisError(w, r, err)
			return
		}
	} else {
		var sess *hydrac.Session
		sess, rep, err = s.analyzer.NewSession(r.Context(), ts)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		s.sessions.Add(id, sess)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sessionCreateResponse{Version: hydrac.ReportVersion, SessionID: id, Report: rep})
}

// sessionRoute dispatches /v1/session/{id} and /v1/session/{id}/admit.
func (s *server) sessionRoute(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, op, _ := strings.Cut(rest, "/")
	if s.fleet != nil && !s.holdsSession(id) {
		// Fleet routing: possession beats the ring. A session held
		// locally is always served locally — after a drain handoff the
		// receiver holds ids whose raw ring owner is elsewhere, and
		// redirecting those would bounce forever. Only a local miss
		// defers to the ring: the first healthy node in successor
		// order serves the id, everyone else answers a redirect.
		if addr, isSelf := s.fleet.Route(id); !isSelf {
			s.redirect(w, r, addr)
			return
		}
	}
	var sess *hydrac.Session
	if s.store != nil {
		// Durable: an LRU-evicted session re-hydrates from disk inside
		// Acquire; release pins it live for exactly this operation.
		acquired, release, err := s.store.Acquire(r.Context(), id)
		if err != nil {
			switch {
			case errors.Is(err, store.ErrMoved):
				// Handed off during a drain: the new owner has it.
				if s.redirectToHandoffTarget(w, r, id) {
					return
				}
				writeError(w, http.StatusGone, fmt.Errorf("session %q was handed off to another node and no healthy peer is known for it", id))
			case errors.Is(err, store.ErrNotFound):
				if s.writeFailoverUnavailable(w, id) {
					// This node serves the id only as a failover
					// successor (the raw owner is down) and has no
					// local copy: the downed owner holds the only
					// durable copy, so this is a clear 503, not a 404 —
					// and not a redirect to another copyless peer that
					// would 307 straight back here.
					return
				}
				writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q (never created on this data dir)", id))
			case errors.Is(err, store.ErrStorage):
				writeStorageError(w, err)
			default:
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		defer release()
		sess = acquired
	} else {
		var ok bool
		sess, ok = s.sessions.Get(id)
		if !ok {
			if _, wasEvicted := s.evicted.Get(id); wasEvicted {
				// Distinct from 404: the session DID exist and the
				// in-memory store shed it under capacity pressure.
				s.logf("rejecting request for evicted session %s", id)
				writeError(w, http.StatusGone, fmt.Errorf("session %q was evicted from the in-memory session store (raise -sessions or run with -data-dir to make sessions durable)", id))
				return
			}
			if s.writeFailoverUnavailable(w, id) {
				return
			}
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q (expired, evicted, or never created)", id))
			return
		}
	}
	switch op {
	case "":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		hydrac.EncodeTaskSet(w, sess.Set())
	case "admit":
		if !requirePost(w, r) {
			return
		}
		buf, err := readBody(w, r)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		d, err := hydrac.DecodeDelta(bytes.NewReader(buf.Bytes()))
		putBody(buf)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		rep, admitted, err := sess.Admit(r.Context(), *d)
		if err != nil {
			if errors.Is(err, store.ErrStorage) {
				// The admission was fine; the disk was not. The commit
				// was aborted, so memory and WAL still agree — and the
				// background probe will re-arm the session once the
				// disk recovers, so this is a retryable 503, not a 500.
				writeStorageError(w, err)
				return
			}
			writeAnalysisError(w, r, err)
			return
		}
		// The envelope must stay byte-identical to a cold analysis of
		// the same set, so the commit verdict travels in a header.
		w.Header().Set("X-Hydra-Admitted", fmt.Sprintf("%v", admitted))
		w.Header().Set("Content-Type", "application/json")
		hydrac.WriteReport(w, rep)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session operation %q", op))
	}
}

// newSessionID draws a 128-bit random id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	status := "ok"
	body := map[string]any{
		"report_version": hydrac.ReportVersion,
		"config":         s.summary,
		"admission":      s.gate.healthSnapshot(),
		// Monotonic by construction: time.Since reads the monotonic
		// clock, so NTP slews never make uptime jump.
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.store != nil {
		h := s.store.Health()
		sessions := map[string]any{"durable": true, "count": h.Sessions}
		if !h.OK() {
			// Reads still work; mutations on degraded sessions 503
			// until the background probe re-arms them. Surfaced here
			// so operators see it before clients do.
			status = "degraded"
			sessions["degraded"] = h.Degraded
			sessions["degraded_reason"] = h.Reason
			sessions["degraded_since"] = h.Since.UTC().Format(time.RFC3339)
		}
		body["sessions"] = sessions
	}
	if s.fleet != nil {
		peers := make([]map[string]any, 0, len(s.fleet.Peers()))
		for _, v := range s.fleet.View() {
			peers = append(peers, map[string]any{"addr": v.Addr, "state": v.State})
		}
		body["fleet"] = map[string]any{"self": s.fleet.Self(), "peers": peers}
		if s.fleet.Draining() {
			// Draining outranks degraded: peers must stop sending new
			// sessions and handoffs here, which is exactly what their
			// probers do on seeing this status.
			status = "draining"
		}
	}
	body["status"] = status
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return true
	}
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// writeAnalysisError maps pipeline failures: a server-imposed request
// deadline is a retryable 503, a client that hung up gets no response,
// and everything else is the client's input.
func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	if ctxErr := r.Context().Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("request deadline expired mid-analysis: %w", err))
		}
		return // plain cancellation: the client hung up, the analysis was shed
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// writeStorageError maps a storage-tier fault to 503: the session is
// (or just became) degraded read-only, the background probe re-arms it
// once the disk recovers, so the client should retry — not treat it as
// a server bug. Retry-After is tuned to the probe cadence.
func writeStorageError(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds(store.DefaultProbeEvery))
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("storage degraded (reads still served, mutations rejected until re-armed): %w", err))
}

// badRequestStatus distinguishes an oversized body (413) from plain
// bad input (400).
func badRequestStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
