package core

import (
	"context"
	"fmt"

	"hydrac/internal/task"
)

// Hints carries state from a previous period-selection run so a
// near-identical set — the common case for a live admission session,
// where successive requests differ by one or two tasks — can be
// re-analysed in O(verification) instead of O(search).
//
// Hints never change the result. The previous period of a task is
// used only as a candidate: it is kept iff the analysis proves, in the
// NEW set's context, that it is exactly the value Algorithm 2's search
// would return (feasible, and either at the lower bound or with an
// infeasible predecessor — the definition of the least feasible
// period under the monotone-feasibility assumption the binary search
// itself rests on). A candidate that fails verification falls back to
// the full search for that task; a missing candidate always searches.
type Hints struct {
	// Periods maps security-task name → previously selected period.
	Periods map[string]task.Time
	// RTVerified tells the selector the caller has already established
	// RT-band feasibility (Eq. 1 on every core) for this exact set, so
	// the per-core RTA screen can be skipped. The incremental engine
	// sets it after its memoized per-core check.
	RTVerified bool
}

// ResumeStats reports how much prior state a resumable selection
// reused; tests and the admission engine's metrics read it.
type ResumeStats struct {
	// Verified counts tasks whose hinted period was proven minimal
	// with at most two feasibility probes.
	Verified int
	// Searched counts tasks that ran the full Algorithm 2 search.
	Searched int
}

// SelectPeriodsResumable is SelectPeriodsCtx with warm-start hints:
// identical results, bit for bit, with most of the per-task period
// searches replaced by two-probe verifications when the hints match.
//
// It also reuses the response-time state Algorithm 1 threads through
// its loop instead of recomputing every lower task after each fix
// (line 8): a task's final WCRT depends only on the finalized periods
// and response times ABOVE it, so resp[i] is computed once, right
// before task i's own search, from the already-final prefix. This is
// the same least fixed point recomputeBelow arrives at — recomputeBelow
// just recomputes it (n−i) times more often — and the differential
// oracle corpus (internal/oracle) pins the equivalence.
func SelectPeriodsResumable(ctx context.Context, ts *task.Set, opt Options, hints *Hints) (*Result, *ResumeStats, error) {
	sc := DefaultScratchPool.Get(nil, SizeHint(ts))
	defer DefaultScratchPool.Put(sc)
	return SelectPeriodsResumableWith(ctx, ts, opt, hints, sc)
}

// SelectPeriodsResumableWith is SelectPeriodsResumable with a
// caller-owned Scratch: a long-lived owner (the admission engine)
// re-primes one workspace per analysis instead of reallocating the
// kernel buffers on every delta. The scratch must not be shared
// across goroutines; results are identical to the scratch-free form.
func SelectPeriodsResumableWith(ctx context.Context, ts *task.Set, opt Options, hints *Hints, sc *Scratch) (*Result, *ResumeStats, error) {
	stats := &ResumeStats{}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if hints == nil {
		hints = &Hints{}
	}
	if !hints.RTVerified && !setSchedulable(ts, opt.AnalysisWorkers) {
		return nil, nil, fmt.Errorf("RT band is not schedulable under Eq. 1; HYDRA-C requires a feasible legacy system")
	}

	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	n := len(sec)
	if n == 0 {
		return &Result{Schedulable: true, Periods: []task.Time{}, Resp: []task.Time{}}, stats, nil
	}

	sc.Reset(sys)
	sc.ensure(n)

	// Line 1 + lines 2–4: every period at Tmax; if any task misses even
	// there, the set is unschedulable within the designer bounds.
	periods := sc.periods[:0]
	for _, s := range sec {
		periods = append(periods, s.MaxPeriod)
	}
	sc.periods = periods
	resp := sc.responseTimes(sec, periods, opt.CarryIn, sc.resp)
	sc.resp = resp
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, stats, nil
		}
	}

	if !opt.SkipOptimization {
		// Lines 5–9, resumable form. hp accumulates the finalized
		// interferer prefix (on its own buffer — the probe helpers
		// below reuse sc.hp); resp[i] is recomputed from it once per
		// task (it cannot depend on the unfixed periods below, nor on
		// the task's own period).
		hp := sc.hpOuter[:0]
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			if i > 0 {
				r, ok := sc.MigratingWCRT(sec[i].WCET, hp, sec[i].MaxPeriod, opt.CarryIn)
				if !ok {
					// Cannot happen: the task was feasible at Tmax and
					// the prefix only shrank periods the feasibility
					// checks already accounted for; recompute keeps
					// the slice consistent regardless.
					r = task.Infinity
				}
				resp[i] = r
			}
			lo, hi := resp[i], sec[i].MaxPeriod
			star := task.Time(-1)
			if cand, ok := hints.Periods[sec[i].Name]; ok && cand >= lo && cand <= hi {
				if lowerPrioritySchedulable(sc, sec, periods, resp, i, cand, opt.CarryIn) &&
					(cand == lo || !lowerPrioritySchedulable(sc, sec, periods, resp, i, cand-1, opt.CarryIn)) {
					star = cand
					stats.Verified++
				}
			}
			if star < 0 {
				if opt.LinearSearch {
					star = linearMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
				} else {
					star = logMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
				}
				stats.Searched++
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			periods[i] = star
			hp = append(hp, Interferer{WCET: sec[i].WCET, Period: periods[i], Resp: resp[i]})
		}
		sc.hpOuter = hp[:0]
	}

	// Report in the original ts.Security order.
	outPeriods := make([]task.Time, n)
	outResp := make([]task.Time, n)
	byName := securityIndex(ts.Security)
	for i, s := range sec {
		j := byName[s.Name]
		outPeriods[j] = periods[i]
		outResp[j] = resp[i]
	}
	return &Result{Schedulable: true, Periods: outPeriods, Resp: outResp}, stats, nil
}
