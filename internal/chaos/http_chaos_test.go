package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hydrac"
	"hydrac/internal/faultfs"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

func deltaBytes(t *testing.T, d hydrac.Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeDelta(&buf, &d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// post sends body and returns status, the Retry-After header, and the
// drained response body.
func post(t *testing.T, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), b
}

// healthzBody fetches and decodes /healthz (which bypasses the gate).
func healthzBody(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func admission(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	adm, ok := body["admission"].(map[string]any)
	if !ok {
		t.Fatalf("healthz carries no admission block: %v", body)
	}
	return adm
}

// The full-stack compound failure: a storage fault degrades the session
// tier to read-only (503 + Retry-After, reads still 200, healthz says
// "degraded") while an occupied admission gate sheds excess load with
// 429 — the two protections compose instead of interfering, and once
// the disk heals a probe restores full service with no committed-delta
// loss.
func TestOverloadWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	a := newAnalyzer(t)
	in := faultfs.Wrap(nil)
	st, err := store.Open(dir, a, store.Options{FS: in, ProbeEvery: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer:    a,
		Store:       st,
		MaxInflight: 1,
		MaxQueue:    0,
		QueueWait:   10 * time.Millisecond,
	}))
	defer srv.Close()

	// Establish one committed delta over HTTP.
	status, _, body := post(t, srv.URL+"/v1/session", setBytes(t, base()))
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, body)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	admitURL := srv.URL + "/v1/session/" + created.SessionID + "/admit"
	if status, _, body := post(t, admitURL, deltaBytes(t, monitorDelta("mon", 0))); status != http.StatusOK {
		t.Fatalf("admit 0: %d %s", status, body)
	}

	// The disk fails under the next commit: 503 with Retry-After, and
	// the session is now degraded read-only.
	in.Fail(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 1})
	status, retryAfter, body := post(t, admitURL, deltaBytes(t, monitorDelta("mon", 1)))
	if status != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("admit over failing fsync: %d (Retry-After %q) %s", status, retryAfter, body)
	}
	if status, retryAfter, _ := post(t, admitURL, deltaBytes(t, monitorDelta("mon", 2))); status != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("admit while degraded: %d (Retry-After %q)", status, retryAfter)
	}

	// Reads still serve the committed history while degraded.
	resp, err := http.Get(srv.URL + "/v1/session/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded: %d %s", resp.StatusCode, got)
	}
	if want := controlSet(t, a, []hydrac.Delta{monitorDelta("mon", 0)}); !bytes.Equal(got, want) {
		t.Fatal("degraded read diverged from the committed history")
	}
	if hb := healthzBody(t, srv.URL); hb["status"] != "degraded" {
		t.Fatalf("healthz status = %v while degraded", hb["status"])
	}

	// Now pile overload on top: an occupier request holds the single
	// execution slot by never finishing its body upload.
	pr, pw := io.Pipe()
	occupierDone := make(chan struct{})
	go func() {
		defer close(occupierDone)
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if inflight, _ := admission(t, healthzBody(t, srv.URL))["inflight"].(float64); inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("occupier never showed up as inflight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// With the slot held and no queue, even a read is shed — overload
	// protection answers before the degraded store is ever consulted.
	status, retryAfter, _ = post(t, admitURL, deltaBytes(t, monitorDelta("mon", 1)))
	if status != http.StatusTooManyRequests || retryAfter == "" {
		t.Fatalf("request during overload: %d (Retry-After %q), want 429", status, retryAfter)
	}

	// The occupier finishes (empty body, a 4xx — irrelevant here) and
	// frees the slot.
	pw.Close()
	<-occupierDone

	// Disk heals, probe re-arms, and the failed delta goes through.
	in.Reset()
	if rearmed, degraded := st.Probe(context.Background()); rearmed != 1 || degraded != 0 {
		t.Fatalf("Probe = (%d, %d), want (1, 0)", rearmed, degraded)
	}
	if status, _, body := post(t, admitURL, deltaBytes(t, monitorDelta("mon", 1))); status != http.StatusOK {
		t.Fatalf("admit after re-arm: %d %s", status, body)
	}
	hb := healthzBody(t, srv.URL)
	if hb["status"] != "ok" {
		t.Fatalf("healthz status = %v after recovery", hb["status"])
	}
	if shed, _ := admission(t, hb)["shed"].(float64); shed < 1 {
		t.Fatalf("admission.shed = %v, want >= 1", shed)
	}

	// And the state equals an uninterrupted control run over exactly
	// the acknowledged deltas.
	if got, want := storeSet(t, st, created.SessionID), controlSet(t, a, []hydrac.Delta{
		monitorDelta("mon", 0), monitorDelta("mon", 1),
	}); !bytes.Equal(got, want) {
		t.Fatal("recovered session diverged from control over the acknowledged deltas")
	}
}
