package sim

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"hydrac/internal/task"
)

func tracedRun(t *testing.T) *Result {
	t.Helper()
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "rt", WCET: 3, Period: 10, Deadline: 10, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 4, Period: 20, MaxPeriod: 40, Priority: 0, Core: -1},
		},
	}
	res, err := Run(ts, Config{Horizon: 100, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteIntervalsCSV(t *testing.T) {
	res := tracedRun(t)
	var buf bytes.Buffer
	if err := WriteIntervalsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "task,job,core,start,end,release,finish,missed" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d rows for a 100-tick run", len(lines))
	}
	// Total executed time in the CSV must equal the core-busy sum.
	var total int64
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		start, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		end, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += end - start
	}
	var busy int64
	for _, b := range res.CoreBusy {
		busy += b
	}
	if total != busy {
		t.Fatalf("CSV intervals total %d, core busy %d", total, busy)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := tracedRun(t)
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ContextSwitches != res.ContextSwitches ||
		back.Migrations != res.Migrations ||
		back.Horizon != res.Horizon ||
		back.RTDeadlineMisses != res.RTDeadlineMisses {
		t.Fatalf("counters differ: %+v vs %+v", back, res)
	}
	for name, s := range res.Stats {
		b := back.Stats[name]
		if b == nil || b.Completed != s.Completed || b.MaxResponse != s.MaxResponse {
			t.Fatalf("task %s stats differ: %+v vs %+v", name, b, s)
		}
		if math.Abs(b.MeanResponse()-s.MeanResponse()) > 0.01 {
			t.Fatalf("task %s mean response %.3f vs %.3f", name, b.MeanResponse(), s.MeanResponse())
		}
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown fields accepted")
	}
	if _, err := ReadResultJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
