package task

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRTTaskValidate(t *testing.T) {
	cases := []struct {
		name    string
		task    RTTask
		wantErr string
	}{
		{"valid", RTTask{Name: "a", WCET: 2, Period: 10, Deadline: 10}, ""},
		{"valid constrained", RTTask{Name: "a", WCET: 2, Period: 10, Deadline: 5}, ""},
		{"zero wcet", RTTask{Name: "a", WCET: 0, Period: 10, Deadline: 10}, "WCET must be positive"},
		{"negative wcet", RTTask{Name: "a", WCET: -1, Period: 10, Deadline: 10}, "WCET must be positive"},
		{"zero period", RTTask{Name: "a", WCET: 1, Period: 0, Deadline: 10}, "period must be positive"},
		{"zero deadline", RTTask{Name: "a", WCET: 1, Period: 10, Deadline: 0}, "deadline must be positive"},
		{"deadline beyond period", RTTask{Name: "a", WCET: 1, Period: 10, Deadline: 11}, "exceeds period"},
		{"wcet beyond deadline", RTTask{Name: "a", WCET: 6, Period: 10, Deadline: 5}, "exceeds deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSecurityTaskValidate(t *testing.T) {
	cases := []struct {
		name    string
		task    SecurityTask
		wantErr string
	}{
		{"valid no period", SecurityTask{Name: "s", WCET: 5, MaxPeriod: 100}, ""},
		{"valid with period", SecurityTask{Name: "s", WCET: 5, MaxPeriod: 100, Period: 50}, ""},
		{"zero wcet", SecurityTask{Name: "s", WCET: 0, MaxPeriod: 100}, "WCET must be positive"},
		{"zero max period", SecurityTask{Name: "s", WCET: 5, MaxPeriod: 0}, "max period must be positive"},
		{"wcet beyond max", SecurityTask{Name: "s", WCET: 101, MaxPeriod: 100}, "below the minimum feasible period"},
		{"negative period", SecurityTask{Name: "s", WCET: 5, MaxPeriod: 100, Period: -1}, "period must be non-negative"},
		{"period beyond max", SecurityTask{Name: "s", WCET: 5, MaxPeriod: 100, Period: 101}, "exceeds max period"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestSetValidate(t *testing.T) {
	valid := func() *Set {
		return &Set{
			Cores: 2,
			RT: []RTTask{
				{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
				{Name: "b", WCET: 3, Period: 20, Deadline: 20, Core: 1, Priority: 1},
			},
			Security: []SecurityTask{
				{Name: "s1", WCET: 5, MaxPeriod: 100, Priority: 0, Core: -1},
				{Name: "s2", WCET: 7, MaxPeriod: 200, Priority: 1, Core: -1},
			},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}

	s := valid()
	s.Cores = 0
	if err := s.Validate(); err == nil {
		t.Error("zero cores accepted")
	}

	s = valid()
	s.RT[0].Core = 2
	if err := s.Validate(); err == nil {
		t.Error("RT core out of range accepted")
	}

	s = valid()
	s.Security[1].Priority = 0
	if err := s.Validate(); err == nil {
		t.Error("duplicate security priorities accepted")
	}

	s = valid()
	s.Security[0].Core = 5
	if err := s.Validate(); err == nil {
		t.Error("security core out of range accepted")
	}
}

func TestUtilizations(t *testing.T) {
	ts := &Set{
		Cores: 2,
		RT: []RTTask{
			{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0}, // 0.2
			{Name: "b", WCET: 5, Period: 20, Deadline: 20, Core: 1}, // 0.25
		},
		Security: []SecurityTask{
			{Name: "s", WCET: 10, MaxPeriod: 100, Priority: 0, Core: -1}, // min util 0.1
		},
	}
	if got := ts.RTUtilization(); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("RTUtilization = %v, want 0.45", got)
	}
	if got := ts.SecurityMinUtilization(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("SecurityMinUtilization = %v, want 0.1", got)
	}
	if got := ts.MinUtilization(); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("MinUtilization = %v, want 0.55", got)
	}
	if got := ts.NormalizedUtilization(); math.Abs(got-0.275) > 1e-12 {
		t.Errorf("NormalizedUtilization = %v, want 0.275", got)
	}
}

func TestAssignRateMonotonic(t *testing.T) {
	rt := []RTTask{
		{Name: "slow", Period: 100},
		{Name: "fast", Period: 10},
		{Name: "mid", Period: 50},
		{Name: "tieB", Period: 25},
		{Name: "tieA", Period: 25},
	}
	AssignRateMonotonic(rt)
	want := map[string]int{"fast": 0, "tieA": 1, "tieB": 2, "mid": 3, "slow": 4}
	for _, task := range rt {
		if task.Priority != want[task.Name] {
			t.Errorf("task %s priority = %d, want %d", task.Name, task.Priority, want[task.Name])
		}
	}
}

func TestAssignMaxPeriodMonotonic(t *testing.T) {
	sec := []SecurityTask{
		{Name: "x", MaxPeriod: 3000},
		{Name: "y", MaxPeriod: 1500},
		{Name: "z", MaxPeriod: 1500},
	}
	AssignMaxPeriodMonotonic(sec)
	want := map[string]int{"y": 0, "z": 1, "x": 2}
	for _, s := range sec {
		if s.Priority != want[s.Name] {
			t.Errorf("task %s priority = %d, want %d", s.Name, s.Priority, want[s.Name])
		}
	}
}

func TestRTOnCoreSortsByPriority(t *testing.T) {
	ts := &Set{
		Cores: 2,
		RT: []RTTask{
			{Name: "c", WCET: 1, Period: 30, Deadline: 30, Core: 0, Priority: 2},
			{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "other", WCET: 1, Period: 15, Deadline: 15, Core: 1, Priority: 1},
		},
	}
	got := ts.RTOnCore(0)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("RTOnCore(0) = %+v, want [a c]", got)
	}
	if len(ts.RTOnCore(1)) != 1 {
		t.Fatalf("RTOnCore(1) length = %d, want 1", len(ts.RTOnCore(1)))
	}
}

func TestSecurityByPriorityDoesNotMutate(t *testing.T) {
	ts := &Set{
		Cores: 1,
		Security: []SecurityTask{
			{Name: "low", WCET: 1, MaxPeriod: 10, Priority: 5},
			{Name: "high", WCET: 1, MaxPeriod: 10, Priority: 1},
		},
	}
	got := ts.SecurityByPriority()
	if got[0].Name != "high" || got[1].Name != "low" {
		t.Fatalf("order = [%s %s], want [high low]", got[0].Name, got[1].Name)
	}
	if ts.Security[0].Name != "low" {
		t.Error("SecurityByPriority mutated the receiver")
	}
}

func TestCloneIsDeep(t *testing.T) {
	ts := &Set{
		Cores:    1,
		RT:       []RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
		Security: []SecurityTask{{Name: "s", WCET: 1, MaxPeriod: 100, Core: -1}},
	}
	cp := ts.Clone()
	cp.RT[0].WCET = 99
	cp.Security[0].Period = 42
	if ts.RT[0].WCET != 1 || ts.Security[0].Period != 0 {
		t.Error("Clone shares backing arrays with the original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ts := &Set{
		Cores: 2,
		RT: []RTTask{
			{Name: "nav", WCET: 240, Period: 500, Deadline: 500, Core: 0, Priority: 0},
			{Name: "cam", WCET: 1120, Period: 5000, Deadline: 5000, Core: 1, Priority: 1},
		},
		Security: []SecurityTask{
			{Name: "tripwire", WCET: 5342, MaxPeriod: 10000, Priority: 1, Core: -1},
			{Name: "kmod", WCET: 223, MaxPeriod: 10000, Priority: 0, Core: -1},
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ts); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Cores != ts.Cores || len(got.RT) != len(ts.RT) || len(got.Security) != len(ts.Security) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range ts.RT {
		if got.RT[i] != ts.RT[i] {
			t.Errorf("RT[%d] = %+v, want %+v", i, got.RT[i], ts.RT[i])
		}
	}
	for i := range ts.Security {
		want := ts.Security[i]
		want.Core = -1
		if got.Security[i] != want {
			t.Errorf("Security[%d] = %+v, want %+v", i, got.Security[i], want)
		}
	}
}

func TestDecodeDefaults(t *testing.T) {
	src := `{
		"cores": 1,
		"rt_tasks": [
			{"name": "slow", "wcet": 1, "period": 100, "core": 0},
			{"name": "fast", "wcet": 1, "period": 10, "core": 0}
		],
		"security_tasks": [
			{"name": "big", "wcet": 10, "max_period": 3000},
			{"name": "small", "wcet": 5, "max_period": 1000}
		]
	}`
	ts, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	byName := map[string]RTTask{}
	for _, r := range ts.RT {
		byName[r.Name] = r
	}
	if byName["fast"].Priority != 0 || byName["slow"].Priority != 1 {
		t.Errorf("RM defaults wrong: %+v", ts.RT)
	}
	if byName["slow"].Deadline != 100 {
		t.Errorf("implicit deadline not applied: %+v", byName["slow"])
	}
	secByName := map[string]SecurityTask{}
	for _, s := range ts.Security {
		secByName[s.Name] = s
	}
	if secByName["small"].Priority != 0 || secByName["big"].Priority != 1 {
		t.Errorf("max-period-monotonic defaults wrong: %+v", ts.Security)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"cores": 0, "rt_tasks": [], "security_tasks": []}`,
		`{"cores": 1, "rt_tasks": [{"name":"a","wcet":0,"period":10,"core":0}], "security_tasks": []}`,
		`{"cores": 1, "rt_tasks": [], "security_tasks": [{"name":"s","wcet":10,"max_period":5}]}`,
		`{"cores": 1, "unknown_field": 1}`,
	}
	for i, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}
