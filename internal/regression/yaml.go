package regression

import (
	"fmt"
	"strconv"
	"strings"
)

// parseYAML decodes the YAML subset the regression case files use.
// The repo deliberately carries no third-party YAML dependency, so
// this is a small hand-rolled decoder for exactly the constructs the
// case schema needs — documented in test/regression/README.md:
//
//   - block mappings, nested by indentation
//     (keys are plain scalars, no quoting)
//   - block sequences of scalars ("- item")
//   - flow sequences of scalars ("[1, 4, 16]")
//   - plain, 'single'- and "double"-quoted scalar values
//   - "#" comments and blank lines
//
// Scalars decode to bool, int64, float64 or string (in that order of
// preference); everything else — anchors, multi-line strings, flow
// mappings, documents — is a load error, not a silent skip.
//
// The result is map[string]any with nested map[string]any, []any and
// scalar leaves.
func parseYAML(src string) (map[string]any, error) {
	p := &yamlParser{}
	for ln, raw := range strings.Split(src, "\n") {
		line, err := p.strip(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if line == "" {
			continue
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		if strings.Contains(raw[:indent+1], "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed for indentation", ln+1)
		}
		if err := p.add(indent, strings.TrimSpace(line), ln+1); err != nil {
			return nil, err
		}
	}
	for _, f := range p.stack {
		if f.pendingKey != "" {
			return nil, fmt.Errorf("key %q has no value", f.pendingKey)
		}
	}
	if p.root == nil {
		return map[string]any{}, nil
	}
	return p.root, nil
}

// yamlFrame is one open block collection at a given indentation.
type yamlFrame struct {
	indent int
	m      map[string]any // non-nil for a mapping frame
	seq    *[]any         // non-nil for a sequence frame
	// pendingKey is the mapping key awaiting its block value (the
	// "key:" line whose children are deeper-indented).
	pendingKey string
	// onClose writes a sequence frame's current slice back into its
	// parent mapping (append reallocates, so the parent's copy must be
	// refreshed after every item).
	onClose func([]any)
}

type yamlParser struct {
	root  map[string]any
	stack []yamlFrame
}

// strip removes a trailing comment, respecting quoted strings.
func (p *yamlParser) strip(raw string) (string, error) {
	var quote byte
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			return strings.TrimSpace(raw[:i]), nil
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("unterminated %q quote", quote)
	}
	return strings.TrimSpace(raw), nil
}

// add feeds one non-empty line into the tree.
func (p *yamlParser) add(indent int, line string, ln int) error {
	// Close frames deeper than this line's indentation. A frame may
	// only be left behind (or popped) with its pending "key:" resolved
	// — an abandoned pending key means the document gave it no value,
	// which the schema never allows.
	for len(p.stack) > 0 {
		top := &p.stack[len(p.stack)-1]
		if indent > top.indent {
			break
		}
		if top.pendingKey != "" {
			return fmt.Errorf("line %d: key %q has no value", ln, top.pendingKey)
		}
		if indent == top.indent && p.matchesFrame(top, line) {
			break
		}
		p.stack = p.stack[:len(p.stack)-1]
	}

	if len(p.stack) == 0 {
		if strings.HasPrefix(line, "- ") || line == "-" {
			return fmt.Errorf("line %d: top level must be a mapping", ln)
		}
		m := map[string]any{}
		if p.root == nil {
			p.root = m
		} else {
			// Root continues: reuse the existing root mapping.
			m = p.root
		}
		p.stack = append(p.stack, yamlFrame{indent: indent, m: m})
	}

	top := &p.stack[len(p.stack)-1]

	// A pending "key:" line is resolved by the first deeper line: it
	// opens either a nested mapping or a sequence.
	if top.pendingKey != "" && indent > top.indent {
		key := top.pendingKey
		top.pendingKey = ""
		if strings.HasPrefix(line, "- ") || line == "-" {
			seq := []any{}
			parent := top.m
			parent[key] = seq
			p.stack = append(p.stack, yamlFrame{
				indent:  indent,
				seq:     &seq,
				onClose: func(v []any) { parent[key] = v },
			})
		} else {
			m := map[string]any{}
			top.m[key] = m
			p.stack = append(p.stack, yamlFrame{indent: indent, m: m})
		}
		top = &p.stack[len(p.stack)-1]
	}

	switch {
	case top.seq != nil:
		if !strings.HasPrefix(line, "- ") && line != "-" {
			return fmt.Errorf("line %d: expected sequence item, got %q", ln, line)
		}
		item := strings.TrimSpace(strings.TrimPrefix(line, "-"))
		if item == "" {
			return fmt.Errorf("line %d: empty sequence item", ln)
		}
		if strings.Contains(item, ": ") || strings.HasSuffix(item, ":") {
			return fmt.Errorf("line %d: sequences of mappings are outside the supported subset (use a 'name: weight' mapping instead)", ln)
		}
		v, err := yamlScalar(item)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		*top.seq = append(*top.seq, v)
		if top.onClose != nil {
			top.onClose(*top.seq)
		}
		return nil
	case top.m != nil:
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("line %d: expected 'key: value', got %q", ln, line)
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return fmt.Errorf("line %d: empty key", ln)
		}
		if _, dup := top.m[key]; dup {
			return fmt.Errorf("line %d: duplicate key %q", ln, key)
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			top.pendingKey = key
			return nil
		}
		v, err := yamlValue(rest)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		top.m[key] = v
		return nil
	}
	return fmt.Errorf("line %d: internal parser state error", ln)
}

// matchesFrame reports whether a line at the frame's own indentation
// continues it (same collection kind).
func (p *yamlParser) matchesFrame(f *yamlFrame, line string) bool {
	isItem := strings.HasPrefix(line, "- ") || line == "-"
	if f.seq != nil {
		return isItem
	}
	return !isItem
}

// yamlValue decodes an inline value: flow sequence or scalar.
func yamlValue(s string) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated flow sequence %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range strings.Split(inner, ",") {
			v, err := yamlScalar(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("flow mappings are outside the supported subset: %q", s)
	}
	return yamlScalar(s)
}

// yamlScalar decodes one scalar token.
func yamlScalar(s string) (any, error) {
	if s == "" {
		return nil, fmt.Errorf("empty scalar")
	}
	if s[0] == '\'' || s[0] == '"' {
		if len(s) < 2 || s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("unterminated quoted scalar %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	if s == "&" || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") {
		return nil, fmt.Errorf("anchors and block scalars are outside the supported subset: %q", s)
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
