package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"hydrac/internal/task"
)

// resumeTestSet draws a small partitioned-RT set; same shape as the
// quick-check sets used elsewhere in the package.
func resumeTestSet(rng *rand.Rand) *task.Set {
	ts := &task.Set{Cores: 1 + rng.Intn(2)}
	nrt := 2 + rng.Intn(4)
	for i := 0; i < nrt; i++ {
		period := task.Time(16 + rng.Intn(60))
		ts.RT = append(ts.RT, task.RTTask{
			Name: "rt" + string(rune('a'+i)), WCET: 1 + task.Time(rng.Intn(4)),
			Period: period, Deadline: period, Core: rng.Intn(ts.Cores), Priority: i,
		})
	}
	nsec := 1 + rng.Intn(4)
	for i := 0; i < nsec; i++ {
		ts.Security = append(ts.Security, task.SecurityTask{
			Name: "sec" + string(rune('a'+i)), WCET: 1 + task.Time(rng.Intn(3)),
			MaxPeriod: task.Time(80 + rng.Intn(300)), Core: -1, Priority: i,
		})
	}
	return ts
}

// The resumable selector without hints must agree with SelectPeriodsCtx
// exactly, and with correct hints it must agree while verifying (not
// searching) every task.
func TestSelectPeriodsResumableMatchesCold(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	verified := 0
	for trial := 0; trial < 400; trial++ {
		ts := resumeTestSet(rng)
		if err := ts.Validate(); err != nil {
			continue
		}
		cold, err := SelectPeriodsCtx(ctx, ts, Options{})
		if err != nil {
			continue // RT band infeasible for this draw
		}
		warm, stats, err := SelectPeriodsResumable(ctx, ts, Options{}, nil)
		if err != nil {
			t.Fatalf("trial %d: resumable errored where cold succeeded: %v", trial, err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("trial %d: hintless resumable diverged from cold:\ncold %+v\nwarm %+v", trial, cold, warm)
		}
		if !cold.Schedulable {
			continue
		}
		if stats.Verified != 0 {
			t.Fatalf("trial %d: verified %d tasks without hints", trial, stats.Verified)
		}
		// Perfect hints: every task must verify in place.
		hints := &Hints{Periods: map[string]task.Time{}, RTVerified: true}
		for i, s := range ts.Security {
			hints.Periods[s.Name] = cold.Periods[i]
		}
		again, stats2, err := SelectPeriodsResumable(ctx, ts, Options{}, hints)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, again) {
			t.Fatalf("trial %d: hinted resumable diverged from cold", trial)
		}
		if stats2.Searched != 0 {
			t.Fatalf("trial %d: %d searches despite perfect hints", trial, stats2.Searched)
		}
		verified += stats2.Verified
		// Wrong hints must be rejected by verification, not trusted.
		bad := &Hints{Periods: map[string]task.Time{}}
		for i, s := range ts.Security {
			bad.Periods[s.Name] = cold.Periods[i] + 1 + task.Time(rng.Intn(5))
		}
		fixed, _, err := SelectPeriodsResumable(ctx, ts, Options{}, bad)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, fixed) {
			t.Fatalf("trial %d: wrong hints leaked into the result", trial)
		}
	}
	if verified == 0 {
		t.Fatal("no trial exercised the verification fast path")
	}
}

// Hints must be result-neutral for the linear-search ablation too.
func TestSelectPeriodsResumableLinearSearch(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		ts := resumeTestSet(rng)
		opt := Options{LinearSearch: true}
		cold, err := SelectPeriodsCtx(ctx, ts, opt)
		if err != nil {
			continue
		}
		warm, _, err := SelectPeriodsResumable(ctx, ts, opt, nil)
		if err != nil || !reflect.DeepEqual(cold, warm) {
			t.Fatalf("trial %d: linear resumable diverged (err %v)", trial, err)
		}
	}
}

// SkipOptimization pins periods at Tmax; the resumable path must take
// the identical shortcut.
func TestSelectPeriodsResumableSkipOptimization(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		ts := resumeTestSet(rng)
		opt := Options{SkipOptimization: true}
		cold, err := SelectPeriodsCtx(ctx, ts, opt)
		if err != nil {
			continue
		}
		warm, stats, err := SelectPeriodsResumable(ctx, ts, opt, &Hints{Periods: map[string]task.Time{"seca": 1}})
		if err != nil || !reflect.DeepEqual(cold, warm) {
			t.Fatalf("trial %d: SkipOptimization resumable diverged (err %v)", trial, err)
		}
		if stats.Verified+stats.Searched != 0 {
			t.Fatalf("trial %d: selection ran under SkipOptimization", trial)
		}
	}
}

// Regression for the MaxFixpointIterations backstop: when every
// core's interference clamp binds, the Eq. 7 recurrence creeps one
// tick per iteration for a span proportional to the WCETs in the
// window — with ~1e7-tick WCETs that is beyond the iteration budget,
// and before the cap it was an effective hang at 2^40 scale. The
// analysis must terminate promptly with a conservative unschedulable
// verdict instead.
func TestFixpointIterationCapTerminates(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "big", WCET: 10_000_000, Period: 1_000_000_000, Deadline: 1_000_000_000, Core: 0, Priority: 0},
		},
		Security: []task.SecurityTask{
			{Name: "huge", WCET: 100_000_000, MaxPeriod: 900_000_000, Core: -1, Priority: 0},
		},
	}
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("creep set accepted; the iteration cap should have fired conservatively")
	}
}
