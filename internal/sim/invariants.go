package sim

import "fmt"

// checkInvariants validates the dispatch decision at the current
// event (enabled by Config.DebugChecks):
//
//  1. Work conservation — no core sits idle while a ready, unassigned
//     job exists that the core is allowed to run.
//  2. Band ordering — a core never runs a security job while a ready,
//     unassigned RT job is eligible for that core.
//  3. No double dispatch — a job occupies at most one core.
func (e *engine) checkInvariants() error {
	onCore := map[*job]int{}
	for m, j := range e.running {
		if j == nil {
			continue
		}
		if prev, dup := onCore[j]; dup {
			return fmt.Errorf("sim: invariant violation at t=%d: job %s#%d on cores %d and %d",
				e.now, j.info.name, j.index, prev, m)
		}
		onCore[j] = m
	}
	assigned := func(j *job) bool { _, ok := onCore[j]; return ok }

	for _, j := range e.ready {
		if j.remaining <= 0 || assigned(j) {
			continue
		}
		for m := 0; m < e.cores; m++ {
			if !eligible(j, m, e.cfg.Policy) {
				continue
			}
			cur := e.running[m]
			if cur == nil {
				return fmt.Errorf("sim: work conservation violated at t=%d: core %d idle while %s#%d is ready",
					e.now, m, j.info.name, j.index)
			}
			if j.info.band == bandRT && cur.info.band == bandSecurity {
				return fmt.Errorf("sim: band ordering violated at t=%d: core %d runs security %s while RT %s#%d is ready",
					e.now, m, cur.info.name, j.info.name, j.index)
			}
		}
	}
	return nil
}

// eligible reports whether job j may execute on core m under the
// policy.
func eligible(j *job, m int, p Policy) bool {
	if j.info.core < 0 {
		return true
	}
	switch p {
	case Global:
		return true
	default:
		return j.info.core == m
	}
}
