package core

import (
	"context"
	"fmt"
	"sort"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// Result is the outcome of period selection for one task set.
type Result struct {
	// Schedulable reports whether every security task admits a period
	// within [Rs, Tmax] (Algorithm 1, lines 2–4).
	Schedulable bool
	// Periods holds the selected period T*s per security task, in the
	// same order as the input set's Security slice. Nil when
	// unschedulable.
	Periods []task.Time
	// Resp holds the final WCRT per security task (same order),
	// computed with every selected period in place.
	Resp []task.Time
}

// Options tunes SelectPeriods. The zero value is the paper's
// configuration.
type Options struct {
	// CarryIn selects the Eq. 8 maximisation strategy.
	CarryIn CarryInMode
	// LinearSearch replaces Algorithm 2's logarithmic search with a
	// downward linear scan. Exponentially slower; kept for the
	// ablation benchmark and as a test oracle.
	LinearSearch bool
	// SkipOptimization pins every period at Tmax after the feasibility
	// check — the "w/o period optimisation" reference of Fig. 7b.
	SkipOptimization bool
}

// SelectPeriods is Algorithm 1: given a task set whose RT tasks are
// already partitioned and schedulable, it chooses the minimum feasible
// period for every security task in priority order, so the security
// band executes as frequently as schedulability permits.
//
// The returned periods and response times follow the order of
// ts.Security. The input set is not modified.
func SelectPeriods(ts *task.Set, opt Options) (*Result, error) {
	return SelectPeriodsCtx(context.Background(), ts, opt)
}

// SelectPeriodsCtx is SelectPeriods with cancellation: the search is
// abandoned between priority levels and between binary-search probes
// when ctx is done, returning ctx.Err(). Analysis of a large set can
// take seconds; a service serving many clients needs to shed the work
// of a caller that hung up.
func SelectPeriodsCtx(ctx context.Context, ts *task.Set, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if !rta.SetSchedulable(ts) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1; HYDRA-C requires a feasible legacy system")
	}

	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	n := len(sec)
	if n == 0 {
		return &Result{Schedulable: true, Periods: []task.Time{}, Resp: []task.Time{}}, nil
	}

	// Line 1: Ts := Tmax for every task, compute response times.
	periods := make([]task.Time, n)
	for i, s := range sec {
		periods[i] = s.MaxPeriod
	}
	resp := sys.ResponseTimes(sec, periods, opt.CarryIn)

	// Lines 2–4: if any task misses even at Tmax, the set is
	// unschedulable within the designer bounds.
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, nil
		}
	}

	if !opt.SkipOptimization {
		// Lines 5–9: from highest to lowest priority, shrink each
		// period as far as every lower-priority task tolerates.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := resp[i], sec[i].MaxPeriod
			var star task.Time
			if opt.LinearSearch {
				star = linearMinPeriod(ctx, sys, sec, periods, resp, i, lo, hi, opt.CarryIn)
			} else {
				star = logMinPeriod(ctx, sys, sec, periods, resp, i, lo, hi, opt.CarryIn)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			periods[i] = star
			// Line 8: refresh the WCRT of every lower-priority task
			// under the newly fixed period.
			recomputeBelow(sys, sec, periods, resp, i, opt.CarryIn)
		}
	}

	// Report in the original ts.Security order.
	outPeriods := make([]task.Time, n)
	outResp := make([]task.Time, n)
	for i, s := range sec {
		j := indexByName(ts.Security, s.Name)
		outPeriods[j] = periods[i]
		outResp[j] = resp[i]
	}
	return &Result{Schedulable: true, Periods: outPeriods, Resp: outResp}, nil
}

// logMinPeriod is Algorithm 2: a logarithmic (binary) search over
// [lo, hi] for the smallest period of sec[i] that keeps every
// lower-priority security task schedulable (Rj ≤ Tmax_j). hi (= Tmax)
// is always feasible because Algorithm 1 verified it first, so the
// feasible set initialised with {Tmax} is never empty.
func logMinPeriod(ctx context.Context, sys *System, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	star := hi // T̂s initialised to {Tmax}; its minimum so far.
	for lo <= hi {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		mid := (lo + hi) / 2
		if lowerPrioritySchedulable(sys, sec, periods, resp, i, mid, mode) {
			if mid < star {
				star = mid
			}
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return star
}

// linearMinPeriod scans downward from hi; it is the brute-force oracle
// for Algorithm 2 and the ablation benchmark.
func linearMinPeriod(ctx context.Context, sys *System, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	star := hi
	for t := hi; t >= lo; t-- {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		if !lowerPrioritySchedulable(sys, sec, periods, resp, i, t, mode) {
			break
		}
		star = t
	}
	return star
}

// lowerPrioritySchedulable checks Algorithm 2 line 5: with sec[i]'s
// period set to cand (and every unprocessed task still at Tmax), does
// every lower-priority security task keep Rj ≤ Tmax_j? Response times
// are recomputed top-down from task i+1 because carry-in bounds of
// deeper tasks depend on the response times above them.
func lowerPrioritySchedulable(sys *System, sec []task.SecurityTask, periods, resp []task.Time, i int, cand task.Time, mode CarryInMode) bool {
	saved := periods[i]
	periods[i] = cand
	defer func() { periods[i] = saved }()

	hp := make([]Interferer, 0, len(sec))
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	for j := i + 1; j < len(sec); j++ {
		r, ok := sys.MigratingWCRT(sec[j].WCET, hp, sec[j].MaxPeriod, mode)
		if !ok || r > sec[j].MaxPeriod {
			return false
		}
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
	return true
}

// recomputeBelow refreshes resp[i+1:] after periods[i] was fixed
// (Algorithm 1 line 8). resp[i] itself depends only on tasks above i
// and is already final.
func recomputeBelow(sys *System, sec []task.SecurityTask, periods, resp []task.Time, i int, mode CarryInMode) {
	hp := make([]Interferer, 0, len(sec))
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	for j := i + 1; j < len(sec); j++ {
		r, ok := sys.MigratingWCRT(sec[j].WCET, hp, sec[j].MaxPeriod, mode)
		if !ok {
			r = task.Infinity
		}
		resp[j] = r
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
}

func indexByName(sec []task.SecurityTask, name string) int {
	for i, s := range sec {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Apply writes the selected periods into a clone of ts and returns it;
// convenient for feeding the simulator. It panics if res is not
// schedulable.
func Apply(ts *task.Set, res *Result) *task.Set {
	if !res.Schedulable {
		panic("core.Apply: result is not schedulable")
	}
	cp := ts.Clone()
	for i := range cp.Security {
		cp.Security[i].Period = res.Periods[i]
		cp.Security[i].Core = -1
	}
	return cp
}

// SortSecurityByPriority is a small helper for callers that need the
// priority order index mapping used by Result fields.
func SortSecurityByPriority(sec []task.SecurityTask) []task.SecurityTask {
	out := append([]task.SecurityTask(nil), sec...)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}
