// File-integrity monitoring, end to end: a Tripwire-like scanner
// periodically sweeps a synthetic image store while two RT tasks own
// the cores. An attacker tampers with one file mid-run; the example
// shows (a) the genuine hash mismatch, (b) the detection instant
// derived from the simulated schedule, and (c) the evasion window —
// an attack landing just after its file was scanned waits almost a
// full period.
//
// Run with: go run ./examples/fileintegrity
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hydrac"
	"hydrac/internal/ids"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	const objects = 32

	// The rover platform: navigation + camera RT tasks, Tripwire and
	// the kernel-module checker as security tasks.
	ts := rover.TaskSet()
	analyzer, err := hydrac.New()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.Analyze(context.Background(), ts)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Schedulable {
		log.Fatal("rover set unschedulable")
	}
	configured, err := rep.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	var twPeriod task.Time
	for _, v := range rep.Tasks {
		if v.Name == "tripwire" {
			twPeriod = v.Period
		}
	}
	fmt.Printf("tripwire period selected by Algorithm 1: %d ms\n", twPeriod)

	out, err := sim.Run(configured, sim.Config{
		Policy: sim.SemiPartitioned, Horizon: 60000, RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	jobs := out.JobsOf("tripwire")
	fmt.Printf("simulated %d tripwire scan jobs over 60 s\n\n", len(jobs))

	// A real (synthetic) object store with a baseline snapshot.
	rng := rand.New(rand.NewSource(42))
	fs := ids.NewFileSystem(rng, objects, 256)
	baseline := fs.Snapshot()

	model := ids.ScanModel{WCET: rover.TripwireWCET, Objects: objects}

	// Attack 1: tamper early — caught by the scan already in flight or
	// the next one.
	victim := 20
	attack := task.Time(3000)
	fs.Tamper(rng, victim)
	if bad := baseline.Scan(fs); len(bad) != 1 || bad[0] != victim {
		log.Fatalf("hash check failed to flag the tampered file: %v", bad)
	}
	fmt.Printf("attack at t=%d ms on %s: hash mismatch confirmed by baseline scan\n",
		attack, fs.Name(victim))
	det, err := ids.DetectionTime(jobs, model, attack, victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected at t=%d ms (latency %d ms, job #%d)\n\n", det.At, det.Latency, det.Job)

	// Attack 2: the evasion window. Find when job 0 scans the victim
	// and strike right after — detection slips to the next job.
	sliceStart := det.At // approximately when the victim's slice completes
	evade := sliceStart + 1
	det2, err := ids.DetectionTime(jobs, model, evade, victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack at t=%d ms (just after the same file was scanned):\n", evade)
	fmt.Printf("  detected at t=%d ms (latency %d ms) — the evasion window is ≈ one period\n",
		det2.At, det2.Latency)
	fmt.Printf("  latency ratio vs early attack: %.1fx\n", float64(det2.Latency)/float64(det.Latency))
}
