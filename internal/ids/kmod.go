package ids

import (
	"fmt"
	"sort"
)

// ModuleRegistry models the kernel's loaded-module list (/proc/modules
// on the rover). The rootkit attack of §5.1.3 loads a module that
// intercepts read(); the custom security task detects it by comparing
// the list against an expected profile.
type ModuleRegistry struct {
	loaded map[string]bool
}

// NewModuleRegistry starts with the given benign modules loaded.
func NewModuleRegistry(benign ...string) *ModuleRegistry {
	r := &ModuleRegistry{loaded: map[string]bool{}}
	for _, m := range benign {
		r.loaded[m] = true
	}
	return r
}

// Insert loads a module (the rootkit's insmod).
func (r *ModuleRegistry) Insert(name string) { r.loaded[name] = true }

// Remove unloads a module.
func (r *ModuleRegistry) Remove(name string) { delete(r.loaded, name) }

// Loaded returns the sorted module list.
func (r *ModuleRegistry) Loaded() []string {
	out := make([]string, 0, len(r.loaded))
	for m := range r.loaded {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ModuleChecker is the expected-profile comparator.
type ModuleChecker struct {
	expected map[string]bool
}

// NewModuleChecker snapshots the registry's current state as the
// expected profile.
func NewModuleChecker(r *ModuleRegistry) *ModuleChecker {
	c := &ModuleChecker{expected: map[string]bool{}}
	for m := range r.loaded {
		c.expected[m] = true
	}
	return c
}

// Check returns the modules present but not expected (potential
// rootkits) and the expected modules that disappeared.
func (c *ModuleChecker) Check(r *ModuleRegistry) (unexpected, missing []string) {
	for m := range r.loaded {
		if !c.expected[m] {
			unexpected = append(unexpected, m)
		}
	}
	for m := range c.expected {
		if !r.loaded[m] {
			missing = append(missing, m)
		}
	}
	sort.Strings(unexpected)
	sort.Strings(missing)
	return unexpected, missing
}

// DefaultRoverModules is a plausible module profile for the RPi3 rover
// (camera, GPIO, networking) used by the examples.
func DefaultRoverModules() []string {
	return []string{
		"bcm2835_codec", "bcm2835_v4l2", "brcmfmac", "cfg80211",
		"gpio_bcm_virt", "i2c_bcm2835", "snd_bcm2835", "spi_bcm2835",
		"uio_pdrv_genirq", "vc4",
	}
}

// RootkitName is the module name the simulated attack loads, after the
// simple-rootkit PoC the paper references.
func RootkitName(trial int) string { return fmt.Sprintf("simple_rootkit_%03d", trial) }
