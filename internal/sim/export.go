package sim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export helpers: schedule traces as CSV (one row per execution
// interval, loadable into any plotting tool) and run results as JSON
// (for archival alongside EXPERIMENTS.md).

// WriteIntervalsCSV writes one row per execution interval:
// task, job, core, start, end, release, finish, missed.
// The run must have used Config.RecordIntervals.
func WriteIntervalsCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "job", "core", "start", "end", "release", "finish", "missed"}); err != nil {
		return err
	}
	for _, rec := range r.JobLog {
		for _, iv := range rec.Intervals {
			row := []string{
				rec.Task,
				strconv.Itoa(rec.Index),
				strconv.Itoa(iv.Core),
				strconv.FormatInt(iv.Start, 10),
				strconv.FormatInt(iv.End, 10),
				strconv.FormatInt(rec.Release, 10),
				strconv.FormatInt(rec.Finish, 10),
				strconv.FormatBool(rec.Missed),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the stable JSON schema for archived runs.
type resultJSON struct {
	Horizon                int64                    `json:"horizon"`
	ContextSwitches        int                      `json:"context_switches"`
	Migrations             int                      `json:"migrations"`
	RTDeadlineMisses       int                      `json:"rt_deadline_misses"`
	SecurityDeadlineMisses int                      `json:"security_deadline_misses"`
	CoreBusy               []int64                  `json:"core_busy"`
	Utilization            float64                  `json:"utilization"`
	Tasks                  map[string]taskStatsJSON `json:"tasks"`
}

type taskStatsJSON struct {
	Completed      int     `json:"completed"`
	DeadlineMisses int     `json:"deadline_misses"`
	MaxResponse    int64   `json:"max_response"`
	MeanResponse   float64 `json:"mean_response"`
}

// WriteResultJSON writes the aggregate counters of a run as indented
// JSON.
func WriteResultJSON(w io.Writer, r *Result) error {
	out := resultJSON{
		Horizon:                r.Horizon,
		ContextSwitches:        r.ContextSwitches,
		Migrations:             r.Migrations,
		RTDeadlineMisses:       r.RTDeadlineMisses,
		SecurityDeadlineMisses: r.SecurityDeadlineMisses,
		CoreBusy:               append([]int64(nil), r.CoreBusy...),
		Utilization:            r.Utilization(),
		Tasks:                  map[string]taskStatsJSON{},
	}
	for name, s := range r.Stats {
		out.Tasks[name] = taskStatsJSON{
			Completed:      s.Completed,
			DeadlineMisses: s.DeadlineMisses,
			MaxResponse:    s.MaxResponse,
			MeanResponse:   s.MeanResponse(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadResultJSON parses a JSON document written by WriteResultJSON
// back into the counters it archives (task stats only carry the
// exported aggregate fields). It is the round-trip companion used by
// tooling that post-processes archived runs.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var in resultJSON
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("sim: decoding archived result: %w", err)
	}
	r := newResult(len(in.CoreBusy), in.Horizon)
	r.ContextSwitches = in.ContextSwitches
	r.Migrations = in.Migrations
	r.RTDeadlineMisses = in.RTDeadlineMisses
	r.SecurityDeadlineMisses = in.SecurityDeadlineMisses
	copy(r.CoreBusy, in.CoreBusy)
	for name, s := range in.Tasks {
		st := r.record(name)
		st.Completed = s.Completed
		st.DeadlineMisses = s.DeadlineMisses
		st.MaxResponse = s.MaxResponse
		st.TotalResponse = int64(s.MeanResponse * float64(s.Completed))
	}
	return r, nil
}
