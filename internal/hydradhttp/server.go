// Package hydradhttp is the HTTP surface of the hydrad daemon: the
// routes, error mapping, pooled body handling, and duplicate-request
// byte cache that cmd/hydrad serves. It lives in its own package so
// every consumer of the service hot path mounts the SAME handler —
// the daemon binary, cmd/hydrabench's in-process smoke mode, and the
// regression harness's self-test targets — instead of keeping
// hand-rolled mirrors in sync.
package hydradhttp

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"hydrac"
	"hydrac/internal/lru"
)

// MaxBodyBytes bounds request bodies; the largest paper-scale task
// sets encode to a few kilobytes, so a megabyte leaves two orders of
// magnitude of headroom while keeping hostile payloads cheap.
const MaxBodyBytes = 1 << 20

// server carries the shared analyzer behind the HTTP surface.
type server struct {
	analyzer *hydrac.Analyzer
	summary  map[string]any
	// sessions is sharded by session-id hash: ids are random hex, so
	// concurrent sessions spread across shard locks instead of
	// serialising on one store mutex per request.
	sessions *lru.Sharded[*hydrac.Session]
	// respCache short-circuits exact-byte duplicate /v1/analyze
	// requests: body digest → the canonical cache-hit envelope bytes.
	// A hit costs one digest and one Write — no task-set decode, no
	// report marshal. Entries are only ever populated from analyzer
	// cache hits, so the replayed bytes are the canonical envelope
	// (FromCache true, no per-call Timing), which is identical for
	// every duplicate of those bytes; analysis is deterministic, so
	// entries never go stale.
	respCache *lru.Cache[[sha256.Size]byte, []byte]
}

// sessionShards spreads the session store's locking; 16 shards keeps
// contention negligible up to hundreds of concurrent sessions while
// costing nothing at -sessions values this small.
const sessionShards = 16

// NewHandler wires the routes; cmd/hydrad serves it and tests mount
// it on httptest servers. maxSessions bounds the live session store
// (sharded LRU eviction; 0 disables the session endpoints) and
// cacheSize the duplicate-request byte cache (0 disables it, matching
// a cacheless analyzer where replayable hit envelopes never exist).
// summary is echoed on /healthz.
func NewHandler(a *hydrac.Analyzer, summary map[string]any, maxSessions, cacheSize int) http.Handler {
	s := &server{
		analyzer:  a,
		summary:   summary,
		sessions:  lru.NewSharded[*hydrac.Session](maxSessions, sessionShards),
		respCache: lru.New[[sha256.Size]byte, []byte](cacheSize),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.analyze)
	mux.HandleFunc("/v1/analyze/batch", s.analyzeBatch)
	mux.HandleFunc("/v1/session", s.sessionCreate)
	mux.HandleFunc("/v1/session/", s.sessionRoute)
	mux.HandleFunc("/healthz", s.healthz)
	return mux
}

// bodyPool recycles request read buffers: every handler slurps the
// (bounded) body once, decodes from the buffer, and returns it, so
// steady-state traffic stops allocating per-request scratch space.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody reads the whole (size-capped) request body into a pooled
// buffer. The caller must putBody the buffer when done with its
// bytes.
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, MaxBodyBytes)); err != nil {
		bodyPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func putBody(buf *bytes.Buffer) { bodyPool.Put(buf) }

// batchRequest is the body of POST /v1/analyze/batch. Each element is
// one task set in the standard file schema.
type batchRequest struct {
	TaskSets []json.RawMessage `json:"task_sets"`
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)

	// Exact-byte duplicate of a previously analysed request: one
	// digest, one Write. Admission-control traffic is dominated by
	// re-posts of the same deployment manifest, so this is the
	// steady-state path.
	var key [sha256.Size]byte
	if s.respCache != nil {
		key = sha256.Sum256(buf.Bytes())
		if body, ok := s.respCache.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
	}

	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	body, fromCache, err := s.analyzer.AnalyzeEnvelope(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	if s.respCache != nil && fromCache {
		// Only hit envelopes are replayable: they carry no per-call
		// Timing, so every future duplicate of these bytes gets the
		// identical response.
		s.respCache.Add(key, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *server) analyzeBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	defer putBody(buf)
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.TaskSets) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch request carries no task sets"))
		return
	}
	sets := make([]*hydrac.TaskSet, len(req.TaskSets))
	for i, raw := range req.TaskSets {
		ts, err := hydrac.DecodeTaskSet(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task set %d: %w", i, err))
			return
		}
		sets[i] = ts
	}
	reps, err := s.analyzer.AnalyzeBatch(r.Context(), sets)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hydrac.WriteReports(w, reps)
}

// sessionCreateResponse is the body of a successful POST /v1/session:
// the standard report envelope fields plus the session id.
type sessionCreateResponse struct {
	Version   int            `json:"version"`
	SessionID string         `json:"session_id"`
	Report    *hydrac.Report `json:"report"`
}

func (s *server) sessionCreate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if s.sessions == nil {
		// -sessions 0: the store never retains anything, so handing
		// out a session id would be a dead credential.
		writeError(w, http.StatusNotFound, errors.New("sessions are disabled on this daemon (-sessions 0)"))
		return
	}
	buf, err := readBody(w, r)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	ts, err := hydrac.DecodeTaskSet(bytes.NewReader(buf.Bytes()))
	putBody(buf)
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	sess, rep, err := s.analyzer.NewSession(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.sessions.Add(id, sess)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sessionCreateResponse{Version: hydrac.ReportVersion, SessionID: id, Report: rep})
}

// sessionRoute dispatches /v1/session/{id} and /v1/session/{id}/admit.
func (s *server) sessionRoute(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, op, _ := strings.Cut(rest, "/")
	sess, ok := s.sessions.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q (expired, evicted, or never created)", id))
		return
	}
	switch op {
	case "":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		hydrac.EncodeTaskSet(w, sess.Set())
	case "admit":
		if !requirePost(w, r) {
			return
		}
		buf, err := readBody(w, r)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		d, err := hydrac.DecodeDelta(bytes.NewReader(buf.Bytes()))
		putBody(buf)
		if err != nil {
			writeError(w, badRequestStatus(err), err)
			return
		}
		rep, admitted, err := sess.Admit(r.Context(), *d)
		if err != nil {
			writeAnalysisError(w, r, err)
			return
		}
		// The envelope must stay byte-identical to a cold analysis of
		// the same set, so the commit verdict travels in a header.
		w.Header().Set("X-Hydra-Admitted", fmt.Sprintf("%v", admitted))
		w.Header().Set("Content-Type", "application/json")
		hydrac.WriteReport(w, rep)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session operation %q", op))
	}
}

// newSessionID draws a 128-bit random id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"report_version": hydrac.ReportVersion,
		"config":         s.summary,
	})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return true
	}
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// writeAnalysisError maps pipeline failures: a dead client context is
// not worth a response, everything else is the client's input.
func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		return // the client hung up; the analysis was shed
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// badRequestStatus distinguishes an oversized body (413) from plain
// bad input (400).
func badRequestStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
