package faultfs

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ChaosRule scripts one HTTP-level fault for a Chaos middleware. A
// rule matches a request when Path (when non-empty) is a substring of
// the URL path; matching requests are counted per rule with the same
// Nth/After/always semantics as the filesystem Rule. A firing rule
// first sleeps Delay (latency injection), then — when Status is
// nonzero — answers with that status instead of calling the wrapped
// handler (error injection). A Delay-only rule slows the request down
// and lets it through.
type ChaosRule struct {
	Path   string
	Nth    int
	After  int
	Delay  time.Duration
	Status int
	// RetryAfter, when positive, is sent as a Retry-After header (in
	// seconds) on injected error responses — so retrying clients can be
	// tested against scripted throttling.
	RetryAfter int

	n int
}

func (r *ChaosRule) fire() bool {
	r.n++
	switch {
	case r.Nth > 0:
		return r.n == r.Nth
	case r.After > 0:
		return r.n > r.After
	default:
		return true
	}
}

// Chaos is an http.Handler middleware injecting latency and error
// responses per scripted rules — the service-level sibling of the
// filesystem Injector, used to harden clients (internal/hydraclient)
// and to compose overload scenarios in the chaos suite. Safe for
// concurrent use.
type Chaos struct {
	next http.Handler

	mu    sync.Mutex
	rules []*ChaosRule
	// injected counts responses answered by a rule (not passed
	// through), for test assertions.
	injected int
}

// NewChaos wraps next.
func NewChaos(next http.Handler) *Chaos { return &Chaos{next: next} }

// Fail adds one scripted rule and returns the middleware for chaining.
func (c *Chaos) Fail(r ChaosRule) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, &r)
	return c
}

// Reset drops every rule.
func (c *Chaos) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = nil
}

// Injected returns how many responses rules answered directly.
func (c *Chaos) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	var hit *ChaosRule
	for _, rule := range c.rules {
		if rule.Path != "" && !strings.Contains(r.URL.Path, rule.Path) {
			continue
		}
		if rule.fire() {
			hit = rule
			break
		}
	}
	if hit != nil && hit.Status != 0 {
		c.injected++
	}
	c.mu.Unlock()
	if hit == nil {
		c.next.ServeHTTP(w, r)
		return
	}
	if hit.Delay > 0 {
		select {
		case <-time.After(hit.Delay):
		case <-r.Context().Done():
			return
		}
	}
	if hit.Status == 0 {
		c.next.ServeHTTP(w, r)
		return
	}
	if hit.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(hit.RetryAfter))
	}
	http.Error(w, "chaos: injected failure", hit.Status)
}
