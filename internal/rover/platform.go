// Package rover reproduces the paper's proof-of-concept platform
// (§5.1): a Waveshare rover driven by a Raspberry Pi 3 with two active
// cores, running two RT tasks (navigation, camera) and two security
// tasks (Tripwire over the image data store, a custom kernel-module
// checker). The physical testbed is substituted by the discrete-event
// scheduler in internal/sim plus the detection substrate in
// internal/ids; this package supplies the measured task parameters,
// the platform constants of Table 2, a small grid-world model for the
// navigation/camera tasks, and the Fig. 5 trial driver.
package rover

import (
	"fmt"
	"strings"

	"hydrac/internal/task"
)

// Platform constants (Table 2). One simulator tick is one
// millisecond; the RPi3 runs pinned at 700 MHz in the paper's setup,
// so one tick corresponds to 700,000 CPU cycles when reporting
// "cycle count" figures as Fig. 5a does.
const (
	// Cores is the number of active cores (maxcpus=2).
	Cores = 2
	// CPUFreqHz is the pinned ARM frequency (force_turbo with
	// arm_freq=700).
	CPUFreqHz = 700_000_000
	// TickMS is the simulator tick in milliseconds.
	TickMS = 1
	// CyclesPerTick converts ticks to ARM cycle-counter (CCNT) units.
	CyclesPerTick = CPUFreqHz / 1000 * TickMS
)

// Task parameters measured on the testbed (§5.1.2), in ms.
const (
	NavWCET, NavPeriod  = 240, 500
	CamWCET, CamPeriod  = 1120, 5000
	TripwireWCET        = 5342
	KmodWCET            = 223
	SecurityMaxPeriod   = 10000
	ObservationWindowMS = 45000 // the 45 s perf observation window of Fig. 5b
)

// TaskSet returns the rover's task set: navigation on core 0, camera
// on core 1 (the taskset(1) partition of the testbed), and the two
// security tasks unbound, with the kernel-module checker at higher
// security priority (shorter job, tighter responsiveness need).
func TaskSet() *task.Set {
	return &task.Set{
		Cores: Cores,
		RT: []task.RTTask{
			{Name: "navigation", WCET: NavWCET, Period: NavPeriod, Deadline: NavPeriod, Core: 0, Priority: 0},
			{Name: "camera", WCET: CamWCET, Period: CamPeriod, Deadline: CamPeriod, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "tripwire", WCET: TripwireWCET, MaxPeriod: SecurityMaxPeriod, Priority: 0, Core: -1},
			{Name: "kmodcheck", WCET: KmodWCET, MaxPeriod: SecurityMaxPeriod, Priority: 1, Core: -1},
		},
	}
}

// Cycles converts a tick duration into ARM cycle-counter units, the
// unit Fig. 5a reports detection times in.
func Cycles(t task.Time) float64 { return float64(t) * CyclesPerTick }

// TableTwo renders the evaluation-platform summary (Table 2) for the
// simulated substitute, marking the artifacts this reproduction
// replaces.
func TableTwo() string {
	rows := [][2]string{
		{"Platform", "simulated Broadcom BCM2837 @ 700 MHz (discrete-event)"},
		{"CPU", "2 × identical cores (ARM Cortex-A53 stand-in)"},
		{"Scheduler", "partitioned fixed-priority preemptive + migrating security band"},
		{"RT tasks", fmt.Sprintf("navigation (%d, %d) ms; camera (%d, %d) ms", NavWCET, NavPeriod, CamWCET, CamPeriod)},
		{"Security tasks", fmt.Sprintf("tripwire C=%d ms; kmodcheck C=%d ms; Tmax=%d ms", TripwireWCET, KmodWCET, SecurityMaxPeriod)},
		{"WCET measurement", "exact (simulator ticks; 1 tick = 1 ms = 700k cycles)"},
		{"Task partition", "static core binding (taskset equivalent)"},
		{"Observation window", fmt.Sprintf("%d ms", ObservationWindowMS)},
	}
	var b strings.Builder
	b.WriteString("Table 2: Summary of the (simulated) evaluation platform\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %s\n", r[0], r[1])
	}
	return b.String()
}
