// Package core implements the paper's primary contribution: the
// HYDRA-C worst-case response-time analysis for lowest-priority
// security tasks that migrate across cores of a partitioned
// fixed-priority multicore system (§4.1–4.4, Eqs. 2–8), and the
// period-selection procedure built on it (§4.5, Algorithms 1–2).
//
// The analysis is a semi-partitioned adaptation of iterative global
// response-time analysis (Guan et al., Baruah): RT tasks are pinned to
// cores and interfere per core under the synchronous critical instant
// (Lemma 1); higher-priority security tasks migrate, and at most M−1
// of them can carry work into the busy period (Lemma 2).
package core

import "hydrac/internal/task"

// Interferer is the analysis view of one higher-priority *migrating*
// task: its WCET, its (already fixed) period, and its worst-case
// response time, which the carry-in workload bound needs.
type Interferer struct {
	WCET   task.Time
	Period task.Time
	Resp   task.Time
}

// workloadNC is Eq. 2: the maximum execution a task (C, T) can perform
// in a window of length x when it is released at the window start and
// every job runs as early as possible:
//
//	W(x) = ⌊x/T⌋·C + min(x mod T, C)
//
// It also bounds a non-carry-in migrating task's workload (§4.3).
func workloadNC(x, c, t task.Time) task.Time {
	if x <= 0 {
		return 0
	}
	return (x/t)*c + min(x%t, c)
}

// workloadCI is Eq. 4: the workload bound for a carry-in migrating
// task over a window of length x starting at t0,
//
//	W^CI(x) = W^NC(max(x − x̄, 0)) + min(x, C−1),  x̄ = C − 1 + T − R.
//
// The first carry-in job contributes at most C−1 because at t0−1 some
// core was free, so the job must already have started.
func workloadCI(x, c, t, r task.Time) task.Time {
	xbar := c - 1 + t - r
	return workloadNC(max(x-xbar, 0), c, t) + min(x, c-1)
}

// clampInterference is the common bound of Eqs. 3 and 5: a workload W
// can interfere with the job under analysis (WCET cs) for at most
// x − cs + 1 time units; the +1 keeps the fixed-point iteration from
// terminating prematurely at x = cs (§4.2).
func clampInterference(w, x, cs task.Time) task.Time {
	return min(w, x-cs+1)
}

// rtCoreInterference is Eq. 3: the interference of the RT tasks pinned
// to one core, i.e. the per-core sum of Eq. 2 workloads clamped by
// x − cs + 1. demands lists the core's RT tasks as (WCET, Period).
func rtCoreInterference(x, cs task.Time, demands []Demand) task.Time {
	var w task.Time
	for _, d := range demands {
		w += workloadNC(x, d.WCET, d.Period)
	}
	return clampInterference(w, x, cs)
}

// Demand is a (WCET, Period) pair describing one partitioned RT task
// for the interference computation. It mirrors rta.Demand but is
// redeclared here so the analysis package stands alone.
type Demand struct {
	WCET   task.Time
	Period task.Time
}
