package partition

import (
	"errors"
	"math/rand"
	"testing"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

func twoCoreSet() *task.Set {
	return &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 4, Period: 10, Deadline: 10, Core: -1, Priority: 0},  // 0.4
			{Name: "b", WCET: 8, Period: 20, Deadline: 20, Core: -1, Priority: 1},  // 0.4
			{Name: "c", WCET: 12, Period: 40, Deadline: 40, Core: -1, Priority: 2}, // 0.3
			{Name: "d", WCET: 20, Period: 80, Deadline: 80, Core: -1, Priority: 3}, // 0.25
		},
	}
}

func TestAssignProducesSchedulablePartition(t *testing.T) {
	for _, h := range []Heuristic{BestFit, FirstFit, WorstFit, NextFit} {
		t.Run(h.String(), func(t *testing.T) {
			ts := twoCoreSet()
			if err := Assign(ts, h); err != nil {
				t.Fatalf("Assign(%v): %v", h, err)
			}
			for _, rt := range ts.RT {
				if rt.Core < 0 || rt.Core >= ts.Cores {
					t.Fatalf("task %s unassigned (core %d)", rt.Name, rt.Core)
				}
			}
			if !rta.SetSchedulable(ts) {
				t.Fatalf("%v produced an unschedulable partition", h)
			}
		})
	}
}

func TestAssignInfeasible(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "a", WCET: 6, Period: 10, Deadline: 10, Core: -1, Priority: 0},
			{Name: "b", WCET: 6, Period: 10, Deadline: 10, Core: -1, Priority: 1},
		},
	}
	err := Assign(ts, BestFit)
	var infeasible ErrInfeasible
	if !errors.As(err, &infeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
	// The set must be left untouched on failure.
	for _, rt := range ts.RT {
		if rt.Core != -1 {
			t.Errorf("task %s was assigned core %d despite failure", rt.Name, rt.Core)
		}
	}
}

func TestBestFitPacksTightly(t *testing.T) {
	// Two heavy tasks and two light ones on two cores. Best-fit packs
	// the light tasks onto the already-loaded core when feasible;
	// worst-fit spreads them evenly. Compare the resulting loads.
	build := func() *task.Set {
		return &task.Set{
			Cores: 2,
			RT: []task.RTTask{
				{Name: "heavy", WCET: 50, Period: 100, Deadline: 100, Core: -1, Priority: 2}, // 0.5
				{Name: "light1", WCET: 1, Period: 10, Deadline: 10, Core: -1, Priority: 0},   // 0.1
				{Name: "light2", WCET: 2, Period: 20, Deadline: 20, Core: -1, Priority: 1},   // 0.1
			},
		}
	}
	bf := build()
	if err := Assign(bf, BestFit); err != nil {
		t.Fatalf("best-fit: %v", err)
	}
	wf := build()
	if err := Assign(wf, WorstFit); err != nil {
		t.Fatalf("worst-fit: %v", err)
	}
	spread := func(ts *task.Set) float64 {
		var u [2]float64
		for _, rt := range ts.RT {
			u[rt.Core] += rt.Utilization()
		}
		d := u[0] - u[1]
		if d < 0 {
			d = -d
		}
		return d
	}
	if spread(bf) <= spread(wf) {
		t.Errorf("best-fit spread %.3f should exceed worst-fit spread %.3f", spread(bf), spread(wf))
	}
}

func TestNextFitRotates(t *testing.T) {
	ts := &task.Set{
		Cores: 3,
		RT: []task.RTTask{
			{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: -1, Priority: 0},
			{Name: "b", WCET: 1, Period: 10, Deadline: 10, Core: -1, Priority: 1},
			{Name: "c", WCET: 1, Period: 10, Deadline: 10, Core: -1, Priority: 2},
		},
	}
	if err := Assign(ts, NextFit); err != nil {
		t.Fatalf("next-fit: %v", err)
	}
	// All equal utilisation: next-fit keeps placing on the cursor core
	// since each placement is feasible; all land on core 0.
	for _, rt := range ts.RT {
		if rt.Core != 0 {
			t.Errorf("task %s on core %d, want 0 (cursor does not advance on success)", rt.Name, rt.Core)
		}
	}
}

// Property: whatever the heuristic, a successful Assign yields a
// partition where every core passes exact RTA and core indices are in
// range.
func TestAssignRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	heuristics := []Heuristic{BestFit, FirstFit, WorstFit, NextFit}
	for trial := 0; trial < 200; trial++ {
		cores := 1 + rng.Intn(4)
		n := 1 + rng.Intn(3*cores)
		ts := &task.Set{Cores: cores}
		for i := 0; i < n; i++ {
			period := task.Time(10 + rng.Intn(200))
			wcet := 1 + task.Time(rng.Int63n(int64(period)/2+1))
			ts.RT = append(ts.RT, task.RTTask{
				Name: names(i), WCET: wcet, Period: period, Deadline: period, Core: -1,
			})
		}
		task.AssignRateMonotonic(ts.RT)
		h := heuristics[rng.Intn(len(heuristics))]
		if err := Assign(ts, h); err != nil {
			continue // infeasible draws are fine
		}
		if !rta.SetSchedulable(ts) {
			t.Fatalf("trial %d (%v): unschedulable partition accepted", trial, h)
		}
	}
}

func names(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestHeuristicString(t *testing.T) {
	cases := map[Heuristic]string{
		BestFit: "best-fit", FirstFit: "first-fit", WorstFit: "worst-fit", NextFit: "next-fit",
		Heuristic(9): "heuristic(9)",
	}
	for h, want := range cases {
		if got := h.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(h), got, want)
		}
	}
}
