// Package baseline implements the comparison schemes of the paper's
// evaluation (§5.1–5.2.3):
//
//   - HYDRA (DATE 2018): security tasks statically partitioned with a
//     greedy best-response allocation and per-core period minimisation
//     — the state of the art HYDRA-C is measured against.
//   - HYDRA-TMax: the same partitioned placement but with every period
//     pinned at Tmax (no period adaptation).
//   - GLOBAL-TMax: every task, RT included, scheduled by global
//     fixed-priority with periods at Tmax.
package baseline

import (
	"fmt"
	"sort"

	"hydrac/internal/core"
	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// PartitionedResult is the outcome of a partitioned security scheme
// (HYDRA or HYDRA-TMax). Slices follow the order of ts.Security.
type PartitionedResult struct {
	Schedulable bool
	// Periods holds the assigned period per security task.
	Periods []task.Time
	// Resp holds the per-task WCRT on its host core.
	Resp []task.Time
	// Cores holds the core each security task was bound to.
	Cores []int
}

// Hydra reproduces the DATE 2018 scheme the paper compares against
// (§5.1.2, §5.2.3). It runs in two phases:
//
//  1. Greedy allocation, highest security priority first: for every
//     core compute the task's uniprocessor WCRT against the core's RT
//     tasks and the security tasks already bound there (with periods
//     still at Tmax), and bind the task to the core with the smallest
//     WCRT — the core offering the maximum monitoring frequency.
//  2. Per-core period minimisation, highest priority first: shrink
//     each task's period to the smallest value in [Rs, Tmax] that
//     keeps every lower-priority security task *on the same core*
//     schedulable (Rj ≤ Tmax_j), by logarithmic search.
//
// The difference from HYDRA-C's Algorithm 1 is exactly the paper's
// critique: the allocation is greedy per task with no global
// lookahead, and each core's optimisation only sees its own tasks.
func Hydra(ts *task.Set) (*PartitionedResult, error) {
	return partitioned(ts, true)
}

// HydraTMax is the HYDRA placement with periods pinned at Tmax: the
// same greedy core choice (smallest WCRT), but no period adaptation.
// It isolates the schedulability-vs-security trade-off of a fully
// partitioned system (§5.2.3).
func HydraTMax(ts *task.Set) (*PartitionedResult, error) {
	return partitioned(ts, false)
}

// HydraAggressive is the extreme form of HYDRA's greed, kept as an
// ablation: every task's period is pinned to its WCRT the moment it is
// placed (maximum frequency, zero lookahead). It finds the shortest
// possible periods for the highest-priority tasks but saturates cores
// and collapses schedulability at moderate utilisation — a quantified
// illustration of why Algorithm 1 constrains each period by all
// lower-priority tasks.
func HydraAggressive(ts *task.Set) (*PartitionedResult, error) {
	return aggressive(ts)
}

func prepare(ts *task.Set) ([][]rta.Demand, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if !rta.SetSchedulable(ts) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1")
	}
	demands := make([][]rta.Demand, ts.Cores)
	for m := 0; m < ts.Cores; m++ {
		for _, t := range ts.RTOnCore(m) {
			demands[m] = append(demands[m], rta.Demand{WCET: t.WCET, Period: t.Period})
		}
	}
	return demands, nil
}

func partitioned(ts *task.Set, minimizePeriods bool) (*PartitionedResult, error) {
	demands, err := prepare(ts)
	if err != nil {
		return nil, err
	}
	sec := ts.SecurityByPriority()
	n := len(sec)
	periods := make([]task.Time, n)
	cores := make([]int, n)

	// Phase 1: greedy min-WCRT allocation with everyone at Tmax.
	perCore := make([][]int, ts.Cores) // indices into sec, priority order
	for i, s := range sec {
		bestCore := -1
		var bestR task.Time
		for m := 0; m < ts.Cores; m++ {
			r, ok := rta.ResponseTime(s.WCET, demands[m], s.MaxPeriod)
			if !ok {
				continue
			}
			if bestCore == -1 || r < bestR {
				bestCore, bestR = m, r
			}
		}
		if bestCore == -1 {
			return &PartitionedResult{Schedulable: false}, nil
		}
		cores[i] = bestCore
		periods[i] = s.MaxPeriod
		perCore[bestCore] = append(perCore[bestCore], i)
		demands[bestCore] = append(demands[bestCore], rta.Demand{WCET: s.WCET, Period: s.MaxPeriod})
	}

	// Phase 2: per-core period minimisation, highest priority first.
	if minimizePeriods {
		for m := 0; m < ts.Cores; m++ {
			minimizeCore(ts, sec, perCore[m], m, periods)
		}
	}

	// Final response times under the chosen periods.
	resp := make([]task.Time, n)
	for m := 0; m < ts.Cores; m++ {
		rs := coreResponses(ts, sec, perCore[m], m, periods)
		for k, i := range perCore[m] {
			resp[i] = rs[k]
			if rs[k] > periods[i] {
				// Defensive: phase 2 never violates this.
				return &PartitionedResult{Schedulable: false}, nil
			}
		}
	}

	return report(ts, sec, periods, resp, cores), nil
}

// coreResponses computes the WCRT of the security tasks listed in idx
// (priority order) on core m under the current period vector.
// Unschedulable entries get task.Infinity.
func coreResponses(ts *task.Set, sec []task.SecurityTask, idx []int, m int, periods []task.Time) []task.Time {
	hp := make([]rta.Demand, 0, len(idx))
	for _, t := range ts.RTOnCore(m) {
		hp = append(hp, rta.Demand{WCET: t.WCET, Period: t.Period})
	}
	out := make([]task.Time, len(idx))
	for k, i := range idx {
		r, ok := rta.ResponseTime(sec[i].WCET, hp, sec[i].MaxPeriod)
		if !ok {
			r = task.Infinity
		}
		out[k] = r
		hp = append(hp, rta.Demand{WCET: sec[i].WCET, Period: periods[i]})
	}
	return out
}

// minimizeCore shrinks the periods of the core's security tasks in
// priority order, each constrained by the schedulability of the
// lower-priority tasks on the same core.
func minimizeCore(ts *task.Set, sec []task.SecurityTask, idx []int, m int, periods []task.Time) {
	for k := range idx {
		i := idx[k]
		rs := coreResponses(ts, sec, idx, m, periods)
		lo, hi := rs[k], sec[i].MaxPeriod
		star := hi
		for lo <= hi {
			mid := (lo + hi) / 2
			periods[i] = mid
			if coreFeasible(ts, sec, idx, m, periods, k) {
				star = mid
				hi = mid - 1
			} else {
				lo = mid + 1
			}
		}
		periods[i] = star
	}
}

// coreFeasible reports whether every task strictly below position k on
// the core still meets Rj ≤ Tmax_j under the current periods.
func coreFeasible(ts *task.Set, sec []task.SecurityTask, idx []int, m int, periods []task.Time, k int) bool {
	rs := coreResponses(ts, sec, idx, m, periods)
	for j := k + 1; j < len(idx); j++ {
		if rs[j] > sec[idx[j]].MaxPeriod {
			return false
		}
	}
	return true
}

// aggressive is the pin-to-WCRT placement used by HydraAggressive.
func aggressive(ts *task.Set) (*PartitionedResult, error) {
	demands, err := prepare(ts)
	if err != nil {
		return nil, err
	}
	sec := ts.SecurityByPriority()
	n := len(sec)
	periods := make([]task.Time, n)
	resp := make([]task.Time, n)
	cores := make([]int, n)
	for i, s := range sec {
		bestCore := -1
		var bestR task.Time
		for m := 0; m < ts.Cores; m++ {
			r, ok := rta.ResponseTime(s.WCET, demands[m], s.MaxPeriod)
			if !ok {
				continue
			}
			if bestCore == -1 || r < bestR {
				bestCore, bestR = m, r
			}
		}
		if bestCore == -1 {
			return &PartitionedResult{Schedulable: false}, nil
		}
		cores[i], resp[i], periods[i] = bestCore, bestR, bestR
		demands[bestCore] = append(demands[bestCore], rta.Demand{WCET: s.WCET, Period: bestR})
	}
	return report(ts, sec, periods, resp, cores), nil
}

// report reorders per-priority slices into ts.Security order.
func report(ts *task.Set, sec []task.SecurityTask, periods, resp []task.Time, cores []int) *PartitionedResult {
	out := &PartitionedResult{
		Schedulable: true,
		Periods:     make([]task.Time, len(sec)),
		Resp:        make([]task.Time, len(sec)),
		Cores:       make([]int, len(sec)),
	}
	for i, s := range sec {
		j := indexByName(ts.Security, s.Name)
		out.Periods[j] = periods[i]
		out.Resp[j] = resp[i]
		out.Cores[j] = cores[i]
	}
	return out
}

// ApplyPartitioned writes a partitioned result's periods and core
// bindings into a clone of ts for simulation.
func ApplyPartitioned(ts *task.Set, res *PartitionedResult) *task.Set {
	if !res.Schedulable {
		panic("baseline.ApplyPartitioned: result is not schedulable")
	}
	cp := ts.Clone()
	for i := range cp.Security {
		cp.Security[i].Period = res.Periods[i]
		cp.Security[i].Core = res.Cores[i]
	}
	return cp
}

func indexByName(sec []task.SecurityTask, name string) int {
	for i, s := range sec {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// GlobalResult is the outcome of the GLOBAL-TMax schedulability test.
type GlobalResult struct {
	Schedulable bool
	// RTResp and SecResp hold per-task WCRTs in the order of ts.RT and
	// ts.Security respectively (entries are task.Infinity for tasks
	// whose iteration diverged).
	RTResp  []task.Time
	SecResp []task.Time
}

// GlobalTMax checks global fixed-priority schedulability for the whole
// task set with security periods pinned at Tmax: RT tasks keep their
// RM priorities, security tasks sit below all of them, and everything
// may migrate. The test reuses the HYDRA-C engine with an empty
// partitioned band — which is exactly iterative global RTA with the
// M−1 carry-in bound. Schedulable iff Rr ≤ Dr for every RT task and
// Rs ≤ Tmax for every security task (§5.2.3).
func GlobalTMax(ts *task.Set) (*GlobalResult, error) {
	sc := core.DefaultScratchPool.Get(nil, len(ts.RT)+len(ts.Security))
	defer core.DefaultScratchPool.Put(sc)
	return GlobalTMaxWith(ts, sc)
}

// GlobalTMaxWith is GlobalTMax on a caller-owned kernel workspace, so
// a service running the baseline per report can thread the scratch it
// already holds instead of borrowing another. Results are identical.
func GlobalTMaxWith(ts *task.Set, sc *core.Scratch) (*GlobalResult, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	sys := &core.System{M: ts.Cores}
	res := &GlobalResult{
		Schedulable: true,
		RTResp:      make([]task.Time, len(ts.RT)),
		SecResp:     make([]task.Time, len(ts.Security)),
	}

	type entry struct {
		wcet, period, limit task.Time
		rt                  bool
		index               int
	}
	var order []entry
	for _, t := range sortRTByPriority(ts.RT) {
		order = append(order, entry{wcet: t.WCET, period: t.Period, limit: t.Deadline, rt: true, index: indexRTByName(ts.RT, t.Name)})
	}
	for _, s := range ts.SecurityByPriority() {
		order = append(order, entry{wcet: s.WCET, period: s.MaxPeriod, limit: s.MaxPeriod, rt: false, index: indexByName(ts.Security, s.Name)})
	}

	// One scratch serves the whole top-down pass: every per-task
	// fixpoint below reuses its buffers (they grow to the band size on
	// the first pass and stay grown across pooled reuses).
	sc.Reset(sys)
	hp := make([]core.Interferer, 0, len(order))
	for _, e := range order {
		r, ok := sc.MigratingWCRT(e.wcet, hp, e.limit, core.Dominance)
		if !ok {
			r = task.Infinity
			res.Schedulable = false
			// Keep analysing the remaining tasks with a pessimistic
			// carry-in bound so the caller sees every miss.
			hp = append(hp, core.Interferer{WCET: e.wcet, Period: e.period, Resp: e.period})
		} else {
			hp = append(hp, core.Interferer{WCET: e.wcet, Period: e.period, Resp: r})
		}
		if e.rt {
			res.RTResp[e.index] = r
		} else {
			res.SecResp[e.index] = r
		}
	}
	return res, nil
}

func sortRTByPriority(rt []task.RTTask) []task.RTTask {
	out := append([]task.RTTask(nil), rt...)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

func indexRTByName(rt []task.RTTask, name string) int {
	for i, t := range rt {
		if t.Name == name {
			return i
		}
	}
	return -1
}
