package hydrac_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"hydrac"
)

// FuzzReadReport drives the versioned report codec with mutated
// envelopes. ReadReport must reject or accept without panicking, and
// every accepted report must survive WriteReport → ReadReport with an
// identical JSON image — the property the daemon's clients rely on
// when they re-serialize reports into their own stores. Seed corpus:
// testdata/fuzz/FuzzReadReport.
func FuzzReadReport(f *testing.F) {
	// A real envelope as the primary seed.
	ts := &hydrac.TaskSet{
		Cores: 1,
		RT: []hydrac.RTTask{
			{Name: "r", WCET: 1, Period: 10, Deadline: 10, Core: 0, Priority: 0},
		},
		Security: []hydrac.SecurityTask{
			{Name: "s", WCET: 1, MaxPeriod: 50, Core: -1, Priority: 0},
		},
	}
	a, err := hydrac.New()
	if err != nil {
		f.Fatal(err)
	}
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := hydrac.WriteReport(&seed, rep); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version": 1, "report": {"scheme": "hydra-c", "schedulable": false, "task_set_hash": "", "cores": 0, "tasks": []}}`))
	f.Add([]byte(`{"version": 2, "report": {}}`))
	f.Add([]byte(`{"version": 1, "reports": []}`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := hydrac.ReadReport(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		var buf bytes.Buffer
		if err := hydrac.WriteReport(&buf, rep); err != nil {
			// Mutated floats can smuggle NaN/Inf through json.Number?
			// No: encoding/json rejects them at decode. A decoded
			// report must re-encode.
			t.Fatalf("WriteReport failed on an accepted report: %v", err)
		}
		rep2, err := hydrac.ReadReport(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of a written report failed: %v\nenvelope: %s", err, buf.Bytes())
		}
		j1, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(rep2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed the report:\n first: %s\nsecond: %s", j1, j2)
		}
	})
}
