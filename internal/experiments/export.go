package experiments

import (
	"encoding/json"
	"io"
)

// WriteJSON archives any figure result as indented JSON; the metrics
// types serialise as summaries, so archives stay small and
// schema-stable. cmd/sweep exposes this behind -json.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// MarshalJSON flattens the acceptance map into ratio percentages.
func (g Fig7aGroup) MarshalJSON() ([]byte, error) {
	out := struct {
		Lo         float64            `json:"lo"`
		Hi         float64            `json:"hi"`
		Acceptance map[string]float64 `json:"acceptance_pct"`
	}{Lo: g.Lo, Hi: g.Hi, Acceptance: map[string]float64{}}
	for name, acc := range g.Acceptance {
		out.Acceptance[string(name)] = acc.Ratio()
	}
	return json.Marshal(out)
}
