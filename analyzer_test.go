package hydrac_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
)

func analyzerTaskSet() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "control", WCET: 12, Period: 40, Deadline: 40, Core: 0, Priority: 0},
			{Name: "vision", WCET: 25, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "scanner", WCET: 30, MaxPeriod: 500, Priority: 0, Core: -1},
			{Name: "auditor", WCET: 10, MaxPeriod: 800, Priority: 1, Core: -1},
		},
	}
}

func TestAnalyzePipeline(t *testing.T) {
	a, err := hydrac.New(
		hydrac.WithBaselines(hydrac.SchemeHydra, hydrac.SchemeGlobalTMax),
		hydrac.WithSimulation(hydrac.SimConfig{Policy: hydrac.SemiPartitioned, Horizon: 4000}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzerTaskSet()
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatal("quickstart set unschedulable")
	}
	if rep.TaskSetHash != ts.Hash() {
		t.Fatal("report hash does not echo the input hash")
	}
	if rep.Heuristic != "" {
		t.Fatalf("no partitioning ran, but heuristic = %q", rep.Heuristic)
	}
	if len(rep.Tasks) != 2 || rep.Tasks[0].Name != "scanner" || rep.Tasks[1].Name != "auditor" {
		t.Fatalf("verdicts out of order: %+v", rep.Tasks)
	}
	for _, v := range rep.Tasks {
		if v.Period <= 0 || v.Period > v.MaxPeriod || v.WCRT > v.Period {
			t.Fatalf("%s: implausible verdict %+v", v.Name, v)
		}
	}
	if len(rep.Baselines) != 2 || rep.Baselines[0].Scheme != hydrac.SchemeHydra || rep.Baselines[1].Scheme != hydrac.SchemeGlobalTMax {
		t.Fatalf("baselines wrong: %+v", rep.Baselines)
	}
	if len(rep.Baselines[1].RT) != 2 {
		t.Fatal("global-tmax verdict misses RT response times")
	}
	if rep.Simulation == nil || rep.Simulation.RTDeadlineMisses != 0 || rep.Simulation.Horizon != 4000 {
		t.Fatalf("simulation summary wrong: %+v", rep.Simulation)
	}
	if rep.Timing == nil || rep.Timing.TotalNS <= 0 || rep.Timing.SelectionNS <= 0 {
		t.Fatalf("timing not stamped: %+v", rep.Timing)
	}
	if rep.FromCache {
		t.Fatal("cold analysis claims a cache hit")
	}

	// The report must not alias the caller's input or mutate it.
	if ts.Security[0].Period != 0 {
		t.Fatal("Analyze mutated the input set")
	}
}

func TestAnalyzePartitionsUnassignedSets(t *testing.T) {
	a, err := hydrac.New(hydrac.WithHeuristic(hydrac.WorstFit))
	if err != nil {
		t.Fatal(err)
	}
	ts := analyzerTaskSet()
	for i := range ts.RT {
		ts.RT[i].Core = -1
	}
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatal("unschedulable after auto-partitioning")
	}
	if rep.Heuristic != "worst-fit" {
		t.Fatalf("heuristic = %q, want worst-fit", rep.Heuristic)
	}
	if ts.RT[0].Core != -1 {
		t.Fatal("Analyze mutated the caller's core assignments")
	}

	// The report must be self-contained: applying it to the original
	// (still unpartitioned) set reconstructs the analysed placement,
	// so the configuration simulates.
	if len(rep.RT) != len(ts.RT) {
		t.Fatalf("report carries %d RT assignments for %d tasks", len(rep.RT), len(ts.RT))
	}
	cfgd, err := rep.ApplyTo(ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range cfgd.RT {
		if rt.Core < 0 {
			t.Fatalf("RT task %s still unplaced after ApplyTo", rt.Name)
		}
	}
	out, err := hydrac.Simulate(cfgd, hydrac.SimConfig{Horizon: 2000})
	if err != nil {
		t.Fatalf("applied configuration does not simulate: %v", err)
	}
	if out.RTDeadlineMisses != 0 {
		t.Fatal("applied configuration misses RT deadlines")
	}
}

func TestAnalyzeRejectsMixedPartitioning(t *testing.T) {
	// One pinned, one free RT task: repartitioning would silently move
	// the pinned task, so the pipeline must refuse.
	a, _ := hydrac.New()
	ts := analyzerTaskSet()
	ts.RT[1].Core = -1
	_, err := a.Analyze(context.Background(), ts)
	if err == nil || !strings.Contains(err.Error(), "pin all cores or none") {
		t.Fatalf("mixed set accepted: %v", err)
	}
}

func TestAnalyzeInvalidSet(t *testing.T) {
	a, _ := hydrac.New()
	_, err := a.Analyze(context.Background(), &hydrac.TaskSet{Cores: 0})
	if err == nil {
		t.Fatal("zero-core set accepted")
	}
}

func TestAnalyzeHonoursCancellation(t *testing.T) {
	a, err := hydrac.New(
		hydrac.WithSimulation(hydrac.SimConfig{Horizon: 60000}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Analyze(ctx, analyzerTaskSet()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze under a cancelled context: %v", err)
	}
	if _, err := a.AnalyzeBatch(ctx, []*hydrac.TaskSet{analyzerTaskSet()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeBatch under a cancelled context: %v", err)
	}
}

func TestAnalyzeCache(t *testing.T) {
	a, err := hydrac.New(hydrac.WithCache(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := a.Analyze(ctx, analyzerTaskSet())
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.Analyze(ctx, analyzerTaskSet())
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache || !second.FromCache {
		t.Fatalf("cache flags wrong: first %v, second %v", first.FromCache, second.FromCache)
	}
	// Canonical content must agree; only the per-call stamps differ.
	a1, a2 := first.Clone(), second.Clone()
	a1.Timing, a2.Timing = nil, nil
	a1.FromCache, a2.FromCache = false, false
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("cached report diverges:\n%+v\nvs\n%+v", a1, a2)
	}
	// A different set is a different key.
	other := analyzerTaskSet()
	other.Security[0].WCET++
	rep, err := a.Analyze(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromCache {
		t.Fatal("distinct set hit the cache")
	}
}

func TestAnalyzeConcurrent(t *testing.T) {
	a, err := hydrac.New(hydrac.WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	sets := batchSets(t, 6)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := a.Analyze(context.Background(), sets[(g+i)%len(sets)]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// batchSets draws n generator sets spanning several utilisation
// groups, skewed low so most are schedulable.
func batchSets(t *testing.T, n int) []*hydrac.TaskSet {
	t.Helper()
	cfg := gen.TableThree(2)
	var sets []*hydrac.TaskSet
	for i := 0; len(sets) < n; i++ {
		ts, err := cfg.Generate(rand.New(rand.NewSource(int64(i+1))), i%4)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, ts)
	}
	return sets
}

func TestAnalyzeBatchDeterministicAcrossWorkers(t *testing.T) {
	sets := batchSets(t, 10)
	// Duplicate entries so cache hits and repeated work are exercised.
	sets = append(sets, sets[0], sets[3])

	var want []byte
	for _, workers := range []int{1, 3, 8} {
		a, err := hydrac.New(
			hydrac.WithBatchWorkers(workers),
			hydrac.WithCache(8),
			hydrac.WithBaselines(hydrac.SchemeHydraTMax),
			hydrac.WithSimulation(hydrac.SimConfig{Horizon: 2000, Seed: 7}),
		)
		if err != nil {
			t.Fatal(err)
		}
		reps, err := a.AnalyzeBatch(context.Background(), sets)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != len(sets) {
			t.Fatalf("%d workers: %d reports for %d sets", workers, len(reps), len(sets))
		}
		for i, rep := range reps {
			if rep == nil {
				t.Fatalf("%d workers: report %d missing", workers, i)
			}
			if rep.Timing != nil || rep.FromCache {
				t.Fatalf("%d workers: batch report %d carries per-call stamps", workers, i)
			}
			if rep.TaskSetHash != sets[i].Hash() {
				t.Fatalf("%d workers: report %d is for the wrong set", workers, i)
			}
		}
		var buf bytes.Buffer
		if err := hydrac.WriteReports(&buf, reps); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
		} else if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("batch reports differ between 1 and %d workers", workers)
		}
	}
}

func TestReportApplyTo(t *testing.T) {
	a, _ := hydrac.New()
	ts := analyzerTaskSet()
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	cfgd, err := rep.ApplyTo(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range cfgd.Security {
		if s.Period != rep.Tasks[i].Period {
			t.Fatalf("%s: period %d not applied", s.Name, rep.Tasks[i].Period)
		}
	}
	out, err := hydrac.SimulateCtx(context.Background(), cfgd, hydrac.SimConfig{Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if out.RTDeadlineMisses != 0 || out.SecurityDeadlineMisses != 0 {
		t.Fatal("applied configuration misses deadlines")
	}

	// Mismatched sets are rejected.
	other := analyzerTaskSet()
	other.Security = other.Security[:1]
	if _, err := rep.ApplyTo(other); err == nil {
		t.Fatal("ApplyTo accepted a mismatched set")
	}
}

func TestBaselineGlobalTMaxSkipsPartitioning(t *testing.T) {
	// One RT task that no core can host: partitioned schemes must
	// fail, but GLOBAL-TMax analyses the set regardless.
	ts := &hydrac.TaskSet{
		Cores: 1,
		RT: []hydrac.RTTask{
			{Name: "hog", WCET: 90, Period: 100, Deadline: 100, Core: -1, Priority: 0},
			{Name: "hog2", WCET: 90, Period: 100, Deadline: 100, Core: -1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "s", WCET: 1, MaxPeriod: 1000, Priority: 0, Core: -1},
		},
	}
	a, _ := hydrac.New()
	v, err := a.Baseline(context.Background(), ts, hydrac.SchemeGlobalTMax)
	if err != nil {
		t.Fatalf("global-tmax refused an unpartitionable set: %v", err)
	}
	if v.Schedulable {
		t.Fatal("overloaded set reported schedulable")
	}
	if _, err := a.Baseline(context.Background(), ts, hydrac.SchemeHydra); err == nil {
		t.Fatal("partitioned baseline placed an unplaceable set")
	}
}

func TestBaselineVerdictAppliesOnUnassignedSet(t *testing.T) {
	// A set arriving with no RT placement (the wire default): the
	// baseline verdict must carry the placement it analysed so the
	// configuration simulates under the fully partitioned policy.
	ts := analyzerTaskSet()
	for i := range ts.RT {
		ts.RT[i].Core = -1
	}
	a, _ := hydrac.New()
	v, err := a.Baseline(context.Background(), ts, hydrac.SchemeHydraAggressive)
	if err != nil || !v.Schedulable {
		t.Fatalf("baseline failed: %v", err)
	}
	if len(v.Placement) != len(ts.RT) {
		t.Fatalf("verdict places %d RT tasks, want %d", len(v.Placement), len(ts.RT))
	}
	cfgd, err := v.ApplyTo(ts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := hydrac.Simulate(cfgd, hydrac.SimConfig{Policy: hydrac.FullyPartitioned, Horizon: 2000})
	if err != nil {
		t.Fatalf("applied baseline configuration does not simulate: %v", err)
	}
	if out.RTDeadlineMisses != 0 {
		t.Fatal("applied baseline configuration misses RT deadlines")
	}
}

func TestDeprecatedWrappersStillAgree(t *testing.T) {
	ts := analyzerTaskSet()
	res, err := hydrac.SelectPeriods(ts, hydrac.Options{})
	if err != nil || !res.Schedulable {
		t.Fatalf("SelectPeriods: %v", err)
	}
	a, _ := hydrac.New()
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rep.Tasks {
		if res.Periods[i] != v.Period || res.Resp[i] != v.WCRT {
			t.Fatalf("wrapper and Analyzer disagree at %d: %v vs %+v", i, res.Periods[i], v)
		}
	}
}
