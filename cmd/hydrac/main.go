// Command hydrac is the front door to the HYDRA-C framework: it reads
// a task-set description (JSON) and computes security-task periods,
// compares against the baseline schemes, simulates the resulting
// schedule, or renders a Gantt chart. The analysis subcommands run on
// the hydrac.Analyzer pipeline — the same engine cmd/hydrad serves
// over HTTP.
//
// Usage:
//
//	hydrac analyze  -in taskset.json [-scheme hydra-c|hydra|hydra-tmax|global-tmax] [-exhaustive] [-json]
//	hydrac admit    -in base.json -deltas deltas.json [-json]   (replay a delta log incrementally)
//	hydrac simulate -in taskset.json [-horizon N] [-policy semi|partitioned|global]
//	hydrac gantt    -in taskset.json [-to N] [-step N]
//	hydrac generate [-cores M] [-group G] [-seed S]        (emit a random Table-3 task set)
//	hydrac example                                          (emit the paper's rover task set)
//
// -in - reads the task set from standard input.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"hydrac"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// usageError marks failures of argument handling (exit 2, like flag
// parsing) as opposed to runtime failures (exit 1).
type usageError struct{ error }

// run is the testable entry point: it dispatches subcommands and maps
// errors to exit codes (0 ok / help, 1 runtime failure, 2 usage).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "analyze":
		err = analyze(args[1:], stdin, stdout, stderr)
	case "admit":
		err = admitReplay(args[1:], stdin, stdout, stderr)
	case "simulate":
		err = simulate(args[1:], stdin, stdout, stderr)
	case "gantt":
		err = gantt(args[1:], stdin, stdout, stderr)
	case "sensitivity":
		err = sensitivity(args[1:], stdin, stdout, stderr)
	case "generate":
		err = generate(args[1:], stdout, stderr)
	case "example":
		err = task.Encode(stdout, rover.TaskSet())
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "hydrac: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &usageError{}):
		fmt.Fprintln(stderr, "hydrac:", err)
		return 2
	default:
		fmt.Fprintln(stderr, "hydrac:", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `hydrac — period adaptation for continuous security monitoring (DATE 2020)

subcommands:
  analyze      compute security-task periods for a task set
  admit        replay a delta log against a base set through an incremental session
  simulate     run the discrete-event scheduler on a configured set
  gantt        render a schedule chart (ASCII, optionally SVG)
  sensitivity  report how much each monitor's WCET can grow
  generate     emit a random Table-3 synthetic task set (JSON)
  example      emit the paper's rover task set (JSON)

run 'hydrac <subcommand> -h' for flags; 'hydrac -h' prints this help.
cmd/hydrad serves the analyze pipeline over HTTP.`)
}

// newFlagSet standardises subcommand flag handling: errors print to
// stderr and surface as usage errors, -h as flag.ErrHelp.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("%s: unexpected argument %q", fs.Name(), fs.Arg(0))}
	}
	return nil
}

// load reads a task set from path, or from stdin when path is "-".
func load(path string, stdin io.Reader) (*task.Set, error) {
	if path == "-" {
		return task.Decode(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return task.Decode(f)
}

func analyze(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := newFlagSet("analyze", stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	scheme := fs.String("scheme", "hydra-c", "hydra-c | hydra | hydra-aggressive | hydra-tmax | global-tmax")
	exhaustive := fs.Bool("exhaustive", false, "use the literal Eq. 8 carry-in enumeration")
	explain := fs.Bool("explain", false, "print the per-task interference breakdown (hydra-c only)")
	jsonOut := fs.Bool("json", false, "emit the versioned report envelope instead of tables")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usageError{errors.New("analyze: -in is required")}
	}
	ts, err := load(*in, stdin)
	if err != nil {
		return err
	}
	opt := core.Options{}
	if *exhaustive {
		opt.CarryIn = core.Exhaustive
	}

	ctx := context.Background()
	a, err := hydrac.New(hydrac.WithOptions(opt))
	if err != nil {
		return err
	}
	if *scheme == "hydra-c" {
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			return err
		}
		if *jsonOut {
			return hydrac.WriteReport(stdout, rep)
		}
		if !rep.Schedulable {
			fmt.Fprintln(stdout, "UNSCHEDULABLE: no period assignment within the designer bounds")
			return nil
		}
		fmt.Fprintf(stdout, "%-16s %10s %10s %10s\n", "security task", "T* (ms)", "WCRT (ms)", "Tmax (ms)")
		for _, v := range rep.Tasks {
			fmt.Fprintf(stdout, "%-16s %10d %10d %10d\n", v.Name, v.Period, v.WCRT, v.MaxPeriod)
		}
		if *explain {
			periods := make([]task.Time, len(rep.Tasks))
			for i, v := range rep.Tasks {
				periods[i] = v.Period
			}
			// Diagnose the placement the Analyzer actually analysed —
			// ApplyTo reconstructs it when the input arrived
			// unpartitioned.
			analysed, err := rep.ApplyTo(ts)
			if err != nil {
				return err
			}
			diags, err := core.Diagnose(analysed, periods, opt.CarryIn)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			for _, d := range diags {
				fmt.Fprint(stdout, d.Render())
			}
		}
		return nil
	}

	sch, err := hydrac.ParseScheme(*scheme)
	if err != nil {
		return usageError{fmt.Errorf("analyze: %w", err)}
	}
	v, err := a.Baseline(ctx, ts, sch)
	if err != nil {
		return err
	}
	if *jsonOut {
		// Scheme marks the top-level verdict as this baseline's, not
		// HYDRA-C's — consumers of the shared envelope must not read
		// it as an admission verdict.
		rep := &hydrac.Report{
			Scheme:      sch,
			Schedulable: v.Schedulable, TaskSetHash: ts.Hash(), Cores: ts.Cores,
			Tasks: v.Tasks, Baselines: []hydrac.BaselineVerdict{*v},
		}
		return hydrac.WriteReport(stdout, rep)
	}
	switch sch {
	case hydrac.SchemeGlobalTMax:
		fmt.Fprintf(stdout, "schedulable: %v\n", v.Schedulable)
		for _, t := range v.RT {
			fmt.Fprintf(stdout, "%-16s R=%d D=%d\n", t.Name, t.WCRT, t.Deadline)
		}
		for _, s := range v.Tasks {
			fmt.Fprintf(stdout, "%-16s R=%d Tmax=%d\n", s.Name, s.WCRT, s.MaxPeriod)
		}
	default:
		if !v.Schedulable {
			fmt.Fprintln(stdout, "UNSCHEDULABLE under the partitioned baseline")
			return nil
		}
		fmt.Fprintf(stdout, "%-16s %10s %10s %6s\n", "security task", "T (ms)", "WCRT (ms)", "core")
		for _, s := range v.Tasks {
			fmt.Fprintf(stdout, "%-16s %10d %10d %6d\n", s.Name, s.Period, s.WCRT, s.Core)
		}
	}
	return nil
}

// admitReplay replays a delta log against a base set through an
// incremental admission session — the CLI face of the same engine
// hydrad's /v1/session endpoints serve. Each delta prints one status
// line (admitted / denied); the final committed state's report follows
// (table, or the envelope with -json). Denials do not abort the
// replay; hard errors (unknown names, infeasible RT placements) do.
func admitReplay(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := newFlagSet("admit", stderr)
	in := fs.String("in", "", "base task set JSON file (required; - for stdin)")
	deltas := fs.String("deltas", "", "delta log JSON file: an array of delta objects (required)")
	jsonOut := fs.Bool("json", false, "emit the final report envelope instead of tables")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usageError{errors.New("admit: -in is required")}
	}
	if *deltas == "" {
		return usageError{errors.New("admit: -deltas is required")}
	}
	ts, err := load(*in, stdin)
	if err != nil {
		return err
	}
	df, err := os.Open(*deltas)
	if err != nil {
		return err
	}
	log, err := hydrac.DecodeDeltaLog(df)
	df.Close()
	if err != nil {
		return err
	}

	ctx := context.Background()
	a, err := hydrac.New()
	if err != nil {
		return err
	}
	sess, rep, err := a.NewSession(ctx, ts)
	if err != nil {
		return err
	}
	status := io.Writer(stdout)
	if *jsonOut {
		status = stderr // keep stdout a clean envelope
	}
	fmt.Fprintf(status, "base: %d RT + %d security tasks on %d cores, schedulable=%v\n",
		len(ts.RT), len(ts.Security), ts.Cores, rep.Schedulable)
	final := rep
	for i, d := range log {
		stepRep, admitted, err := sess.Admit(ctx, d)
		if err != nil {
			return fmt.Errorf("delta %d: %w", i, err)
		}
		verdict := "DENIED"
		switch {
		case admitted && stepRep.Schedulable:
			verdict = "admitted"
		case admitted:
			verdict = "committed (removal-only, still unschedulable)"
		}
		fmt.Fprintf(status, "delta %d: %s (-%d +%d RT +%d security)\n",
			i, verdict, len(d.Remove), len(d.AddRT), len(d.AddSecurity))
		if admitted {
			final = stepRep
		}
	}
	if *jsonOut {
		return hydrac.WriteReport(stdout, final)
	}
	if !final.Schedulable {
		fmt.Fprintln(stdout, "UNSCHEDULABLE: no period assignment within the designer bounds")
		return nil
	}
	fmt.Fprintf(stdout, "%-16s %10s %10s %10s\n", "security task", "T* (ms)", "WCRT (ms)", "Tmax (ms)")
	for _, v := range final.Tasks {
		fmt.Fprintf(stdout, "%-16s %10d %10d %10d\n", v.Name, v.Period, v.WCRT, v.MaxPeriod)
	}
	return nil
}

func configure(ts *task.Set, policy sim.Policy) (*task.Set, error) {
	// If the file already carries periods, respect them; otherwise run
	// the scheme matching the policy.
	have := true
	for _, s := range ts.Security {
		if s.Period == 0 {
			have = false
			break
		}
	}
	if have {
		return ts, nil
	}
	a, err := hydrac.New()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if policy == sim.FullyPartitioned {
		v, err := a.Baseline(ctx, ts, hydrac.SchemeHydraAggressive)
		if err != nil {
			return nil, err
		}
		if !v.Schedulable {
			return nil, fmt.Errorf("HYDRA cannot configure this set")
		}
		return v.ApplyTo(ts)
	}
	rep, err := a.Analyze(ctx, ts)
	if err != nil {
		return nil, err
	}
	if !rep.Schedulable {
		return nil, fmt.Errorf("HYDRA-C cannot configure this set")
	}
	return rep.ApplyTo(ts)
}

func parsePolicy(s string) (sim.Policy, error) {
	switch s {
	case "semi":
		return sim.SemiPartitioned, nil
	case "partitioned":
		return sim.FullyPartitioned, nil
	case "global":
		return sim.Global, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (semi|partitioned|global)", s)
	}
}

func simulate(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := newFlagSet("simulate", stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	horizon := fs.Int64("horizon", 60000, "simulation horizon in ticks")
	policy := fs.String("policy", "semi", "semi | partitioned | global")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usageError{errors.New("simulate: -in is required")}
	}
	ts, err := load(*in, stdin)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return usageError{err}
	}
	cfgd, err := configure(ts, pol)
	if err != nil {
		return err
	}
	res, err := sim.Run(cfgd, sim.Config{Policy: pol, Horizon: *horizon})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Summary())
	return nil
}

func gantt(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := newFlagSet("gantt", stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	to := fs.Int64("to", 2000, "render window end (ticks)")
	step := fs.Int64("step", 0, "ticks per column (default: window/100)")
	policy := fs.String("policy", "semi", "semi | partitioned | global")
	svgPath := fs.String("svg", "", "also write an SVG chart to this file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usageError{errors.New("gantt: -in is required")}
	}
	ts, err := load(*in, stdin)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return usageError{err}
	}
	cfgd, err := configure(ts, pol)
	if err != nil {
		return err
	}
	res, err := sim.Run(cfgd, sim.Config{Policy: pol, Horizon: *to, RecordIntervals: true})
	if err != nil {
		return err
	}
	st := *step
	if st <= 0 {
		st = max(*to/100, 1)
	}
	fmt.Fprint(stdout, sim.Gantt(res, 0, *to, st))
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sim.GanttSVG(f, res, 0, *to); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *svgPath)
	}
	return nil
}

func sensitivity(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := newFlagSet("sensitivity", stderr)
	in := fs.String("in", "", "task set JSON file (required; - for stdin)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usageError{errors.New("sensitivity: -in is required")}
	}
	ts, err := load(*in, stdin)
	if err != nil {
		return err
	}
	perTask, err := core.WCETSensitivity(ts, core.Options{})
	if err != nil {
		return err
	}
	scale, err := core.ScaleSensitivity(ts, core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-16s %10s %12s %8s\n", "security task", "WCET (ms)", "max WCET", "headroom")
	for i, s := range ts.Security {
		fmt.Fprintf(stdout, "%-16s %10d %12d %7.1fx\n", s.Name, s.WCET, perTask[i], float64(perTask[i])/float64(s.WCET))
	}
	fmt.Fprintf(stdout, "uniform scale factor for the whole security band: %.2fx\n", scale)
	return nil
}

func generate(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("generate", stderr)
	cores := fs.Int("cores", 2, "number of cores M")
	group := fs.Int("group", 3, "utilisation group 0..9")
	seed := fs.Int64("seed", 1, "random seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := gen.TableThree(*cores)
	ts, err := cfg.Generate(rand.New(rand.NewSource(*seed)), *group)
	if err != nil {
		return err
	}
	return task.Encode(stdout, ts)
}
