// Package canbus models a CAN-style in-vehicle network: periodic
// broadcast frames from ECUs, arbitration by identifier, and the
// frame-injection attacks the paper's introduction motivates
// (Koscher et al. / Checkoway et al., refs [4, 5]). It provides the
// workload for the automotive example: a network-monitoring security
// task (Table 1's Bro/Snort class, instantiated for CAN) whose period
// — chosen by HYDRA-C — bounds how long a spoofed frame stream can
// steer the vehicle before detection.
//
// The bus model is deliberately scheduling-accurate rather than
// bit-accurate: frames carry an 11-bit identifier (lower = higher
// arbitration priority), a period, and a payload; an attacker injects
// extra frames under a legitimate identifier, which is exactly the
// fingerprint frequency-based CAN IDSs detect.
package canbus

import (
	"fmt"
	"math/rand"
	"sort"
)

// Frame is one CAN frame instance on the bus.
type Frame struct {
	// ID is the 11-bit arbitration identifier.
	ID uint16
	// Time is the transmission instant in ticks (ms).
	Time int64
	// Data is the payload (0–8 bytes on classic CAN).
	Data []byte
	// Spoofed marks attacker-injected frames (ground truth for tests;
	// real monitors never see this bit).
	Spoofed bool
}

// Message is one periodic broadcast declared in the vehicle's
// communication matrix.
type Message struct {
	ID     uint16
	Name   string
	Period int64 // ms
	Length int   // payload bytes
}

// StandardMatrix is a small automotive communication matrix with the
// classic period classes (Kramer, Ziegenbein, Hamann — WATERS 2015:
// 1, 2, 5, 10, 20, 50, 100, 200, 1000 ms).
func StandardMatrix() []Message {
	return []Message{
		{ID: 0x010, Name: "engine_torque", Period: 10, Length: 8},
		{ID: 0x020, Name: "brake_pressure", Period: 10, Length: 6},
		{ID: 0x055, Name: "steering_angle", Period: 20, Length: 4},
		{ID: 0x0A0, Name: "wheel_speed", Period: 20, Length: 8},
		{ID: 0x120, Name: "gear_state", Period: 50, Length: 2},
		{ID: 0x1C0, Name: "battery_soc", Period: 100, Length: 4},
		{ID: 0x240, Name: "hvac_state", Period: 200, Length: 3},
		{ID: 0x300, Name: "odometer", Period: 1000, Length: 8},
	}
}

// Bus generates the frame timeline for a communication matrix.
type Bus struct {
	matrix []Message
	rng    *rand.Rand
	// jitterPct is the release jitter as a fraction of the period
	// (real ECUs drift a little).
	jitterPct float64
}

// NewBus creates a bus over the given matrix with the given relative
// jitter (e.g. 0.05 for ±5%).
func NewBus(rng *rand.Rand, matrix []Message, jitterPct float64) *Bus {
	m := append([]Message(nil), matrix...)
	sort.Slice(m, func(i, j int) bool { return m[i].ID < m[j].ID })
	return &Bus{matrix: m, rng: rng, jitterPct: jitterPct}
}

// Matrix returns the bus's messages sorted by identifier.
func (b *Bus) Matrix() []Message { return append([]Message(nil), b.matrix...) }

// MessageByID looks a message up.
func (b *Bus) MessageByID(id uint16) (Message, bool) {
	for _, m := range b.matrix {
		if m.ID == id {
			return m, true
		}
	}
	return Message{}, false
}

// Timeline produces all frames in [0, horizon), time-ordered. Each
// message transmits every Period ± jitter with a fresh payload.
func (b *Bus) Timeline(horizon int64) []Frame {
	var frames []Frame
	for _, m := range b.matrix {
		for t := int64(0); t < horizon; t += m.Period {
			at := t
			if b.jitterPct > 0 {
				at += int64(b.jitterPct * float64(m.Period) * (2*b.rng.Float64() - 1))
				if at < 0 {
					at = 0
				}
			}
			data := make([]byte, m.Length)
			b.rng.Read(data)
			frames = append(frames, Frame{ID: m.ID, Time: at, Data: data})
		}
	}
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].Time != frames[j].Time {
			return frames[i].Time < frames[j].Time
		}
		return frames[i].ID < frames[j].ID // arbitration: lower ID wins
	})
	return frames
}

// InjectionAttack is a frame-flood under a legitimate identifier: the
// attacker transmits its own command frames every Interval starting at
// Start — the Koscher-style override of, e.g., the steering angle.
type InjectionAttack struct {
	TargetID uint16
	Start    int64
	Interval int64
	Payload  []byte
}

// Apply merges the attack frames into a timeline, keeping time order.
func (a InjectionAttack) Apply(frames []Frame, horizon int64) []Frame {
	if a.Interval <= 0 {
		panic(fmt.Sprintf("canbus: non-positive injection interval %d", a.Interval))
	}
	out := append([]Frame(nil), frames...)
	for t := a.Start; t < horizon; t += a.Interval {
		out = append(out, Frame{ID: a.TargetID, Time: t, Data: append([]byte(nil), a.Payload...), Spoofed: true})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].ID < out[j].ID
	})
	return out
}
