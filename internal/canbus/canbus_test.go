package canbus

import (
	"math/rand"
	"testing"
)

func TestTimelineIsOrderedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bus := NewBus(rng, StandardMatrix(), 0)
	frames := bus.Timeline(1000)
	counts := map[uint16]int{}
	for i, f := range frames {
		if i > 0 && frames[i-1].Time > f.Time {
			t.Fatalf("timeline out of order at %d", i)
		}
		counts[f.ID]++
		if f.Spoofed {
			t.Fatal("benign timeline contains spoofed frames")
		}
	}
	for _, m := range bus.Matrix() {
		want := int(1000 / m.Period)
		if counts[m.ID] != want {
			t.Errorf("%s: %d frames, want %d", m.Name, counts[m.ID], want)
		}
		if _, ok := bus.MessageByID(m.ID); !ok {
			t.Errorf("MessageByID(0x%03X) not found", m.ID)
		}
	}
	if _, ok := bus.MessageByID(0x7FF); ok {
		t.Error("unknown ID resolved")
	}
}

func TestTimelineJitterStaysOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bus := NewBus(rng, StandardMatrix(), 0.05)
	frames := bus.Timeline(5000)
	for i := 1; i < len(frames); i++ {
		if frames[i-1].Time > frames[i].Time {
			t.Fatalf("jittered timeline out of order at %d", i)
		}
	}
}

func TestInjectionAttackApply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bus := NewBus(rng, StandardMatrix(), 0)
	frames := bus.Timeline(1000)
	atk := InjectionAttack{TargetID: 0x055, Start: 300, Interval: 5, Payload: []byte{0xFF, 0x7F}}
	merged := atk.Apply(frames, 1000)
	spoofed := 0
	for _, f := range merged {
		if f.Spoofed {
			spoofed++
			if f.ID != 0x055 || f.Time < 300 {
				t.Fatalf("bad spoofed frame: %+v", f)
			}
		}
	}
	if want := int((1000 - 300) / 5); spoofed != want {
		t.Errorf("spoofed frames %d, want %d", spoofed, want)
	}
	if len(merged) != len(frames)+spoofed {
		t.Error("apply lost frames")
	}
}

func TestInjectionAttackValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	InjectionAttack{TargetID: 1, Interval: 0}.Apply(nil, 100)
}

func TestMonitorCleanBusQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bus := NewBus(rng, StandardMatrix(), 0.05)
	mon := NewMonitor(bus.Matrix(), 0.5)
	if anomalies := mon.Scan(bus.Timeline(10000)); len(anomalies) != 0 {
		t.Fatalf("false positives on a clean bus: %v", anomalies)
	}
}

func TestMonitorFlagsInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bus := NewBus(rng, StandardMatrix(), 0.05)
	frames := InjectionAttack{TargetID: 0x010, Start: 500, Interval: 2, Payload: []byte{1}}.
		Apply(bus.Timeline(2000), 2000)
	mon := NewMonitor(bus.Matrix(), 0.5)
	anomalies := mon.Scan(frames)
	if len(anomalies) == 0 {
		t.Fatal("injection not flagged")
	}
	first := anomalies[0]
	if first.Kind != "rate" || first.ID != 0x010 || first.At < 500 {
		t.Fatalf("unexpected first anomaly: %+v (%s)", first, first)
	}
}

func TestMonitorFlagsUnknownID(t *testing.T) {
	mon := NewMonitor(StandardMatrix(), 0.5)
	anomalies := mon.Scan([]Frame{{ID: 0x7DF, Time: 10}})
	if len(anomalies) != 1 || anomalies[0].Kind != "unknown-id" {
		t.Fatalf("unknown ID not flagged: %v", anomalies)
	}
}

func TestMonitorStatePersistsAcrossScans(t *testing.T) {
	mon := NewMonitor([]Message{{ID: 1, Name: "m", Period: 100, Length: 1}}, 0.5)
	// First batch seeds the arrival state.
	if a := mon.Scan([]Frame{{ID: 1, Time: 0}}); len(a) != 0 {
		t.Fatalf("seed frame flagged: %v", a)
	}
	// Second batch: a frame only 10 ms later is a rate anomaly even
	// though the seed was in a previous batch.
	if a := mon.Scan([]Frame{{ID: 1, Time: 10}}); len(a) != 1 {
		t.Fatalf("cross-batch anomaly missed: %v", a)
	}
}

func TestDetectInjectionLatencyBoundedByScanPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bus := NewBus(rng, StandardMatrix(), 0.05)
	const horizon = 20000
	attackAt := int64(7000)
	frames := InjectionAttack{TargetID: 0x055, Start: attackAt, Interval: 4, Payload: []byte{9}}.
		Apply(bus.Timeline(horizon), horizon)

	// Monitor job completes every 400 ms.
	var scans []int64
	for at := int64(400); at < horizon; at += 400 {
		scans = append(scans, at)
	}
	at, ok := DetectInjection(frames, bus.Matrix(), 0.5, scans)
	if !ok {
		t.Fatal("injection evaded every scan")
	}
	if at < attackAt || at > attackAt+400+400 {
		t.Fatalf("detection at %d, want within one-or-two scan periods of %d", at, attackAt)
	}
	// No scans -> no detection.
	if _, ok := DetectInjection(frames, bus.Matrix(), 0.5, nil); ok {
		t.Fatal("detected without any scans")
	}
	// Clean timeline -> no detection.
	if _, ok := DetectInjection(bus.Timeline(horizon), bus.Matrix(), 0.5, scans); ok {
		t.Fatal("false positive on clean timeline")
	}
}
