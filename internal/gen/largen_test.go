package gen

import (
	"bytes"
	"math/rand"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

// bandConfig pins per-core task counts so n scales exactly with M —
// the shape the large-n differential band and the huge-n regression
// cases draw from.
func bandConfig(cores, rtPer, secPer int) Config {
	return Config{
		Cores:           cores,
		RTTasksMin:      rtPer * cores,
		RTTasksMax:      rtPer * cores,
		SecTasksMin:     secPer * cores,
		SecTasksMax:     secPer * cores,
		RTPeriodMin:     10,
		RTPeriodMax:     1000,
		SecMaxPeriodMin: 1500,
		SecMaxPeriodMax: 3000,
		SecurityShare:   0.30,
		Groups:          10,
		SetsPerGroup:    1,
		Partition:       partition.BestFit,
		MaxAttempts:     40,
		TicksPerMS:      10,
	}
}

func encodeSet(t *testing.T, ts *task.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := task.Encode(&buf, ts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenerateAtWorkerCountInvariance pins the determinism contract at
// large n: GenerateAt(base, g, i) is a pure function of its
// coordinates, so sharding the items across any number of workers, or
// walking them in any order, yields byte-identical sets. A shared RNG
// stream or any draw-order dependence sneaking into the large-n path
// breaks this immediately.
func TestGenerateAtWorkerCountInvariance(t *testing.T) {
	cfg := bandConfig(64, 5, 3)
	const base = 20260807
	groups := []int{2, 5}
	const items = 3
	type key struct{ g, i int }
	want := map[key][]byte{}
	// Serial reference order.
	for _, g := range groups {
		for i := 0; i < items; i++ {
			ts, err := cfg.GenerateAt(base, g, i)
			if err != nil {
				t.Fatalf("g=%d i=%d: %v", g, i, err)
			}
			if n := len(ts.RT) + len(ts.Security); n != 8*64 {
				t.Fatalf("g=%d i=%d: n=%d, want %d", g, i, n, 8*64)
			}
			want[key{g, i}] = encodeSet(t, ts)
		}
	}
	// Worker-sharded and reversed walk orders must reproduce every set
	// byte for byte.
	for _, workers := range []int{2, 5} {
		for w := 0; w < workers; w++ {
			for _, g := range groups {
				for i := w; i < items; i += workers {
					ts, err := cfg.GenerateAt(base, g, i)
					if err != nil {
						t.Fatalf("workers=%d g=%d i=%d: %v", workers, g, i, err)
					}
					if !bytes.Equal(want[key{g, i}], encodeSet(t, ts)) {
						t.Fatalf("workers=%d: item (g=%d, i=%d) differs from the serial draw", workers, g, i)
					}
				}
			}
		}
	}
	for _, g := range groups {
		for i := items - 1; i >= 0; i-- {
			ts, err := cfg.GenerateAt(base, g, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want[key{g, i}], encodeSet(t, ts)) {
				t.Fatalf("reverse walk: item (g=%d, i=%d) differs from the serial draw", g, i)
			}
		}
	}
}

// TestGenerateLargeUtilizationTargeting asserts the realised
// normalised utilisation of thousand-task draws lands inside the
// group's range extended by the acceptance tolerance — integer WCET
// rounding across ~1000 tasks must not drift the total.
func TestGenerateLargeUtilizationTargeting(t *testing.T) {
	cfg := bandConfig(128, 5, 3) // n = 1024
	tol := 0.005 + 1e-9          // the draw-acceptance default
	for _, g := range []int{1, 3, 5} {
		ts, err := cfg.GenerateAt(20260807, g, 0)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		lo, hi := cfg.GroupRange(g)
		if u := ts.NormalizedUtilization(); u < lo-tol || u > hi+tol {
			t.Errorf("group %d: normalised utilisation %.5f outside [%.3f, %.3f]±%.3f", g, u, lo, hi, tol)
		}
	}
}

// TestGenerateTickBoundary2p40 drives the generator at a tick
// resolution that pushes periods to the 2^40-tick boundary
// (1000 ms × 2^30 ticks/ms ≈ 2^40) and checks nothing overflows: the
// log-uniform draw, WCET rounding, utilisation accounting, Eq. 1
// partitioning, and a full period selection on the resulting set all
// stay in range.
func TestGenerateTickBoundary2p40(t *testing.T) {
	cfg := TableThree(2)
	cfg.TicksPerMS = 1 << 30
	cfg.MaxAttempts = 60
	ts, err := cfg.Generate(rand.New(rand.NewSource(42)), 1)
	if err != nil {
		t.Fatalf("2^40-tick draw failed: %v", err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("invalid set at 2^40 ticks: %v", err)
	}
	var maxPeriod task.Time
	for _, rt := range ts.RT {
		if rt.Period <= 0 || rt.WCET <= 0 || rt.WCET > rt.Period {
			t.Fatalf("RT task %s corrupted at 2^40 ticks: C=%d T=%d", rt.Name, rt.WCET, rt.Period)
		}
		if rt.Period > maxPeriod {
			maxPeriod = rt.Period
		}
	}
	for _, s := range ts.Security {
		if s.MaxPeriod <= 0 || s.WCET <= 0 || s.WCET > s.MaxPeriod {
			t.Fatalf("security task %s corrupted at 2^40 ticks: C=%d Tmax=%d", s.Name, s.WCET, s.MaxPeriod)
		}
		if s.MaxPeriod > maxPeriod {
			maxPeriod = s.MaxPeriod
		}
	}
	if maxPeriod < 1<<33 {
		t.Fatalf("largest period %d never approached the boundary; scale wiring broken", maxPeriod)
	}
	res, err := core.SelectPeriods(ts, core.Options{})
	if err != nil {
		t.Fatalf("selection at 2^40 ticks: %v", err)
	}
	if res.Schedulable {
		for i, p := range res.Periods {
			if p <= 0 || p > ts.Security[i].MaxPeriod {
				t.Fatalf("selected period %d for %s out of range at 2^40 ticks", p, ts.Security[i].Name)
			}
		}
	}
}
