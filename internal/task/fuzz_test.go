package task

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// maxFuzzBytes is the explicit input cap of the codec fuzz surfaces.
// Both decoders are linear in the input, so the cap is not protecting
// against blowup inside the repo — it keeps the fuzzer's budget on
// structural mutations instead of ever-larger copies of the same
// shape, and it states the bound explicitly instead of relying on the
// engine's per-exec timeout. 1 MiB comfortably covers the n=1000 seed
// (~100 KiB) with room for the fuzzer to grow it.
const maxFuzzBytes = 1 << 20

// hugeSeedSet encodes a 1000-task / 64-core set (600 RT + 400
// security) — the massive-scale shape the kernel now targets — so the
// round-trip property is fuzzed at depth, not just on toy sets.
func hugeSeedSet(f *testing.F) []byte {
	f.Helper()
	ts := &Set{Cores: 64}
	for i := 0; i < 600; i++ {
		p := Time(100 + (i%64)*10)
		ts.RT = append(ts.RT, RTTask{
			Name: fmt.Sprintf("rt%03d", i), WCET: 1, Period: p, Deadline: p,
			Core: i % 64, Priority: i,
		})
	}
	for i := 0; i < 400; i++ {
		ts.Security = append(ts.Security, SecurityTask{
			Name: fmt.Sprintf("sec%03d", i), WCET: 1, MaxPeriod: Time(15000 + i),
			Core: -1, Priority: i,
		})
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ts); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTaskSetRoundTrip drives the decode → validate → encode → decode
// cycle of the task-set file format with mutated inputs. Decode
// rejects (error return) or accepts; every accepted set must validate,
// re-encode, decode again to a deeply equal set, and keep its
// canonical Hash — the cache key of the whole service stack — stable
// across the trip. Seed corpus: testdata/fuzz/FuzzTaskSetRoundTrip
// plus the generated n=1000 seed below.
func FuzzTaskSetRoundTrip(f *testing.F) {
	f.Add([]byte(`{"cores": 2,
		"rt_tasks": [{"name": "rt0", "wcet": 2, "period": 20, "core": 0}],
		"security_tasks": [{"name": "sec0", "wcet": 1, "max_period": 100}]}`))
	f.Add([]byte(`{"cores": 1,
		"rt_tasks": [{"name": "a", "wcet": 1, "period": 4, "deadline": 3, "priority": 0, "core": 0}],
		"security_tasks": [{"name": "s", "wcet": 1, "max_period": 50, "period": 10, "priority": 1, "core": 0}]}`))
	f.Add([]byte(`{"cores": 4, "rt_tasks": [], "security_tasks": []}`))
	f.Add([]byte(`{"cores": 2, "security_tasks": [{"name": "s", "wcet": 1, "max_period": 4611686018427387903}]}`))
	f.Add([]byte(`not json`))
	f.Add(hugeSeedSet(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzBytes {
			t.Skip("over the explicit input cap")
		}
		ts, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("Decode accepted a set Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ts); err != nil {
			t.Fatalf("Encode failed on a decoded set: %v", err)
		}
		ts2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Decode failed: %v\nencoded: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(ts, ts2) {
			t.Fatalf("round trip changed the set:\n got %+v\nwant %+v", ts2, ts)
		}
		if ts.Hash() != ts2.Hash() {
			t.Fatalf("round trip changed the canonical hash")
		}
	})
}

// FuzzDeltaRoundTrip covers the admission wire surface: the delta
// codec behind /v1/session/<id>/admit and `hydrac admit`. DecodeDelta
// must reject or accept without panicking, and every accepted delta
// must survive EncodeDelta → DecodeDelta deeply equal — the property
// the WAL replay and the engine's delta log rely on. Seeds include a
// 1000-entry delta so the thousand-task admission path is fuzzed at
// the size the massive-scale engine actually serves.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte(`{"remove": ["old_mon"],
		"add_security": [{"name": "s", "wcet": 1, "max_period": 100, "priority": 3}]}`))
	f.Add([]byte(`{"add_rt": [{"name": "r", "wcet": 1, "period": 10, "priority": 0, "core": 1}]}`))
	f.Add([]byte(`{"add_security": [{"name": "s", "wcet": 1, "max_period": 100}]}`)) // missing priority: must reject
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	var huge bytes.Buffer
	d := &Delta{}
	for i := 0; i < 1000; i++ {
		d.AddSecurity = append(d.AddSecurity, SecurityTask{
			Name: fmt.Sprintf("mon%04d", i), WCET: 1, MaxPeriod: Time(20000 + i),
			Core: -1, Priority: i,
		})
	}
	if err := EncodeDelta(&huge, d); err != nil {
		f.Fatal(err)
	}
	f.Add(huge.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzBytes {
			t.Skip("over the explicit input cap")
		}
		d, err := DecodeDelta(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, d); err != nil {
			t.Fatalf("EncodeDelta failed on a decoded delta: %v", err)
		}
		d2, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-DecodeDelta failed: %v\nencoded: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip changed the delta:\n got %+v\nwant %+v", d2, d)
		}
	})
}
