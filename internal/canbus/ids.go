package canbus

import (
	"fmt"
	"sort"
)

// Frequency-based CAN intrusion detection: periodic broadcast frames
// have an essentially fixed rate, so a frame-injection attack under a
// legitimate identifier shows up as an inter-arrival anomaly — the
// standard lightweight CAN IDS design. A periodic security task runs
// Monitor.Scan over the frames captured since its previous job; the
// HYDRA-C period of that task is exactly the detection-latency bound
// the automotive example measures.

// Monitor is the frequency-based detector.
type Monitor struct {
	expected map[uint16]int64 // message ID -> nominal period
	// Tolerance is the fraction of the nominal period an
	// inter-arrival may undercut before alarming (jitter allowance);
	// 0.5 flags anything arriving at more than twice the nominal rate.
	Tolerance float64
	lastSeen  map[uint16]int64
	seeded    map[uint16]bool
}

// NewMonitor builds a detector for the bus's communication matrix.
func NewMonitor(matrix []Message, tolerance float64) *Monitor {
	m := &Monitor{
		expected:  map[uint16]int64{},
		Tolerance: tolerance,
		lastSeen:  map[uint16]int64{},
		seeded:    map[uint16]bool{},
	}
	for _, msg := range matrix {
		m.expected[msg.ID] = msg.Period
	}
	return m
}

// Anomaly is one detection.
type Anomaly struct {
	Kind string // "unknown-id" | "rate"
	ID   uint16
	At   int64 // capture time of the offending frame
	Gap  int64 // observed inter-arrival (rate anomalies)
}

func (a Anomaly) String() string {
	switch a.Kind {
	case "unknown-id":
		return fmt.Sprintf("unknown identifier 0x%03X at t=%d", a.ID, a.At)
	default:
		return fmt.Sprintf("rate anomaly on 0x%03X at t=%d (gap %d ms)", a.ID, a.At, a.Gap)
	}
}

// Scan processes one batch of captured frames (time-ordered) and
// returns any anomalies. State (last arrival per identifier) persists
// across calls, so consecutive jobs see a continuous stream.
func (m *Monitor) Scan(batch []Frame) []Anomaly {
	var out []Anomaly
	for _, f := range batch {
		period, known := m.expected[f.ID]
		if !known {
			out = append(out, Anomaly{Kind: "unknown-id", ID: f.ID, At: f.Time})
			continue
		}
		if m.seeded[f.ID] {
			gap := f.Time - m.lastSeen[f.ID]
			if float64(gap) < float64(period)*m.Tolerance {
				out = append(out, Anomaly{Kind: "rate", ID: f.ID, At: f.Time, Gap: gap})
			}
		}
		m.lastSeen[f.ID] = f.Time
		m.seeded[f.ID] = true
	}
	return out
}

// DetectInjection replays a frame timeline against a periodic monitor
// task: the monitor job at each scan instant processes every frame
// captured since the previous instant. It returns the time of the
// first anomaly and true, or (0, false) if the attack evades all scans
// in the timeline. scanTimes must be ascending (take them from the
// simulator's execution trace: one entry per completed monitor job).
func DetectInjection(frames []Frame, matrix []Message, tolerance float64, scanTimes []int64) (int64, bool) {
	mon := NewMonitor(matrix, tolerance)
	sorted := append([]int64(nil), scanTimes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := 0
	for _, at := range sorted {
		var batch []Frame
		for idx < len(frames) && frames[idx].Time <= at {
			batch = append(batch, frames[idx])
			idx++
		}
		if len(mon.Scan(batch)) > 0 {
			return at, true
		}
	}
	return 0, false
}
