package regression

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeCase materialises a case directory under dir.
func writeCase(t *testing.T, dir, name, profile, experiment string) {
	t.Helper()
	cd := filepath.Join(dir, name)
	if err := os.MkdirAll(cd, 0o755); err != nil {
		t.Fatal(err)
	}
	for file, body := range map[string]string{"profile.yaml": profile, "experiment.yaml": experiment} {
		if err := os.WriteFile(filepath.Join(cd, file), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const validLoadProfile = `# a small cold sweep
kind: load
concurrency: [1, 2]
duration: 200ms
mix:
  cold: 3
  dup: 1
daemon:
  cache: 64
  sessions: 16
workload:
  cores: 4
  group: 3
  seed: 11
  sets: 8
  batch: 4
`

func TestLoadCasesValid(t *testing.T) {
	dir := t.TempDir()
	writeCase(t, dir, "zz-later", validLoadProfile, "optimization_goal: p99\ntolerance: 0.10\n")
	writeCase(t, dir, "aa-first", validLoadProfile, "optimization_goal: throughput\n")
	writeCase(t, dir, "allocs-bench",
		"kind: gobench\npackage: .\nbench: BenchmarkAnalyzeCold$\nbenchtime: 50x\n",
		"optimization_goal: allocs\ntolerance: 0.01\n")

	cases, err := LoadCases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("loaded %d cases, want 3", len(cases))
	}
	// Sorted by name.
	if cases[0].Name != "aa-first" || cases[2].Name != "zz-later" {
		t.Fatalf("cases not sorted: %v, %v, %v", cases[0].Name, cases[1].Name, cases[2].Name)
	}
	c := cases[0]
	if c.Experiment.Goal != GoalThroughput || c.Experiment.Tolerance != defaultTolerance || c.Experiment.Alpha != defaultAlpha {
		t.Fatalf("defaults not applied: %+v", c.Experiment)
	}
	if c.Profile.Duration != 200*time.Millisecond || c.Profile.Mix["cold"] != 3 || c.Profile.Workload.Seed != 11 {
		t.Fatalf("profile mis-parsed: %+v", c.Profile)
	}
	if cases[1].Profile.Kind != KindGobench || cases[1].Profile.Benchtime != "50x" {
		t.Fatalf("gobench profile mis-parsed: %+v", cases[1].Profile)
	}

	// Name filter — selecting an early name must not let the cases
	// sorted after it leak into the load once the filter is satisfied.
	one, err := LoadCases(dir, []string{"aa-first"})
	if err != nil || len(one) != 1 || one[0].Name != "aa-first" {
		t.Fatalf("filtered load: %v, %v", one, err)
	}
	if _, err := LoadCases(dir, []string{"nope"}); err == nil || !strings.Contains(err.Error(), "unknown cases: nope") {
		t.Fatalf("unknown case name: err = %v", err)
	}
}

func TestLoadCasesRejectsBadConfigs(t *testing.T) {
	bad := []struct {
		name, profile, experiment, wantErr string
	}{
		{"goal-kind-mismatch", validLoadProfile, "optimization_goal: allocs\n", "gobench"},
		{"nsop-kind-mismatch", validLoadProfile, "optimization_goal: nsop\n", "gobench"},
		{"no-goal", validLoadProfile, "tolerance: 0.1\n", "optimization_goal"},
		{"bad-goal", validLoadProfile, "optimization_goal: speed\n", "unknown optimization_goal"},
		{"bad-tolerance", validLoadProfile, "optimization_goal: p99\ntolerance: 1.5\n", "tolerance"},
		{"bad-alpha", validLoadProfile, "optimization_goal: p99\nalpha: 0\n", "alpha"},
		{"typo-key", validLoadProfile, "optimization_goal: p99\ntollerance: 0.1\n", "unknown keys"},
		{"no-concurrency", "kind: load\nduration: 1s\nmix:\n  dup: 1\n", "optimization_goal: p99\n", "concurrency"},
		{"no-mix", "kind: load\nconcurrency: [1]\nduration: 1s\n", "optimization_goal: p99\n", "mix"},
		{"bad-mix-kind", "kind: load\nconcurrency: [1]\nduration: 1s\nmix:\n  warm: 1\n", "optimization_goal: p99\n", "unknown mix kind"},
		{"bad-group", "kind: load\nconcurrency: [1]\nduration: 1s\nmix:\n  dup: 1\nworkload:\n  group: 12\n", "optimization_goal: p99\n", "workload"},
		{"gobench-no-bench", "kind: gobench\npackage: .\n", "optimization_goal: allocs\n", "bench"},
		{"bad-kind", "kind: wrk\n", "optimization_goal: p99\n", "kind"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeCase(t, dir, tc.name, tc.profile, tc.experiment)
			_, err := LoadCases(dir, nil)
			if err == nil {
				t.Fatalf("loaded invalid case %s without error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadCasesEmptyTree(t *testing.T) {
	if _, err := LoadCases(t.TempDir(), nil); err == nil {
		t.Fatal("empty tree loaded without error")
	}
}

func TestBuildSourceAllMixKinds(t *testing.T) {
	c := Case{
		Name: "all-mix",
		Profile: Profile{
			Kind:        KindLoad,
			Concurrency: []int{1},
			Duration:    time.Second,
			Mix:         map[string]int{MixCold: 2, MixDup: 1, MixBatch: 1, MixSession: 1},
			Workload:    Workload{Cores: 4, Group: 3, Seed: 5, Sets: 6, Batch: 3},
		},
		Experiment: Experiment{Goal: GoalThroughput, Tolerance: 0.05, Alpha: 0.05},
	}
	src, err := c.BuildSource()
	if err != nil {
		t.Fatal(err)
	}
	if src == nil {
		t.Fatal("nil source")
	}
}

func TestBuildSourceOverloadGroupFailsLoudly(t *testing.T) {
	// Group 9 (utilisation ≈ 1.0) rarely yields partitionable sets; a
	// huge pool demand must error rather than hang or under-fill.
	c := Case{
		Name: "overload",
		Profile: Profile{
			Kind:        KindLoad,
			Concurrency: []int{1},
			Duration:    time.Second,
			Mix:         map[string]int{MixCold: 1},
			Workload:    Workload{Cores: 2, Group: 9, Seed: 1, Sets: 512, Batch: 4},
		},
		Experiment: Experiment{Goal: GoalThroughput, Tolerance: 0.05, Alpha: 0.05},
	}
	if _, err := c.BuildSource(); err == nil {
		t.Skip("group 9 filled the pool on this generator config; nothing to assert")
	} else if !strings.Contains(err.Error(), "sets") {
		t.Fatalf("unhelpful pool error: %v", err)
	}
}

// data_dir is a daemon boolean; anything else is a load error, and
// the shipped durable case must parse with it set.
func TestDaemonDataDirParsing(t *testing.T) {
	dir := t.TempDir()
	caseDir := filepath.Join(dir, "durable")
	if err := os.MkdirAll(caseDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(caseDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("profile.yaml", "kind: load\nconcurrency: [1]\nmix:\n  dup: 1\ndaemon:\n  data_dir: true\n")
	writeFile("experiment.yaml", "optimization_goal: p99\n")
	cases, err := LoadCases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cases[0].Profile.Daemon.DataDir {
		t.Fatal("data_dir: true not parsed into DaemonOpts.DataDir")
	}

	writeFile("profile.yaml", "kind: load\nconcurrency: [1]\nmix:\n  dup: 1\ndaemon:\n  data_dir: 3\n")
	if _, err := LoadCases(dir, nil); err == nil {
		t.Fatal("non-boolean data_dir accepted")
	}
}

// The admission-gate keys parse into DaemonOpts, with hydrad's own
// defaults for the ones left unset, and bad values are load errors.
func TestDaemonGateParsing(t *testing.T) {
	dir := t.TempDir()
	writeCase(t, dir, "gated",
		"kind: load\nconcurrency: [8]\nmix:\n  dup: 1\nretries: 2\ndaemon:\n  max_inflight: 2\n  max_queue: 4\n  queue_wait: 20ms\n",
		"optimization_goal: p99\n")
	cases, err := LoadCases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := cases[0].Profile.Daemon
	if d.MaxInflight != 2 || d.MaxQueue != 4 || d.QueueWait != 20*time.Millisecond {
		t.Fatalf("gate opts mis-parsed: %+v", d)
	}
	if cases[0].Profile.Retries != 2 {
		t.Fatalf("retries = %d, want 2", cases[0].Profile.Retries)
	}

	// Unset gate keys take hydrad's defaults so BinaryTarget and
	// HandlerTarget boot the same gate from the same DaemonOpts.
	writeCase(t, dir, "gated",
		"kind: load\nconcurrency: [8]\nmix:\n  dup: 1\ndaemon:\n  max_inflight: 2\n",
		"optimization_goal: p99\n")
	cases, err = LoadCases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := cases[0].Profile.Daemon; d.MaxQueue != 64 || d.QueueWait <= 0 {
		t.Fatalf("gate defaults not applied: %+v", d)
	}

	for _, bad := range []string{
		"daemon:\n  max_inflight: -1\n",
		"daemon:\n  queue_wait: fast\n",
		"retries: -1\n",
	} {
		writeCase(t, dir, "gated", "kind: load\nconcurrency: [8]\nmix:\n  dup: 1\n"+bad, "optimization_goal: p99\n")
		if _, err := LoadCases(dir, nil); err == nil {
			t.Fatalf("bad config accepted: %q", bad)
		}
	}
}

// The fleet key parses into DaemonOpts.Fleet; a fleet of one is a
// load error (a single node is just daemon: with no fleet key).
func TestDaemonFleetParsing(t *testing.T) {
	dir := t.TempDir()
	writeCase(t, dir, "fleet",
		"kind: load\nconcurrency: [2]\nmix:\n  session: 1\ndaemon:\n  fleet: 2\n",
		"optimization_goal: p99\n")
	cases, err := LoadCases(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cases[0].Profile.Daemon.Fleet != 2 {
		t.Fatalf("fleet = %d, want 2", cases[0].Profile.Daemon.Fleet)
	}

	writeCase(t, dir, "fleet",
		"kind: load\nconcurrency: [2]\nmix:\n  session: 1\ndaemon:\n  fleet: 1\n",
		"optimization_goal: p99\n")
	if _, err := LoadCases(dir, nil); err == nil {
		t.Fatal("fleet of one accepted")
	}
}
