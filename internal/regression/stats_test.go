package regression

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneySeparated(t *testing.T) {
	// Perfect separation of 5 vs 5: the most extreme of C(10,5)=252
	// assignments; two-sided exact p = 2/252.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 11, 12, 13, 14}
	p := MannWhitneyP(xs, ys)
	want := 2.0 / 252.0
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
}

func TestMannWhitneyIdentical(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	ys := []float64{7, 7, 7, 7}
	if p := MannWhitneyP(xs, ys); p != 1 {
		t.Fatalf("identical samples p = %v, want 1", p)
	}
	if p := MannWhitneyP(nil, ys); p != 1 {
		t.Fatalf("empty side p = %v, want 1", p)
	}
}

func TestMannWhitneyOverlapNotSignificant(t *testing.T) {
	// Interleaved samples: no evidence of a shift.
	xs := []float64{1, 3, 5, 7, 9}
	ys := []float64{2, 4, 6, 8, 10}
	if p := MannWhitneyP(xs, ys); p < 0.5 {
		t.Fatalf("interleaved samples p = %v, want ≥ 0.5", p)
	}
}

func TestMannWhitneySymmetric(t *testing.T) {
	xs := []float64{1.2, 0.9, 1.1, 1.4}
	ys := []float64{2.0, 2.2, 1.9, 2.5, 2.1}
	if p1, p2 := MannWhitneyP(xs, ys), MannWhitneyP(ys, xs); math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("asymmetric p: %v vs %v", p1, p2)
	}
}

func TestMannWhitneyTiesExact(t *testing.T) {
	// Heavy ties must not panic or yield p outside (0, 1].
	xs := []float64{5, 5, 5, 6}
	ys := []float64{5, 6, 6, 6}
	p := MannWhitneyP(xs, ys)
	if p <= 0 || p > 1 {
		t.Fatalf("tied p = %v out of range", p)
	}
}

// The exact path and the normal approximation must roughly agree on a
// clear shift at sizes near the enumeration cap.
func TestMannWhitneyApproxAgreesOnShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 30; i++ { // C(60,30) >> cap → approximation path
		xs = append(xs, rng.NormFloat64())
		ys = append(ys, rng.NormFloat64()+3)
	}
	if p := MannWhitneyP(xs, ys); p > 1e-6 {
		t.Fatalf("clear 3σ shift at n=30: p = %v", p)
	}
	rng = rand.New(rand.NewSource(7))
	var as, bs []float64
	for i := 0; i < 30; i++ { // same distribution → not significant
		as = append(as, rng.NormFloat64())
		bs = append(bs, rng.NormFloat64())
	}
	if p := MannWhitneyP(as, bs); p < 0.01 {
		t.Fatalf("same-distribution n=30 samples p = %v, spuriously significant", p)
	}
}

// The test's size must be honest: under the null (identical
// distributions), p < 0.05 should occur ≈5% of the time. Exact test,
// so the bound is tight up to simulation noise.
func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials, hits := 400, 0
	for i := 0; i < trials; i++ {
		var xs, ys []float64
		for j := 0; j < 5; j++ {
			xs = append(xs, rng.NormFloat64())
			ys = append(ys, rng.NormFloat64())
		}
		if MannWhitneyP(xs, ys) < 0.05 {
			hits++
		}
	}
	// Exact test at n=5+5: attainable levels straddle 0.05; accept up
	// to 10% to keep the assertion non-flaky at 400 trials.
	if rate := float64(hits) / float64(trials); rate > 0.10 {
		t.Fatalf("false positive rate %.3f under the null", rate)
	}
}
