package regression

import (
	"math"
	"sort"
)

// MannWhitneyP returns the two-sided p-value of the Mann–Whitney
// rank-sum test that xs and ys are drawn from the same distribution.
// Ties get midranks. For the sample counts the harness uses (a handful
// per side) the p-value is EXACT: the full permutation distribution of
// the rank sum is enumerated, so the test's size is correct at n as
// small as 4+4 — no large-sample approximation pretending 5 samples
// are a normal distribution. Beyond exactPermutationCap combinations
// it falls back to the normal approximation with tie correction and
// continuity correction.
//
// Degenerate inputs (either side empty, or every value identical)
// return 1: no evidence of a difference.
func MannWhitneyP(xs, ys []float64) float64 {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return 1
	}
	ranks, tieAdj := midranks(xs, ys)
	// Rank sum of xs.
	t := 0.0
	for i := 0; i < n; i++ {
		t += ranks[i]
	}
	N := n + m
	mean := float64(n) * float64(N+1) / 2

	if allEqual(ranks) {
		return 1
	}
	if binomial(N, n) <= exactPermutationCap {
		return exactRankSumP(ranks, n, t, mean)
	}

	// Normal approximation on U with tie correction.
	u := t - float64(n)*float64(n+1)/2
	mu := float64(n) * float64(m) / 2
	nn := float64(N)
	sigma2 := float64(n) * float64(m) / 12 * ((nn + 1) - tieAdj/(nn*(nn-1)))
	if sigma2 <= 0 {
		return 1
	}
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2)
}

// exactPermutationCap bounds the permutation enumeration; C(20,10) =
// 184756, so symmetric designs up to 10 samples per side stay exact.
const exactPermutationCap = 400000

// midranks ranks the concatenation xs‖ys, assigning tied values the
// mean of the ranks they span. It also returns Σ(t³−t) over tie
// groups, the correction term for the normal approximation's variance.
func midranks(xs, ys []float64) ([]float64, float64) {
	N := len(xs) + len(ys)
	all := make([]float64, 0, N)
	all = append(all, xs...)
	all = append(all, ys...)
	idx := make([]int, N)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return all[idx[a]] < all[idx[b]] })
	ranks := make([]float64, N)
	tieAdj := 0.0
	for i := 0; i < N; {
		j := i
		for j < N && all[idx[j]] == all[idx[i]] {
			j++
		}
		// Ranks are 1-based; tied block [i, j) shares the mean rank.
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		tn := float64(j - i)
		tieAdj += tn*tn*tn - tn
		i = j
	}
	return ranks, tieAdj
}

func allEqual(v []float64) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}

// binomial returns C(n, k), saturating at math.MaxInt64 guards via
// float; callers only compare against exactPermutationCap.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
		if c > 1e18 {
			return c
		}
	}
	return c
}

// exactRankSumP enumerates every n-subset of the pooled ranks and
// counts those whose rank sum lies at least as far from the null mean
// as the observed one — the exact two-sided permutation p-value.
func exactRankSumP(ranks []float64, n int, observed, mean float64) float64 {
	obsDist := math.Abs(observed - mean)
	// Tiny float slop: midranks are halves, so sums are exact in
	// binary, but keep a guard against accumulated rounding.
	const eps = 1e-9
	total, extreme := 0, 0
	var walk func(next int, chosen int, sum float64)
	walk = func(next, chosen int, sum float64) {
		if chosen == n {
			total++
			if math.Abs(sum-mean) >= obsDist-eps {
				extreme++
			}
			return
		}
		// Not enough elements left to fill the subset.
		if len(ranks)-next < n-chosen {
			return
		}
		walk(next+1, chosen+1, sum+ranks[next])
		walk(next+1, chosen, sum)
	}
	walk(0, 0, 0)
	return float64(extreme) / float64(total)
}
