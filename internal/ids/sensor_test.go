package ids

import (
	"math/rand"
	"testing"
)

func TestPlantStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPlant(rng, 60, 100)
	for i := 0; i < 10000; i++ {
		v := p.Step()
		if v < 60 || v > 100 {
			t.Fatalf("plant escaped bounds: %v", v)
		}
	}
}

func TestSensorArrayBenignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	plant := NewPlant(rng, 60, 100)
	array := NewSensorArray(rng, 4, 0.5)
	chk := CorrelationChecker{Noise: 0.5, Threshold: 6}
	alarms := 0
	for i := 0; i < 2000; i++ {
		if len(chk.Check(array.Read(plant.Step()))) > 0 {
			alarms++
		}
	}
	if alarms > 10 {
		t.Fatalf("%d/2000 false alarms on benign channels", alarms)
	}
}

func TestSensorArrayDetectsOffsetSpoof(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plant := NewPlant(rng, 60, 100)
	array := NewSensorArray(rng, 4, 0.5)
	array.Compromise(2, func(truth float64) float64 { return truth + 15 })
	chk := CorrelationChecker{Noise: 0.5, Threshold: 6}
	hits := 0
	for i := 0; i < 200; i++ {
		suspects := chk.Check(array.Read(plant.Step()))
		if len(suspects) == 1 && suspects[0] == 2 {
			hits++
		}
	}
	if hits < 190 {
		t.Fatalf("offset spoof detected in only %d/200 samples", hits)
	}
}

func TestSensorArrayDetectsFrozenChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plant := NewPlant(rng, 0, 1000)
	array := NewSensorArray(rng, 3, 1.0)
	frozen := 500.0
	array.Compromise(0, func(float64) float64 { return frozen })
	chk := CorrelationChecker{Noise: 1.0, Threshold: 8}
	detected := false
	for i := 0; i < 5000 && !detected; i++ {
		suspects := chk.Check(array.Read(plant.Step()))
		for _, s := range suspects {
			if s == 0 {
				detected = true
			}
		}
	}
	if !detected {
		t.Fatal("frozen channel never detected as the plant drifted away")
	}
}

func TestSensorArrayValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("2-channel array accepted")
			}
		}()
		NewSensorArray(rng, 2, 0.1)
	}()
	array := NewSensorArray(rng, 3, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range channel accepted")
		}
	}()
	array.Compromise(7, func(v float64) float64 { return v })
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
