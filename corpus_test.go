package hydrac_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
)

// The golden conformance corpus: every task set under testdata/corpus
// has a checked-in golden report, and three surfaces must reproduce it
// byte for byte — the library (this test), `hydrac analyze -json`
// (cmd/hydrac), and the HTTP daemon (cmd/hydrad). A behaviour change
// in the pipeline shows up as a three-way golden diff instead of a
// silent drift between surfaces.
//
// Regenerate after an intentional change with:
//
//	go test -run TestCorpusGolden -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/corpus/*.golden.json from the current pipeline")

// CorpusPaths returns the corpus task-set files, for reuse by the cmd
// tests via this package's exported test helpers... it lives here so
// the three surface tests cannot drift in how they enumerate cases.
func corpusPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sets []string
	for _, p := range paths {
		if !strings.HasSuffix(p, ".golden.json") {
			sets = append(sets, p)
		}
	}
	if len(sets) < 5 {
		t.Fatalf("corpus too thin: %d sets", len(sets))
	}
	return sets
}

func goldenPath(setPath string) string {
	return strings.TrimSuffix(setPath, ".json") + ".golden.json"
}

// canonicalReportBytes scrubs the per-call volatile fields and renders
// the envelope — the exact bytes the goldens hold.
func canonicalReportBytes(t *testing.T, rep *hydrac.Report) []byte {
	t.Helper()
	cp := rep.Clone()
	cp.Timing = nil
	cp.FromCache = false
	var buf bytes.Buffer
	if err := hydrac.WriteReport(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorpusGoldenLibrary(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range corpusPaths(t) {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ts, err := hydrac.DecodeTaskSet(f)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := a.Analyze(context.Background(), ts)
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalReportBytes(t, rep)
			if *updateGolden {
				if err := os.WriteFile(goldenPath(p), got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(p))
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from golden:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// The corpus also pins the batch path: AnalyzeBatch over the whole
// corpus must produce exactly the golden reports, in order.
func TestCorpusGoldenBatch(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by TestCorpusGoldenLibrary")
	}
	a, err := hydrac.New(hydrac.WithBatchWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	paths := corpusPaths(t)
	var sets []*hydrac.TaskSet
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := hydrac.DecodeTaskSet(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, ts)
	}
	reps, err := a.AnalyzeBatch(context.Background(), sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		want, err := os.ReadFile(goldenPath(paths[i]))
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalReportBytes(t, rep); !bytes.Equal(got, want) {
			t.Errorf("%s: batch report drifted from golden", paths[i])
		}
	}
}

// And the incremental path: a session opened on each corpus base must
// produce the golden report too (sessions must be indistinguishable
// from cold analyses on identical input).
func TestCorpusGoldenSession(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by TestCorpusGoldenLibrary")
	}
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range corpusPaths(t) {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ts, err := hydrac.DecodeTaskSet(f)
			if err != nil {
				t.Fatal(err)
			}
			_, rep, err := a.NewSession(context.Background(), ts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(p))
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalReportBytes(t, rep)
			if strings.Contains(p, "unassigned-rt") {
				// Session reports describe the session's own placed
				// set: the Heuristic marker is empty and the hash is
				// the placed set's. Everything else must match.
				want = bytes.Replace(want, []byte("\n    \"heuristic\": \"best-fit\",\n"), []byte("\n"), 1)
				want = rewriteHash(t, want, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("session report drifted from golden:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// rewriteHash splices got's task_set_hash into want so the
// unassigned-rt session comparison checks everything except the
// documented hash difference (input hash vs placed-set hash).
func rewriteHash(t *testing.T, want, got []byte) []byte {
	t.Helper()
	const key = `"task_set_hash": "`
	wi := bytes.Index(want, []byte(key))
	gi := bytes.Index(got, []byte(key))
	if wi < 0 || gi < 0 {
		t.Fatal("no task_set_hash in report")
	}
	wEnd := wi + len(key) + bytes.IndexByte(want[wi+len(key):], '"')
	gEnd := gi + len(key) + bytes.IndexByte(got[gi+len(key):], '"')
	out := append([]byte(nil), want[:wi+len(key)]...)
	out = append(out, got[gi+len(key):gEnd]...)
	out = append(out, want[wEnd:]...)
	return out
}
