package hydrac

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/lru"
	"hydrac/internal/partition"
	"hydrac/internal/sim"
	"hydrac/internal/sweep"
)

// Scheme names an analysis scheme for WithBaselines and the verdicts
// it produces.
type Scheme string

const (
	// SchemeHydraC is the paper's contribution (Algorithm 1); it is
	// always run — the others are opt-in comparison baselines.
	SchemeHydraC Scheme = "hydra-c"
	// SchemeHydra is the DATE 2018 partitioned baseline with per-core
	// period minimisation.
	SchemeHydra Scheme = "hydra"
	// SchemeHydraAggressive pins each period to its WCRT on placement.
	SchemeHydraAggressive Scheme = "hydra-aggressive"
	// SchemeHydraTMax keeps the partitioned placement with periods at
	// Tmax.
	SchemeHydraTMax Scheme = "hydra-tmax"
	// SchemeGlobalTMax checks global fixed-priority schedulability
	// with periods at Tmax.
	SchemeGlobalTMax Scheme = "global-tmax"
)

// ParseScheme maps the wire/CLI spelling of a baseline scheme to its
// Scheme value.
func ParseScheme(s string) (Scheme, error) {
	switch sch := Scheme(s); sch {
	case SchemeHydra, SchemeHydraAggressive, SchemeHydraTMax, SchemeGlobalTMax:
		return sch, nil
	case SchemeHydraC:
		return "", fmt.Errorf("scheme %q is the primary analysis, not a baseline", s)
	default:
		return "", fmt.Errorf("unknown scheme %q (hydra | hydra-aggressive | hydra-tmax | global-tmax)", s)
	}
}

// ParseHeuristic maps the CLI/wire spelling of a partitioning
// heuristic (the same strings Heuristic.String prints) to its value.
func ParseHeuristic(s string) (PartitionHeuristic, error) {
	for _, h := range []PartitionHeuristic{BestFit, FirstFit, WorstFit, NextFit} {
		if h.String() == s {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown heuristic %q (best-fit | first-fit | worst-fit | next-fit)", s)
}

// Analyzer is the long-lived entry point to the HYDRA-C analysis
// pipeline: validate → partition (when the RT tasks arrive unassigned)
// → Algorithm 1 period selection → configured baselines → optional
// simulation. It is immutable after New and safe for concurrent use;
// one Analyzer is meant to serve many requests, amortising its report
// cache across repeated admission traffic.
type Analyzer struct {
	heuristic PartitionHeuristic
	opts      Options
	baselines []Scheme
	simulate  bool
	simCfg    SimConfig
	workers   int
	cache     *lru.Cache[string, *cacheEntry]
	// pool recycles kernel workspaces across analyses: Analyze borrows
	// one per call, AnalyzeBatch pins one per sweep chunk, and the
	// baseline stage reuses whichever scratch the pipeline already
	// holds. Results are bit-identical to fresh-scratch runs (a Reset
	// re-primes every buffer); the pool only removes the steady-state
	// allocations.
	pool *core.ScratchPool
}

// cacheEntry is one cached analysis: the canonical report plus the
// lazily rendered envelope bytes a cache hit is served with. rep is
// immutable once stored; enc is written at most once per entry under
// the usual benign same-bytes race (two goroutines encoding the same
// canonical report produce identical slices).
type cacheEntry struct {
	rep *Report
	enc atomic.Pointer[[]byte]
}

// AnalyzerOption configures an Analyzer at construction.
type AnalyzerOption func(*Analyzer) error

// WithHeuristic selects the bin-packing heuristic used when a set
// arrives with unpartitioned RT tasks (default BestFit, the paper's
// choice).
func WithHeuristic(h PartitionHeuristic) AnalyzerOption {
	return func(a *Analyzer) error {
		switch h {
		case BestFit, FirstFit, WorstFit, NextFit:
			a.heuristic = h
			return nil
		default:
			return fmt.Errorf("unknown partition heuristic %v", h)
		}
	}
}

// WithOptions tunes Algorithm 1 (carry-in mode, search strategy); the
// zero value is the paper's configuration.
func WithOptions(opt Options) AnalyzerOption {
	return func(a *Analyzer) error {
		a.opts = opt
		return nil
	}
}

// WithBaselines adds comparison schemes to every report, in the given
// order.
func WithBaselines(schemes ...Scheme) AnalyzerOption {
	return func(a *Analyzer) error {
		for _, s := range schemes {
			if _, err := ParseScheme(string(s)); err != nil {
				return err
			}
		}
		a.baselines = append(a.baselines, schemes...)
		return nil
	}
}

// WithSimulation makes the Analyzer simulate every admitted set under
// cfg and attach the summary to the report. cfg.Seed keeps runs
// deterministic.
func WithSimulation(cfg SimConfig) AnalyzerOption {
	return func(a *Analyzer) error {
		if cfg.Horizon <= 0 {
			return fmt.Errorf("simulation horizon must be positive, got %d", cfg.Horizon)
		}
		a.simulate = true
		a.simCfg = cfg
		return nil
	}
}

// WithCache keeps the canonical reports of the n most recently
// analysed task sets, keyed by TaskSet.Hash. n <= 0 disables caching
// (the default).
func WithCache(n int) AnalyzerOption {
	return func(a *Analyzer) error {
		a.cache = lru.New[string, *cacheEntry](n)
		return nil
	}
}

// WithBatchWorkers fixes the AnalyzeBatch worker-pool size; 0 (the
// default) uses GOMAXPROCS. Results are identical at any value.
func WithBatchWorkers(n int) AnalyzerOption {
	return func(a *Analyzer) error {
		a.workers = n
		return nil
	}
}

// WithAnalysisWorkers bounds the worker group a single analysis fans
// its independent per-core RTA verdicts out over (the Eq. 1 screen of
// period selection and the admission engine's memoized per-core
// check). The default 1 runs those screens serially — byte-identical
// legacy behaviour; any n yields bit-identical reports by the same
// ordered-merge argument as the sweep engine, so the option is purely
// a latency knob for many-core sets on otherwise idle machines.
func WithAnalysisWorkers(n int) AnalyzerOption {
	return func(a *Analyzer) error {
		if n < 0 {
			return fmt.Errorf("analysis workers must be >= 0, got %d", n)
		}
		a.opts.AnalysisWorkers = n
		return nil
	}
}

// New builds an Analyzer from functional options. The zero
// configuration runs exactly the paper's pipeline: best-fit
// partitioning when needed, Algorithm 1 with the dominance carry-in
// bound, no baselines, no simulation, no cache.
func New(options ...AnalyzerOption) (*Analyzer, error) {
	a := &Analyzer{heuristic: BestFit, pool: core.DefaultScratchPool}
	for _, opt := range options {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Analyze runs the full pipeline on ts and returns its report. The
// input set is never modified. ctx cancels the analysis between
// pipeline stages, between period-search probes, and periodically
// inside the simulator; the first observed ctx.Err() is returned.
//
// The returned report is the caller's to keep: it never aliases cache
// state. FromCache and Timing describe this call; everything else is
// canonical (identical for identical input).
func (a *Analyzer) Analyze(ctx context.Context, ts *TaskSet) (*Report, error) {
	start := time.Now()
	entry, tm, cached, err := a.analyzeShared(ctx, ts, nil)
	if err != nil {
		return nil, err
	}
	out := entry.rep.Clone()
	if tm == nil {
		tm = &Timing{}
	}
	tm.TotalNS = time.Since(start).Nanoseconds()
	out.Timing = tm
	out.FromCache = cached
	return out, nil
}

// AnalyzeEnvelope is the service hot path: it returns the versioned
// report envelope exactly as WriteReport renders it, as bytes ready
// for one response Write. A cache miss behaves like Analyze (the
// envelope carries per-call Timing); a cache hit is served from the
// entry's pre-encoded bytes — no report clone, no JSON marshal — so
// the envelope of a hit is canonical: FromCache is true and Timing is
// absent (a replayed byte slice cannot carry a per-call stamp).
//
// The returned bytes are shared with the cache (every future hit of
// the same set replays the same slice); callers must treat them as
// read-only — write them out or copy them, never modify or append in
// place.
func (a *Analyzer) AnalyzeEnvelope(ctx context.Context, ts *TaskSet) ([]byte, bool, error) {
	start := time.Now()
	entry, tm, cached, err := a.analyzeShared(ctx, ts, nil)
	if err != nil {
		return nil, false, err
	}
	if cached {
		if b := entry.enc.Load(); b != nil {
			return *b, true, nil
		}
		b, err := entry.hitEnvelope()
		if err != nil {
			return nil, false, err
		}
		return b, true, nil
	}
	out := entry.rep.Clone()
	if tm == nil {
		tm = &Timing{}
	}
	tm.TotalNS = time.Since(start).Nanoseconds()
	out.Timing = tm
	b, err := marshalReportEnvelope(out)
	if err != nil {
		return nil, false, err
	}
	return b, false, nil
}

// hitEnvelope renders (once) and memoizes the canonical cache-hit
// bytes of an entry.
func (e *cacheEntry) hitEnvelope() ([]byte, error) {
	hit := e.rep.Clone()
	hit.FromCache = true
	b, err := marshalReportEnvelope(hit)
	if err != nil {
		return nil, err
	}
	e.enc.Store(&b)
	return b, nil
}

// AnalyzeBatch analyses many sets in parallel over the deterministic
// sweep engine: reports arrive in input order and are bit-identical
// at any worker count (they carry no Timing and never set FromCache).
// Any per-set error aborts the batch; an unschedulable set is not an
// error — its report says so.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, sets []*TaskSet) ([]*Report, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	maxHint := 0
	for _, ts := range sets {
		if n := core.SizeHint(ts); n > maxHint {
			maxHint = n
		}
	}
	type slot struct {
		idx int
		rep *Report
	}
	// Each sweep chunk is processed by one goroutine, so the chunk's
	// partial pins one pooled scratch, re-primed per item: the whole
	// batch runs the kernel without per-analysis workspace churn. The
	// scratch returns to the pool at merge time (merge runs after all
	// workers stop); on an aborted run the unreturned scratches are
	// simply collected — a sync.Pool holds no resources.
	type partial struct {
		slots []slot
		sc    *core.Scratch
	}
	merged, err := sweep.Run(
		sweep.Config{Groups: len(sets), PerGroup: 1, Workers: a.workers, Context: ctx},
		func() *partial { return &partial{} },
		func(p *partial, it sweep.Item) error {
			if p.sc == nil {
				p.sc = a.pool.Get(nil, maxHint)
			}
			entry, _, _, err := a.analyzeShared(ctx, sets[it.Group], p.sc)
			if err != nil {
				return fmt.Errorf("task set %d: %w", it.Group, err)
			}
			p.slots = append(p.slots, slot{idx: it.Group, rep: entry.rep.Clone()})
			return nil
		},
		func(dst, src *partial) {
			dst.slots = append(dst.slots, src.slots...)
			a.pool.Put(src.sc)
			src.sc = nil
		},
	)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, len(sets))
	for _, s := range merged.slots {
		out[s.idx] = s.rep
	}
	return out, nil
}

// Baseline runs a single comparison scheme on ts (partitioning the RT
// band first if needed) without the HYDRA-C selection. It backs the
// deprecated one-shot baseline functions and spot checks.
func (a *Analyzer) Baseline(ctx context.Context, ts *TaskSet, scheme Scheme) (*BaselineVerdict, error) {
	if _, err := ParseScheme(string(scheme)); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	cp := ts
	if scheme != SchemeGlobalTMax {
		// Partitioned schemes need a placed RT band; GLOBAL-TMax
		// schedules everything globally and must keep working on sets
		// no partitioning heuristic can place.
		var err error
		if cp, _, err = a.partitioned(ctx, ts); err != nil {
			return nil, err
		}
	}
	return a.runBaseline(cp, scheme, nil)
}

// analyzeShared is the cache-aware core of Analyze/AnalyzeBatch. It
// returns the cache entry holding the canonical report (no Timing,
// FromCache unset) — callers must Clone entry.rep before exposing it.
// sc, when non-nil, is the caller's pinned kernel workspace; nil
// borrows one from the pool for the duration of the analysis.
func (a *Analyzer) analyzeShared(ctx context.Context, ts *TaskSet, sc *core.Scratch) (*cacheEntry, *Timing, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	// Hash before validating: only validated sets are ever cached, and
	// the hash covers every analysis-relevant field, so a hit means
	// this exact content already passed Validate — the hot path skips
	// straight to the entry.
	key := ts.Hash()
	if entry, ok := a.cache.Get(key); ok {
		return entry, nil, true, nil
	}
	if err := ts.Validate(); err != nil {
		return nil, nil, false, err
	}
	if sc == nil {
		sc = a.pool.Get(nil, core.SizeHint(ts))
		defer a.pool.Put(sc)
	}
	rep, tm, err := a.analyzeCanonical(ctx, ts, key, sc)
	if err != nil {
		return nil, nil, false, err
	}
	entry := &cacheEntry{rep: rep}
	// Two goroutines may compute the same key concurrently; both
	// arrive at the same canonical report, so the race is benign.
	a.cache.Add(key, entry)
	return entry, tm, false, nil
}

// partitioned returns a clone of ts with every RT task placed,
// running the configured heuristic when the input arrives fully
// unassigned. Mixed sets are rejected: the packing heuristic would
// silently move explicitly pinned tasks (hardware affinity is a hard
// constraint), so a set must arrive either fully placed or fully
// free.
func (a *Analyzer) partitioned(ctx context.Context, ts *TaskSet) (*TaskSet, string, error) {
	assigned, unassigned := 0, 0
	for _, t := range ts.RT {
		if t.Core < 0 {
			unassigned++
		} else {
			assigned++
		}
	}
	cp := ts.Clone()
	switch {
	case unassigned == 0:
		return cp, "", nil
	case assigned > 0:
		return nil, "", fmt.Errorf("%d of %d RT tasks are pinned and %d unassigned; pin all cores or none (the heuristic will not move pinned tasks)", assigned, len(ts.RT), unassigned)
	default:
		if err := partition.AssignCtx(ctx, cp, a.heuristic); err != nil {
			return nil, "", fmt.Errorf("partitioning RT tasks: %w", err)
		}
		return cp, a.heuristic.String(), nil
	}
}

// analyzeCanonical runs the pipeline for one uncached set on the
// caller's scratch.
func (a *Analyzer) analyzeCanonical(ctx context.Context, ts *TaskSet, key string, sc *core.Scratch) (*Report, *Timing, error) {
	tm := &Timing{}
	t0 := time.Now()
	cp, heur, err := a.partitioned(ctx, ts)
	if err != nil {
		return nil, nil, err
	}
	if heur != "" {
		tm.PartitionNS = time.Since(t0).Nanoseconds()
	}

	t0 = time.Now()
	res, err := core.SelectPeriodsCtxWith(ctx, cp, a.opts, sc)
	if err != nil {
		return nil, nil, err
	}
	tm.SelectionNS = time.Since(t0).Nanoseconds()
	rep, err := a.buildReport(ctx, cp, res, heur, key, tm, sc)
	if err != nil {
		return nil, nil, err
	}
	return rep, tm, nil
}

// buildReport shapes the canonical report for an analysed, fully
// placed set and runs the configured baseline and simulation stages.
// It is shared between the cold pipeline (analyzeCanonical) and the
// incremental session path, which is how session reports stay
// byte-identical to cold reports of the same set. sc, when non-nil,
// is reused by the GLOBAL-TMax baseline (the selection that held it
// is finished by now and results never alias scratch buffers); nil
// makes the baseline borrow from the pool.
func (a *Analyzer) buildReport(ctx context.Context, cp *TaskSet, res *core.Result, heur, key string, tm *Timing, sc *core.Scratch) (*Report, error) {
	rep := &Report{
		Scheme:      SchemeHydraC,
		Schedulable: res.Schedulable,
		Heuristic:   heur,
		TaskSetHash: key,
		Cores:       cp.Cores,
		RT:          make([]RTAssignment, 0, len(cp.RT)),
		Tasks:       make([]SecurityVerdict, 0, len(cp.Security)),
	}
	for _, t := range cp.RT {
		rep.RT = append(rep.RT, RTAssignment{Name: t.Name, Core: t.Core})
	}
	for i, s := range cp.Security {
		v := SecurityVerdict{Name: s.Name, MaxPeriod: s.MaxPeriod, Core: -1}
		if res.Schedulable {
			v.Period, v.WCRT = res.Periods[i], res.Resp[i]
		}
		rep.Tasks = append(rep.Tasks, v)
	}

	if len(a.baselines) > 0 {
		t0 := time.Now()
		for _, scheme := range a.baselines {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := a.runBaseline(cp, scheme, sc)
			if err != nil {
				return nil, err
			}
			rep.Baselines = append(rep.Baselines, *v)
		}
		tm.BaselinesNS = time.Since(t0).Nanoseconds()
	}

	if a.simulate && res.Schedulable {
		t0 := time.Now()
		out, err := sim.RunCtx(ctx, core.Apply(cp, res), a.simCfg)
		if err != nil {
			return nil, err
		}
		tm.SimulationNS = time.Since(t0).Nanoseconds()
		rep.Simulation = &SimSummary{
			Policy:                 a.simCfg.Policy.String(),
			Horizon:                out.Horizon,
			ContextSwitches:        out.ContextSwitches,
			Migrations:             out.Migrations,
			RTDeadlineMisses:       out.RTDeadlineMisses,
			SecurityDeadlineMisses: out.SecurityDeadlineMisses,
			Utilization:            out.Utilization(),
		}
	}
	return rep, nil
}

// runBaseline executes one comparison scheme on an already
// partitioned set and shapes its verdict. sc, when non-nil, is the
// kernel workspace the GLOBAL-TMax scheme reuses.
func (a *Analyzer) runBaseline(ts *TaskSet, scheme Scheme, sc *core.Scratch) (*BaselineVerdict, error) {
	v := &BaselineVerdict{Scheme: scheme}
	switch scheme {
	case SchemeHydra, SchemeHydraAggressive, SchemeHydraTMax:
		var res *baseline.PartitionedResult
		var err error
		switch scheme {
		case SchemeHydra:
			res, err = baseline.Hydra(ts)
		case SchemeHydraAggressive:
			res, err = baseline.HydraAggressive(ts)
		default:
			res, err = baseline.HydraTMax(ts)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		v.Schedulable = res.Schedulable
		if res.Schedulable {
			for _, t := range ts.RT {
				v.Placement = append(v.Placement, RTAssignment{Name: t.Name, Core: t.Core})
			}
			for i, s := range ts.Security {
				v.Tasks = append(v.Tasks, SecurityVerdict{
					Name: s.Name, Period: res.Periods[i], WCRT: res.Resp[i],
					MaxPeriod: s.MaxPeriod, Core: res.Cores[i],
				})
			}
		}
	case SchemeGlobalTMax:
		var res *baseline.GlobalResult
		var err error
		if sc != nil {
			res, err = baseline.GlobalTMaxWith(ts, sc)
		} else {
			res, err = baseline.GlobalTMax(ts)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		v.Schedulable = res.Schedulable
		for i, t := range ts.RT {
			v.RT = append(v.RT, RTVerdict{Name: t.Name, WCRT: res.RTResp[i], Deadline: t.Deadline})
		}
		for i, s := range ts.Security {
			v.Tasks = append(v.Tasks, SecurityVerdict{
				Name: s.Name, Period: s.MaxPeriod, WCRT: res.SecResp[i],
				MaxPeriod: s.MaxPeriod, Core: -1,
			})
		}
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	return v, nil
}
