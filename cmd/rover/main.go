// Command rover reproduces the paper's embedded-platform experiments
// (§5.1, Figs. 5a and 5b) on the simulated RPi3 rover: intrusion
// detection latency and context-switch overhead for HYDRA-C vs HYDRA,
// plus the controlled pinned-vs-migrating comparison and the Table 2
// platform summary.
//
// Usage:
//
//	rover [-trials N] [-seed S] [-objects N] [-table2]
package main

import (
	"flag"
	"fmt"
	"os"

	"hydrac/internal/experiments"
	"hydrac/internal/metrics"
	"hydrac/internal/rover"
)

func main() {
	trials := flag.Int("trials", 35, "number of attack trials (paper: 35)")
	seed := flag.Int64("seed", 1, "random seed")
	objects := flag.Int("objects", 64, "files in the protected image store")
	table2 := flag.Bool("table2", false, "print the Table 2 platform summary and exit")
	hist := flag.Bool("hist", false, "also print detection-latency histograms")
	flag.Parse()

	if *table2 {
		fmt.Print(rover.TableTwo())
		return
	}

	cfg := rover.DefaultTrialConfig()
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.Objects = *objects

	res, err := experiments.Fig5(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rover:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())

	if *hist {
		hi := res.HydraC.DetectionMS.Max()
		if h2 := res.Hydra.DetectionMS.Max(); h2 > hi {
			hi = h2
		}
		for _, s := range []*rover.SchemeResult{res.HydraC, res.Hydra} {
			fmt.Printf("\n%s detection-latency distribution (ms):\n", s.Scheme)
			h := metrics.NewHistogram(0, hi+1, 8)
			h.AddSample(&s.DetectionMS)
			fmt.Print(h.Render(40))
		}
	}
}
