// Package sim is a discrete-event simulator for partitioned
// fixed-priority preemptive multicore scheduling with a lowest-priority
// security band that either migrates across cores (HYDRA-C's
// semi-partitioned policy), stays pinned (HYDRA), or for which the
// whole task set is scheduled globally (GLOBAL). It substitutes for
// the paper's PREEMPT_RT Linux rover testbed (§5.1): the quantities
// the paper measures — intrusion-detection latency, context switches,
// response times — are all scheduling-level observables that the
// simulator reproduces exactly at integer-tick resolution.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hydrac/internal/task"
)

// Policy selects how tasks may move between cores.
type Policy int

const (
	// SemiPartitioned pins RT tasks to their cores and lets security
	// tasks migrate to any idle core — the HYDRA-C runtime model.
	SemiPartitioned Policy = iota
	// FullyPartitioned pins both bands: security tasks run only on
	// their bound core — the HYDRA runtime model.
	FullyPartitioned
	// Global lets every task, RT included, run on any core — the
	// GLOBAL-TMax runtime model.
	Global
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case SemiPartitioned:
		return "semi-partitioned"
	case FullyPartitioned:
		return "fully-partitioned"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config controls one simulation run.
type Config struct {
	// Policy is the migration model (default SemiPartitioned).
	Policy Policy
	// Horizon is the simulated duration in ticks; the run covers
	// [0, Horizon).
	Horizon task.Time
	// Offsets optionally delays the first release of named tasks;
	// the paper's trials randomise attack instants against a running
	// schedule, which per-trial phase offsets emulate.
	Offsets map[string]task.Time
	// RecordIntervals keeps every execution interval of every job;
	// required by the intrusion-detection substrate and the Gantt
	// renderer, off by default to keep long sweeps cheap.
	RecordIntervals bool
	// StopOnDeadlineMiss aborts the run at the first RT deadline miss
	// (useful in conformance tests where a miss is a hard failure).
	StopOnDeadlineMiss bool
	// ReleaseJitter makes tasks sporadic rather than strictly
	// periodic: each inter-arrival is the period plus a uniform random
	// delay of at most this many ticks. The WCRT analysis covers
	// sporadic arrivals, so analysis-accepted sets must still meet
	// every deadline under any jitter.
	ReleaseJitter task.Time
	// ExecutionVariation, in [0, 1), makes actual execution demand
	// vary per job: each job runs for a uniform fraction in
	// [1−ExecutionVariation, 1] of its WCET (never more, as WCET is
	// the bound). 0 means every job consumes exactly its WCET.
	ExecutionVariation float64
	// Seed drives the jitter/variation randomness; runs are
	// reproducible for a fixed seed.
	Seed int64
	// ModeSwitches implements the paper's §6 reactive extension:
	// dependent security checks that escalate after an anomaly. Each
	// entry makes the named security task execute with AlertWCET
	// (its normal action a0 plus the follow-up a1) for jobs released
	// in [At, Until); zero Until means "until the horizon".
	ModeSwitches []ModeSwitch
	// DebugChecks enables internal invariant checking at every
	// scheduling event (work conservation, band ordering). Meant for
	// tests; a violated invariant aborts the run with an error.
	DebugChecks bool
}

// ModeSwitch escalates one security task's execution demand during a
// window — the "job τs^{j+1} performs both actions a0 and a1"
// behaviour of §6.
type ModeSwitch struct {
	Task      string
	At        task.Time
	Until     task.Time
	AlertWCET task.Time
}

// band separates the two priority classes: every RT task outranks
// every security task.
type band int

const (
	bandRT band = iota
	bandSecurity
)

// taskInfo is the static view of one task inside the engine.
type taskInfo struct {
	name     string
	band     band
	priority int // within the band; lower = higher priority
	wcet     task.Time
	period   task.Time
	deadline task.Time // relative; security tasks: = period
	core     int       // pinned core or -1 (migrating)
	offset   task.Time
}

// job is one released instance.
type job struct {
	info      *taskInfo
	index     int
	release   task.Time
	deadline  task.Time // absolute
	remaining task.Time
	started   bool
	lastCore  int
	finish    task.Time
	intervals []Interval
}

// before orders jobs by scheduling precedence: band, then priority,
// then earlier release, then name for determinism.
func (j *job) before(o *job) bool {
	if j.info.band != o.info.band {
		return j.info.band < o.info.band
	}
	if j.info.priority != o.info.priority {
		return j.info.priority < o.info.priority
	}
	if j.release != o.release {
		return j.release < o.release
	}
	return j.info.name < o.info.name
}

// Run simulates ts under cfg. The set must be validated, RT tasks
// partitioned (unless Policy is Global) and every security task must
// carry an assigned period; FullyPartitioned additionally requires
// security core bindings.
func Run(ts *task.Set, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), ts, cfg)
}

// RunCtx is Run with cancellation: the event loop checks ctx every
// few scheduling events and aborts with ctx.Err() when it is done.
// Long horizons over large sets simulate millions of events; a caller
// that timed out must not keep a core busy to the horizon.
func RunCtx(ctx context.Context, ts *task.Set, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive, got %d", cfg.Horizon)
	}
	infos := make([]*taskInfo, 0, len(ts.RT)+len(ts.Security))
	for _, t := range ts.RT {
		core := t.Core
		if cfg.Policy == Global {
			core = -1
		} else if core < 0 {
			return nil, fmt.Errorf("sim: RT task %s has no core binding under %v", t.Name, cfg.Policy)
		}
		infos = append(infos, &taskInfo{
			name: t.Name, band: bandRT, priority: t.Priority,
			wcet: t.WCET, period: t.Period, deadline: t.Deadline,
			core: core, offset: cfg.Offsets[t.Name],
		})
	}
	for _, s := range ts.Security {
		if s.Period <= 0 {
			return nil, fmt.Errorf("sim: security task %s has no assigned period", s.Name)
		}
		core := -1
		switch cfg.Policy {
		case FullyPartitioned:
			if s.Core < 0 {
				return nil, fmt.Errorf("sim: security task %s has no core binding under %v", s.Name, cfg.Policy)
			}
			core = s.Core
		}
		infos = append(infos, &taskInfo{
			name: s.Name, band: bandSecurity, priority: s.Priority,
			wcet: s.WCET, period: s.Period, deadline: s.Period,
			core: core, offset: cfg.Offsets[s.Name],
		})
	}

	if cfg.ExecutionVariation < 0 || cfg.ExecutionVariation >= 1 {
		return nil, fmt.Errorf("sim: execution variation %v outside [0, 1)", cfg.ExecutionVariation)
	}
	if cfg.ReleaseJitter < 0 {
		return nil, fmt.Errorf("sim: negative release jitter %d", cfg.ReleaseJitter)
	}
	eng := &engine{ctx: ctx, cfg: cfg, cores: ts.Cores, infos: infos, rng: rand.New(rand.NewSource(cfg.Seed))}
	return eng.run()
}

// engine holds the mutable simulation state.
type engine struct {
	ctx   context.Context
	cfg   Config
	cores int
	infos []*taskInfo
	rng   *rand.Rand

	now         task.Time
	nextRelease []task.Time
	jobCount    []int
	ready       []*job // released, unfinished
	running     []*job // per core; nil = idle
	result      *Result
}

func (e *engine) run() (*Result, error) {
	e.nextRelease = make([]task.Time, len(e.infos))
	e.jobCount = make([]int, len(e.infos))
	for i, info := range e.infos {
		e.nextRelease[i] = info.offset
	}
	e.running = make([]*job, e.cores)
	e.result = newResult(e.cores, e.cfg.Horizon)

	// Cancellation is polled every eventsPerCtxCheck events, not every
	// event: ctx.Err() takes a lock and the loop body is only a few
	// microseconds for small sets.
	events := 0
	for e.now < e.cfg.Horizon {
		if events++; events&(eventsPerCtxCheck-1) == 0 {
			if err := e.ctx.Err(); err != nil {
				return nil, err
			}
		}
		e.releaseDue()
		prev := append([]*job(nil), e.running...)
		e.dispatch()
		e.accountSwitches(prev)
		if e.cfg.DebugChecks {
			if err := e.checkInvariants(); err != nil {
				return nil, err
			}
		}

		delta := e.nextEventDelta()
		if delta <= 0 {
			return nil, fmt.Errorf("sim: stalled at t=%d", e.now)
		}
		if e.now+delta > e.cfg.Horizon {
			delta = e.cfg.Horizon - e.now
		}
		e.advance(delta)
		if e.cfg.StopOnDeadlineMiss && e.result.RTDeadlineMisses > 0 {
			break
		}
	}
	e.finishOpenJobs()
	return e.result, nil
}

// eventsPerCtxCheck is the cancellation polling stride; a power of two
// so the check compiles to a mask.
const eventsPerCtxCheck = 1024

// alertWCET returns the escalated demand for a job of the named task
// released at rel, or 0 when no mode switch applies.
func (e *engine) alertWCET(name string, rel task.Time) task.Time {
	for _, ms := range e.cfg.ModeSwitches {
		if ms.Task != name || rel < ms.At {
			continue
		}
		if ms.Until == 0 || rel < ms.Until {
			return ms.AlertWCET
		}
	}
	return 0
}

// releaseDue releases every job whose release time is now.
func (e *engine) releaseDue() {
	for i, info := range e.infos {
		for e.nextRelease[i] <= e.now {
			demand := info.wcet
			if info.band == bandSecurity {
				if alert := e.alertWCET(info.name, e.nextRelease[i]); alert > 0 {
					demand = alert
				}
			}
			if e.cfg.ExecutionVariation > 0 {
				low := float64(demand) * (1 - e.cfg.ExecutionVariation)
				demand = task.Time(low + e.rng.Float64()*(float64(demand)-low))
				if demand < 1 {
					demand = 1
				}
			}
			j := &job{
				info:      info,
				index:     e.jobCount[i],
				release:   e.nextRelease[i],
				deadline:  e.nextRelease[i] + info.deadline,
				remaining: demand,
				lastCore:  -1,
			}
			e.jobCount[i]++
			e.ready = append(e.ready, j)
			e.nextRelease[i] += info.period
			if e.cfg.ReleaseJitter > 0 {
				e.nextRelease[i] += e.rng.Int63n(int64(e.cfg.ReleaseJitter) + 1)
			}
		}
	}
}

// dispatch assigns ready jobs to cores for the next slice:
// highest-priority pinned RT job per core first, then the migrating
// pool (and pinned security jobs) in global priority order over the
// remaining idle cores.
func (e *engine) dispatch() {
	for m := range e.running {
		e.running[m] = nil
	}
	taken := make(map[*job]bool)

	// Pinned RT jobs claim their cores.
	for m := 0; m < e.cores; m++ {
		var best *job
		for _, j := range e.ready {
			if j.info.band == bandRT && j.info.core == m && (best == nil || j.before(best)) {
				best = j
			}
		}
		if best != nil {
			e.running[m] = best
			taken[best] = true
		}
	}

	// Everything else — migrating RT (Global policy), migrating and
	// pinned security — competes in precedence order for free cores.
	pool := make([]*job, 0, len(e.ready))
	for _, j := range e.ready {
		if !taken[j] && (j.info.band == bandSecurity || j.info.core < 0) {
			pool = append(pool, j)
		}
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].before(pool[b]) })
	for _, j := range pool {
		if j.info.core >= 0 {
			// Pinned security job: only its own core, and only below
			// whatever pinned RT job holds it.
			if e.running[j.info.core] == nil {
				e.running[j.info.core] = j
			}
			continue
		}
		// Prefer the core the job last ran on to avoid gratuitous
		// migrations, then any free core.
		if j.lastCore >= 0 && e.running[j.lastCore] == nil {
			e.running[j.lastCore] = j
			continue
		}
		for m := 0; m < e.cores; m++ {
			if e.running[m] == nil {
				e.running[m] = j
				break
			}
		}
	}
}

// accountSwitches compares consecutive assignments, counting context
// switches (a core changes occupant, idle transitions included, as
// perf's cs counter would) and migrations (a job resumes on a
// different core than it last executed on).
func (e *engine) accountSwitches(prev []*job) {
	for m := 0; m < e.cores; m++ {
		cur := e.running[m]
		if prev[m] != cur && (prev[m] != nil || cur != nil) {
			e.result.ContextSwitches++
		}
		if cur != nil {
			if cur.lastCore >= 0 && cur.lastCore != m && cur.started {
				e.result.Migrations++
			}
		}
	}
}

// nextEventDelta returns the time to the next release or completion.
func (e *engine) nextEventDelta() task.Time {
	delta := task.Infinity
	for i := range e.infos {
		if d := e.nextRelease[i] - e.now; d < delta {
			delta = d
		}
	}
	for _, j := range e.running {
		if j != nil && j.remaining < delta {
			delta = j.remaining
		}
	}
	return delta
}

// advance executes the current assignment for delta ticks.
func (e *engine) advance(delta task.Time) {
	end := e.now + delta
	for m, j := range e.running {
		if j == nil {
			continue
		}
		if !j.started {
			j.started = true
			e.result.record(j.info.name).Starts++
		}
		j.remaining -= delta
		j.lastCore = m
		e.result.CoreBusy[m] += delta
		if e.cfg.RecordIntervals {
			j.intervals = appendInterval(j.intervals, Interval{Start: e.now, End: end, Core: m})
		}
		if j.remaining == 0 {
			j.finish = end
			e.completeJob(j, end)
		}
	}
	e.ready = compactReady(e.ready)
	e.now = end
}

// completeJob finalises accounting for a finished job.
func (e *engine) completeJob(j *job, t task.Time) {
	rec := e.result.record(j.info.name)
	resp := t - j.release
	rec.Completed++
	if resp > rec.MaxResponse {
		rec.MaxResponse = resp
	}
	rec.TotalResponse += resp
	missed := t > j.deadline
	if missed {
		rec.DeadlineMisses++
		if j.info.band == bandRT {
			e.result.RTDeadlineMisses++
		} else {
			e.result.SecurityDeadlineMisses++
		}
	}
	if e.cfg.RecordIntervals {
		e.result.JobLog = append(e.result.JobLog, JobRecord{
			Task: j.info.name, Index: j.index,
			Release: j.release, Finish: t, Deadline: j.deadline,
			Missed: missed, Intervals: j.intervals,
		})
	}
}

// finishOpenJobs logs jobs still incomplete at the horizon so traces
// remain usable (their Finish stays -1).
func (e *engine) finishOpenJobs() {
	if !e.cfg.RecordIntervals {
		return
	}
	for _, j := range e.ready {
		if j.remaining > 0 {
			e.result.JobLog = append(e.result.JobLog, JobRecord{
				Task: j.info.name, Index: j.index,
				Release: j.release, Finish: -1, Deadline: j.deadline,
				Missed: e.cfg.Horizon > j.deadline, Intervals: j.intervals,
			})
		}
	}
	sort.Slice(e.result.JobLog, func(a, b int) bool {
		x, y := e.result.JobLog[a], e.result.JobLog[b]
		if x.Release != y.Release {
			return x.Release < y.Release
		}
		return x.Task < y.Task
	})
}

// compactReady drops finished jobs.
func compactReady(ready []*job) []*job {
	out := ready[:0]
	for _, j := range ready {
		if j.remaining > 0 {
			out = append(out, j)
		}
	}
	return out
}

// appendInterval merges contiguous same-core slices to keep traces
// small.
func appendInterval(ivs []Interval, iv Interval) []Interval {
	if n := len(ivs); n > 0 && ivs[n-1].End == iv.Start && ivs[n-1].Core == iv.Core {
		ivs[n-1].End = iv.End
		return ivs
	}
	return append(ivs, iv)
}
