package hydrac

import (
	"context"
	"io"

	"hydrac/internal/admit"
	"hydrac/internal/task"
)

// Delta is one incremental admission request against a live session:
// removals by name, then additions, in one atomic step. See the
// documentation on the underlying type for the defaulting rules (added
// tasks must carry explicit priorities).
type Delta = task.Delta

// DecodeDelta reads one delta from its JSON wire format (the body of
// POST /v1/session/{id}/admit).
func DecodeDelta(r io.Reader) (*Delta, error) { return task.DecodeDelta(r) }

// EncodeDelta writes one delta as indented JSON.
func EncodeDelta(w io.Writer, d *Delta) error { return task.EncodeDelta(w, d) }

// DecodeDeltaLog reads a JSON array of deltas — the replay format of
// `hydrac admit -deltas`.
func DecodeDeltaLog(r io.Reader) ([]Delta, error) { return task.DecodeDeltaLog(r) }

// EncodeDeltaLog writes a delta sequence in the format DecodeDeltaLog
// reads.
func EncodeDeltaLog(w io.Writer, ds []Delta) error { return task.EncodeDeltaLog(w, ds) }

// Session is a live admission session: an analysed task set that
// absorbs deltas incrementally. Where Analyze re-runs the full
// pipeline per request, a session re-derives only what each delta can
// affect (memoized per-core RT fixpoints, two-probe verification of
// surviving periods) and falls back to the full search task by task
// when verification fails — so every report is byte-identical to a
// cold Analyze of the same set, just cheaper to produce.
//
// Sessions are safe for concurrent use: deltas serialize in arrival
// order, and Log returns that order for deterministic replay.
//
// A session's reports always describe its own placed set: RT tasks
// arriving unassigned are placed at session creation (heuristic
// placement is recorded in the RT assignments, not in the Heuristic
// field), and incoming unassigned RT tasks are placed one at a time
// without moving admitted tasks.
type Session struct {
	a   *Analyzer
	eng *admit.Engine
}

// SessionConfig carries restoration state for sessions that resume a
// previous life — the durable session store (internal/store) recovers
// a session by replaying its persisted delta log over a snapshot and
// needs the engine-internal placement cursor restored alongside the
// set, so post-recovery placements are byte-identical to the
// never-restarted session's.
type SessionConfig struct {
	// NextFitCursor seeds the next-fit placement rotation; zero for
	// fresh sessions. Pair it with the PlacementCursor of the session
	// whose state is being restored.
	NextFitCursor int
}

// CommitHook observes every committed delta of a session: it runs
// under the session's serialization lock after a delta is admitted
// but BEFORE it is installed, and an error aborts the commit, leaving
// the session unchanged. That ordering lets a persistence layer make
// "committed" imply "durable": append-and-fsync in the hook, and no
// acknowledged delta can be lost to a crash. state is the set as it
// will be once installed and cursor the matching placement cursor;
// the hook must not retain state (it is engine-owned) or call back
// into the session.
type CommitHook func(d Delta, state *TaskSet, cursor int) error

// NewSession opens a session over base and returns the initial
// report. The base set is committed even when its security band is
// unschedulable — it describes the system as it already runs; an RT
// band infeasible under Eq. 1 is an error, as in Analyze.
func (a *Analyzer) NewSession(ctx context.Context, base *TaskSet) (*Session, *Report, error) {
	return a.NewSessionWith(ctx, base, SessionConfig{})
}

// NewSessionWith is NewSession with restoration state; see
// SessionConfig.
func (a *Analyzer) NewSessionWith(ctx context.Context, base *TaskSet, cfg SessionConfig) (*Session, *Report, error) {
	eng, out, err := admit.New(ctx, base, admit.Config{
		Opts:          a.opts,
		Heuristic:     a.heuristic,
		NextFitCursor: cfg.NextFitCursor,
	})
	if err != nil {
		return nil, nil, err
	}
	s := &Session{a: a, eng: eng}
	rep, err := s.report(ctx, out)
	if err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}

// SetCommitHook installs the session's commit hook (see CommitHook).
// Set it before the session is shared across goroutines: the durable
// store attaches it between recovery replay (which must not re-log
// the deltas being replayed) and serving.
func (s *Session) SetCommitHook(f CommitHook) {
	if f == nil {
		s.eng.SetOnCommit(nil)
		return
	}
	s.eng.SetOnCommit(func(d Delta, state *TaskSet, cursor int) error { return f(d, state, cursor) })
}

// PlacementCursor returns the committed state's next-fit placement
// cursor — the value a recovered successor must restore through
// SessionConfig for post-recovery placements to match this session's.
func (s *Session) PlacementCursor() int { return s.eng.Cursor() }

// Admit applies one delta. The returned report describes the set with
// the delta applied; admitted reports whether the delta was COMMITTED
// — false means the admission was denied (the security band would be
// unschedulable) and the session state is unchanged. Removal-only
// deltas always commit: removals never worsen schedulability, and the
// report of a removal from a still-unschedulable base is committed
// with Schedulable == false, which is why callers must branch on
// admitted, not on Report.Schedulable. Errors — unknown names,
// infeasible RT placements, validation failures — also leave the
// state unchanged.
func (s *Session) Admit(ctx context.Context, d Delta) (rep *Report, admitted bool, err error) {
	out, err := s.eng.Apply(ctx, d)
	if err != nil {
		return nil, false, err
	}
	rep, err = s.report(ctx, out)
	if err != nil {
		return nil, false, err
	}
	return rep, out.Admitted, nil
}

// Remove drops the named tasks. It always commits when every name
// exists (see Admit).
func (s *Session) Remove(ctx context.Context, names ...string) (*Report, bool, error) {
	return s.Admit(ctx, Delta{Remove: names})
}

// Update replaces the named tasks atomically: every added task whose
// name already exists is removed first, in the same delta. A task in
// d.AddRT or d.AddSecurity whose name is NOT yet admitted is an error
// — use Admit for genuinely new tasks. The existence check and the
// replacement are one atomic step under the engine lock.
func (s *Session) Update(ctx context.Context, d Delta) (*Report, bool, error) {
	out, err := s.eng.Update(ctx, d)
	if err != nil {
		return nil, false, err
	}
	rep, err := s.report(ctx, out)
	if err != nil {
		return nil, false, err
	}
	return rep, out.Admitted, nil
}

// Set returns a copy of the committed task set (fully placed).
func (s *Session) Set() *TaskSet { return s.eng.Snapshot() }

// Log returns the committed deltas in commit order: replaying them
// serially over the same base reproduces the committed state exactly.
func (s *Session) Log() []Delta { return s.eng.Log() }

// report shapes an engine outcome with the Analyzer's shared report
// builder, so baselines and simulation configured on the Analyzer
// appear here exactly as in a cold Analyze. Like batch reports,
// session reports carry no Timing and never set FromCache — they must
// be byte-identical to the canonical report of the same set.
func (s *Session) report(ctx context.Context, out *admit.Outcome) (*Report, error) {
	rep, err := s.a.buildReport(ctx, out.Set, out.Result, "", out.Set.Hash(), &Timing{}, nil)
	if err != nil {
		return nil, err
	}
	return rep, nil
}
