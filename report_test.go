package hydrac_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/task"
)

// randomReport builds a structurally rich report with boundary tick
// values mixed in.
func randomReport(rng *rand.Rand) *hydrac.Report {
	ticks := []hydrac.Time{0, 1, 2, 1000, task.Infinity - 1, task.Infinity}
	tick := func() hydrac.Time { return ticks[rng.Intn(len(ticks))] }
	rep := &hydrac.Report{
		Scheme:      hydrac.SchemeHydraC,
		Schedulable: rng.Intn(2) == 0,
		TaskSetHash: "deadbeef",
		Cores:       1 + rng.Intn(8),
	}
	if rng.Intn(2) == 0 {
		rep.Heuristic = "best-fit"
	}
	for i := 0; i < rng.Intn(3); i++ {
		rep.RT = append(rep.RT, hydrac.RTAssignment{Name: "rt" + string(rune('a'+i)), Core: rng.Intn(8)})
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		rep.Tasks = append(rep.Tasks, hydrac.SecurityVerdict{
			Name: "s" + string(rune('a'+i)), Period: tick(), WCRT: tick(),
			MaxPeriod: tick(), Core: rng.Intn(9) - 1,
		})
	}
	for _, sch := range []hydrac.Scheme{hydrac.SchemeHydra, hydrac.SchemeGlobalTMax} {
		if rng.Intn(2) == 0 {
			continue
		}
		v := hydrac.BaselineVerdict{Scheme: sch, Schedulable: rng.Intn(2) == 0}
		for i := 0; i < rng.Intn(3); i++ {
			v.Tasks = append(v.Tasks, hydrac.SecurityVerdict{Name: "b", Period: tick(), WCRT: tick(), MaxPeriod: tick(), Core: -1})
		}
		if sch == hydrac.SchemeGlobalTMax {
			v.RT = append(v.RT, hydrac.RTVerdict{Name: "rt", WCRT: tick(), Deadline: tick()})
		} else {
			v.Placement = append(v.Placement, hydrac.RTAssignment{Name: "rt", Core: rng.Intn(4)})
		}
		rep.Baselines = append(rep.Baselines, v)
	}
	if rng.Intn(2) == 0 {
		rep.Simulation = &hydrac.SimSummary{
			Policy: "semi-partitioned", Horizon: tick(),
			ContextSwitches: rng.Intn(1000), Migrations: rng.Intn(100),
			Utilization: rng.Float64(),
		}
	}
	if rng.Intn(2) == 0 {
		rep.Timing = &hydrac.Timing{SelectionNS: rng.Int63(), TotalNS: rng.Int63()}
		rep.FromCache = rng.Intn(2) == 0
	}
	return rep
}

// TestReportCodecRoundTripProperty: Write→Read is lossless and
// Write∘Read∘Write is byte-stable for many random reports.
func TestReportCodecRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rep := randomReport(rng)
		var buf bytes.Buffer
		if err := hydrac.WriteReport(&buf, rep); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		first := buf.String()
		got, err := hydrac.ReadReport(strings.NewReader(first))
		if err != nil {
			t.Fatalf("seed %d: read: %v\n%s", seed, err, first)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("seed %d: round trip lost data:\nwant %+v\ngot  %+v", seed, rep, got)
		}
		buf.Reset()
		if err := hydrac.WriteReport(&buf, got); err != nil {
			t.Fatal(err)
		}
		if buf.String() != first {
			t.Fatalf("seed %d: re-encode unstable", seed)
		}
	}
}

func TestReportsBatchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reps := []*hydrac.Report{randomReport(rng), randomReport(rng), randomReport(rng)}
	var buf bytes.Buffer
	if err := hydrac.WriteReports(&buf, reps); err != nil {
		t.Fatal(err)
	}
	got, err := hydrac.ReadReports(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reps) {
		t.Fatalf("batch round trip lost data")
	}
	// Empty batches survive too.
	buf.Reset()
	if err := hydrac.WriteReports(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := hydrac.ReadReports(&buf); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestReportCodecRejectsBadInput(t *testing.T) {
	if _, err := hydrac.ReadReport(strings.NewReader(`{"version": 99, "report": {}}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := hydrac.ReadReport(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Fatal("missing report accepted")
	}
	if _, err := hydrac.ReadReport(strings.NewReader(`{"version": 1, "bogus": 1, "report": {}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := hydrac.ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := hydrac.ReadReports(strings.NewReader(`{"version": 1, "report": {}}`)); err == nil {
		t.Fatal("single envelope accepted as a batch")
	}
}

func TestReportCloneIsDeep(t *testing.T) {
	rep := randomReport(rand.New(rand.NewSource(7)))
	rep.Simulation = &hydrac.SimSummary{Horizon: 10}
	rep.Baselines = []hydrac.BaselineVerdict{{Scheme: hydrac.SchemeHydra, Tasks: []hydrac.SecurityVerdict{{Name: "x"}}}}
	cp := rep.Clone()
	cp.Tasks[0].Period = 999999
	cp.Baselines[0].Tasks[0].Name = "mutated"
	cp.Simulation.Horizon = 999999
	if rep.Tasks[0].Period == 999999 || rep.Baselines[0].Tasks[0].Name == "mutated" || rep.Simulation.Horizon == 999999 {
		t.Fatal("Clone shares memory with the original")
	}
}
