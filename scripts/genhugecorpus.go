//go:build ignore

// genhugecorpus regenerates the two large-scale golden corpus inputs:
//
//	testdata/corpus/huge-schedulable.json   (~1k tasks / 64 cores, schedulable)
//	testdata/corpus/huge-overload.json      (~2k tasks / 128 cores, unschedulable)
//
// The draws are pinned by (base seed, group, index), so this program
// reproduces the exact same files on every run; after regenerating,
// refresh the goldens with `go test -run TestCorpusGolden -update-golden .`.
//
//	go run scripts/genhugecorpus.go
package main

import (
	"fmt"
	"os"
	"time"

	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

func bandConfig(cores, rtPer, secPer int) gen.Config {
	return gen.Config{
		Cores:           cores,
		RTTasksMin:      rtPer * cores,
		RTTasksMax:      rtPer * cores,
		SecTasksMin:     secPer * cores,
		SecTasksMax:     secPer * cores,
		RTPeriodMin:     10,
		RTPeriodMax:     1000,
		SecMaxPeriodMin: 1500,
		SecMaxPeriodMax: 3000,
		SecurityShare:   0.30,
		Groups:          10,
		SetsPerGroup:    1,
		Partition:       partition.BestFit,
		MaxAttempts:     40,
		TicksPerMS:      10,
	}
}

const seedBase = 20260807

func main() {
	emit("testdata/corpus/huge-schedulable.json", bandConfig(64, 10, 6), 3, true,
		"~1k tasks on 64 cores at mid utilisation; pins the large-scale schedulable path")
	emit("testdata/corpus/huge-overload.json", bandConfig(128, 10, 6), 8, false,
		"~2k tasks on 128 cores near overload; pins the large-scale unschedulable path")
}

func emit(path string, cfg gen.Config, group int, wantSchedulable bool, note string) {
	for i := 0; i < 50; i++ {
		ts, err := cfg.GenerateAt(seedBase, group, i)
		if err != nil {
			continue
		}
		t0 := time.Now()
		res, err := core.SelectPeriods(ts, core.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: draw (g=%d,i=%d) failed analysis: %v\n", path, group, i, err)
			continue
		}
		dur := time.Since(t0)
		if res.Schedulable != wantSchedulable {
			fmt.Printf("%s: draw (g=%d,i=%d) schedulable=%v (want %v), cold=%v — skipping\n",
				path, group, i, res.Schedulable, wantSchedulable, dur)
			continue
		}
		_ = note // the file format carries no meta through task.Encode; the note lives here
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := task.Encode(f, ts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s: n=%d (rt=%d sec=%d) cores=%d schedulable=%v cold=%v (g=%d,i=%d)\n",
			path, len(ts.RT)+len(ts.Security), len(ts.RT), len(ts.Security), ts.Cores, res.Schedulable, dur, group, i)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: no suitable draw found\n", path)
	os.Exit(1)
}
