package task

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomValidSet draws a structurally valid set: unique names, distinct
// security priorities, deadlines within periods, cores in range.
func randomValidSet(rng *rand.Rand) *Set {
	cores := 1 + rng.Intn(8)
	ts := &Set{Cores: cores}
	for i := 0; i < 1+rng.Intn(6); i++ {
		period := Time(2 + rng.Int63n(10_000))
		wcet := Time(1 + rng.Int63n(int64(period)))
		deadline := wcet + rng.Int63n(int64(period-wcet)+1)
		core := rng.Intn(cores+1) - 1 // -1 = unassigned is legal
		ts.RT = append(ts.RT, RTTask{
			Name: fmt.Sprintf("rt%d", i), WCET: wcet, Period: period,
			Deadline: deadline, Core: core, Priority: rng.Intn(20),
		})
	}
	for i := 0; i < 1+rng.Intn(5); i++ {
		tmax := Time(2 + rng.Int63n(100_000))
		wcet := Time(1 + rng.Int63n(int64(tmax)))
		var period Time
		if rng.Intn(2) == 0 { // half the sets carry assigned periods
			period = wcet + rng.Int63n(int64(tmax-wcet)+1)
		}
		ts.Security = append(ts.Security, SecurityTask{
			Name: fmt.Sprintf("sec%d", i), WCET: wcet, MaxPeriod: tmax,
			Period: period, Priority: i, Core: rng.Intn(cores+1) - 1,
		})
	}
	return ts
}

// TestJSONRoundTripProperty checks the codec is lossless: for many
// random valid sets, Encode→Decode reproduces the set exactly, and a
// second Encode reproduces the bytes exactly (a canonical form).
func TestJSONRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ts := randomValidSet(rng)
		if err := ts.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced an invalid set: %v", seed, err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ts); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		first := buf.String()
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, first)
		}
		if !reflect.DeepEqual(got, ts) {
			t.Fatalf("seed %d: round trip lost data:\nwant %+v\ngot  %+v", seed, ts, got)
		}
		buf.Reset()
		if err := Encode(&buf, got); err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if buf.String() != first {
			t.Fatalf("seed %d: encoding is not canonical:\n%s\nvs\n%s", seed, first, buf.String())
		}
		if got.Hash() != ts.Hash() {
			t.Fatalf("seed %d: hash changed across the round trip", seed)
		}
	}
}

// TestDecodeDefaultsOmittedCores: a wire client that sends no "core"
// gets unassigned tasks (-1, so the Analyzer partitions them), never
// an accidental pile-up on core 0.
func TestDecodeDefaultsOmittedCores(t *testing.T) {
	ts, err := Decode(bytes.NewReader([]byte(`{
		"cores": 2,
		"rt_tasks": [
			{"name": "a", "wcet": 1, "period": 10},
			{"name": "b", "wcet": 1, "period": 20, "core": 1}
		],
		"security_tasks": [{"name": "s", "wcet": 1, "max_period": 100}]
	}`)))
	if err != nil {
		t.Fatal(err)
	}
	if ts.RT[0].Core != -1 {
		t.Fatalf("omitted core decoded as %d, want -1", ts.RT[0].Core)
	}
	if ts.RT[1].Core != 1 {
		t.Fatalf("explicit core decoded as %d, want 1", ts.RT[1].Core)
	}
	if ts.Security[0].Core != -1 {
		t.Fatalf("omitted security core decoded as %d, want -1", ts.Security[0].Core)
	}
}

// TestJSONRoundTripBoundaryTicks exercises the extremes of the tick
// domain: 1-tick tasks and periods at the Infinity sentinel. JSON
// numbers must survive as exact int64s, never as float64s.
func TestJSONRoundTripBoundaryTicks(t *testing.T) {
	ts := &Set{
		Cores: 1,
		RT: []RTTask{
			{Name: "tiny", WCET: 1, Period: 1, Deadline: 1, Core: 0, Priority: 0},
			{Name: "huge", WCET: 1, Period: Infinity, Deadline: Infinity, Core: 0, Priority: 1},
		},
		Security: []SecurityTask{
			{Name: "slow", WCET: Infinity - 1, MaxPeriod: Infinity, Period: Infinity, Priority: 0, Core: -1},
			{Name: "fast", WCET: 1, MaxPeriod: 1, Period: 1, Priority: 1, Core: 0},
		},
	}
	if err := ts.Validate(); err != nil {
		t.Fatalf("boundary set invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Fatalf("boundary ticks corrupted:\nwant %+v\ngot  %+v", ts, got)
	}
	if got.RT[1].Period != Infinity || got.Security[0].WCET != Infinity-1 {
		t.Fatalf("int64 precision lost: %d %d", got.RT[1].Period, got.Security[0].WCET)
	}
}
