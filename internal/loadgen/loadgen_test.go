package loadgen

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/rover"
)

func newTestTarget(t *testing.T) string {
	t.Helper()
	a, err := hydrac.New(hydrac.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer: a, Summary: map[string]any{}, MaxSessions: 16, CacheSize: 64,
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func roverBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The engine must complete a short sweep against the real handler
// with no request errors and sane quantiles.
func TestRunFixedSweep(t *testing.T) {
	target := newTestTarget(t)
	res, err := Run(target, Fixed{Path: "/v1/analyze", Body: roverBody(t)}, Config{
		Levels:   []int{1, 2},
		Duration: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d levels, want 2", len(res))
	}
	for _, l := range res {
		if l.Requests == 0 || l.RPS <= 0 {
			t.Fatalf("level c=%d did no work: %+v", l.Concurrency, l)
		}
		if l.Errors != 0 {
			t.Fatalf("level c=%d saw %d errors", l.Concurrency, l.Errors)
		}
		if l.P50MS <= 0 || l.P99MS < l.P50MS {
			t.Fatalf("level c=%d has nonsense quantiles: %+v", l.Concurrency, l)
		}
	}
}

// A session stream must open its session during setup and then admit
// and remove its probe monitor without a single failed request.
func TestSessionAdmitSource(t *testing.T) {
	target := newTestTarget(t)
	src := SessionAdmit{
		Base:   roverBody(t),
		Admit:  []byte(`{"add_security": [{"name": "lg_probe", "wcet": 1, "max_period": 900000, "priority": 1048576}]}`),
		Remove: []byte(`{"remove": ["lg_probe"]}`),
	}
	res, err := Run(target, src, Config{Levels: []int{2}, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Errors != 0 {
		t.Fatalf("%d admit/remove errors", res[0].Errors)
	}
	if res[0].Requests == 0 {
		t.Fatal("session stream did no work")
	}
}

// countingSource records which paths were hit so the mix schedule is
// observable.
type pathCounter struct{ counts map[string]*atomic.Int64 }

func (p pathCounter) handler() http.Handler {
	mux := http.NewServeMux()
	for path, c := range p.counts {
		c := c
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			c.Add(1)
			fmt.Fprint(w, "{}")
		})
	}
	return mux
}

// Mix must interleave children proportionally to their weights.
func TestMixWeights(t *testing.T) {
	pc := pathCounter{counts: map[string]*atomic.Int64{
		"/a": new(atomic.Int64),
		"/b": new(atomic.Int64),
	}}
	srv := httptest.NewServer(pc.handler())
	defer srv.Close()

	src := Mix{Entries: []MixEntry{
		{Source: Fixed{Path: "/a", Body: []byte("{}")}, Weight: 3},
		{Source: Fixed{Path: "/b", Body: []byte("{}")}, Weight: 1},
	}}
	res, err := Run(srv.URL, src, Config{Levels: []int{1}, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Errors != 0 {
		t.Fatalf("%d errors", res[0].Errors)
	}
	na, nb := pc.counts["/a"].Load(), pc.counts["/b"].Load()
	if na == 0 || nb == 0 {
		t.Fatalf("mix starved a child: a=%d b=%d", na, nb)
	}
	// 3:1 weights; allow slack for the partial final schedule cycle.
	if ratio := float64(na) / float64(nb); ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("mix ratio a:b = %.2f, want ≈3", ratio)
	}
}

// Rotating must cycle distinct bodies rather than re-posting one.
func TestRotatingCycles(t *testing.T) {
	var seen atomic.Int64
	bodies := make(map[string]*atomic.Int64)
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		buf := new(bytes.Buffer)
		buf.ReadFrom(r.Body)
		if c, ok := bodies[buf.String()]; ok {
			c.Add(1)
		}
		seen.Add(1)
		fmt.Fprint(w, "{}")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var pool [][]byte
	for i := 0; i < 4; i++ {
		b := []byte(fmt.Sprintf(`{"i": %d}`, i))
		pool = append(pool, b)
		bodies[string(b)] = new(atomic.Int64)
	}
	res, err := Run(srv.URL, Rotating{Path: "/x", Bodies: pool}, Config{
		Levels: []int{2}, Duration: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Errors != 0 {
		t.Fatalf("%d errors", res[0].Errors)
	}
	for body, c := range bodies {
		if c.Load() == 0 {
			t.Fatalf("body %s never posted", body)
		}
	}
}

// Quantile follows the nearest-rank rule at the edges.
func TestQuantileEdges(t *testing.T) {
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	one := []time.Duration{5}
	if q := Quantile(one, 0.99); q != 5 {
		t.Fatalf("single-sample p99 = %v", q)
	}
	four := []time.Duration{1, 2, 3, 4}
	if q := Quantile(four, 0.5); q != 2 {
		t.Fatalf("p50 of 1..4 = %v, want 2", q)
	}
	if q := Quantile(four, 1.0); q != 4 {
		t.Fatalf("p100 of 1..4 = %v, want 4", q)
	}
}

// RunFleet spreads workers across targets, every target does work,
// and the aggregate folds the per-target splits exactly.
func TestRunFleetSpreadsAcrossTargets(t *testing.T) {
	targets := []string{newTestTarget(t), newTestTarget(t)}
	res, err := RunFleet(targets, Fixed{Path: "/v1/analyze", Body: roverBody(t)}, Config{
		Levels:   []int{4},
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Targets) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	lvl := res[0]
	sum := 0
	for _, tr := range lvl.Targets {
		if tr.Requests == 0 {
			t.Fatalf("target %s did no work: %+v", tr.Target, tr)
		}
		if tr.Errors != 0 {
			t.Fatalf("target %s saw %d errors", tr.Target, tr.Errors)
		}
		sum += tr.Requests
	}
	if lvl.Aggregate.Requests != sum {
		t.Fatalf("aggregate %d requests, per-target sum %d", lvl.Aggregate.Requests, sum)
	}
	if lvl.Aggregate.Concurrency != 4 {
		t.Fatalf("aggregate concurrency %d, want 4", lvl.Aggregate.Concurrency)
	}
}

// A target answering 307 is followed, served by the redirect's owner,
// and the hops land in Redirects — not in Errors.
func TestRunFleetCountsRedirects(t *testing.T) {
	owner := newTestTarget(t)
	var hops atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hops.Add(1)
		w.Header().Set("X-Hydra-Owner", owner)
		w.Header().Set("Location", owner+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	t.Cleanup(front.Close)

	res, err := RunFleet([]string{front.URL}, Fixed{Path: "/v1/analyze", Body: roverBody(t)}, Config{
		Levels:   []int{2},
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lvl := res[0].Aggregate
	if lvl.Errors != 0 {
		t.Fatalf("redirected traffic counted as errors: %+v", lvl)
	}
	if lvl.Requests == 0 || lvl.Redirects == 0 {
		t.Fatalf("no redirected work recorded: %+v", lvl)
	}
	if lvl.Redirects < lvl.Requests {
		t.Fatalf("every request hopped once; redirects %d < requests %d", lvl.Redirects, lvl.Requests)
	}
}

// RunFleet validates its inputs.
func TestRunFleetRejectsEmptyInputs(t *testing.T) {
	if _, err := RunFleet(nil, Fixed{Path: "/x"}, Config{Levels: []int{1}, Duration: time.Millisecond}); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := RunFleet([]string{"http://x.invalid"}, Fixed{Path: "/x"}, Config{Duration: time.Millisecond}); err == nil {
		t.Fatal("no levels accepted")
	}
}
