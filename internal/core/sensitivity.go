package core

import (
	"fmt"

	"hydrac/internal/task"
)

// Sensitivity analysis: how much headroom the platform has before the
// security band stops fitting. These are design-time companions to
// Algorithm 1: when a task set is (un)schedulable, they tell the
// designer which knob to turn, in the spirit of the paper's remark
// that an unschedulability result "will help the designer in
// modifying the requirements".

// WCETSensitivity returns, per security task (in ts.Security order),
// the largest WCET the task could grow to — all other parameters
// unchanged, periods re-optimised — while the whole security band
// remains schedulable within its Tmax bounds. A task in an already
// unschedulable set reports 0.
func WCETSensitivity(ts *task.Set, opt Options) ([]task.Time, error) {
	base, err := SelectPeriods(ts, opt)
	if err != nil {
		return nil, err
	}
	out := make([]task.Time, len(ts.Security))
	if !base.Schedulable {
		return out, nil
	}
	for i := range ts.Security {
		lo, hi := ts.Security[i].WCET, ts.Security[i].MaxPeriod
		best := lo
		for lo <= hi {
			mid := (lo + hi) / 2
			probe := ts.Clone()
			probe.Security[i].WCET = mid
			res, err := SelectPeriods(probe, opt)
			if err != nil {
				return nil, err
			}
			if res.Schedulable {
				best = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		out[i] = best
	}
	return out, nil
}

// ScaleSensitivity returns the largest uniform factor (in 1/256
// granularity) by which every security WCET can be multiplied while
// the set stays schedulable. It returns a factor < 1 when the set is
// unschedulable as given (how much the monitors would need to shrink),
// and 0 when even vanishing monitors do not fit (the RT band itself is
// infeasible for the bounds).
func ScaleSensitivity(ts *task.Set, opt Options) (float64, error) {
	if len(ts.Security) == 0 {
		return 0, fmt.Errorf("core: no security tasks to scale")
	}
	const granularity = 256
	feasible := func(num int64) (bool, error) {
		probe := ts.Clone()
		for i := range probe.Security {
			w := probe.Security[i].WCET * num / granularity
			if w < 1 {
				w = 1
			}
			if w > probe.Security[i].MaxPeriod {
				return false, nil
			}
			probe.Security[i].WCET = w
		}
		res, err := SelectPeriods(probe, opt)
		if err != nil {
			return false, err
		}
		return res.Schedulable, nil
	}
	// Exponential bracket, then binary search on the numerator.
	lo, hi := int64(0), int64(granularity)
	for {
		ok, err := feasible(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 64*granularity {
			return float64(lo) / granularity, nil // effectively unbounded
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return float64(lo) / granularity, nil
}
