package ring

import "testing"

// FuzzOwner hammers the id->owner mapping with arbitrary ids: every
// id (including empty, non-UTF-8 and very long ones) must map to a
// member, deterministically, with a complete duplicate-free failover
// order whose head is the owner.
func FuzzOwner(f *testing.F) {
	f.Add("")
	f.Add("0123456789abcdef0123456789abcdef")
	f.Add("session-alpha")
	f.Add(string([]byte{0xff, 0x00, 0x80}))
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	r, err := New(nodes, 0)
	if err != nil {
		f.Fatal(err)
	}
	member := map[string]bool{}
	for _, n := range nodes {
		member[n] = true
	}
	f.Fuzz(func(t *testing.T, id string) {
		own := r.Owner(id)
		if !member[own] {
			t.Fatalf("Owner(%q) = %q: not a member", id, own)
		}
		if again := r.Owner(id); again != own {
			t.Fatalf("Owner(%q) nondeterministic: %q then %q", id, own, again)
		}
		succ := r.Successors(id)
		if len(succ) != len(nodes) || succ[0] != own {
			t.Fatalf("Successors(%q) = %v, want %d nodes led by %q", id, succ, len(nodes), own)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] || !member[s] {
				t.Fatalf("Successors(%q) = %v: duplicate or non-member", id, succ)
			}
			seen[s] = true
		}
	})
}
