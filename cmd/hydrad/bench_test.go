package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/rover"
)

// benchBody renders the rover set once; every benchmark request posts
// the same bytes, so after the first request the analyzer's report
// cache serves every analysis.
func benchBody(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkHydradAnalyzeCacheHit measures the analyze handler's
// steady-state cost on repeated identical traffic: every iteration is
// a cache hit, so ns/op and allocs/op are the pure service overhead a
// duplicate admission check pays (decode + cache lookup + response
// write). The PR 5 hot path serves hits from pre-encoded envelope
// bytes — the allocs/op delta against the marshal-per-hit reference
// (BenchmarkHydradAnalyzeCacheHitMarshal) is the acceptance metric.
func BenchmarkHydradAnalyzeCacheHit(b *testing.B) {
	a, err := hydrac.New(hydrac.WithCache(8))
	if err != nil {
		b.Fatal(err)
	}
	h := hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a, Summary: map[string]any{"cache": 8}, MaxSessions: 16, CacheSize: 8})
	body := benchBody(b)

	warm := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != 200 {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// benchRW is a reusable ResponseWriter so the tight benchmark below
// measures the handler, not the httptest scaffolding.
type benchRW struct {
	h   http.Header
	buf bytes.Buffer
}

func (w *benchRW) Header() http.Header         { return w.h }
func (w *benchRW) Write(b []byte) (int, error) { return w.buf.Write(b) }
func (w *benchRW) WriteHeader(int)             {}

// BenchmarkHydradAnalyzeCacheHitTight is the same cache-hit workload
// with the request and response objects reused across iterations:
// allocs/op is the handler's own steady-state allocation count, the
// number the PR 5 acceptance criterion (≥5x reduction) is measured
// on.
func BenchmarkHydradAnalyzeCacheHitTight(b *testing.B) {
	a, err := hydrac.New(hydrac.WithCache(8))
	if err != nil {
		b.Fatal(err)
	}
	h := hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a, Summary: map[string]any{"cache": 8}, MaxSessions: 16, CacheSize: 8})
	body := benchBody(b)

	warm := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != 200 {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	br := bytes.NewReader(body)
	rc := io.NopCloser(br)
	req := httptest.NewRequest("POST", "/v1/analyze", nil)
	rw := &benchRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(body)
		req.Body = rc
		rw.buf.Reset()
		h.ServeHTTP(rw, req)
		if rw.buf.Len() == 0 {
			b.Fatal("empty response")
		}
	}
}
