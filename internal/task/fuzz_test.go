package task

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTaskSetRoundTrip drives the decode → validate → encode → decode
// cycle of the task-set file format with mutated inputs. Decode
// rejects (error return) or accepts; every accepted set must validate,
// re-encode, decode again to a deeply equal set, and keep its
// canonical Hash — the cache key of the whole service stack — stable
// across the trip. Seed corpus: testdata/fuzz/FuzzTaskSetRoundTrip.
func FuzzTaskSetRoundTrip(f *testing.F) {
	f.Add([]byte(`{"cores": 2,
		"rt_tasks": [{"name": "rt0", "wcet": 2, "period": 20, "core": 0}],
		"security_tasks": [{"name": "sec0", "wcet": 1, "max_period": 100}]}`))
	f.Add([]byte(`{"cores": 1,
		"rt_tasks": [{"name": "a", "wcet": 1, "period": 4, "deadline": 3, "priority": 0, "core": 0}],
		"security_tasks": [{"name": "s", "wcet": 1, "max_period": 50, "period": 10, "priority": 1, "core": 0}]}`))
	f.Add([]byte(`{"cores": 4, "rt_tasks": [], "security_tasks": []}`))
	f.Add([]byte(`{"cores": 2, "security_tasks": [{"name": "s", "wcet": 1, "max_period": 4611686018427387903}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("Decode accepted a set Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ts); err != nil {
			t.Fatalf("Encode failed on a decoded set: %v", err)
		}
		ts2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Decode failed: %v\nencoded: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(ts, ts2) {
			t.Fatalf("round trip changed the set:\n got %+v\nwant %+v", ts2, ts)
		}
		if ts.Hash() != ts2.Hash() {
			t.Fatalf("round trip changed the canonical hash")
		}
	})
}
