package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/rover"
)

// The in-process smoke mode must complete a short sweep and emit a
// parseable document with nonzero throughput at every level.
func TestRunInProcessSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-c", "1,2", "-d", "150ms"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc output
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc.Levels) != 2 {
		t.Fatalf("%d levels for -c 1,2", len(doc.Levels))
	}
	for _, l := range doc.Levels {
		if l.Requests == 0 || l.RPS <= 0 {
			t.Fatalf("level c=%d did no work: %+v", l.Concurrency, l)
		}
		if l.Errors != 0 {
			t.Fatalf("level c=%d saw %d errors", l.Concurrency, l.Errors)
		}
		if l.P50MS <= 0 || l.P99MS < l.P50MS {
			t.Fatalf("level c=%d has nonsense quantiles: %+v", l.Concurrency, l)
		}
	}
}

// -out writes the same document to a file, and -set loads a caller
// workload.
func TestRunOutFileAndSetFile(t *testing.T) {
	dir := t.TempDir()
	setPath := filepath.Join(dir, "set.json")
	f, err := os.Create(setPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := hydrac.EncodeTaskSet(f, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "bench.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-c", "1", "-d", "100ms", "-set", setPath, "-out", outPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc output
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("out file is not JSON: %v", err)
	}
	if len(doc.Levels) != 1 || doc.Levels[0].RPS <= 0 {
		t.Fatalf("bad levels: %+v", doc.Levels)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-c", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-c 0 exited %d, want 2", code)
	}
	if code := run([]string{"-c", "abc"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-c abc exited %d, want 2", code)
	}
	if code := run([]string{"stray"}, &stdout, &stderr); code != 2 {
		t.Fatalf("stray arg exited %d, want 2", code)
	}
	if code := run([]string{"-set", "/does/not/exist.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing set exited %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "hydrabench") {
		t.Fatal("-h printed no usage")
	}
}

// -targets sweeps a two-node in-process fleet and emits the fleet
// document shape: target list, aggregate, and per-target splits.
func TestRunFleetTargets(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		a, err := hydrac.New(hydrac.WithCache(64))
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a, CacheSize: 64}))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-targets", strings.Join(urls, ","), "-c", "2", "-d", "100ms"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var doc output
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc.Targets) != 2 || len(doc.Levels) != 0 || len(doc.FleetLevels) != 1 {
		t.Fatalf("fleet document shape: %+v", doc)
	}
	lvl := doc.FleetLevels[0]
	if lvl.Aggregate.Requests == 0 || lvl.Aggregate.Errors != 0 {
		t.Fatalf("aggregate did no clean work: %+v", lvl.Aggregate)
	}
	if len(lvl.Targets) != 2 {
		t.Fatalf("%d per-target splits, want 2", len(lvl.Targets))
	}
	for _, tr := range lvl.Targets {
		if tr.Requests == 0 {
			t.Fatalf("target %s did no work", tr.Target)
		}
	}
}

// -targets with only empty entries is a usage error.
func TestRunFleetTargetsEmpty(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-targets", " , "}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, stderr.String())
	}
}
