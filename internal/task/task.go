// Package task defines the real-time and security task model used
// throughout the repository. It mirrors the model of Hasan et al.,
// "Period Adaptation for Continuous Security Monitoring in Multicore
// Real-Time Systems" (DATE 2020), §2: sporadic real-time tasks
// (C, T, D) with constrained deadlines and rate-monotonic priorities,
// partitioned onto identical cores, plus periodic security tasks
// (C, T, Tmax) with implicit deadlines that execute below every
// real-time task and may migrate across cores.
//
// All times are integer clock ticks, matching the paper's assumption
// that "all events in the system happen with the precision of integer
// clock ticks". In the rover experiments one tick is one millisecond.
package task

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a duration or instant measured in integer clock ticks.
type Time = int64

// Infinity is a sentinel response time for tasks that never converge;
// it is larger than any horizon used by the analyses.
const Infinity Time = 1<<62 - 1

// RTTask is a sporadic real-time task τr = (C, T, D) statically
// assigned to one core. Priorities follow rate-monotonic order:
// a numerically smaller Priority value means higher priority.
type RTTask struct {
	// Name identifies the task in traces and reports.
	Name string
	// WCET is the worst-case execution time C.
	WCET Time
	// Period is the minimum inter-arrival time T.
	Period Time
	// Deadline is the relative deadline D, constrained: D <= T.
	Deadline Time
	// Core is the index of the core the task is partitioned onto,
	// or -1 when the task has not been assigned yet.
	Core int
	// Priority is the fixed priority; lower value = higher priority.
	Priority int
}

// Utilization returns C/T.
func (t RTTask) Utilization() float64 {
	return float64(t.WCET) / float64(t.Period)
}

// Validate reports whether the task parameters form a well-defined
// constrained-deadline sporadic task.
func (t RTTask) Validate() error {
	switch {
	case t.WCET <= 0:
		return fmt.Errorf("task %s: WCET must be positive, got %d", t.Name, t.WCET)
	case t.Period <= 0:
		return fmt.Errorf("task %s: period must be positive, got %d", t.Name, t.Period)
	case t.Deadline <= 0:
		return fmt.Errorf("task %s: deadline must be positive, got %d", t.Name, t.Deadline)
	case t.Deadline > t.Period:
		return fmt.Errorf("task %s: deadline %d exceeds period %d (constrained deadlines required)", t.Name, t.Deadline, t.Period)
	case t.WCET > t.Deadline:
		return fmt.Errorf("task %s: WCET %d exceeds deadline %d (trivially unschedulable)", t.Name, t.WCET, t.Deadline)
	}
	return nil
}

// SecurityTask is a periodic security task τs = (C, T, Tmax). The
// period T is the design variable chosen by the framework; Tmax is the
// designer-provided upper bound beyond which monitoring is considered
// ineffective. Deadlines are implicit (D = T). Security tasks always
// run below every RT task; among themselves they have distinct fixed
// priorities (lower value = higher priority).
type SecurityTask struct {
	// Name identifies the task in traces and reports.
	Name string
	// WCET is the worst-case execution time C.
	WCET Time
	// Period is the currently assigned period T; zero means "not yet
	// chosen" (the period-selection algorithms fill it in).
	Period Time
	// MaxPeriod is the designer bound Tmax.
	MaxPeriod Time
	// Priority orders security tasks among themselves;
	// lower value = higher priority.
	Priority int
	// Core is the core a *partitioned* scheme bound the task to
	// (HYDRA / HYDRA-TMax); -1 means migrating (HYDRA-C, GLOBAL).
	Core int
}

// Utilization returns C/T for the currently assigned period.
// It returns +Inf-like large values only if Period is zero; callers
// should assign periods first.
func (s SecurityTask) Utilization() float64 {
	if s.Period == 0 {
		return 0
	}
	return float64(s.WCET) / float64(s.Period)
}

// MinUtilization returns C/Tmax, the utilisation floor the task is
// guaranteed to consume when running at its slowest acceptable rate.
func (s SecurityTask) MinUtilization() float64 {
	return float64(s.WCET) / float64(s.MaxPeriod)
}

// Validate reports whether the security task parameters are well formed.
func (s SecurityTask) Validate() error {
	switch {
	case s.WCET <= 0:
		return fmt.Errorf("security task %s: WCET must be positive, got %d", s.Name, s.WCET)
	case s.MaxPeriod <= 0:
		return fmt.Errorf("security task %s: max period must be positive, got %d", s.Name, s.MaxPeriod)
	case s.WCET > s.MaxPeriod:
		return fmt.Errorf("security task %s: max period %d is below the minimum feasible period (a job needs at least its WCET %d to run; raise Tmax or shrink the monitor)", s.Name, s.MaxPeriod, s.WCET)
	case s.Period < 0:
		return fmt.Errorf("security task %s: period must be non-negative, got %d", s.Name, s.Period)
	case s.Period > 0 && s.Period > s.MaxPeriod:
		return fmt.Errorf("security task %s: period %d exceeds max period %d", s.Name, s.Period, s.MaxPeriod)
	}
	return nil
}

// Set is a complete system: M identical cores, the partitioned RT
// tasks and the security tasks to integrate.
type Set struct {
	// Cores is the number of identical processors M.
	Cores int
	// RT holds the real-time tasks Γ_R.
	RT []RTTask
	// Security holds the security tasks Γ_S.
	Security []SecurityTask
}

// ErrEmpty is returned when a set has no cores or no tasks where some
// are required.
var ErrEmpty = errors.New("task set is empty")

// Validate checks structural well-formedness: positive core count,
// valid tasks, distinct security priorities, unique task names, and
// core assignments within range when present. It is the single
// admission gate — every public entry point of the analysis packages
// calls it, so a set that validates here is accepted everywhere.
func (ts *Set) Validate() error {
	if ts.Cores <= 0 {
		return fmt.Errorf("core count must be positive, got %d (a platform needs at least one core)", ts.Cores)
	}
	// Names key traces, reports and period lookups; a duplicate would
	// silently merge two tasks' statistics. Unnamed tasks are allowed.
	names := make(map[string]bool, len(ts.RT)+len(ts.Security))
	for _, t := range ts.RT {
		if err := t.Validate(); err != nil {
			return err
		}
		if t.Core >= ts.Cores {
			return fmt.Errorf("task %s: core %d out of range [0,%d)", t.Name, t.Core, ts.Cores)
		}
		if t.Name != "" && names[t.Name] {
			return fmt.Errorf("duplicate task name %q (names identify tasks in reports and traces; rename one)", t.Name)
		}
		names[t.Name] = true
	}
	seen := make(map[int]string, len(ts.Security))
	for _, s := range ts.Security {
		if err := s.Validate(); err != nil {
			return err
		}
		if prev, dup := seen[s.Priority]; dup {
			return fmt.Errorf("security tasks %s and %s share priority %d (priorities must be distinct)", prev, s.Name, s.Priority)
		}
		seen[s.Priority] = s.Name
		if s.Core >= ts.Cores {
			return fmt.Errorf("security task %s: core %d out of range [0,%d)", s.Name, s.Core, ts.Cores)
		}
		if s.Name != "" && names[s.Name] {
			return fmt.Errorf("duplicate task name %q (names identify tasks in reports and traces; rename one)", s.Name)
		}
		names[s.Name] = true
	}
	return nil
}

// RTUtilization returns the total utilisation of the RT tasks.
func (ts *Set) RTUtilization() float64 {
	var u float64
	for _, t := range ts.RT {
		u += t.Utilization()
	}
	return u
}

// SecurityMinUtilization returns Σ Cs/Tmax, the paper's minimum
// utilisation requirement for the security band.
func (ts *Set) SecurityMinUtilization() float64 {
	var u float64
	for _, s := range ts.Security {
		u += s.MinUtilization()
	}
	return u
}

// MinUtilization returns the paper's U = Σ Cr/Tr + Σ Cs/Tmax, the
// x-axis quantity of Figs. 6 and 7 before normalising by M.
func (ts *Set) MinUtilization() float64 {
	return ts.RTUtilization() + ts.SecurityMinUtilization()
}

// NormalizedUtilization returns U/M.
func (ts *Set) NormalizedUtilization() float64 {
	return ts.MinUtilization() / float64(ts.Cores)
}

// RTOnCore returns the RT tasks partitioned onto core m, ordered by
// priority (highest first).
func (ts *Set) RTOnCore(m int) []RTTask {
	var out []RTTask
	for _, t := range ts.RT {
		if t.Core == m {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// SecurityByPriority returns the security tasks ordered highest
// priority first. The receiver is not modified.
func (ts *Set) SecurityByPriority() []SecurityTask {
	out := make([]SecurityTask, len(ts.Security))
	copy(out, ts.Security)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// Clone returns a deep copy of the set.
func (ts *Set) Clone() *Set {
	cp := &Set{Cores: ts.Cores}
	cp.RT = append([]RTTask(nil), ts.RT...)
	cp.Security = append([]SecurityTask(nil), ts.Security...)
	return cp
}

// AssignRateMonotonic assigns RM priorities to the RT tasks in place:
// shorter period means higher priority; ties break by name for
// determinism. Priority values start at 0 (highest).
func AssignRateMonotonic(rt []RTTask) {
	idx := make([]int, len(rt))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := rt[idx[a]], rt[idx[b]]
		if i.Period != j.Period {
			return i.Period < j.Period
		}
		return i.Name < j.Name
	})
	for p, i := range idx {
		rt[i].Priority = p
	}
}

// AssignMaxPeriodMonotonic assigns distinct priorities to security
// tasks by ascending Tmax (the analogue of RM for the security band);
// ties break by name.
func AssignMaxPeriodMonotonic(sec []SecurityTask) {
	idx := make([]int, len(sec))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := sec[idx[a]], sec[idx[b]]
		if i.MaxPeriod != j.MaxPeriod {
			return i.MaxPeriod < j.MaxPeriod
		}
		return i.Name < j.Name
	})
	for p, i := range idx {
		sec[i].Priority = p
	}
}
