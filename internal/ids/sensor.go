package ids

import (
	"fmt"
	"math"
	"math/rand"
)

// Sensor-measurement correlation — the security task the paper's
// introduction proposes "for detecting sensor manipulation" (§1).
// A plant variable is observed by redundant sensors; under benign
// operation their readings agree up to noise, so a spoofed or stuck
// sensor shows up as a residual between one channel and the median of
// the others. A periodic correlation task (integrated by HYDRA-C)
// checks the latest readings; its period bounds how long a falsified
// measurement can steer the controller.

// Plant is a first-order process generating the true signal: an
// exponentially-smoothed random walk, bounded to [Min, Max].
type Plant struct {
	rng        *rand.Rand
	value      float64
	drift      float64
	Min, Max   float64
	Smoothness float64 // 0..1, higher = slower changes
}

// NewPlant creates a plant starting mid-range.
func NewPlant(rng *rand.Rand, min, max float64) *Plant {
	return &Plant{rng: rng, value: (min + max) / 2, Min: min, Max: max, Smoothness: 0.9}
}

// Step advances the true value one tick and returns it.
func (p *Plant) Step() float64 {
	p.drift = p.Smoothness*p.drift + (1-p.Smoothness)*p.rng.NormFloat64()*(p.Max-p.Min)/50
	p.value += p.drift
	if p.value < p.Min {
		p.value, p.drift = p.Min, 0
	}
	if p.value > p.Max {
		p.value, p.drift = p.Max, 0
	}
	return p.value
}

// SensorArray observes the plant through n redundant channels with
// independent Gaussian noise. One channel may be compromised: it then
// reports the attacker's value instead of the plant's.
type SensorArray struct {
	rng         *rand.Rand
	n           int
	noise       float64
	compromised int // channel index, -1 = none
	spoof       func(truth float64) float64
}

// NewSensorArray builds n channels with the given noise std.
func NewSensorArray(rng *rand.Rand, n int, noise float64) *SensorArray {
	if n < 3 {
		panic(fmt.Sprintf("ids: sensor correlation needs >= 3 channels, got %d", n))
	}
	return &SensorArray{rng: rng, n: n, noise: noise, compromised: -1}
}

// Compromise takes over one channel with a spoofing function (e.g. a
// constant offset, or a frozen value).
func (a *SensorArray) Compromise(channel int, spoof func(truth float64) float64) {
	if channel < 0 || channel >= a.n {
		panic(fmt.Sprintf("ids: channel %d out of range", channel))
	}
	a.compromised, a.spoof = channel, spoof
}

// Read samples every channel against the true value.
func (a *SensorArray) Read(truth float64) []float64 {
	out := make([]float64, a.n)
	for i := range out {
		if i == a.compromised {
			out[i] = a.spoof(truth)
			continue
		}
		out[i] = truth + a.rng.NormFloat64()*a.noise
	}
	return out
}

// CorrelationChecker flags channels whose residual against the median
// of the others exceeds Threshold (in multiples of the noise std).
type CorrelationChecker struct {
	Noise     float64
	Threshold float64
}

// Check returns the indices of suspect channels.
func (c CorrelationChecker) Check(readings []float64) []int {
	var suspects []int
	for i := range readings {
		others := make([]float64, 0, len(readings)-1)
		for j, v := range readings {
			if j != i {
				others = append(others, v)
			}
		}
		m := median(others)
		if math.Abs(readings[i]-m) > c.Threshold*c.Noise {
			suspects = append(suspects, i)
		}
	}
	return suspects
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
