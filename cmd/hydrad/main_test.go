package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/rover"
)

func testHandler(t *testing.T, opts ...hydrac.AnalyzerOption) http.Handler {
	t.Helper()
	a, err := hydrac.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a, Summary: map[string]any{"cache": 0}, MaxSessions: 16, CacheSize: 8})
}

func roverJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeEndpoint(t *testing.T) {
	srv := httptest.NewServer(testHandler(t, hydrac.WithBaselines(hydrac.SchemeHydra)))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(roverJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rep, err := hydrac.ReadReport(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatal("rover set reported unschedulable")
	}
	if len(rep.Tasks) != len(rover.TaskSet().Security) {
		t.Fatalf("verdict count %d", len(rep.Tasks))
	}
	if len(rep.Baselines) != 1 || rep.Baselines[0].Scheme != hydrac.SchemeHydra {
		t.Fatalf("baselines: %+v", rep.Baselines)
	}
	if rep.Timing == nil || rep.Timing.TotalNS <= 0 {
		t.Fatal("report carries no timing")
	}
}

func TestAnalyzeEndpointCacheAcrossRequests(t *testing.T) {
	srv := httptest.NewServer(testHandler(t, hydrac.WithCache(8)))
	defer srv.Close()

	post := func() *hydrac.Report {
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(roverJSON(t)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		rep, err := hydrac.ReadReport(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if post().FromCache {
		t.Fatal("first request claims a cache hit")
	}
	if !post().FromCache {
		t.Fatal("second request missed the shared cache")
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()

	one := json.RawMessage(roverJSON(t))
	body, err := json.Marshal(map[string]any{"task_sets": []json.RawMessage{one, one, one}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	reps, err := hydrac.ReadReports(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("%d reports for 3 sets", len(reps))
	}
	for i, rep := range reps {
		if !rep.Schedulable {
			t.Fatalf("report %d unschedulable", i)
		}
		if rep.Timing != nil || rep.FromCache {
			t.Fatalf("batch report %d carries per-call stamps", i)
		}
	}
	// Identical inputs must yield identical reports.
	a, _ := json.Marshal(reps[0])
	b, _ := json.Marshal(reps[1])
	if !bytes.Equal(a, b) {
		t.Fatal("identical task sets produced different reports")
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var health struct {
		Status        string `json:"status"`
		ReportVersion int    `json:"report_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.ReportVersion != hydrac.ReportVersion {
		t.Fatalf("health: %+v", health)
	}
}

func TestEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"get analyze", http.MethodGet, "/v1/analyze", "", http.StatusMethodNotAllowed},
		{"put batch", http.MethodPut, "/v1/analyze/batch", "{}", http.StatusMethodNotAllowed},
		{"post healthz", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{"garbage", http.MethodPost, "/v1/analyze", "not json", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/analyze", `{"cores": 1, "bogus": true}`, http.StatusBadRequest},
		{"invalid set", http.MethodPost, "/v1/analyze", `{"cores": 0}`, http.StatusBadRequest},
		{"empty batch", http.MethodPost, "/v1/analyze/batch", `{"task_sets": []}`, http.StatusBadRequest},
		{"bad batch member", http.MethodPost, "/v1/analyze/batch", `{"task_sets": [{"cores": 0}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body malformed: %v", err)
			}
		})
	}
}

func TestUnschedulableIsSemanticError(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()

	// An RT band nothing can host: partitioning fails, so the
	// pipeline itself errors — 422, not 500.
	body := `{"cores": 1, "rt_tasks": [
		{"name": "a", "wcet": 90, "period": 100, "core": -1},
		{"name": "b", "wcet": 90, "period": 100, "core": -1}],
		"security_tasks": [{"name": "s", "wcet": 1, "max_period": 1000}]}`
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}

	// A set that partitions but admits no periods is NOT an error:
	// 200 with schedulable=false.
	tight := `{"cores": 1, "rt_tasks": [
		{"name": "a", "wcet": 70, "period": 100, "core": 0}],
		"security_tasks": [{"name": "s", "wcet": 500, "max_period": 600}]}`
	resp2, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(tight))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("status %d: %s", resp2.StatusCode, b)
	}
	rep, err := hydrac.ReadReport(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Fatal("hopeless set reported schedulable")
	}
}

func TestOversizedBody(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()
	big := fmt.Sprintf(`{"cores": 1, "meta": {"pad": %q}}`, strings.Repeat("x", maxBodyBytes))
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestRunFlagHandling(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	if !strings.Contains(errb.String(), "-addr") {
		t.Fatalf("usage not printed:\n%s", errb.String())
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"-heuristic", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad heuristic exited %d, want 2", code)
	}
	if code := run([]string{"-baselines", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad baseline exited %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errb); code != 2 {
		t.Fatalf("stray argument exited %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errb); code != 1 {
		t.Fatalf("unbindable address exited %d, want 1", code)
	}
}

// postJSON posts body and decodes the status + raw bytes.
func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestSessionEndpoints(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()

	// Open a session on the rover set.
	code, body := postJSON(t, srv.URL+"/v1/session", roverJSON(t))
	if code != http.StatusOK {
		t.Fatalf("create: status %d: %s", code, body)
	}
	var created struct {
		Version   int            `json:"version"`
		SessionID string         `json:"session_id"`
		Report    *hydrac.Report `json:"report"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.SessionID == "" || created.Report == nil || !created.Report.Schedulable {
		t.Fatalf("create response: %s", body)
	}

	// Admit one monitor; the report must match a cold /v1/analyze of
	// the session's current set, byte for byte (volatile fields aside).
	delta := []byte(`{"add_security": [{"name": "extra_mon", "wcet": 2, "max_period": 9000, "priority": 99}]}`)
	code, body = postJSON(t, srv.URL+"/v1/session/"+created.SessionID+"/admit", delta)
	if code != http.StatusOK {
		t.Fatalf("admit: status %d: %s", code, body)
	}
	admitRep, err := hydrac.ReadReport(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !admitRep.Schedulable {
		t.Fatalf("extra monitor denied: %s", body)
	}

	// Fetch the materialized set and cross-check against /v1/analyze.
	resp, err := http.Get(srv.URL + "/v1/session/" + created.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	setBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %d: %s", resp.StatusCode, setBytes)
	}
	code, coldBytes := postJSON(t, srv.URL+"/v1/analyze", setBytes)
	if code != http.StatusOK {
		t.Fatalf("cold analyze of session set: %d", code)
	}
	coldRep, err := hydrac.ReadReport(bytes.NewReader(coldBytes))
	if err != nil {
		t.Fatal(err)
	}
	coldRep.Timing, coldRep.FromCache = nil, false
	var a, b bytes.Buffer
	hydrac.WriteReport(&a, admitRep)
	hydrac.WriteReport(&b, coldRep)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("session admit differs from cold analyze:\nsession: %s\ncold:    %s", a.Bytes(), b.Bytes())
	}

	// Unknown name in a delta: 422, state unchanged.
	code, body = postJSON(t, srv.URL+"/v1/session/"+created.SessionID+"/admit", []byte(`{"remove": ["ghost"]}`))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("removing a ghost: status %d: %s", code, body)
	}

	// Malformed delta: 400.
	code, _ = postJSON(t, srv.URL+"/v1/session/"+created.SessionID+"/admit", []byte(`{"add_rt": [{`))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed delta: status %d", code)
	}

	// Unknown session: 404.
	code, _ = postJSON(t, srv.URL+"/v1/session/deadbeef/admit", delta)
	if code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}

	// Wrong method on the session resource: 405.
	resp, err = http.Post(srv.URL+"/v1/session/"+created.SessionID, "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on session resource: status %d", resp.StatusCode)
	}
}

func TestSessionDenialKeepsStateOverHTTP(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()
	code, body := postJSON(t, srv.URL+"/v1/session", roverJSON(t))
	if code != http.StatusOK {
		t.Fatalf("create: %d", code)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	json.Unmarshal(body, &created)

	// A monitor that saturates the platform: 200 with a denial report.
	code, body = postJSON(t, srv.URL+"/v1/session/"+created.SessionID+"/admit",
		[]byte(`{"add_security": [{"name": "hog", "wcet": 4000, "max_period": 4100, "priority": 99}]}`))
	if code != http.StatusOK {
		t.Fatalf("denial should be 200 + schedulable:false, got %d: %s", code, body)
	}
	rep, err := hydrac.ReadReport(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Fatal("hog admitted")
	}
	// The state must not contain the hog.
	resp, _ := http.Get(srv.URL + "/v1/session/" + created.SessionID)
	setBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(setBytes, []byte("hog")) {
		t.Fatal("denied delta leaked into the session state")
	}
}

// The golden conformance corpus, third surface: POST each corpus set
// to /v1/analyze and compare against the same goldens the library and
// CLI tests assert.
func TestCorpusGoldenHTTP(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range paths {
		if strings.HasSuffix(p, ".golden.json") {
			continue
		}
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			in, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			code, body := postJSON(t, srv.URL+"/v1/analyze", in)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			rep, err := hydrac.ReadReport(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			rep.Timing, rep.FromCache = nil, false
			var got bytes.Buffer
			hydrac.WriteReport(&got, rep)
			want, err := os.ReadFile(strings.TrimSuffix(p, ".json") + ".golden.json")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("HTTP report drifted from golden:\n got: %s\nwant: %s", got.Bytes(), want)
			}
		})
		checked++
	}
	if checked < 5 {
		t.Fatalf("corpus too thin: %d sets", checked)
	}
}

// -sessions 0 disables the session endpoints: creating must fail
// loudly instead of handing out an id the store will never retain.
func TestSessionsDisabled(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a}))
	defer srv.Close()
	code, body := postJSON(t, srv.URL+"/v1/session", roverJSON(t))
	if code != http.StatusNotFound {
		t.Fatalf("create with sessions disabled: status %d: %s", code, body)
	}
	if !bytes.Contains(body, []byte("disabled")) {
		t.Fatalf("error should say sessions are disabled: %s", body)
	}
}

// The commit verdict travels in the X-Hydra-Admitted header so the
// envelope body stays byte-identical to a cold analysis.
func TestAdmitHeaderCarriesVerdict(t *testing.T) {
	srv := httptest.NewServer(testHandler(t))
	defer srv.Close()
	_, body := postJSON(t, srv.URL+"/v1/session", roverJSON(t))
	var created struct {
		SessionID string `json:"session_id"`
	}
	json.Unmarshal(body, &created)
	post := func(delta string) (string, bool) {
		resp, err := http.Post(srv.URL+"/v1/session/"+created.SessionID+"/admit", "application/json", strings.NewReader(delta))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		rep, err := hydrac.ReadReport(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Hydra-Admitted"), rep.Schedulable
	}
	if h, sched := post(`{"add_security": [{"name": "ok_mon", "wcet": 2, "max_period": 9000, "priority": 99}]}`); h != "true" || !sched {
		t.Fatalf("committed admit: header %q sched %v", h, sched)
	}
	if h, sched := post(`{"add_security": [{"name": "hog", "wcet": 4000, "max_period": 4100, "priority": 98}]}`); h != "false" || sched {
		t.Fatalf("denied admit: header %q sched %v", h, sched)
	}
	// Removal from a schedulable state: committed and schedulable.
	if h, _ := post(`{"remove": ["ok_mon"]}`); h != "true" {
		t.Fatalf("removal: header %q", h)
	}
}

func TestPprofListenerRejectsNonLoopback(t *testing.T) {
	for _, addr := range []string{"0.0.0.0:0", "192.168.1.10:6060", "example.com:6060", "bad"} {
		if ln, err := listenPprof(addr); err == nil {
			ln.Close()
			t.Fatalf("listenPprof(%q) accepted a non-loopback address", addr)
		}
	}
}

func TestPprofListenerAndHandler(t *testing.T) {
	ln, err := listenPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: pprofHandler()}
	go srv.Serve(ln)
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof cmdline response")
	}
}

func TestRunRejectsNonLoopbackPprof(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-pprof", "0.0.0.0:0", "-addr", "127.0.0.1:0"}, &out, &errOut); code != 1 {
		t.Fatalf("run with non-loopback -pprof returned %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "loopback") {
		t.Fatalf("error does not explain the loopback restriction: %s", errOut.String())
	}
}

// -peers/-self are validated together, before any listener opens.
func TestFleetFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-peers", "http://a:1,http://b:1"}, &out, &errb); code != 2 {
		t.Fatalf("-peers without -self exited %d, want 2", code)
	}
	if code := run([]string{"-self", "http://a:1"}, &out, &errb); code != 2 {
		t.Fatalf("-self without -peers exited %d, want 2", code)
	}
	if code := run([]string{"-peers", "http://a:1,http://b:1", "-self", "http://c:1"}, &out, &errb); code != 2 {
		t.Fatalf("-self outside -peers exited %d, want 2", code)
	}
	if code := run([]string{"-peers", "http://a:1", "-self", "http://a:1"}, &out, &errb); code != 2 {
		t.Fatalf("fleet of one exited %d, want 2", code)
	}
}

// buildFleet normalizes schemeless addresses the same way the fleet
// package does, so -peers 127.0.0.1:8080,... just works.
func TestBuildFleetNormalizes(t *testing.T) {
	fl, err := buildFleet("127.0.0.1:8080, 127.0.0.1:8081/", "127.0.0.1:8081", -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Self() != "http://127.0.0.1:8081" {
		t.Fatalf("self = %q", fl.Self())
	}
	if len(fl.Peers()) != 2 {
		t.Fatalf("peers = %v", fl.Peers())
	}
	fl2, err := buildFleet("", "", -1, nil)
	if err != nil || fl2 != nil {
		t.Fatalf("empty flags: %v, %v; want nil fleet", fl2, err)
	}
}
