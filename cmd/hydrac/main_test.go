package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func writeRoverFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rover.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := task.Encode(f, rover.TaskSet()); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(r)
	r.Close()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if errRun != nil {
		t.Fatalf("command failed: %v", errRun)
	}
	return string(out)
}

func TestAnalyzeHydraC(t *testing.T) {
	path := writeRoverFile(t)
	out := capture(t, func() error { return analyze([]string{"-in", path}) })
	if !strings.Contains(out, "tripwire") || !strings.Contains(out, "7582") {
		t.Fatalf("unexpected analyze output:\n%s", out)
	}
}

func TestAnalyzeBaselines(t *testing.T) {
	path := writeRoverFile(t)
	out := capture(t, func() error { return analyze([]string{"-in", path, "-scheme", "hydra"}) })
	if !strings.Contains(out, "core") || !strings.Contains(out, "463") {
		t.Fatalf("unexpected hydra output:\n%s", out)
	}
	out = capture(t, func() error { return analyze([]string{"-in", path, "-scheme", "hydra-tmax"}) })
	if !strings.Contains(out, "10000") {
		t.Fatalf("unexpected hydra-tmax output:\n%s", out)
	}
	out = capture(t, func() error { return analyze([]string{"-in", path, "-scheme", "global-tmax"}) })
	if !strings.Contains(out, "schedulable: true") {
		t.Fatalf("unexpected global-tmax output:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if err := analyze([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
	path := writeRoverFile(t)
	if err := analyze([]string{"-in", path, "-scheme", "bogus"}); err == nil {
		t.Error("bogus scheme accepted")
	}
	if err := analyze([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSimulateAndGantt(t *testing.T) {
	path := writeRoverFile(t)
	out := capture(t, func() error {
		return simulate([]string{"-in", path, "-horizon", "20000"})
	})
	if !strings.Contains(out, "context switches") {
		t.Fatalf("simulate output:\n%s", out)
	}
	out = capture(t, func() error {
		return gantt([]string{"-in", path, "-to", "5000"})
	})
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "legend") {
		t.Fatalf("gantt output:\n%s", out)
	}
}

func TestGenerateEmitsValidSet(t *testing.T) {
	out := capture(t, func() error {
		return generate([]string{"-cores", "2", "-group", "2", "-seed", "5"})
	})
	ts, err := task.Decode(strings.NewReader(out))
	if err != nil {
		t.Fatalf("generated set does not round-trip: %v\n%s", err, out)
	}
	if ts.Cores != 2 || len(ts.RT) == 0 || len(ts.Security) == 0 {
		t.Fatalf("generated set malformed: %+v", ts)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]sim.Policy{
		"semi": sim.SemiPartitioned, "partitioned": sim.FullyPartitioned, "global": sim.Global,
	} {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestConfigureRespectsExistingPeriods(t *testing.T) {
	ts := rover.TaskSet()
	for i := range ts.Security {
		ts.Security[i].Period = 9000
	}
	got, err := configure(ts, sim.SemiPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got.Security {
		if s.Period != 9000 {
			t.Fatalf("configure overwrote an explicit period: %+v", s)
		}
	}
}

func TestSensitivitySubcommand(t *testing.T) {
	path := writeRoverFile(t)
	out := capture(t, func() error { return sensitivity([]string{"-in", path}) })
	if !strings.Contains(out, "headroom") || !strings.Contains(out, "uniform scale factor") {
		t.Fatalf("sensitivity output malformed:\n%s", out)
	}
	if err := sensitivity([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestAnalyzeExplain(t *testing.T) {
	path := writeRoverFile(t)
	out := capture(t, func() error { return analyze([]string{"-in", path, "-explain"}) })
	if !strings.Contains(out, "interference") || !strings.Contains(out, "RT band") {
		t.Fatalf("explain output malformed:\n%s", out)
	}
}

func TestGanttSVGFlag(t *testing.T) {
	path := writeRoverFile(t)
	svg := filepath.Join(t.TempDir(), "sched.svg")
	capture(t, func() error {
		return gantt([]string{"-in", path, "-to", "3000", "-svg", svg})
	})
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatalf("SVG file malformed: %.80s", data)
	}
}
