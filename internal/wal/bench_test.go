package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend gates the hot append path: framing reuses the
// log's buffer, so steady-state appends must not allocate. NoSync
// keeps the measurement on the code path rather than the disk (the
// fsync cost is measured end-to-end by the session-admit-durable
// regression case); the allocation count is identical either way.
func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []int{128, 1024} {
		b.Run(fmt.Sprintf("rec%d", size), func(b *testing.B) {
			l, _, err := Open(b.TempDir(), Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := make([]byte, size)
			for i := range rec {
				rec[i] = byte(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
