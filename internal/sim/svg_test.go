package sim

import (
	"bytes"
	"strings"
	"testing"

	"hydrac/internal/task"
)

func TestGanttSVG(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT:    []task.RTTask{{Name: "nav", WCET: 3, Period: 10, Deadline: 10, Core: 0}},
		Security: []task.SecurityTask{
			{Name: "mon", WCET: 4, Period: 20, MaxPeriod: 40, Priority: 0, Core: -1},
		},
	}
	res, err := Run(ts, Config{Horizon: 100, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GanttSVG(&buf, res, 0, 100); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "core 0", "core 1", "nav", "mon", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Every task gets a distinct colour in the legend.
	if strings.Count(svg, "#4e79a7") < 1 {
		t.Error("palette not applied")
	}
}

func TestGanttSVGWindowValidation(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
	}
	res, err := Run(ts, Config{Horizon: 50, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GanttSVG(&buf, res, 40, 40); err == nil {
		t.Error("empty window accepted")
	}
	// Window beyond horizon is clamped, not rejected.
	if err := GanttSVG(&buf, res, 0, 500); err != nil {
		t.Errorf("clamped window rejected: %v", err)
	}
}

func TestGanttSVGMarksMisses(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "a", WCET: 6, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 6, Period: 12, Deadline: 12, Core: 0, Priority: 1},
		},
	}
	res, err := Run(ts, Config{Horizon: 100, RecordIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RTDeadlineMisses == 0 {
		t.Skip("expected an overloaded schedule")
	}
	var buf bytes.Buffer
	if err := GanttSVG(&buf, res, 0, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `stroke="red"`) {
		t.Error("missed jobs not outlined in red")
	}
}
