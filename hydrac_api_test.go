// Tests of the public façade: everything a downstream user touches
// must work through the root package alone.
package hydrac_test

import (
	"strings"
	"testing"

	"hydrac"
)

func apiTaskSet() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "control", WCET: 12, Period: 40, Deadline: 40, Core: 0, Priority: 0},
			{Name: "vision", WCET: 25, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "scanner", WCET: 30, MaxPeriod: 500, Priority: 0, Core: -1},
			{Name: "auditor", WCET: 10, MaxPeriod: 800, Priority: 1, Core: -1},
		},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ts := apiTaskSet()
	res, err := hydrac.SelectPeriods(ts, hydrac.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("quickstart set unschedulable")
	}
	for i, s := range ts.Security {
		if res.Periods[i] <= 0 || res.Periods[i] > s.MaxPeriod {
			t.Fatalf("%s: period %d out of range", s.Name, res.Periods[i])
		}
	}
	out, err := hydrac.Simulate(hydrac.Apply(ts, res), hydrac.SimConfig{
		Policy: hydrac.SemiPartitioned, Horizon: 2000, RecordIntervals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.RTDeadlineMisses != 0 || out.SecurityDeadlineMisses != 0 {
		t.Fatalf("deadline misses: %d RT, %d security", out.RTDeadlineMisses, out.SecurityDeadlineMisses)
	}
	if g := hydrac.Gantt(out, 0, 200, 2); !strings.Contains(g, "core 0") {
		t.Fatalf("Gantt output malformed:\n%s", g)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	ts := apiTaskSet()
	for name, run := range map[string]func(*hydrac.TaskSet) (*hydrac.PartitionedResult, error){
		"Hydra":           hydrac.Hydra,
		"HydraAggressive": hydrac.HydraAggressive,
		"HydraTMax":       hydrac.HydraTMax,
	} {
		res, err := run(ts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Schedulable {
			t.Fatalf("%s: unschedulable on the quickstart set", name)
		}
		for i := range ts.Security {
			if res.Cores[i] < 0 || res.Cores[i] >= ts.Cores {
				t.Fatalf("%s: bad core binding %d", name, res.Cores[i])
			}
		}
	}
	gres, err := hydrac.GlobalTMax(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Schedulable {
		t.Fatal("GlobalTMax: unschedulable on the quickstart set")
	}
}

func TestPublicAPIPartition(t *testing.T) {
	ts := apiTaskSet()
	for i := range ts.RT {
		ts.RT[i].Core = -1
	}
	if err := hydrac.Partition(ts, hydrac.BestFit); err != nil {
		t.Fatal(err)
	}
	for _, rt := range ts.RT {
		if rt.Core < 0 {
			t.Fatalf("task %s unassigned", rt.Name)
		}
	}
	// The repartitioned set must still go through period selection.
	res, err := hydrac.SelectPeriods(ts, hydrac.Options{})
	if err != nil || !res.Schedulable {
		t.Fatalf("post-partition selection failed: %v", err)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	ts := apiTaskSet()
	res, err := hydrac.HydraAggressive(ts)
	if err != nil || !res.Schedulable {
		t.Fatal("baseline failed")
	}
	cfgd := ts.Clone()
	for i := range cfgd.Security {
		cfgd.Security[i].Period = res.Periods[i]
		cfgd.Security[i].Core = res.Cores[i]
	}
	for _, pol := range []hydrac.Policy{hydrac.SemiPartitioned, hydrac.FullyPartitioned, hydrac.Global} {
		out, err := hydrac.Simulate(cfgd, hydrac.SimConfig{Policy: pol, Horizon: 2000})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if out.RTDeadlineMisses != 0 {
			t.Fatalf("%v: RT misses on a lightly loaded set", pol)
		}
	}
}
