package store_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
	"hydrac/internal/store"
)

// copyTree copies the session directory src into dst — the moral
// equivalent of what the disk holds at a kill -9: every committed
// delta is fsynced before it is acknowledged, so a copy taken between
// operations is exactly a crash image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if de.IsDir() {
			copyTree(t, filepath.Join(src, de.Name()), filepath.Join(dst, de.Name()))
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// mutilateTail finds the session's newest WAL segment in the copied
// image and applies f to its bytes — simulating the torn tails a
// crash mid-append leaves behind.
func mutilateTail(t *testing.T, root string, f func([]byte) []byte) {
	t.Helper()
	var newest string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".wal") && (newest == "" || path > newest) {
			newest = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if newest == "" {
		return // prefix 0 may have an empty log; nothing to tear
	}
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryEquivalence is the crash-injection property test:
// random generated sets, random committed delta sequences, and a
// simulated kill after EVERY committed prefix — plus torn-tail
// variants of each image. Recovery from each image must yield a
// session byte-identical (set, placement cursor, and next-probe
// report) to an uninterrupted session that applied the same prefix.
func TestCrashRecoveryEquivalence(t *testing.T) {
	ctx := context.Background()
	seeds := []int64{3, 5}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a, err := hydrac.New()
			if err != nil {
				t.Fatal(err)
			}
			base, err := gen.TableThree(2).Generate(rand.New(rand.NewSource(seed)), 3)
			if err != nil {
				t.Fatal(err)
			}
			// Small CompactEvery and SegmentBytes so the prefix images
			// straddle compactions and segment rotations, not just the
			// easy single-segment case.
			opts := store.Options{CompactEvery: 3, SegmentBytes: 128}
			root := t.TempDir()
			s, err := store.Open(root, a, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Create(ctx, "crash", base); err != nil {
				t.Fatal(err)
			}

			// Drive a random committed delta sequence, copying the disk
			// image after every commit.
			const steps = 6
			rng := rand.New(rand.NewSource(seed * 7))
			images := t.TempDir()
			var committed []hydrac.Delta
			var admitted []string
			copyTree(t, root, filepath.Join(images, "prefix0")) // pre-delta image
			for len(committed) < steps {
				var d hydrac.Delta
				if len(admitted) > 0 && rng.Intn(3) == 0 {
					last := admitted[len(admitted)-1]
					admitted = admitted[:len(admitted)-1]
					d = hydrac.Delta{Remove: []string{last}}
				} else {
					name := fmt.Sprintf("probe%02d", len(committed))
					d = hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
						Name: name, WCET: 1 + hydrac.Time(rng.Intn(3)),
						MaxPeriod: hydrac.Time(20000 + rng.Intn(10000)),
						Core:      -1, Priority: 100 + len(committed),
					}}}
				}
				sess, release, err := s.Acquire(ctx, "crash")
				if err != nil {
					t.Fatal(err)
				}
				_, ok, err := sess.Admit(ctx, d)
				release()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue // denied: nothing committed, nothing logged
				}
				if len(d.AddSecurity) > 0 {
					admitted = append(admitted, d.AddSecurity[0].Name)
				}
				committed = append(committed, d)
				copyTree(t, root, filepath.Join(images, fmt.Sprintf("prefix%d", len(committed))))
			}

			// Reference states: a fresh in-memory session per prefix.
			refSet := make([][]byte, len(committed)+1)
			refCursor := make([]int, len(committed)+1)
			refProbe := make([][]byte, len(committed)+1)
			probe := hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
				Name: "crashprobe", WCET: 1, MaxPeriod: 30000, Core: -1, Priority: 999,
			}}}
			for k := 0; k <= len(committed); k++ {
				ref, _, err := a.NewSession(ctx, base)
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range committed[:k] {
					if _, ok, err := ref.Admit(ctx, d); err != nil || !ok {
						t.Fatalf("reference replay %d/%d: ok=%v err=%v", i, k, ok, err)
					}
				}
				refSet[k] = setBytes(t, ref.Set())
				refCursor[k] = ref.PlacementCursor()
				rep, ok, err := ref.Admit(ctx, probe)
				if err != nil || !ok {
					t.Fatalf("reference probe at %d: ok=%v err=%v", k, ok, err)
				}
				refProbe[k] = reportBytes(t, rep)
			}

			// recoverAndMatch opens a crash image and returns the prefix
			// it recovered to, asserting bit-identity against that
			// reference (set + cursor + next-probe report).
			recoverAndMatch := func(t *testing.T, image string, wantExact int) int {
				t.Helper()
				rs, err := store.Open(image, a, opts)
				if err != nil {
					t.Fatalf("recovering %s: %v", image, err)
				}
				defer rs.Close()
				sess, release, err := rs.Acquire(ctx, "crash")
				if err != nil {
					t.Fatal(err)
				}
				defer release()
				gotSet := setBytes(t, sess.Set())
				gotCursor := sess.PlacementCursor()
				rep, ok, err := sess.Admit(ctx, probe)
				if err != nil || !ok {
					t.Fatalf("probe on recovery of %s: ok=%v err=%v", image, ok, err)
				}
				gotProbe := reportBytes(t, rep)
				if wantExact >= 0 {
					// Clean image: every observable must match prefix
					// wantExact bit for bit.
					k := wantExact
					if !bytes.Equal(gotSet, refSet[k]) {
						t.Fatalf("prefix %d: recovered set differs:\ngot:  %s\nwant: %s", k, gotSet, refSet[k])
					}
					if gotCursor != refCursor[k] {
						t.Fatalf("prefix %d: cursor %d, want %d", k, gotCursor, refCursor[k])
					}
					if !bytes.Equal(gotProbe, refProbe[k]) {
						t.Fatalf("prefix %d: probe report differs from uninterrupted session", k)
					}
					return k
				}
				// Torn image: recovery must land on SOME committed
				// prefix, identified by the full observable triple —
				// set bytes alone can coincide across prefixes when a
				// delta added and a later one removed the same task.
				for j := range refSet {
					if bytes.Equal(gotSet, refSet[j]) && gotCursor == refCursor[j] && bytes.Equal(gotProbe, refProbe[j]) {
						return j
					}
				}
				t.Fatalf("recovered state matches no committed prefix:\n%s", gotSet)
				return -1
			}

			for k := 0; k <= len(committed); k++ {
				img := filepath.Join(images, fmt.Sprintf("prefix%d", k))

				// Clean kill between commits: must recover exactly k.
				exact := filepath.Join(t.TempDir(), "exact")
				copyTree(t, img, exact)
				recoverAndMatch(t, exact, k)

				// Crash mid-append: garbage after the last record must
				// be shed, landing exactly on k.
				garbage := filepath.Join(t.TempDir(), "garbage")
				copyTree(t, img, garbage)
				mutilateTail(t, garbage, func(b []byte) []byte {
					return append(b, 0xDE, 0xAD, 0xBE, 0xEF, 0x01)
				})
				recoverAndMatch(t, garbage, k)

				// Crash mid-write: a truncated tail loses whole records
				// off the end of the final segment, never corrupts —
				// recovery lands on SOME shorter committed prefix.
				if k > 0 {
					torn := filepath.Join(t.TempDir(), "torn")
					copyTree(t, img, torn)
					mutilateTail(t, torn, func(b []byte) []byte {
						if len(b) == 0 {
							return b
						}
						return b[:len(b)-1-rng.Intn(len(b))]
					})
					if got := recoverAndMatch(t, torn, -1); got > k {
						t.Fatalf("torn-tail recovery invented state: prefix %d > %d", got, k)
					}
				}
			}
		})
	}
}
