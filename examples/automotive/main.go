// Automotive scenario: the attack class that motivates the paper's
// introduction (frame injection into an in-vehicle CAN network,
// Koscher et al.). A gateway ECU runs three RT control tasks on two
// cores; a CAN intrusion-detection task (frequency-based monitor) and
// a firmware integrity checker are integrated with HYDRA-C. The
// example compares the spoofed-steering detection latency under the
// HYDRA-C period against the designer's Tmax fallback — the concrete
// value of period adaptation.
//
// Run with: go run ./examples/automotive
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hydrac"
	"hydrac/internal/canbus"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	// The gateway ECU: engine/brake fusion, steering control and
	// telemetry, partitioned on two cores.
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "fusion", WCET: 3, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "steering", WCET: 8, Period: 20, Deadline: 20, Core: 1, Priority: 1},
			{Name: "telemetry", WCET: 24, Period: 100, Deadline: 100, Core: 0, Priority: 2},
		},
		Security: []task.SecurityTask{
			{Name: "canids", WCET: 6, MaxPeriod: 1000, Priority: 0, Core: -1},
			{Name: "fwcheck", WCET: 55, MaxPeriod: 5000, Priority: 1, Core: -1},
		},
	}
	analyzer, err := hydrac.New()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.Analyze(context.Background(), ts)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Schedulable {
		log.Fatal("gateway task set unschedulable")
	}
	var idsPeriod task.Time
	for _, v := range rep.Tasks {
		fmt.Printf("%-8s T*=%-5d ms (Tmax %d)\n", v.Name, v.Period, v.MaxPeriod)
		if v.Name == "canids" {
			idsPeriod = v.Period
		}
	}

	const horizon = 30000
	configured, err := rep.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sim.Run(configured, sim.Config{
		Policy: sim.SemiPartitioned, Horizon: horizon, RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if out.RTDeadlineMisses != 0 {
		log.Fatal("control tasks missed deadlines")
	}

	// The bus: standard matrix, spoofed steering frames at 4 ms
	// intervals starting mid-run.
	bus := canbus.NewBus(rng, canbus.StandardMatrix(), 0.05)
	attackAt := int64(11_111)
	frames := canbus.InjectionAttack{
		TargetID: 0x055, Start: attackAt, Interval: 4, Payload: []byte{0xFF, 0x7F},
	}.Apply(bus.Timeline(horizon), horizon)

	// Each completed canids job is one scan instant.
	scanAt := func(jobs []sim.JobRecord) []int64 {
		var out []int64
		for _, j := range jobs {
			if j.Finish >= 0 {
				out = append(out, j.Finish)
			}
		}
		return out
	}
	scans := scanAt(out.JobsOf("canids"))
	det, ok := canbus.DetectInjection(frames, bus.Matrix(), 0.5, scans)
	if !ok {
		log.Fatal("injection evaded the monitor")
	}
	fmt.Printf("\nspoofed steering frames from t=%d ms\n", attackAt)
	fmt.Printf("HYDRA-C period %4d ms: detected at t=%d (latency %d ms, %d scans over %ds)\n",
		idsPeriod, det, det-attackAt, len(scans), horizon/1000)

	// The no-adaptation fallback: the same monitor at Tmax.
	tmaxSet := ts.Clone()
	for i := range tmaxSet.Security {
		tmaxSet.Security[i].Period = tmaxSet.Security[i].MaxPeriod
	}
	outTmax, err := sim.Run(tmaxSet, sim.Config{
		Policy: sim.SemiPartitioned, Horizon: horizon, RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	detTmax, ok := canbus.DetectInjection(frames, bus.Matrix(), 0.5, scanAt(outTmax.JobsOf("canids")))
	if !ok {
		log.Fatal("injection evaded the Tmax monitor")
	}
	fmt.Printf("Tmax    period %4d ms: detected at t=%d (latency %d ms)\n",
		ts.Security[0].MaxPeriod, detTmax, detTmax-attackAt)
	fmt.Printf("\nperiod adaptation shrinks the exposure window %.1fx\n",
		float64(detTmax-attackAt)/float64(det-attackAt))
}
