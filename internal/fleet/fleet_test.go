package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080": "http://127.0.0.1:8080",
		"http://a:1/":    "http://a:1",
		" https://b:2 ":  "https://b:2",
		"http://c:3":     "http://c:3",
		"":               "",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Self: "a:1", Peers: []string{"a:1"}}); err == nil {
		t.Error("single-member fleet accepted")
	}
	if _, err := New(Options{Self: "c:9", Peers: []string{"a:1", "b:2"}}); err == nil {
		t.Error("self outside peers accepted")
	}
	if _, err := New(Options{Peers: []string{"a:1", "b:2"}}); err == nil {
		t.Error("missing self accepted")
	}
	f, err := New(Options{Self: "a:1/", Peers: []string{"http://a:1", "b:2"}, ProbeEvery: -1})
	if err != nil {
		t.Fatalf("normalised self/peer spelling rejected: %v", err)
	}
	if f.Self() != "http://a:1" {
		t.Errorf("Self() = %q", f.Self())
	}
	if got := f.Peers(); len(got) != 2 {
		t.Errorf("Peers() = %v", got)
	}
}

// healthStub is a /healthz endpoint whose behaviour a test flips at
// runtime: serving, failing, or reporting draining.
type healthStub struct {
	srv      *httptest.Server
	fail     atomic.Bool
	draining atomic.Bool
}

func newHealthStub(t *testing.T) *healthStub {
	t.Helper()
	h := &healthStub{}
	h.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h.fail.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		status := "ok"
		if h.draining.Load() {
			status = "draining"
		}
		fmt.Fprintf(w, `{"status":%q}`, status)
	}))
	t.Cleanup(h.srv.Close)
	return h
}

// twoPeerFleet builds self + one stub peer with no background loop;
// tests drive ProbeOnce explicitly.
func twoPeerFleet(t *testing.T, stub *healthStub, downAfter, upAfter int) *Fleet {
	t.Helper()
	f, err := New(Options{
		Self:       "http://self.invalid:1",
		Peers:      []string{"http://self.invalid:1", stub.srv.URL},
		ProbeEvery: -1,
		DownAfter:  downAfter,
		UpAfter:    upAfter,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func peerState(t *testing.T, f *Fleet, addr string) string {
	t.Helper()
	for _, v := range f.View() {
		if v.Addr == addr {
			return v.State
		}
	}
	t.Fatalf("peer %s not in view %v", addr, f.View())
	return ""
}

func TestHysteresis(t *testing.T) {
	stub := newHealthStub(t)
	f := twoPeerFleet(t, stub, 3, 2)
	ctx := context.Background()
	peer := Normalize(stub.srv.URL)

	// Fresh fleet: optimistic Up.
	if s := peerState(t, f, peer); s != StateUp {
		t.Fatalf("initial state %q", s)
	}

	// One failure must NOT take the peer down (hysteresis).
	stub.fail.Store(true)
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateUp {
		t.Fatalf("state after 1 failure = %q, want up", s)
	}
	// A success resets the failure streak...
	stub.fail.Store(false)
	f.ProbeOnce(ctx)
	stub.fail.Store(true)
	f.ProbeOnce(ctx)
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateUp {
		t.Fatalf("state after reset + 2 failures = %q, want up (DownAfter=3)", s)
	}
	// ...and DownAfter consecutive failures finally flip it.
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateDown {
		t.Fatalf("state after 3 consecutive failures = %q, want down", s)
	}

	// Recovery needs UpAfter consecutive successes.
	stub.fail.Store(false)
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateDown {
		t.Fatalf("state after 1 success = %q, want still down (UpAfter=2)", s)
	}
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateUp {
		t.Fatalf("state after 2 successes = %q, want up", s)
	}
}

func TestDrainingDetectedFromPeerHealthz(t *testing.T) {
	stub := newHealthStub(t)
	f := twoPeerFleet(t, stub, 2, 2)
	ctx := context.Background()
	peer := Normalize(stub.srv.URL)

	stub.draining.Store(true)
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateDraining {
		t.Fatalf("state = %q, want draining (no hysteresis on an explicit report)", s)
	}
	// Draining peers still serve their sessions: routable.
	if addr, isSelf := f.Route("some-id"); addr != peer && !isSelf {
		t.Fatalf("Route avoided a draining peer: %q", addr)
	}
	// But they take no new sessions or handoffs.
	if tgt := f.HandoffTarget("some-id"); tgt != "" {
		t.Fatalf("HandoffTarget picked a draining peer %q", tgt)
	}
	if tgt := f.CreateTarget(); tgt != "" {
		t.Fatalf("CreateTarget picked a draining peer %q", tgt)
	}

	stub.draining.Store(false)
	f.ProbeOnce(ctx)
	if s := peerState(t, f, peer); s != StateUp {
		t.Fatalf("state after drain cleared = %q, want up", s)
	}
}

func TestRouteFailsOverToSuccessorWhenOwnerDown(t *testing.T) {
	stub := newHealthStub(t)
	f := twoPeerFleet(t, stub, 1, 1)
	ctx := context.Background()
	peer := Normalize(stub.srv.URL)

	// Find an id the PEER owns, so failover has somewhere to go.
	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("id-%d", i)
		if !f.Owns(id) {
			break
		}
	}
	if addr, isSelf := f.Route(id); isSelf || addr != peer {
		t.Fatalf("healthy owner not routed: %q (isSelf=%v)", addr, isSelf)
	}
	stub.fail.Store(true)
	f.ProbeOnce(ctx)
	if addr, isSelf := f.Route(id); !isSelf {
		t.Fatalf("downed owner's id must fail over to self, got %q", addr)
	}
	// Ownership itself is health-blind: stable across the flap.
	if f.Owns(id) {
		t.Fatal("Owns changed with peer health")
	}
}

func TestSelfDrainingView(t *testing.T) {
	stub := newHealthStub(t)
	f := twoPeerFleet(t, stub, 2, 2)
	if f.Draining() {
		t.Fatal("fresh fleet draining")
	}
	f.StartDrain()
	if !f.Draining() {
		t.Fatal("StartDrain did not stick")
	}
	if s := peerState(t, f, f.Self()); s != StateDraining {
		t.Fatalf("self view = %q, want draining", s)
	}
}

func TestStartStop(t *testing.T) {
	stub := newHealthStub(t)
	f, err := New(Options{
		Self:       "http://self.invalid:1",
		Peers:      []string{"http://self.invalid:1", stub.srv.URL},
		ProbeEvery: 1, // 1ns floor: tick as fast as the scheduler allows
		DownAfter:  1,
		UpAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.Stop()
	f.Stop() // idempotent
}
