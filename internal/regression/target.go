package regression

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hydrac"
	"hydrac/internal/hydradhttp"
)

// Target boots one fresh service instance for one load sample. Every
// sample gets its own instance so cache state, session stores and GC
// history never leak between samples or sides.
type Target interface {
	Start(d DaemonOpts) (url string, stop func() error, err error)
}

// BinaryTarget runs a hydrad binary as a subprocess on an ephemeral
// loopback port — the production configuration, and the only way to
// run a build from a different commit (the merge-base worktree).
type BinaryTarget struct {
	// Bin is the hydrad executable to launch.
	Bin string
}

// startTimeout bounds how long a daemon may take to report its
// listening address.
const startTimeout = 10 * time.Second

func (t BinaryTarget) Start(d DaemonOpts) (string, func() error, error) {
	cmd := exec.Command(t.Bin,
		"-addr", "127.0.0.1:0",
		"-cache", strconv.Itoa(d.Cache),
		"-sessions", strconv.Itoa(d.Sessions),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("starting %s: %w", t.Bin, err)
	}
	// hydrad reports "hydrad: listening on HOST:PORT" once its
	// listener is bound; -addr :0 makes the port ephemeral, so this
	// line is the only way to learn it.
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(addr):
				default:
				}
			}
		}
		errc <- sc.Err()
	}()
	stop := func() error {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
			return nil
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			return fmt.Errorf("%s ignored SIGTERM; killed", t.Bin)
		}
	}
	select {
	case addr := <-addrc:
		return "http://" + addr, stop, nil
	case err := <-errc:
		stop()
		return "", nil, fmt.Errorf("%s exited before listening (stderr closed: %v)", t.Bin, err)
	case <-time.After(startTimeout):
		stop()
		return "", nil, fmt.Errorf("%s did not report a listening address within %s", t.Bin, startTimeout)
	}
}

// HandlerTarget mounts the real hydrad handler (internal/hydradhttp)
// on an httptest server in-process. It exists for the harness's own
// tests and self-test modes: Wrap lets a test inject a synthetic
// regression (e.g. a sleep before the analyze handler) into ONE side
// of a paired run.
type HandlerTarget struct {
	// Wrap, when non-nil, decorates the handler (middleware).
	Wrap func(http.Handler) http.Handler
}

func (t HandlerTarget) Start(d DaemonOpts) (string, func() error, error) {
	a, err := hydrac.New(hydrac.WithCache(d.Cache))
	if err != nil {
		return "", nil, err
	}
	h := hydradhttp.NewHandler(a, map[string]any{"cache": d.Cache}, d.Sessions, d.Cache)
	if t.Wrap != nil {
		h = t.Wrap(h)
	}
	srv := httptest.NewServer(h)
	return srv.URL, func() error { srv.Close(); return nil }, nil
}

// SleepInjector returns a Wrap middleware that delays every request
// by d — the canonical synthetic regression for harness self-tests
// (ISSUE 6's "sleep in the analyze handler").
func SleepInjector(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(d)
			next.ServeHTTP(w, r)
		})
	}
}
