package hydrac_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
)

func sessionBase() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
			{Name: "rt2", WCET: 4, Period: 40, Deadline: 40, Core: 0, Priority: 2},
		},
		Security: []hydrac.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 200, Core: -1, Priority: 0},
			{Name: "sec1", WCET: 3, MaxPeriod: 400, Core: -1, Priority: 1},
		},
	}
}

// canonicalBytes renders a report with the per-call volatile fields
// (Timing, FromCache) cleared — the byte-identity currency of the
// differential tests.
func canonicalBytes(t *testing.T, rep *hydrac.Report) []byte {
	t.Helper()
	cp := rep.Clone()
	cp.Timing = nil
	cp.FromCache = false
	var buf bytes.Buffer
	if err := hydrac.WriteReport(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every session report must be byte-identical to a cold Analyze of the
// session's materialized set — including when the Analyzer carries
// baselines, which session reports must run too.
func TestSessionReportsByteIdenticalToColdAnalyze(t *testing.T) {
	ctx := context.Background()
	a, err := hydrac.New(hydrac.WithBaselines(hydrac.SchemeHydraTMax, hydrac.SchemeGlobalTMax))
	if err != nil {
		t.Fatal(err)
	}
	sess, rep, err := a.NewSession(ctx, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string, rep *hydrac.Report) {
		t.Helper()
		cold, err := a.Analyze(ctx, sess.Set())
		if err != nil {
			t.Fatalf("%s: cold analysis failed: %v", step, err)
		}
		if !bytes.Equal(canonicalBytes(t, rep), canonicalBytes(t, cold)) {
			t.Fatalf("%s: session report differs from cold Analyze:\nsession: %s\ncold:    %s",
				step, canonicalBytes(t, rep), canonicalBytes(t, cold))
		}
		if rep.Timing != nil || rep.FromCache {
			t.Fatalf("%s: session report carries volatile fields", step)
		}
	}
	check("create", rep)

	rep, admitted, err := sess.Admit(ctx, hydrac.Delta{
		AddSecurity: []hydrac.SecurityTask{{Name: "sec2", WCET: 1, MaxPeriod: 300, Core: -1, Priority: 2}},
	})
	if err != nil || !admitted {
		t.Fatalf("admit security: admitted=%v err=%v", admitted, err)
	}
	check("admit security", rep)

	rep, admitted, err = sess.Admit(ctx, hydrac.Delta{
		AddRT: []hydrac.RTTask{{Name: "rt3", WCET: 2, Period: 25, Deadline: 25, Core: -1, Priority: 3}},
	})
	if err != nil || !admitted {
		t.Fatalf("admit rt: admitted=%v err=%v", admitted, err)
	}
	check("admit rt", rep)

	rep, admitted, err = sess.Update(ctx, hydrac.Delta{
		AddSecurity: []hydrac.SecurityTask{{Name: "sec2", WCET: 2, MaxPeriod: 280, Core: -1, Priority: 2}},
	})
	if err != nil || !admitted {
		t.Fatalf("update: admitted=%v err=%v", admitted, err)
	}
	check("update", rep)

	rep, admitted, err = sess.Remove(ctx, "sec0", "rt3")
	if err != nil || !admitted {
		t.Fatalf("remove: admitted=%v err=%v", admitted, err)
	}
	check("remove", rep)
}

// A generated mid-utilisation set: the same differential property on a
// heavier workload, admitting and removing through a longer random
// delta sequence.
func TestSessionDifferentialOnGeneratedSet(t *testing.T) {
	ctx := context.Background()
	ts, err := gen.TableThree(2).Generate(rand.New(rand.NewSource(5)), 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := a.NewSession(ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	names := []string{}
	for step := 0; step < 12; step++ {
		var rep *hydrac.Report
		var committed bool
		if len(names) > 0 && rng.Intn(2) == 0 {
			last := names[len(names)-1]
			names = names[:len(names)-1]
			rep, committed, err = sess.Remove(ctx, last)
		} else {
			name := fmt.Sprintf("probe%02d", step)
			rep, committed, err = sess.Admit(ctx, hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
				Name: name, WCET: 1 + hydrac.Time(rng.Intn(3)),
				MaxPeriod: hydrac.Time(20000 + rng.Intn(10000)), Core: -1, Priority: 100 + step,
			}}})
			if err == nil && committed {
				names = append(names, name)
			}
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !committed {
			continue // denied: rep describes the rejected candidate, not the state
		}
		cold, err := a.Analyze(ctx, sess.Set())
		if err != nil {
			t.Fatal(err)
		}
		if sess.Set().Hash() != cold.TaskSetHash {
			t.Fatal("hash drift")
		}
		if !bytes.Equal(canonicalBytes(t, rep), canonicalBytes(t, cold)) {
			t.Fatalf("step %d: committed session report differs from cold", step)
		}
	}
}

// Satellite: concurrent Admit/Remove against one Analyzer's session
// under -race. The committed log must replay serially to the identical
// final state and report.
func TestSessionConcurrentAdmitRemoveMatchesSerialReplay(t *testing.T) {
	ctx := context.Background()
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := a.NewSession(ctx, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const opsPer = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < opsPer; k++ {
				name := fmt.Sprintf("mon_g%d_k%d", g, k)
				_, _, err := sess.Admit(ctx, hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
					Name: name, WCET: 1, MaxPeriod: 500 + hydrac.Time(10*(g*opsPer+k)),
					Core: -1, Priority: 10 + g*100 + k,
				}}})
				if err != nil {
					errs <- fmt.Errorf("admit %s: %w", name, err)
					return
				}
				if k%2 == 1 { // remove the previous one, keep churn going
					if _, _, err := sess.Remove(ctx, fmt.Sprintf("mon_g%d_k%d", g, k-1)); err != nil {
						errs <- fmt.Errorf("remove: %w", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial replay of the committed log over the same base.
	replay, _, err := a.NewSession(ctx, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	var lastRep *hydrac.Report
	for i, d := range sess.Log() {
		var committed bool
		lastRep, committed, err = replay.Admit(ctx, d)
		if err != nil || !committed {
			t.Fatalf("replaying delta %d: committed=%v err=%v", i, committed, err)
		}
	}
	if sess.Set().Hash() != replay.Set().Hash() {
		t.Fatal("concurrent final state differs from serial replay")
	}
	finalRep, err := a.Analyze(ctx, sess.Set())
	if err != nil {
		t.Fatal(err)
	}
	if lastRep != nil && !bytes.Equal(canonicalBytes(t, lastRep), canonicalBytes(t, finalRep)) {
		t.Fatal("replayed final report differs from cold analysis")
	}
}

// Denied admissions must leave the session state untouched and report
// unschedulable without error.
func TestSessionDenialKeepsState(t *testing.T) {
	ctx := context.Background()
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	sess, _, err := a.NewSession(ctx, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Set().Hash()
	rep, admitted, err := sess.Admit(ctx, hydrac.Delta{
		AddSecurity: []hydrac.SecurityTask{{Name: "hog", WCET: 190, MaxPeriod: 200, Core: -1, Priority: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable || admitted {
		t.Fatal("hog admitted")
	}
	if sess.Set().Hash() != before {
		t.Fatal("denied admission mutated the session")
	}
	if len(sess.Log()) != 0 {
		t.Fatal("denied admission logged")
	}
}

// Update of a task that was never admitted must fail loudly rather
// than silently turning into an Admit.
func TestSessionUpdateRequiresExistingTask(t *testing.T) {
	ctx := context.Background()
	a, _ := hydrac.New()
	sess, _, err := a.NewSession(ctx, sessionBase())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Update(ctx, hydrac.Delta{
		AddSecurity: []hydrac.SecurityTask{{Name: "ghost", WCET: 1, MaxPeriod: 100, Core: -1, Priority: 7}},
	}); err == nil {
		t.Fatal("update of an unknown task succeeded")
	}
}
