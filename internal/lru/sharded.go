package lru

// Sharded is a string-keyed LRU split across independently locked
// shards. A single Cache serialises every Get behind one mutex —
// fine for a report cache hit that saved milliseconds of analysis,
// a real bottleneck for a session store touched on every request of
// many concurrent sessions. Keys are distributed by FNV-1a, so
// uniformly random keys (session ids) spread evenly.
//
// Eviction is per shard, which needs care: with capacity split
// exactly capacity/shards ways, random keys overflow the unluckiest
// shard — and evict a live entry — well before the store as a whole
// reaches capacity. NewSharded therefore clamps the shard count so
// every shard holds at least minShardCap entries (a store too small
// for that gets one shard with exactly the legacy single-cache
// semantics), and gives each shard twice its fair share as slack, so
// an under-capacity store sheds an entry only under an implausible
// (> 2x mean) key skew. The hard retention bound is 2x capacity plus
// shard rounding — for the session store, briefly retaining more is
// strictly better than silently dropping a live session.
//
// The zero value is not usable; call NewSharded. A nil *Sharded (the
// product of capacity <= 0) never retains anything, mirroring Cache.
type Sharded[V any] struct {
	shards []*Cache[string, V]
}

// minShardCap is the smallest per-shard fair share worth splitting
// for: below it, lock contention is a non-problem and exact capacity
// matters more.
const minShardCap = 32

// NewSharded returns a store for about capacity entries split over at
// most the given shard count (values <= 0 choose 1; see the type
// comment for the clamping and slack rules). capacity <= 0 returns
// nil, the never-retains store.
func NewSharded[V any](capacity, shards int) *Sharded[V] {
	if capacity <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 1
	}
	if max := capacity / minShardCap; shards > max {
		shards = max
	}
	if shards <= 1 {
		return &Sharded[V]{shards: []*Cache[string, V]{New[string, V](capacity)}}
	}
	per := 2 * ((capacity + shards - 1) / shards)
	s := &Sharded[V]{shards: make([]*Cache[string, V], shards)}
	for i := range s.shards {
		s.shards[i] = New[string, V](per)
	}
	return s
}

// OnEvict registers fn on every shard (see Cache.OnEvict): it runs
// for capacity evictions, synchronously with that shard's lock held.
// Set it before the store is shared across goroutines.
func (s *Sharded[V]) OnEvict(fn func(string, V)) {
	if s == nil {
		return
	}
	for _, c := range s.shards {
		c.OnEvict(fn)
	}
}

// shard picks the shard for k by FNV-1a.
func (s *Sharded[V]) shard(k string) *Cache[string, V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Get returns the value stored under k and marks it most recently
// used within its shard.
func (s *Sharded[V]) Get(k string) (V, bool) {
	if s == nil {
		var zero V
		return zero, false
	}
	return s.shard(k).Get(k)
}

// Add stores v under k, evicting its shard's least recently used
// entry if the shard is over capacity.
func (s *Sharded[V]) Add(k string, v V) {
	if s == nil {
		return
	}
	s.shard(k).Add(k, v)
}

// AddIfAbsent stores v under k only when the key is not already
// present in its shard, reporting whether it stored (see
// Cache.AddIfAbsent). A nil store never stores.
func (s *Sharded[V]) AddIfAbsent(k string, v V) bool {
	if s == nil {
		return false
	}
	return s.shard(k).AddIfAbsent(k, v)
}

// Len returns the total number of entries across shards.
func (s *Sharded[V]) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}
