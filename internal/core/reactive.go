package core

import (
	"fmt"

	"hydrac/internal/task"
)

// Reactive (dependent) security checks — the extension the paper
// sketches in §6: when a first-stage action a0 observes an anomaly,
// the next job additionally performs a follow-up action a1, so its
// execution demand grows from C(a0) to C(a0)+C(a1). A design that
// enables this must stay schedulable in the escalated mode, otherwise
// the response to an intrusion would itself break the RT guarantees.

// Escalation declares a task's alert-mode demand.
type Escalation struct {
	// Task names the security task (must exist in the set).
	Task string
	// AlertWCET is the escalated demand C(a0)+C(a1); it must be at
	// least the task's normal WCET.
	AlertWCET task.Time
}

// ReactiveResult reports both modes.
type ReactiveResult struct {
	// Schedulable reports whether periods exist that tolerate every
	// declared escalation firing concurrently.
	Schedulable bool
	// Periods are the deployable periods (ts.Security order), sized
	// for the alert mode — Algorithm 1 loses no headroom to incidents.
	Periods []task.Time
	// AlertResp and NormalResp hold the per-task response times under
	// those periods with escalated and normal WCETs respectively.
	AlertResp, NormalResp []task.Time
}

// SelectPeriodsReactive sizes the security periods for the *alert*
// mode: Algorithm 1 runs with every declared escalation in effect
// (C(a0)+C(a1) as the WCET), so the chosen periods remain valid even
// when every reactive check fires at once — the guarantee the paper's
// §6 extension needs. The quiescent-mode response times under the
// same periods are reported alongside (they are never larger).
func SelectPeriodsReactive(ts *task.Set, escalations []Escalation, opt Options) (*ReactiveResult, error) {
	for _, e := range escalations {
		i := indexByName(ts.Security, e.Task)
		if i < 0 {
			return nil, fmt.Errorf("core: escalation for unknown task %q", e.Task)
		}
		if e.AlertWCET < ts.Security[i].WCET {
			return nil, fmt.Errorf("core: alert WCET %d below normal WCET %d for %s",
				e.AlertWCET, ts.Security[i].WCET, e.Task)
		}
		if e.AlertWCET > ts.Security[i].MaxPeriod {
			return nil, fmt.Errorf("core: alert WCET %d exceeds Tmax %d for %s",
				e.AlertWCET, ts.Security[i].MaxPeriod, e.Task)
		}
	}
	alert := ts.Clone()
	for _, e := range escalations {
		i := indexByName(alert.Security, e.Task)
		alert.Security[i].WCET = e.AlertWCET
	}
	alertRes, err := SelectPeriods(alert, opt)
	if err != nil {
		return nil, err
	}
	out := &ReactiveResult{Schedulable: alertRes.Schedulable}
	if !alertRes.Schedulable {
		return out, nil
	}
	out.Periods = alertRes.Periods
	out.AlertResp = alertRes.Resp

	// Quiescent-mode responses under the deployed periods.
	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	periods := make([]task.Time, len(sec))
	for i, s := range sec {
		periods[i] = alertRes.Periods[indexByName(ts.Security, s.Name)]
	}
	resp := sys.ResponseTimes(sec, periods, opt.CarryIn)
	out.NormalResp = make([]task.Time, len(ts.Security))
	for i, s := range sec {
		out.NormalResp[indexByName(ts.Security, s.Name)] = resp[i]
	}
	return out, nil
}
