package hydradhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydraclient"
	"hydrac/internal/store"
)

// handoffVersion guards the /v1/handoff wire format.
const handoffVersion = 1

// maxHandoffBytes bounds a handoff body. A session export carries its
// whole uncompacted delta log, so the ordinary MaxBodyBytes cap would
// strand large sessions on a draining node.
const maxHandoffBytes = 64 << 20

// handoffRequest is the body of POST /v1/handoff: one session's
// complete durable state — the snapshot's placed set and cursor plus
// every committed delta since, in commit order. It is store.Export
// plus identity, shaped for the wire.
//
// Token, when set, names this handoff: the sender draws it once per
// session and replays it on every retry, so the receiver can tell a
// duplicate of an already-committed transfer (acknowledge again) from
// a genuine id conflict (409). Without it a retried POST whose first
// attempt committed but whose 200 was lost would read as failure,
// leaving the session alive on both nodes.
type handoffRequest struct {
	Version   int               `json:"version"`
	SessionID string            `json:"session_id"`
	Token     string            `json:"token,omitempty"`
	NextFit   int               `json:"next_fit"`
	Set       json.RawMessage   `json:"set"`
	Deltas    []json.RawMessage `json:"deltas"`
}

// handoff dispatches /v1/handoff: POST imports a session streamed
// from a draining peer, GET answers that peer's post-failure
// confirmation probe.
func (s *server) handoff(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handoffConfirm(w, r)
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req handoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), fmt.Errorf("decoding handoff request: %w", err))
		return
	}
	if req.Version != handoffVersion {
		writeError(w, http.StatusBadRequest, fmt.Errorf("handoff version %d; this build speaks %d", req.Version, handoffVersion))
		return
	}
	if req.SessionID == "" || len(req.Set) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("handoff request needs session_id and set"))
		return
	}
	if req.Token != "" {
		// A duplicate of a handoff already committed here is
		// acknowledged before any other refusal — including the
		// draining one below: the sender is deciding whether to delete
		// its local copy, and answering a committed transfer with
		// anything but 200 would leave the session alive on both nodes.
		committed := false
		switch {
		case s.store != nil:
			committed = s.store.ImportedWith(req.SessionID, req.Token)
		case s.sessions != nil:
			committed = s.memoryImportedWith(req.SessionID, req.Token)
		}
		if committed {
			s.writeHandoffAck(w, req)
			return
		}
	}
	if s.fleet != nil && s.fleet.Draining() {
		// Two nodes draining at once must not pass sessions back and
		// forth; the sender's HandoffTarget skips draining peers, and
		// this refusal closes the race where it probed us before we
		// flipped.
		writeError(w, http.StatusServiceUnavailable, errors.New("node is draining and cannot accept handoffs"))
		return
	}
	// The import persists first and recovers by the standard replay
	// path, so an acknowledged handoff is exactly as durable — and
	// exactly as bit-identical — as a locally created session that
	// survived a restart.
	switch {
	case s.store != nil:
		exp := store.Export{Set: req.Set, Cursor: req.NextFit, Deltas: make([][]byte, len(req.Deltas))}
		for i, d := range req.Deltas {
			exp.Deltas[i] = d
		}
		// Import acknowledges a token-matching duplicate with nil: the
		// retry of a committed-but-unacked transfer must answer 200.
		if err := s.store.Import(r.Context(), req.SessionID, exp, req.Token); err != nil {
			switch {
			case errors.Is(err, store.ErrExists):
				writeError(w, http.StatusConflict, err)
			case errors.Is(err, store.ErrStorage):
				writeStorageError(w, err)
			default:
				writeError(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
	case s.sessions != nil:
		// Memory mode: replay through a fresh engine, the same
		// admission path recovery uses — a delta that fails to re-admit
		// fails the handoff rather than installing a diverged session.
		set, err := hydrac.DecodeTaskSet(bytes.NewReader(req.Set))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("handoff snapshot set: %w", err))
			return
		}
		if _, ok := s.sessions.Get(req.SessionID); ok {
			writeError(w, http.StatusConflict, fmt.Errorf("session %q already exists", req.SessionID))
			return
		}
		sess, _, err := s.analyzer.NewSessionWith(r.Context(), set, hydrac.SessionConfig{NextFitCursor: req.NextFit})
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("re-analysing handoff snapshot: %w", err))
			return
		}
		for i, raw := range req.Deltas {
			d, err := hydrac.DecodeDelta(bytes.NewReader(raw))
			if err != nil {
				writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("handoff delta %d: %w", i, err))
				return
			}
			if _, admitted, err := sess.Admit(r.Context(), *d); err != nil || !admitted {
				writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("handoff delta %d failed to re-admit (admitted=%v err=%v)", i, admitted, err))
				return
			}
		}
		// The existence probe above is only a fast path; this insert is
		// the authoritative one. Two concurrent imports of the same id
		// can both pass the probe, and a blind Add would let the second
		// silently overwrite the first — AddIfAbsent picks one winner
		// under the shard lock, the loser conflicts like any duplicate.
		if !s.sessions.AddIfAbsent(req.SessionID, sess) {
			writeError(w, http.StatusConflict, fmt.Errorf("session %q already exists", req.SessionID))
			return
		}
		if req.Token != "" {
			s.handoffTokens.Add(req.SessionID, req.Token)
		}
	default:
		writeError(w, http.StatusNotFound, errors.New("sessions are disabled on this daemon (-sessions 0)"))
		return
	}
	s.writeHandoffAck(w, req)
}

// writeHandoffAck answers 200 for a committed (or already-committed)
// handoff.
func (s *server) writeHandoffAck(w http.ResponseWriter, req handoffRequest) {
	s.logf("session %s received via handoff (%d deltas)", req.SessionID, len(req.Deltas))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"session_id": req.SessionID, "deltas": len(req.Deltas)})
}

// memoryImportedWith reports whether a memory-mode handoff carrying
// token committed here and the session is still live. Unlike the
// durable store's ImportedWith this cannot survive a restart (nothing
// in memory mode does) and an evicted session answers false — the
// sender then rightly keeps its copy.
func (s *server) memoryImportedWith(id, token string) bool {
	if token == "" {
		return false
	}
	t, ok := s.handoffTokens.Get(id)
	if !ok || t != token {
		return false
	}
	_, live := s.sessions.Get(id)
	return live
}

// handoffConfirm is GET /v1/handoff?session=<id>&token=<tok>: the
// sender of an ambiguous handoff (timeout, lost response, retries
// exhausted) asking whether its POST committed here. 200 means the
// import with exactly that token is durable on this node — the sender
// must surrender its local copy; 404 means it never committed — the
// sender must keep serving the session. Answered even while draining:
// it is a read, and refusing it would re-open the very ambiguity it
// exists to close.
func (s *server) handoffConfirm(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	token := r.URL.Query().Get("token")
	if id == "" || token == "" {
		writeError(w, http.StatusBadRequest, errors.New("handoff confirm needs session and token query parameters"))
		return
	}
	held := false
	switch {
	case s.store != nil:
		held = s.store.ImportedWith(id, token)
	case s.sessions != nil:
		held = s.memoryImportedWith(id, token)
	}
	if !held {
		writeError(w, http.StatusNotFound, fmt.Errorf("no committed handoff of session %q with that token", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"session_id": id, "held": true})
}

// holdsSession reports whether this node holds id locally (durable
// entry or in-memory session). Possession overrides ring ownership
// when routing: a handed-off session lives where it landed.
func (s *server) holdsSession(id string) bool {
	switch {
	case s.store != nil:
		return s.store.Has(id)
	case s.sessions != nil:
		_, ok := s.sessions.Get(id)
		return ok
	default:
		return false
	}
}

// redirect answers 307 + X-Hydra-Owner pointing at owner (a base
// URL). 307 preserves the method and body on standards-following
// clients; X-Hydra-Owner lets minimal clients re-aim their base URL.
func (s *server) redirect(w http.ResponseWriter, r *http.Request, owner string) {
	w.Header().Set("X-Hydra-Owner", owner)
	w.Header().Set("Location", owner+r.URL.RequestURI())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTemporaryRedirect)
	json.NewEncoder(w).Encode(map[string]string{"error": "resource is served by " + owner, "owner": owner})
}

// redirectToHandoffTarget redirects a session request to the node
// next in line for id, if any; reports whether it answered.
func (s *server) redirectToHandoffTarget(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.fleet == nil {
		return false
	}
	target := s.fleet.HandoffTarget(id)
	if target == "" {
		return false
	}
	s.redirect(w, r, target)
	return true
}

// writeFailoverUnavailable answers 503 for a session this node serves
// only as failover successor (the ring owner is down) but holds no
// copy of; reports whether it answered. The only durable copy is on
// the downed owner, so redirecting to the next healthy peer — which
// cannot hold it either — would just make two healthy nodes 307 each
// other until the client's hop cap. The honest answer is "temporarily
// unavailable, retry once the owner is back", with Retry-After tuned
// to how fast the prober can notice that recovery.
func (s *server) writeFailoverUnavailable(w http.ResponseWriter, id string) bool {
	if s.fleet == nil || s.fleet.Owns(id) {
		return false
	}
	w.Header().Set("Retry-After", retryAfterSeconds(time.Duration(fleet.DefaultUpAfter)*fleet.DefaultProbeEvery))
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("session %q is temporarily unavailable: its owner is down and this failover node holds no copy of it", id))
	return true
}

// newOwnedSessionID mints ids until one lands on this node's ring
// share, so a created session is always local and every node routes
// it here by hash alone. Ownership is the raw ring (health-blind):
// a session must not be minted into a downed peer's share, only to
// bounce home when that peer recovers. Expected draws = fleet size;
// the cap is ~e^-64 unreachable unless the ring is misconfigured.
func (s *server) newOwnedSessionID() (string, error) {
	if s.fleet == nil {
		return newSessionID()
	}
	for i := 0; i < 4096; i++ {
		id, err := newSessionID()
		if err != nil {
			return "", err
		}
		if s.fleet.Owns(id) {
			return id, nil
		}
	}
	return "", errors.New("could not mint a session id owned by this node (consistent-hash ring badly unbalanced?)")
}

// drainHandoffTimeout bounds one session's handoff POST during drain.
const drainHandoffTimeout = 30 * time.Second

// Drain flips this node into draining mode and hands every durable
// session off to its ring-successor peer: for each session, the
// snapshot + committed-delta log is streamed over POST /v1/handoff
// and the local copy is surrendered only on acknowledgement
// (store.Detach), so an acked delta exists on exactly one node at
// every point in time — zero acked-delta loss, no twins.
//
// Ordering guarantees, in drain order:
//
//  1. StartDrain first: new creates redirect away, /healthz reports
//     "draining" (peers stop handing off TO us), while existing
//     sessions keep serving.
//  2. Per session: in-flight operations finish, then the state is
//     frozen, shipped, acknowledged, and only then deleted locally;
//     from that instant requests answer 307 to the new owner.
//  3. Sessions with no eligible peer (all down or draining) stay on
//     local disk — a restart recovers them; nothing is ever shipped
//     without an acknowledgement.
//
// Returns how many sessions moved and how many stayed. Memory-mode
// sessions (no -data-dir) are not handed off: they were never
// durable, and shutting down loses them exactly as it always did.
func (h *Handler) Drain(ctx context.Context) (moved, kept int) {
	s := h.srv
	if s.fleet == nil {
		return 0, 0
	}
	s.fleet.StartDrain()
	if s.store == nil {
		return 0, 0
	}
	// Handoffs ride the retrying client: a receiver mid-GC or briefly
	// shedding under its admission gate must not strand a session
	// locally when a second attempt would land it.
	hc := hydraclient.New(hydraclient.Config{
		Client:     &http.Client{Timeout: drainHandoffTimeout},
		MaxRetries: 4,
	})
	ids := s.store.IDs()
	for i, id := range ids {
		if err := ctx.Err(); err != nil {
			// Every id not yet reached stays local; the ones already
			// processed are counted in moved/kept above this line.
			kept += len(ids) - i
			s.logf("drain: aborted with %d sessions left local: %v", len(ids)-i, err)
			break
		}
		target := s.fleet.HandoffTarget(id)
		if target == "" {
			kept++
			s.logf("drain: no eligible peer for session %s; leaving it on local disk for restart recovery", id)
			continue
		}
		// One token per session handoff, replayed verbatim on every
		// retry: the receiver uses it to acknowledge a duplicate of a
		// committed transfer instead of conflicting, and the confirm
		// probe below uses it to resolve an ambiguous failure.
		token, err := newSessionID()
		if err != nil {
			kept++
			s.logf("drain: session %s stays local: %v", id, err)
			continue
		}
		err = s.store.Detach(ctx, id, func(exp store.Export) error {
			return postHandoff(ctx, hc, target, id, token, exp)
		})
		if err != nil {
			kept++
			s.logf("drain: session %s stays local: %v", id, err)
			continue
		}
		moved++
		s.logf("drain: session %s handed off to %s", id, target)
	}
	return moved, kept
}

// postHandoff ships one export to target's /v1/handoff. nil means the
// receiver durably committed the session — and ONLY that: when the
// POST's outcome is ambiguous (client-side timeout after the receiver
// committed, a lost response, retries exhausted), the receiver is
// asked directly before the failure is believed, because the caller
// deletes or keeps the local copy on this verdict and a wrong
// "failed" leaves the session alive on two nodes.
func postHandoff(ctx context.Context, hc *hydraclient.Client, target, id, token string, exp store.Export) error {
	req := handoffRequest{
		Version:   handoffVersion,
		SessionID: id,
		Token:     token,
		NextFit:   exp.Cursor,
		Set:       exp.Set,
		Deltas:    make([]json.RawMessage, len(exp.Deltas)),
	}
	for i, d := range exp.Deltas {
		req.Deltas[i] = d
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	status, err := hc.Do(ctx, http.MethodPost, target+"/v1/handoff", "application/json", body)
	if err == nil && status == http.StatusOK {
		return nil
	}
	if confirmHandoff(ctx, hc, target, id, token) {
		return nil
	}
	if err != nil {
		return err
	}
	return fmt.Errorf("handoff to %s answered status %d", target, status)
}

// confirmHandoff asks target whether the handoff carrying token
// committed. Only a definite 200 flips an ambiguous failure into a
// success; anything else — including the probe itself failing, where
// the session then stays local and at worst a dormant committed copy
// idles on the receiver — reports false, because keeping state is
// recoverable and losing it is not.
func confirmHandoff(ctx context.Context, hc *hydraclient.Client, target, id, token string) bool {
	u := target + "/v1/handoff?session=" + url.QueryEscape(id) + "&token=" + url.QueryEscape(token)
	status, err := hc.Do(ctx, http.MethodGet, u, "", nil)
	return err == nil && status == http.StatusOK
}
