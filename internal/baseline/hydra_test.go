package baseline

import (
	"math/rand"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/rta"
	"hydrac/internal/task"
)

func roverSet() *task.Set {
	return &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "nav", WCET: 240, Period: 500, Deadline: 500, Core: 0, Priority: 0},
			{Name: "cam", WCET: 1120, Period: 5000, Deadline: 5000, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "kmod", WCET: 223, MaxPeriod: 10000, Priority: 0, Core: -1},
			{Name: "tripwire", WCET: 5342, MaxPeriod: 10000, Priority: 1, Core: -1},
		},
	}
}

func TestHydraRover(t *testing.T) {
	ts := roverSet()
	res, err := Hydra(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("rover set unschedulable under HYDRA")
	}
	for i, s := range ts.Security {
		if res.Periods[i] != res.Resp[i] {
			t.Errorf("%s: HYDRA must pin period to WCRT, got T=%d R=%d", s.Name, res.Periods[i], res.Resp[i])
		}
		if res.Periods[i] > s.MaxPeriod {
			t.Errorf("%s: period %d beyond Tmax", s.Name, res.Periods[i])
		}
		if res.Cores[i] < 0 || res.Cores[i] >= ts.Cores {
			t.Errorf("%s: bad core %d", s.Name, res.Cores[i])
		}
	}
	// Verify the claimed response times against direct uniprocessor
	// RTA on the final per-core demand sets.
	demands := make([][]rta.Demand, ts.Cores)
	for m := 0; m < ts.Cores; m++ {
		for _, rt := range ts.RTOnCore(m) {
			demands[m] = append(demands[m], rta.Demand{WCET: rt.WCET, Period: rt.Period})
		}
	}
	for _, s := range ts.SecurityByPriority() {
		i := secIndex(ts, s.Name)
		m := res.Cores[i]
		r, ok := rta.ResponseTime(s.WCET, demands[m], s.MaxPeriod)
		if !ok || r != res.Resp[i] {
			t.Errorf("%s: reported R=%d, recomputed (%d,%v)", s.Name, res.Resp[i], r, ok)
		}
		demands[m] = append(demands[m], rta.Demand{WCET: s.WCET, Period: res.Periods[i]})
	}
}

func secIndex(ts *task.Set, name string) int {
	for i, s := range ts.Security {
		if s.Name == name {
			return i
		}
	}
	return -1
}

func TestHydraGreedyPicksFastestCore(t *testing.T) {
	// Core 0 is heavily loaded, core 1 lightly: the single security
	// task must land on core 1.
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "heavy", WCET: 70, Period: 100, Deadline: 100, Core: 0, Priority: 0},
			{Name: "light", WCET: 10, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "s", WCET: 20, MaxPeriod: 1000, Priority: 0, Core: -1},
		},
	}
	res, err := Hydra(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || res.Cores[0] != 1 {
		t.Fatalf("expected core 1, got %+v", res)
	}
	// R on core 1: 20 + ceil(x/100)*10 -> x0=20: 30; x=30: 30. R=30.
	if res.Resp[0] != 30 || res.Periods[0] != 30 {
		t.Errorf("R=%d T=%d, want 30/30", res.Resp[0], res.Periods[0])
	}
}

func TestHydraTMaxPinsPeriods(t *testing.T) {
	ts := roverSet()
	res, err := HydraTMax(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("unschedulable")
	}
	for i, s := range ts.Security {
		if res.Periods[i] != s.MaxPeriod {
			t.Errorf("%s: period %d, want Tmax %d", s.Name, res.Periods[i], s.MaxPeriod)
		}
	}
}

func TestHydraUnschedulable(t *testing.T) {
	ts := roverSet()
	// Both security tasks need > 5342 ms of slack within 5.5 s: the
	// greedy cannot place tripwire anywhere.
	for i := range ts.Security {
		ts.Security[i].MaxPeriod = 5400
	}
	res, err := Hydra(ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("expected unschedulable")
	}
}

func TestHydraRejectsUnpartitioned(t *testing.T) {
	ts := roverSet()
	ts.RT[0].Core = -1
	if _, err := Hydra(ts); err == nil {
		t.Fatal("unpartitioned RT band accepted")
	}
}

func TestApplyPartitioned(t *testing.T) {
	ts := roverSet()
	res, err := Hydra(ts)
	if err != nil {
		t.Fatal(err)
	}
	applied := ApplyPartitioned(ts, res)
	for i, s := range applied.Security {
		if s.Period != res.Periods[i] || s.Core != res.Cores[i] {
			t.Errorf("apply mismatch at %d: %+v vs %+v/%d", i, s, res.Periods[i], res.Cores[i])
		}
	}
	if ts.Security[0].Period != 0 {
		t.Error("ApplyPartitioned mutated the input set")
	}
}

func TestGlobalTMaxIdleSystem(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		Security: []task.SecurityTask{
			{Name: "a", WCET: 10, MaxPeriod: 100, Priority: 0, Core: -1},
			{Name: "b", WCET: 20, MaxPeriod: 200, Priority: 1, Core: -1},
		},
	}
	res, err := GlobalTMax(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("idle system unschedulable")
	}
	if res.SecResp[0] != 10 || res.SecResp[1] != 20 {
		t.Errorf("SecResp = %v, want [10 20] (two free cores)", res.SecResp)
	}
}

func TestGlobalTMaxSingleCoreMatchesUniprocessor(t *testing.T) {
	// On M=1 global FP equals uniprocessor FP; compare with rta.
	ts := &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "a", WCET: 1, Period: 4, Deadline: 4, Core: 0, Priority: 0},
			{Name: "b", WCET: 2, Period: 6, Deadline: 6, Core: 0, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "s", WCET: 3, MaxPeriod: 60, Priority: 0, Core: -1},
		},
	}
	res, err := GlobalTMax(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("unschedulable")
	}
	if res.RTResp[0] != 1 || res.RTResp[1] != 3 {
		t.Errorf("RTResp = %v, want [1 3]", res.RTResp)
	}
	want, ok := rta.ResponseTime(3, []rta.Demand{{WCET: 1, Period: 4}, {WCET: 2, Period: 6}}, 60)
	if !ok {
		t.Fatal("uniprocessor oracle diverged")
	}
	if res.SecResp[0] != want {
		t.Errorf("SecResp = %d, want %d", res.SecResp[0], want)
	}
}

func TestGlobalTMaxDetectsOverload(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 9, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 9, Period: 10, Deadline: 10, Core: 1, Priority: 1},
			{Name: "c", WCET: 9, Period: 10, Deadline: 10, Core: 0, Priority: 2},
		},
	}
	res, err := GlobalTMax(ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("2.7 utilisation on 2 cores accepted")
	}
}

// Paper §5.2.3 / §7: for a *given* period vector the pinned-RT
// analysis of HYDRA-C dominates treating every task as migrating
// (GLOBAL over-approximates carry-in from partitioned tasks). Verify
// the weaker, always-true direction on random sets: whenever
// GLOBAL-TMax accepts, HYDRA-C's analysis with Ts = Tmax accepts too.
func TestHydraCTMaxDominatesGlobalTMax(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 30
	tried := 0
	for g := 0; g < 8; g++ {
		for i := 0; i < 4; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			gres, err := GlobalTMax(ts)
			if err != nil {
				t.Fatal(err)
			}
			if !gres.Schedulable {
				continue
			}
			tried++
			cres, err := core.SelectPeriods(ts, core.Options{SkipOptimization: true})
			if err != nil {
				t.Fatal(err)
			}
			if !cres.Schedulable {
				t.Fatalf("group %d: GLOBAL-TMax accepted but HYDRA-C@Tmax rejected", g)
			}
		}
	}
	if tried == 0 {
		t.Skip("no GLOBAL-TMax-schedulable draws; acceptable for high-utilisation seeds")
	}
}
