// Command hydrad serves the HYDRA-C admission-control pipeline over
// HTTP: clients POST task sets (the same JSON schema cmd/hydrac
// reads) and receive versioned analysis reports. One long-lived
// hydrac.Analyzer backs every request, so the report cache is shared
// across clients — repeated admission checks of the same workload are
// served from memory.
//
// Usage:
//
//	hydrad [-addr HOST:PORT] [-cache N] [-heuristic H]
//	       [-baselines hydra,global-tmax,...] [-sim-horizon N] [-sim-seed S]
//	       [-data-dir DIR] [-wal-sync=BOOL] [-compact-every N]
//	       [-max-inflight N] [-max-queue N] [-queue-wait D] [-request-timeout D]
//	       [-read-timeout D] [-write-timeout D] [-idle-timeout D]
//	       [-pprof HOST:PORT]
//	       [-peers a,b,c -self a] [-probe-every D] [-drain-timeout D]
//
// -peers/-self join a static fleet: every node lists the same member
// base URLs and names itself. Session ids map to owners on a
// consistent-hash ring (internal/ring), non-owners answer 307 +
// X-Hydra-Owner, a background prober (interval -probe-every) marks
// unreachable peers down so their sessions fail over to the ring
// successor, and SIGTERM triggers a graceful drain: new sessions are
// redirected away while every durable session is streamed to its
// successor over POST /v1/handoff (bounded by -drain-timeout), so a
// rolling restart loses no acknowledged delta.
//
// -pprof exposes net/http/pprof on a SEPARATE listener restricted to
// loopback addresses (off by default), so production hot spots can be
// profiled in place without ever exposing the profiler alongside the
// service API:
//
//	hydrad -addr :8080 -pprof 127.0.0.1:6060 &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Endpoints (wired in internal/hydradhttp, which cmd/hydrabench and
// the regression harness mount in-process):
//
//	POST /v1/analyze             one task set in, one report envelope out
//	POST /v1/analyze/batch       {"task_sets": [...]} in, a reports envelope out
//	POST /v1/session             open an incremental admission session on a base set
//	GET  /v1/session/{id}        the session's current (placed) task set
//	POST /v1/session/{id}/admit  apply one delta; the report envelope describes the result
//	GET  /healthz                liveness + configuration summary
//
// Errors are JSON ({"error": "..."}): 400 for malformed or invalid
// input, 404 for unknown sessions, 405 for wrong methods, 413 for
// oversized bodies, 422 for sets or deltas the pipeline rejects (an
// RT band that is infeasible under Eq. 1 or that no heuristic can
// place, a delta naming an unknown task), 429 with Retry-After when
// the admission gate (-max-inflight) sheds an over-capacity request,
// and 503 with Retry-After when a request deadline (-request-timeout)
// expires or the storage tier is degraded (reads still work; mutations
// are rejected until the background probe re-arms the session).
// An unschedulable *security*
// band is NOT an error — the report says so; on the admit endpoint a
// "schedulable": false report means the delta was DENIED and the
// session state is unchanged (removal-only deltas always commit).
//
// Sessions live in a fixed-capacity LRU (-sessions). Without
// -data-dir the least recently used session is LOST on eviction, and
// later requests against it answer 410 Gone (a bare 404 means the id
// never existed). With -data-dir every session is durable: creation
// snapshots the base set, every committed delta is appended to a
// per-session write-ahead log (fsynced before the commit is
// acknowledged unless -wal-sync=false), evicted sessions re-hydrate
// transparently from disk, and a restarted daemon recovers every
// session by replay — bit-identical to the pre-restart state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hydrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables")
	cacheSize := fs.Int("cache", 1024, "report cache entries (0 disables)")
	sessions := fs.Int("sessions", 256, "live admission sessions kept (LRU eviction)")
	dataDir := fs.String("data-dir", "", "directory for durable session state (snapshot + WAL per session); empty keeps sessions in memory only")
	walSync := fs.Bool("wal-sync", true, "fsync the WAL on every committed delta (only meaningful with -data-dir)")
	compactEvery := fs.Int("compact-every", 256, "snapshot + rotate a session's WAL every N committed deltas (only meaningful with -data-dir)")
	heuristic := fs.String("heuristic", "best-fit", "partitioning heuristic: best-fit | first-fit | worst-fit | next-fit")
	baselines := fs.String("baselines", "", "comma-separated baseline schemes to attach to every report (hydra, hydra-aggressive, hydra-tmax, global-tmax)")
	simHorizon := fs.Int64("sim-horizon", 0, "when positive, simulate every admitted set for this many ticks")
	simSeed := fs.Int64("sim-seed", 0, "seed for the simulation's jitter/variation randomness")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing requests; 0 disables the admission gate")
	maxQueue := fs.Int("max-queue", 64, "max requests waiting for a slot beyond -max-inflight; excess is shed with 429 (only meaningful with -max-inflight)")
	queueWait := fs.Duration("queue-wait", hydradhttp.DefaultQueueWait, "longest a queued request waits for a slot before a 429 (only meaningful with -max-inflight)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline; expiry answers 503 (0 disables)")
	peers := fs.String("peers", "", "comma-separated base URLs of every fleet member (including this one); empty runs single-node")
	self := fs.String("self", "", "this node's base URL as it appears in -peers (required with -peers)")
	probeEvery := fs.Duration("probe-every", fleet.DefaultProbeEvery, "peer health probe interval (only meaningful with -peers)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time a SIGTERM drain may spend handing sessions to peers (only meaningful with -peers)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: max time to read a full request (0 disables)")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout: max time from end-of-read to end-of-write (0 disables)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: max keep-alive idle time (0 disables)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hydrad: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	a, summary, err := buildAnalyzer(*cacheSize, *heuristic, *baselines, *simHorizon, *simSeed)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 2
	}
	summary["sessions"] = *sessions
	if *maxInflight > 0 {
		summary["max_inflight"] = *maxInflight
	}

	logf := func(format string, args ...any) { fmt.Fprintf(stderr, "hydrad: "+format+"\n", args...) }
	fl, err := buildFleet(*peers, *self, *probeEvery, logf)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 2
	}
	if fl != nil {
		summary["fleet_self"] = fl.Self()
		summary["fleet_size"] = len(fl.Peers())
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, a, store.Options{
			MaxLive:      *sessions,
			NoSync:       !*walSync,
			CompactEvery: *compactEvery,
			Logf:         logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		defer st.Close()
		fmt.Fprintf(stderr, "hydrad: recovered %d durable sessions from %s\n", st.Len(), *dataDir)
		summary["data_dir"] = *dataDir
		summary["wal_sync"] = *walSync
	}

	if *pprofAddr != "" {
		pln, err := listenPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		defer pln.Close()
		// A dedicated server on a dedicated loopback listener: the
		// profiling surface never shares a port (or a handler) with
		// the service API, so exposing the service does not expose
		// the profiler.
		go func() {
			psrv := &http.Server{Handler: pprofHandler(), ReadHeaderTimeout: 10 * time.Second}
			_ = psrv.Serve(pln)
		}()
		fmt.Fprintf(stderr, "hydrad: pprof on http://%s/debug/pprof/\n", pln.Addr())
		summary["pprof"] = pln.Addr().String()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
	handler := hydradhttp.NewHandler(hydradhttp.Config{
		Analyzer:       a,
		Summary:        summary,
		MaxSessions:    *sessions,
		CacheSize:      *cacheSize,
		Store:          st,
		Fleet:          fl,
		Logf:           logf,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *requestTimeout,
	})
	srv := &http.Server{
		Handler: handler,
		// Server-side timeouts bound how long a slow (or hostile)
		// client can hold a connection at every stage of its life:
		// header read, full-request read, response write, keep-alive
		// idle. Without them one slowloris peer pins a goroutine and
		// an fd forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "hydrad: listening on %s\n", ln.Addr())
	if fl != nil {
		fl.Start()
		defer fl.Stop()
		fmt.Fprintf(stderr, "hydrad: fleet member %s of %d peers\n", fl.Self(), len(fl.Peers()))
	}

	select {
	case <-ctx.Done():
		// Restore default signal handling first: a drain that hangs
		// (peer wedged mid-handoff) must stay killable by a second
		// SIGTERM/Ctrl-C rather than require kill -9.
		stop()
		if fl != nil {
			fmt.Fprintln(stderr, "hydrad: draining")
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			moved, kept := handler.Drain(drainCtx)
			cancel()
			fmt.Fprintf(stderr, "hydrad: drained: %d handed off, %d kept\n", moved, kept)
		}
		fmt.Fprintln(stderr, "hydrad: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		// The deferred st.Close() runs after in-flight requests have
		// drained, flushing NoSync WALs before exit.
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
}

// buildFleet translates -peers/-self into a fleet view; both empty
// keeps the exact single-node behaviour.
func buildFleet(peersCSV, self string, probeEvery time.Duration, logf func(string, ...any)) (*fleet.Fleet, error) {
	if peersCSV == "" && self == "" {
		return nil, nil
	}
	if peersCSV == "" || self == "" {
		return nil, errors.New("-peers and -self must be set together")
	}
	var peers []string
	for _, p := range strings.Split(peersCSV, ",") {
		if n := fleet.Normalize(p); n != "" {
			peers = append(peers, n)
		}
	}
	return fleet.New(fleet.Options{
		Self:       self,
		Peers:      peers,
		ProbeEvery: probeEvery,
		Logf:       logf,
	})
}

// maxBodyBytes mirrors the handler's request-size cap for tests.
const maxBodyBytes = hydradhttp.MaxBodyBytes

// buildAnalyzer translates flags into Analyzer options and a summary
// for /healthz.
func buildAnalyzer(cacheSize int, heuristic, baselines string, simHorizon, simSeed int64) (*hydrac.Analyzer, map[string]any, error) {
	var opts []hydrac.AnalyzerOption
	summary := map[string]any{
		"cache":     cacheSize,
		"heuristic": heuristic,
	}
	h, err := hydrac.ParseHeuristic(heuristic)
	if err != nil {
		return nil, nil, err
	}
	opts = append(opts, hydrac.WithHeuristic(h), hydrac.WithCache(cacheSize))
	if baselines != "" {
		var schemes []hydrac.Scheme
		for _, name := range strings.Split(baselines, ",") {
			sch, err := hydrac.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, err
			}
			schemes = append(schemes, sch)
		}
		opts = append(opts, hydrac.WithBaselines(schemes...))
		summary["baselines"] = schemes
	}
	if simHorizon > 0 {
		opts = append(opts, hydrac.WithSimulation(hydrac.SimConfig{
			Policy: hydrac.SemiPartitioned, Horizon: simHorizon, Seed: simSeed,
		}))
		summary["sim_horizon"] = simHorizon
	}
	a, err := hydrac.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	return a, summary, nil
}

// listenPprof opens the profiling listener, refusing any address that
// is not loopback: pprof exposes heap contents and CPU samples, so it
// must never ride on an externally reachable interface by accident.
func listenPprof(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof %q: %w", addr, err)
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return nil, fmt.Errorf("-pprof %q: profiling must stay on a loopback address (127.0.0.1, ::1 or localhost)", addr)
		}
	}
	return net.Listen("tcp", addr)
}

// pprofHandler mounts the net/http/pprof endpoints on a fresh mux (the
// package's side-effect registration targets http.DefaultServeMux,
// which hydrad never serves).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}
