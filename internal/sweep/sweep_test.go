package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"hydrac/internal/seed"
)

// orderPartial collects per-item float observations; order-sensitive
// on purpose (a float sum replayed in a different order diverges), so
// it exposes any merge-order violation.
type orderPartial struct {
	values []float64
}

func itemValue(it Item) float64 {
	rng := rand.New(rand.NewSource(seed.At(77, it.Group, it.Index)))
	return rng.Float64()
}

func runOrdered(t *testing.T, workers, chunkSize int) *orderPartial {
	t.Helper()
	res, err := Run(Config{Groups: 7, PerGroup: 13, Workers: workers, ChunkSize: chunkSize},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error {
			p.values = append(p.values, itemValue(it))
			return nil
		},
		func(dst, src *orderPartial) { dst.values = append(dst.values, src.values...) })
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministicAcrossWorkersAndChunks(t *testing.T) {
	ref := runOrdered(t, 1, 0)
	if len(ref.values) != 7*13 {
		t.Fatalf("item count %d, want %d", len(ref.values), 7*13)
	}
	for _, workers := range []int{0, 2, 3, 4, 16} {
		for _, chunk := range []int{0, 1, 5, 91, 1000} {
			got := runOrdered(t, workers, chunk)
			if !reflect.DeepEqual(ref.values, got.values) {
				t.Errorf("workers=%d chunk=%d: value sequence diverged from serial", workers, chunk)
			}
		}
	}
}

func TestRunVisitsEveryItemOnce(t *testing.T) {
	res, err := Run(Config{Groups: 4, PerGroup: 9, Workers: 3},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error {
			p.values = append(p.values, float64(it.Group*9+it.Index))
			return nil
		},
		func(dst, src *orderPartial) { dst.values = append(dst.values, src.values...) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.values) != 36 {
		t.Fatalf("visited %d items, want 36", len(res.values))
	}
	for flat, v := range res.values {
		if v != float64(flat) {
			t.Fatalf("position %d holds item %g: merge order broken", flat, v)
		}
	}
}

func TestRunEmptyGridAndErrors(t *testing.T) {
	res, err := Run(Config{Groups: 0, PerGroup: 10},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error { return nil },
		func(dst, src *orderPartial) {})
	if err != nil || res == nil {
		t.Fatalf("empty grid: res=%v err=%v", res, err)
	}
	if _, err := Run(Config{Groups: -1, PerGroup: 10},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error { return nil },
		func(dst, src *orderPartial) {}); err == nil {
		t.Error("negative grid accepted")
	}
}

func TestRunPropagatesProcError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Run(Config{Groups: 10, PerGroup: 100, Workers: 4, ChunkSize: 10},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error {
			calls.Add(1)
			if it.Group == 3 && it.Index == 7 {
				return boom
			}
			return nil
		},
		func(dst, src *orderPartial) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The abort must actually stop the pool early.
	if n := calls.Load(); n == 1000 {
		t.Error("error did not stop the sweep")
	}
}

func TestRunProgressMonotoneAndComplete(t *testing.T) {
	var dones []int
	total := 0
	_, err := Run(Config{Groups: 5, PerGroup: 20, Workers: 4, ChunkSize: 7,
		Progress: func(d, tot int) { dones = append(dones, d); total = tot }},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error { return nil },
		func(dst, src *orderPartial) {})
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("reported total %d, want 100", total)
	}
	if len(dones) == 0 || dones[len(dones)-1] != 100 {
		t.Fatalf("progress never reached total: %v", dones)
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatalf("progress not monotone: %v", dones)
		}
	}
}

func TestRunManyWorkersFewItems(t *testing.T) {
	// More workers than items must not panic or double-visit.
	res, err := Run(Config{Groups: 1, PerGroup: 3, Workers: 64},
		func() *orderPartial { return &orderPartial{} },
		func(p *orderPartial, it Item) error {
			p.values = append(p.values, float64(it.Index))
			return nil
		},
		func(dst, src *orderPartial) { dst.values = append(dst.values, src.values...) })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.values) != "[0 1 2]" {
		t.Fatalf("values = %v", res.values)
	}
}
