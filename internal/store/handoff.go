package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hydrac"
	"hydrac/internal/wal"
)

// ErrMoved reports a session this store USED to hold but handed off
// to another node: the local copy was surrendered and deleted, so the
// caller should re-route to the session's new owner rather than treat
// it as missing.
var ErrMoved = errors.New("store: session was handed off to another node")

// Export is one session's complete durable state in transfer form:
// the latest snapshot's placed set (raw task-file JSON) and placement
// cursor, plus every committed delta logged since that snapshot, in
// commit order. Importing it through the standard recovery replay
// reproduces the session bit-identically — the same machinery, and
// the same guarantee, as a crash restart.
type Export struct {
	// Set is the snapshot's task set, in the standard file schema.
	Set json.RawMessage
	// Cursor is the snapshot's next-fit placement cursor.
	Cursor int
	// Deltas are the WAL records (encoded deltas) after the snapshot.
	Deltas [][]byte
}

// Detach hands the session off: it freezes the session (waiting out
// in-flight operations), reads its snapshot + committed-delta log
// from disk, and calls transfer with the export. Only if transfer
// returns nil is the local copy surrendered — marked moved (further
// Acquires return ErrMoved) and deleted from disk, so a restart can
// never resurrect a stale twin of a session another node now owns.
// On transfer failure the session stays fully local and intact: the
// next Acquire re-hydrates it from the untouched disk state.
//
// The entry lock is held across transfer, so a concurrent request for
// this session blocks until the handoff settles and then either gets
// the intact local session (failure) or ErrMoved (success) — never a
// window where the state exists on both nodes or neither.
func (s *Store) Detach(ctx context.Context, id string, transfer func(Export) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	e := s.entries[id]
	_, wasMoved := s.movedIDs[id]
	s.mu.Unlock()
	if e == nil {
		if wasMoved {
			return fmt.Errorf("%w: %s", ErrMoved, id)
		}
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	e.mu.Lock()
	if e.moved {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMoved, id)
	}
	// Close the live state first so the disk holds everything (a
	// NoSync WAL may have unsynced appends; Close flushes them) and
	// export from files, not memory — the bytes shipped are exactly
	// the bytes a restart would recover from.
	if e.wal != nil {
		_ = e.wal.Close()
	}
	e.sess, e.wal = nil, nil
	exp, err := s.exportLocked(e)
	if err != nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: exporting session %s: %v", ErrStorage, id, err)
	}
	if err := transfer(exp); err != nil {
		e.mu.Unlock()
		return fmt.Errorf("store: handing off session %s: %w", id, err)
	}
	e.moved = true
	// The receiver acknowledged: it is authoritative now. Deleting the
	// local directory is part of correctness, not cleanup — two nodes
	// must never both recover this id.
	if err := os.RemoveAll(e.dir); err != nil {
		s.logf("store: removing handed-off session %s: %v", id, err)
	}
	e.mu.Unlock()
	// Lock order: s.mu is never taken under e.mu, so drop the entry
	// lock first. The live LRU may still reference e; its eviction
	// close is a no-op on an already-torn-down entry.
	s.mu.Lock()
	delete(s.entries, id)
	s.movedIDs[id] = struct{}{}
	s.mu.Unlock()
	return nil
}

// exportLocked reads e's durable state from disk. e.mu must be
// write-held with the live WAL handle closed.
func (s *Store) exportLocked(e *entry) (Export, error) {
	gen, raw, cursor, err := readLatestSnapshotRaw(e.dir)
	if err != nil {
		return Export{}, err
	}
	recs, err := wal.ReadAll(e.dir, s.walOptions(gen))
	if err != nil {
		return Export{}, err
	}
	return Export{Set: raw, Cursor: cursor, Deltas: recs}, nil
}

// tokenFile marks a completed import inside a session directory: it
// holds the sender-chosen handoff token and is written only after the
// imported state fully committed (persisted AND replay-verified). Its
// presence is what makes a retried handoff idempotent across a
// receiver restart — the answer to "did handoff <token> commit here?"
// must not depend on this process's memory.
const tokenFile = "handoff.token"

// Import installs a session streamed from another node: persist the
// export as generation 0 (snapshot, then every delta appended to a
// fresh WAL), then recover it through the standard replay path. An
// import is therefore indistinguishable from a restart of a local
// session — same code, same bit-identity guarantee — and the session
// is fully durable before Import returns.
//
// token, when non-empty, is the sender's identity for this handoff
// and makes the import idempotent: a duplicate Import whose token
// matches the one the id was committed with answers nil instead of
// ErrExists. The sender decides surrender-vs-keep its local copy from
// this answer, so a retry after a lost acknowledgement must not be
// told "conflict" — that reading would leave the session alive on
// both nodes. ErrExists is reserved for a genuine id collision.
func (s *Store) Import(ctx context.Context, id string, exp Export, token string) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid session id %q (want 1-128 chars of [a-zA-Z0-9_-])", id)
	}
	e := &entry{id: id, dir: filepath.Join(s.dir, id)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if existing, ok := s.entries[id]; ok {
		s.mu.Unlock()
		// tokenOf takes the entry lock, so a retry racing a
		// still-running first attempt blocks here until that attempt
		// settles and then reads its verdict: token file present ⇒
		// committed ⇒ acknowledge the duplicate.
		if token != "" && s.tokenOf(existing) == token {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	s.entries[id] = e
	// The id may have left this node earlier and is now legitimately
	// coming back (a drain bounced it around the ring): the tombstone
	// is obsolete.
	delete(s.movedIDs, id)
	s.mu.Unlock()

	e.mu.Lock()
	err := s.importLocked(ctx, e, exp, token)
	e.mu.Unlock()
	if err != nil {
		s.mu.Lock()
		delete(s.entries, id)
		s.mu.Unlock()
		_ = os.RemoveAll(e.dir)
		return err
	}
	s.mu.Lock()
	if token != "" {
		s.importTokens[id] = token
	} else {
		delete(s.importTokens, id)
	}
	s.mu.Unlock()
	s.live.Add(id, e)
	return nil
}

// tokenOf reads the handoff token e committed with, waiting out any
// in-flight import or detach on the entry. Empty for sessions created
// locally or whose import never completed.
func (s *Store) tokenOf(e *entry) string {
	e.mu.RLock()
	raw, err := os.ReadFile(filepath.Join(e.dir, tokenFile))
	e.mu.RUnlock()
	if err != nil {
		return ""
	}
	return string(raw)
}

// ImportedWith reports whether a handoff carrying token committed on
// this store for id — whether the session is still held here or has
// since been handed onward. It answers the receiver half of a
// sender's post-failure confirmation probe: true means the sender's
// state landed durably and its local copy must be surrendered.
func (s *Store) ImportedWith(id, token string) bool {
	if token == "" || !validID(id) {
		return false
	}
	s.mu.Lock()
	if t, ok := s.importTokens[id]; ok {
		s.mu.Unlock()
		return t == token
	}
	e := s.entries[id]
	s.mu.Unlock()
	if e == nil {
		return false
	}
	// Recovered-after-restart sessions have no in-memory token yet;
	// the session dir's token file is the durable record.
	t := s.tokenOf(e)
	if t == "" {
		return false
	}
	s.mu.Lock()
	s.importTokens[id] = t
	s.mu.Unlock()
	return t == token
}

// importLocked persists exp into e's directory and rehydrates. e.mu
// must be write-held. Input errors (undecodable set, replay
// divergence) come back raw; disk failures wrap ErrStorage.
func (s *Store) importLocked(ctx context.Context, e *entry, exp Export, token string) error {
	// Validate the payload decodes BEFORE creating anything on disk.
	set, err := hydrac.DecodeTaskSet(bytes.NewReader(exp.Set))
	if err != nil {
		return fmt.Errorf("handoff snapshot set: %w", err)
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := writeSnapshot(s.fs, e.dir, 0, set, exp.Cursor); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	l, _, err := wal.Open(e.dir, s.walOptions(0))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	for i, rec := range exp.Deltas {
		if err := l.Append(rec); err != nil {
			_ = l.Close()
			return fmt.Errorf("%w: persisting handoff delta %d: %v", ErrStorage, i, err)
		}
	}
	if err := l.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	// Recover from what was just persisted — replay validates every
	// delta re-admits, exactly as a restart would.
	if err := s.rehydrate(ctx, e); err != nil {
		return err
	}
	if token != "" {
		// Last write on purpose: the file may only exist once the
		// import is committed, because a retry or confirm probe reads
		// its presence as "acknowledged". Failing this write fails the
		// whole import — re-transferring is cheaper than holding a
		// session whose acknowledgement can never be verified.
		if err := os.WriteFile(filepath.Join(e.dir, tokenFile), []byte(token), 0o644); err != nil {
			return fmt.Errorf("%w: writing handoff token: %v", ErrStorage, err)
		}
	}
	return nil
}

// readLatestSnapshotRaw is readLatestSnapshot without decoding the
// set: handoff ships the snapshot's raw bytes so the receiver
// persists exactly what the sender held.
func readLatestSnapshotRaw(dir string) (gen uint64, set json.RawMessage, cursor int, err error) {
	gens, err := listSnapshotGens(dir)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(gens) == 0 {
		return 0, nil, 0, fmt.Errorf("no snapshot in %s", dir)
	}
	gen = gens[len(gens)-1]
	raw, err := os.ReadFile(snapshotPath(dir, gen))
	if err != nil {
		return 0, nil, 0, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return 0, nil, 0, fmt.Errorf("parsing snapshot generation %d: %w", gen, err)
	}
	if sf.Version != snapshotVersion {
		return 0, nil, 0, fmt.Errorf("snapshot generation %d has version %d, this build reads %d", gen, sf.Version, snapshotVersion)
	}
	return gen, sf.Set, sf.NextFit, nil
}
