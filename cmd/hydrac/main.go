// Command hydrac is the front door to the HYDRA-C framework: it reads
// a task-set description (JSON) and computes security-task periods,
// compares against the baseline schemes, simulates the resulting
// schedule, or renders a Gantt chart.
//
// Usage:
//
//	hydrac analyze  -in taskset.json [-scheme hydra-c|hydra|hydra-tmax|global-tmax] [-exhaustive]
//	hydrac simulate -in taskset.json [-horizon N] [-policy semi|partitioned|global]
//	hydrac gantt    -in taskset.json [-to N] [-step N]
//	hydrac generate [-cores M] [-group G] [-seed S]        (emit a random Table-3 task set)
//	hydrac example                                          (emit the paper's rover task set)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = analyze(os.Args[2:])
	case "simulate":
		err = simulate(os.Args[2:])
	case "gantt":
		err = gantt(os.Args[2:])
	case "sensitivity":
		err = sensitivity(os.Args[2:])
	case "generate":
		err = generate(os.Args[2:])
	case "example":
		err = task.Encode(os.Stdout, rover.TaskSet())
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydrac:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `hydrac — period adaptation for continuous security monitoring (DATE 2020)

subcommands:
  analyze      compute security-task periods for a task set
  simulate     run the discrete-event scheduler on a configured set
  gantt        render a schedule chart (ASCII, optionally SVG)
  sensitivity  report how much each monitor's WCET can grow
  generate     emit a random Table-3 synthetic task set (JSON)
  example      emit the paper's rover task set (JSON)`)
}

func load(path string) (*task.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return task.Decode(f)
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "task set JSON file (required)")
	scheme := fs.String("scheme", "hydra-c", "hydra-c | hydra | hydra-tmax | global-tmax")
	exhaustive := fs.Bool("exhaustive", false, "use the literal Eq. 8 carry-in enumeration")
	explain := fs.Bool("explain", false, "print the per-task interference breakdown (hydra-c only)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("analyze: -in is required")
	}
	ts, err := load(*in)
	if err != nil {
		return err
	}
	switch *scheme {
	case "hydra-c":
		opt := core.Options{}
		if *exhaustive {
			opt.CarryIn = core.Exhaustive
		}
		res, err := core.SelectPeriods(ts, opt)
		if err != nil {
			return err
		}
		if !res.Schedulable {
			fmt.Println("UNSCHEDULABLE: no period assignment within the designer bounds")
			return nil
		}
		fmt.Printf("%-16s %10s %10s %10s\n", "security task", "T* (ms)", "WCRT (ms)", "Tmax (ms)")
		for i, s := range ts.Security {
			fmt.Printf("%-16s %10d %10d %10d\n", s.Name, res.Periods[i], res.Resp[i], s.MaxPeriod)
		}
		if *explain {
			diags, err := core.Diagnose(ts, res.Periods, opt.CarryIn)
			if err != nil {
				return err
			}
			fmt.Println()
			for _, d := range diags {
				fmt.Print(d.Render())
			}
		}
	case "hydra", "hydra-tmax":
		var res *baseline.PartitionedResult
		if *scheme == "hydra" {
			res, err = baseline.HydraAggressive(ts)
		} else {
			res, err = baseline.HydraTMax(ts)
		}
		if err != nil {
			return err
		}
		if !res.Schedulable {
			fmt.Println("UNSCHEDULABLE under the partitioned baseline")
			return nil
		}
		fmt.Printf("%-16s %10s %10s %6s\n", "security task", "T (ms)", "WCRT (ms)", "core")
		for i, s := range ts.Security {
			fmt.Printf("%-16s %10d %10d %6d\n", s.Name, res.Periods[i], res.Resp[i], res.Cores[i])
		}
	case "global-tmax":
		res, err := baseline.GlobalTMax(ts)
		if err != nil {
			return err
		}
		fmt.Printf("schedulable: %v\n", res.Schedulable)
		for i, t := range ts.RT {
			fmt.Printf("%-16s R=%d D=%d\n", t.Name, res.RTResp[i], t.Deadline)
		}
		for i, s := range ts.Security {
			fmt.Printf("%-16s R=%d Tmax=%d\n", s.Name, res.SecResp[i], s.MaxPeriod)
		}
	default:
		return fmt.Errorf("analyze: unknown scheme %q", *scheme)
	}
	return nil
}

func configure(ts *task.Set, policy sim.Policy) (*task.Set, error) {
	// If the file already carries periods, respect them; otherwise run
	// the scheme matching the policy.
	have := true
	for _, s := range ts.Security {
		if s.Period == 0 {
			have = false
			break
		}
	}
	if have {
		return ts, nil
	}
	if policy == sim.FullyPartitioned {
		res, err := baseline.HydraAggressive(ts)
		if err != nil {
			return nil, err
		}
		if !res.Schedulable {
			return nil, fmt.Errorf("HYDRA cannot configure this set")
		}
		return baseline.ApplyPartitioned(ts, res), nil
	}
	res, err := core.SelectPeriods(ts, core.Options{})
	if err != nil {
		return nil, err
	}
	if !res.Schedulable {
		return nil, fmt.Errorf("HYDRA-C cannot configure this set")
	}
	return core.Apply(ts, res), nil
}

func parsePolicy(s string) (sim.Policy, error) {
	switch s {
	case "semi":
		return sim.SemiPartitioned, nil
	case "partitioned":
		return sim.FullyPartitioned, nil
	case "global":
		return sim.Global, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (semi|partitioned|global)", s)
	}
}

func simulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("in", "", "task set JSON file (required)")
	horizon := fs.Int64("horizon", 60000, "simulation horizon in ticks")
	policy := fs.String("policy", "semi", "semi | partitioned | global")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("simulate: -in is required")
	}
	ts, err := load(*in)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	cfgd, err := configure(ts, pol)
	if err != nil {
		return err
	}
	res, err := sim.Run(cfgd, sim.Config{Policy: pol, Horizon: *horizon})
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	return nil
}

func gantt(args []string) error {
	fs := flag.NewFlagSet("gantt", flag.ExitOnError)
	in := fs.String("in", "", "task set JSON file (required)")
	to := fs.Int64("to", 2000, "render window end (ticks)")
	step := fs.Int64("step", 0, "ticks per column (default: window/100)")
	policy := fs.String("policy", "semi", "semi | partitioned | global")
	svgPath := fs.String("svg", "", "also write an SVG chart to this file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("gantt: -in is required")
	}
	ts, err := load(*in)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	cfgd, err := configure(ts, pol)
	if err != nil {
		return err
	}
	res, err := sim.Run(cfgd, sim.Config{Policy: pol, Horizon: *to, RecordIntervals: true})
	if err != nil {
		return err
	}
	st := *step
	if st <= 0 {
		st = max(*to/100, 1)
	}
	fmt.Print(sim.Gantt(res, 0, *to, st))
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sim.GanttSVG(f, res, 0, *to); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
	return nil
}

func sensitivity(args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ExitOnError)
	in := fs.String("in", "", "task set JSON file (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("sensitivity: -in is required")
	}
	ts, err := load(*in)
	if err != nil {
		return err
	}
	perTask, err := core.WCETSensitivity(ts, core.Options{})
	if err != nil {
		return err
	}
	scale, err := core.ScaleSensitivity(ts, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %12s %8s\n", "security task", "WCET (ms)", "max WCET", "headroom")
	for i, s := range ts.Security {
		fmt.Printf("%-16s %10d %12d %7.1fx\n", s.Name, s.WCET, perTask[i], float64(perTask[i])/float64(s.WCET))
	}
	fmt.Printf("uniform scale factor for the whole security band: %.2fx\n", scale)
	return nil
}

func generate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	cores := fs.Int("cores", 2, "number of cores M")
	group := fs.Int("group", 3, "utilisation group 0..9")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	cfg := gen.TableThree(*cores)
	ts, err := cfg.Generate(rand.New(rand.NewSource(*seed)), *group)
	if err != nil {
		return err
	}
	return task.Encode(os.Stdout, ts)
}
