package task

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// CoreHash returns a canonical content hash of one core's RT tasks,
// which must arrive priority-sorted as Set.RTOnCore produces them. It
// keys the per-core fixpoint cache of the incremental admission
// engine: the uniprocessor RTA verdict of a core is fully determined
// by the (WCET, Period, Deadline, Priority) tuples hashed here, so two
// cores with the same parameters — across deltas, sessions, or even
// different core indices — share one cache entry. Names and core
// indices are deliberately excluded: they do not enter Eq. 1.
func CoreHash(rt []RTTask) string {
	h := sha256.New()
	var buf [8]byte
	num := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	num(int64(len(rt)))
	for _, t := range rt {
		num(t.WCET)
		num(t.Period)
		num(t.Deadline)
		num(int64(t.Priority))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hash returns a canonical content hash of the set: two sets hash
// equally iff every analysis-relevant field (core count and all task
// parameters, in slice order) is identical. It is the cache key for
// repeated-traffic admission workloads — an analysis over a set is
// fully determined by the fields hashed here — and is stable across
// process restarts (no map iteration, no pointers).
//
// Slice order is deliberately significant: result slices (periods,
// WCRTs) follow the order of ts.Security, so two permutations of the
// same tasks are different requests with different responses.
func (ts *Set) Hash() string {
	h := sha256.New()
	var buf [8]byte
	// Names are appended into one reused scratch slice: io.WriteString
	// would convert every name to a fresh []byte (sha256's digest has
	// no WriteString), which made hashing — the cache-lookup key on
	// the service hot path — cost one allocation per task.
	scratch := make([]byte, 0, 64)
	num := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	str := func(s string) {
		num(int64(len(s)))
		scratch = append(scratch[:0], s...)
		h.Write(scratch)
	}
	num(int64(ts.Cores))
	num(int64(len(ts.RT)))
	for _, t := range ts.RT {
		str(t.Name)
		num(t.WCET)
		num(t.Period)
		num(t.Deadline)
		num(int64(t.Core))
		num(int64(t.Priority))
	}
	num(int64(len(ts.Security)))
	for _, s := range ts.Security {
		str(s.Name)
		num(s.WCET)
		num(s.Period)
		num(s.MaxPeriod)
		num(int64(s.Core))
		num(int64(s.Priority))
	}
	return hex.EncodeToString(h.Sum(nil))
}
