package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame encodes one valid record frame, for building seed inputs.
func frame(payload []byte) []byte {
	b := make([]byte, frameHeaderBytes, frameHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// FuzzWALReplay feeds arbitrary bytes to the segment decoder and the
// full recovery path: the bytes become the log's final segment, so
// any tail damage must be repaired, never panicked over, and recovery
// must be idempotent — reopening a repaired log yields the identical
// records, and appending after recovery extends them.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("one")))
	f.Add(append(frame([]byte("one")), frame([]byte("two"))...))
	// Torn tail: a whole record then half of another.
	two := append(frame([]byte("one")), frame([]byte("twotwotwo"))...)
	f.Add(two[:len(two)-5])
	// Bit flip in the payload.
	flipped := append([]byte(nil), two...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	// Implausible length prefix.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3})
	// Zero length prefix (preallocated-page zeros).
	f.Add(make([]byte, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep filesystem churn bounded
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName("", 1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(dir, Options{})
		if err != nil {
			// Only mid-log corruption may be refused, and a single
			// segment is always the final segment — every failure here
			// should have been repaired instead.
			t.Fatalf("Open refused a final-segment input: %v", err)
		}
		for i, r := range recs {
			if len(r) == 0 {
				t.Fatalf("record %d is empty — empty records cannot be appended", i)
			}
		}
		if l.Count() != len(recs) {
			t.Fatalf("Count() = %d, recovered %d", l.Count(), len(recs))
		}
		if err := l.Append([]byte("probe")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Idempotence: the repaired log replays to the same records
		// plus the probe, and a third open agrees with the second.
		l2, recs2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen recovered %d records, want %d", len(recs2), len(recs)+1)
		}
		for i := range recs {
			if !bytes.Equal(recs2[i], recs[i]) {
				t.Fatalf("record %d changed across reopen: %q != %q", i, recs2[i], recs[i])
			}
		}
		if !bytes.Equal(recs2[len(recs)], []byte("probe")) {
			t.Fatalf("probe record lost: %q", recs2[len(recs)])
		}
	})
}
