package sim

import (
	"fmt"
	"sort"
	"strings"

	"hydrac/internal/task"
)

// Interval is one contiguous execution slice of a job on a core.
type Interval struct {
	Start, End task.Time
	Core       int
}

// Duration returns End − Start.
func (iv Interval) Duration() task.Time { return iv.End - iv.Start }

// JobRecord is the per-job trace entry kept when Config.RecordIntervals
// is set. Finish is −1 for jobs still running at the horizon.
type JobRecord struct {
	Task      string
	Index     int
	Release   task.Time
	Finish    task.Time
	Deadline  task.Time
	Missed    bool
	Intervals []Interval
}

// TaskStats aggregates per-task counters across a run.
type TaskStats struct {
	Starts         int
	Completed      int
	DeadlineMisses int
	MaxResponse    task.Time
	TotalResponse  task.Time
}

// MeanResponse returns the average response time of completed jobs.
func (s TaskStats) MeanResponse() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalResponse) / float64(s.Completed)
}

// Result is the outcome of one simulation run.
type Result struct {
	Horizon                task.Time
	ContextSwitches        int
	Migrations             int
	RTDeadlineMisses       int
	SecurityDeadlineMisses int
	CoreBusy               []task.Time
	Stats                  map[string]*TaskStats
	// JobLog holds per-job traces (only with Config.RecordIntervals),
	// ordered by release time.
	JobLog []JobRecord
}

func newResult(cores int, horizon task.Time) *Result {
	return &Result{
		Horizon:  horizon,
		CoreBusy: make([]task.Time, cores),
		Stats:    map[string]*TaskStats{},
	}
}

func (r *Result) record(name string) *TaskStats {
	s := r.Stats[name]
	if s == nil {
		s = &TaskStats{}
		r.Stats[name] = s
	}
	return s
}

// TotalIdle returns the summed idle time across cores.
func (r *Result) TotalIdle() task.Time {
	idle := r.Horizon * task.Time(len(r.CoreBusy))
	for _, b := range r.CoreBusy {
		idle -= b
	}
	return idle
}

// Utilization returns the fraction of core-time spent executing.
func (r *Result) Utilization() float64 {
	if r.Horizon == 0 || len(r.CoreBusy) == 0 {
		return 0
	}
	var busy task.Time
	for _, b := range r.CoreBusy {
		busy += b
	}
	return float64(busy) / float64(r.Horizon*task.Time(len(r.CoreBusy)))
}

// JobsOf returns the trace records of one task, ordered by release.
func (r *Result) JobsOf(name string) []JobRecord {
	var out []JobRecord
	for _, rec := range r.JobLog {
		if rec.Task == name {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Release < out[b].Release })
	return out
}

// Summary renders a compact human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon %d ticks, %d context switches, %d migrations, util %.3f\n",
		r.Horizon, r.ContextSwitches, r.Migrations, r.Utilization())
	fmt.Fprintf(&b, "deadline misses: RT %d, security %d\n", r.RTDeadlineMisses, r.SecurityDeadlineMisses)
	names := make([]string, 0, len(r.Stats))
	for n := range r.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.Stats[n]
		fmt.Fprintf(&b, "  %-12s completed %5d  maxR %8d  meanR %10.1f  misses %d\n",
			n, s.Completed, s.MaxResponse, s.MeanResponse(), s.DeadlineMisses)
	}
	return b.String()
}
