package hydraclient

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hydrac/internal/faultfs"
)

func okHandler() (http.Handler, *atomic.Int64) {
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}), &served
}

func testClient(seed int64) *Client {
	return New(Config{BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: seed})
}

// A transient 429 costs one retry and then succeeds.
func TestRetriesTransient429(t *testing.T) {
	h, served := okHandler()
	chaos := faultfs.NewChaos(h).Fail(faultfs.ChaosRule{Nth: 1, Status: http.StatusTooManyRequests})
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	status, err := testClient(1).Do(context.Background(), http.MethodGet, srv.URL, "", nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("Do = %d, %v; want 200, nil", status, err)
	}
	if served.Load() != 1 {
		t.Fatalf("backend served %d, want 1 (first attempt was injected)", served.Load())
	}
}

// A persistent 503 exhausts the budget and the final status comes back
// with a nil error — the server answered; it just kept saying no.
func TestExhaustsBudgetOnPersistent503(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(Config{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1})
	status, err := c.Do(context.Background(), http.MethodGet, srv.URL, "", nil)
	if err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("Do = %d, %v; want 503, nil", status, err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + MaxRetries)", attempts.Load())
	}
}

// 4xx other than 429 is the caller's bug: no retry.
func TestDoesNotRetry4xx(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()

	status, err := testClient(1).Do(context.Background(), http.MethodPost, srv.URL, "application/json", []byte("{}"))
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("Do = %d, %v; want 400, nil", status, err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1", attempts.Load())
	}
}

// The server's Retry-After is honoured but capped at MaxDelay, so a
// 1-second header against a 20ms cap does not stall the client.
func TestRetryAfterIsCapped(t *testing.T) {
	h, _ := okHandler()
	chaos := faultfs.NewChaos(h).Fail(faultfs.ChaosRule{Nth: 1, Status: http.StatusTooManyRequests, RetryAfter: 1})
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	t0 := time.Now()
	status, err := testClient(1).Do(context.Background(), http.MethodGet, srv.URL, "", nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("Do = %d, %v; want 200, nil", status, err)
	}
	if d := time.Since(t0); d > 500*time.Millisecond {
		t.Fatalf("Retry-After: 1s was not capped (took %s)", d)
	}
}

// A context cancelled during backoff aborts the wait immediately.
func TestContextBoundsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	// MaxDelay 10s so the (capped) Retry-After would park the client
	// well past the context deadline.
	c := New(Config{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.Do(ctx, http.MethodGet, srv.URL, "", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("context did not bound the backoff (took %s)", d)
	}
}

// Jittered backoff stays within [base/2, max] and grows with attempts.
func TestBackoffEnvelope(t *testing.T) {
	c := New(Config{BaseDelay: 8 * time.Millisecond, MaxDelay: 64 * time.Millisecond, Seed: 42})
	for attempt := 0; attempt < 8; attempt++ {
		for i := 0; i < 100; i++ {
			d := c.backoff(attempt, 0)
			if d < 4*time.Millisecond || d > 64*time.Millisecond {
				t.Fatalf("backoff(%d) = %s, outside [4ms, 64ms]", attempt, d)
			}
		}
	}
}

// A 307 with Location is followed with method and body preserved, the
// hop is counted, and it consumes no retry budget.
func TestFollowsRedirectWithBodyReplay(t *testing.T) {
	type seen struct {
		method, body string
	}
	got := make(chan seen, 1)
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got <- seen{r.Method, string(b)}
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	var hops atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hops.Add(1)
		w.Header().Set("X-Hydra-Owner", owner.URL)
		w.Header().Set("Location", owner.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c := New(Config{MaxRetries: -1, Seed: 1})
	status, redirects, err := c.DoCount(context.Background(), http.MethodPost, front.URL+"/v1/session/abc/admit", "application/json", []byte(`{"k":1}`))
	if err != nil || status != http.StatusOK {
		t.Fatalf("DoCount = %d, %v; want 200, nil", status, err)
	}
	if redirects != 1 {
		t.Fatalf("redirects = %d, want 1", redirects)
	}
	s := <-got
	if s.method != http.MethodPost || s.body != `{"k":1}` {
		t.Fatalf("owner saw %s %q; want POST with replayed body", s.method, s.body)
	}
}

// X-Hydra-Owner alone (no Location) suffices to find the new home.
func TestFollowsOwnerHeaderWithoutLocation(t *testing.T) {
	h, served := okHandler()
	owner := httptest.NewServer(h)
	defer owner.Close()
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hydra-Owner", owner.URL)
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	status, redirects, err := testClient(1).DoCount(context.Background(), http.MethodGet, front.URL+"/v1/session/abc", "", nil)
	if err != nil || status != http.StatusOK || redirects != 1 {
		t.Fatalf("DoCount = %d, %d hops, %v; want 200, 1, nil", status, redirects, err)
	}
	if served.Load() != 1 {
		t.Fatalf("owner served %d requests, want 1", served.Load())
	}
}

// A redirect loop stops at MaxHops and surfaces the 307 instead of
// spinning forever.
func TestRedirectLoopBoundedByMaxHops(t *testing.T) {
	var served atomic.Int64
	var loop *httptest.Server
	loop = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Location", loop.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer loop.Close()

	c := New(Config{MaxRetries: -1, MaxHops: 2, Seed: 1})
	status, redirects, err := c.DoCount(context.Background(), http.MethodGet, loop.URL+"/x", "", nil)
	if err != nil || status != http.StatusTemporaryRedirect {
		t.Fatalf("DoCount = %d, %v; want the 307 back", status, err)
	}
	if redirects != 2 {
		t.Fatalf("redirects = %d, want MaxHops=2", redirects)
	}
	if served.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 hops)", served.Load())
	}
}

// MaxHops -1 disables following entirely: the 307 comes straight back.
func TestRedirectFollowingDisabled(t *testing.T) {
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", "http://other.invalid/x")
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c := New(Config{MaxRetries: -1, MaxHops: -1, Seed: 1})
	status, redirects, err := c.DoCount(context.Background(), http.MethodGet, front.URL, "", nil)
	if err != nil || status != http.StatusTemporaryRedirect || redirects != 0 {
		t.Fatalf("DoCount = %d, %d hops, %v; want 307, 0, nil", status, redirects, err)
	}
}
