package core

import "hydrac/internal/task"

// This file is the hot Eq. 5–8 kernel: an allocation-free,
// staircase-accelerated evaluation of the interference function Ω and
// its Eq. 7 fixed point. The naive forms in wcrt.go (omegaDominance,
// fixedPoint) remain the readable reference — the Exhaustive mode and
// the equivalence property tests still run them — but every production
// path goes through a Scratch.
//
// Three observations drive the design:
//
//  1. The Eq. 7 refinement sequence is the contract. The iteration
//     budget (MaxFixpointIterations) is part of the analysis
//     definition — a set the naive creep abandons mid-iteration must
//     stay abandoned — so the kernel never changes WHICH refinements
//     happen, only how cheaply they are computed and counted.
//
//  2. Ω is piecewise LINEAR in the window length x. Every elementary
//     term — an Eq. 2 staircase, an Eq. 4 carry-in bound, the
//     x−Cs+1 interference clamp of Eqs. 3/5, and the top-(M−1)
//     dominance selection of Eq. 6 — is linear between breakpoints:
//     task release-structure edges, clamp crossovers, and changes of
//     the selected carry-in set. One pass over the tasks yields the
//     exact value, slope and next breakpoint of Ω at x (omegaLine).
//     On such a piece every refinement is three integer operations,
//     and when the slope is exactly M the stride is constant, so the
//     clamp-bound creep the iteration budget exists for — millions of
//     one-tick refinements — is counted in closed form and resolved
//     in O(1).
//
//  3. Creep betrays itself: slope-M pieces produce runs of EQUAL
//     short strides. The kernel therefore runs a lean value-only
//     evaluation (omegaValue — the naive arithmetic without the sort
//     or the allocations) and drops into the piecewise-linear escape
//     only when two consecutive strides match below creepStride;
//     after the piece is resolved it returns to the fast path. Long-
//     stride iterations — the common converging case — never pay for
//     piece geometry they would not use.
//
// Because both evaluators compute the identical Ω and the escape
// replays (or batch-counts) the identical refinements, results are
// bit-identical to the naive creep in every case, including the
// conservative MaxFixpointIterations verdicts. The equivalence is
// property-tested against the reference creep in scratch_test.go and
// pinned end-to-end by the differential oracle corpus.

// Scratch is the reusable per-analysis workspace of the kernel: the
// RT band flattened into structure-of-arrays form plus the buffers the
// fixpoint and the period-selection helpers need. One Scratch serves
// one analysis at a time — SelectPeriodsCtx, SelectPeriodsResumable
// and the admission engine each own one — and must never be shared
// across goroutines. Reset re-primes it for a new System, reusing all
// capacity, so steady-state analyses allocate nothing.
type Scratch struct {
	sys  *System
	sysM int

	// coreEnd delimits the RT band per core: core m's tasks span
	// rtWin[coreEnd[m−1]:coreEnd[m]] (built once per Reset).
	coreEnd []int

	// diffs is the Eq. 6 carry-in selection buffer.
	diffs []diffTerm

	// rtWin is the RT band's period-window cache: each task carries
	// its current period window [lo, hi) and the completed-jobs
	// workload qc, so the hot path computes an Eq. 2 workload with a
	// compare and a subtract instead of a 64-bit div+mod. A window is
	// a pure function of the window length, so it stays valid across
	// calls — the division reruns only when an evaluation leaves the
	// window on either side. One packed struct per task keeps the
	// walk on ~1.5 cache lines per four tasks.
	rtWin []rtWindow

	// probeResp/probeCand/probeFrom capture the response-time vector
	// of the most recent fully-feasible Algorithm 2 probe, so the
	// line-8 refresh after a search can reuse the star probe's
	// fixpoints instead of re-running them (the last feasible probe of
	// the binary search IS the star, with identical inputs).
	probeResp []task.Time
	probeCand task.Time
	probeFrom int

	// hp is the probe-scoped interferer buffer shared by the leaf
	// helpers (responseTimes, lowerPrioritySchedulable,
	// recomputeBelow), which never nest. hpOuter is the selection-loop
	// prefix of SelectPeriodsResumable, which is live across probes.
	hp, hpOuter []Interferer

	// hpWin caches the higher-priority migrating band's Eq. 2/4
	// staircases as period windows, exactly as rtWin does for the RT
	// band: primeHP rebuilds it at every MigratingWCRT entry (the hp
	// set is fixed for the duration of one fixpoint), after which each
	// Eq. 5 term costs a compare and a subtract per iteration instead
	// of the two 64-bit divisions of workloadNC + workloadCI.
	hpWin []hpWindow

	// resp/periods back the per-analysis working vectors of the
	// period-selection entry points.
	resp, periods []task.Time
}

// rtWindow is one staircase task's demand and current period window.
type rtWindow struct {
	c, t, qc, lo, hi task.Time
}

// hpWindow is one higher-priority migrating task's pair of cached
// staircases: the Eq. 2 non-carry-in workload over the window length
// y, and the Eq. 4 carry-in staircase over the shifted coordinate
// z = y − x̄ (its tail term min(y, C−1) is division-free and computed
// inline).
type hpWindow struct {
	nc   rtWindow
	ci   rtWindow
	xbar task.Time
	cm1  task.Time
}

// primeHP loads the interferer band into the scratch's staircase
// window caches. The windows start invalid (hi = −1) and fill lazily
// at first use, so priming costs one pass of plain stores — no
// divisions — and pays for itself from the second fixpoint iteration
// on.
func (sc *Scratch) primeHP(hp []Interferer) {
	hw := sc.hpWin[:0]
	for j := range hp {
		h := &hp[j]
		hw = append(hw, hpWindow{
			nc:   rtWindow{c: h.WCET, t: h.Period, hi: -1},
			ci:   rtWindow{c: h.WCET, t: h.Period, hi: -1},
			xbar: h.WCET - 1 + h.Period - h.Resp,
			cm1:  h.WCET - 1,
		})
	}
	sc.hpWin = hw
}

// diffTerm is one higher-priority migrating task's carry-in minus
// non-carry-in interference difference — a plain value for the fast
// evaluator, a linear function of the window length (v, s) for the
// piecewise escape.
type diffTerm struct {
	v, s task.Time
	sel  bool
}

// NewScratch returns a workspace primed for sys (which may be nil;
// call Reset before use then).
func NewScratch(sys *System) *Scratch {
	sc := &Scratch{}
	if sys != nil {
		sc.Reset(sys)
	}
	return sc
}

// Reset primes the scratch for a new System, reusing every buffer.
func (sc *Scratch) Reset(sys *System) {
	sc.sys = sys
	sc.sysM = sys.M
	sc.rtWin = sc.rtWin[:0]
	sc.coreEnd = sc.coreEnd[:0]
	for _, demands := range sys.RTCores {
		for _, d := range demands {
			sc.rtWin = append(sc.rtWin, rtWindow{c: d.WCET, t: d.Period, hi: -1})
		}
		sc.coreEnd = append(sc.coreEnd, len(sc.rtWin))
	}
	sc.probeFrom = -1
}

// refill recomputes the task's period window at window length y. The
// first period — where every call starts, since the iteration begins
// at Cs — needs no division. The body must stay under the compiler's
// inlining budget: it sits on the innermost staircase walk, and a
// call here costs more than the division it wraps.
func (w *rtWindow) refill(y task.Time) {
	if y < w.t {
		w.lo, w.hi, w.qc = 0, w.t, 0
		return
	}
	q := y / w.t
	w.lo = q * w.t
	w.hi = satAdd(w.lo, w.t)
	w.qc = q * w.c
}

// ensure pre-sizes the selection buffers for a security band of n
// tasks so the steady-state selection loops never grow them.
func (sc *Scratch) ensure(n int) {
	if cap(sc.hp) < n {
		sc.hp = make([]Interferer, 0, n)
	}
	if cap(sc.hpOuter) < n {
		sc.hpOuter = make([]Interferer, 0, n)
	}
	if cap(sc.diffs) < n {
		sc.diffs = make([]diffTerm, 0, n)
	}
	if cap(sc.hpWin) < n {
		sc.hpWin = make([]hpWindow, 0, n)
	}
	if cap(sc.resp) < n {
		sc.resp = make([]task.Time, 0, n)
	}
	if cap(sc.periods) < n {
		sc.periods = make([]task.Time, 0, n)
	}
	if cap(sc.probeResp) < n {
		sc.probeResp = make([]task.Time, n)
	}
	sc.probeResp = sc.probeResp[:n]
	sc.probeFrom = -1
}

// replayCeiling bounds the in-piece offsets the replay multiplies the
// slope by; past it the kernel re-evaluates Ω instead, avoiding
// overflow on sets with 2^60-scale ticks. The fallback stays exact —
// an evaluation is stateless.
const replayCeiling task.Time = 1 << 50

// creepStride is the refinement stride below which a run of equal
// strides is treated as clamp-bound creep and handed to the
// piecewise-linear escape. The trigger is a pure evaluation-strategy
// switch — the refinement sequence is identical on both sides — so
// the value moves constant factors, never results.
const creepStride task.Time = 64

// MigratingWCRT is the scratch-backed form of System.MigratingWCRT:
// identical results — the identical refinement sequence, with
// clamp-bound creep resolved through the piecewise-linear form of Ω
// instead of one full evaluation per tick — and no steady-state
// allocations. The Exhaustive mode delegates to the literal Eq. 8
// enumeration (a test oracle; it allocates freely).
func (sc *Scratch) MigratingWCRT(cs task.Time, hp []Interferer, limit task.Time, mode CarryInMode) (task.Time, bool) {
	if cs > limit {
		return task.Infinity, false
	}
	if mode == Exhaustive {
		return sc.sys.migratingWCRTExhaustive(cs, hp, limit)
	}
	sc.primeHP(hp)
	m := task.Time(sc.sysM)
	x := cs
	iters := 0
	lastStride := task.Time(-1)
	for iters < MaxFixpointIterations {
		iters++
		next := sc.omegaValue(x, cs)/m + cs
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			return task.Infinity, false
		}
		stride := next - x
		x = next
		if stride >= creepStride || stride > lastStride || lastStride < 0 {
			lastStride = stride
			continue
		}
		lastStride = -1

		// A short stride that failed to grow: the signature of a
		// creep region (slope-M pieces hold their stride constant;
		// growth phases strictly lengthen it), where the naive creep
		// would grind one full evaluation per refinement. Switch to
		// line mode:
		// one line evaluation per piece, the in-piece refinements
		// replayed at three integer ops each — or counted in closed
		// form when the slope really is M. Line mode is sticky across
		// consecutive creeping pieces (a creep region is many short
		// pieces in a row) and hands back to the fast path as soon as
		// a long stride shows the creep is over.
	lineMode:
		for iters < MaxFixpointIterations {
			omega, slope, bp := sc.omegaLine(x, cs)
			x0 := x
			for iters < MaxFixpointIterations {
				if x-x0 >= replayCeiling {
					break // refresh the line before the products get risky
				}
				iters++
				next := (omega+slope*(x-x0))/m + cs
				if next == x {
					return x, true
				}
				if next > limit || next < x {
					return task.Infinity, false
				}
				if next >= bp {
					// Crossed into the next piece.
					crossed := next - x
					x = next
					if crossed >= creepStride {
						break lineMode // long stride: creep over, fast path resumes
					}
					break
				}
				if slope == m {
					// Constant stride δ = next − x through the rest of
					// the piece: count the remaining refinements in
					// closed form instead of one at a time. This is
					// the MaxFixpointIterations pathology reduced to
					// O(1).
					delta := next - x
					steps := (bp - next + delta - 1) / delta // refinements from next to reach ≥ bp
					if firstPast := (limit-next)/delta + 1; firstPast <= steps {
						// One of them overshoots the limit first.
						return task.Infinity, false
					}
					if steps > task.Time(MaxFixpointIterations-iters) {
						// The naive creep exhausts the budget inside
						// the piece: the same conservative verdict.
						return task.Infinity, false
					}
					iters += int(steps)
					x = next + steps*delta
					break
				}
				// slope ≠ M: the gap f(y) − y strictly drifts
				// (shrinking toward the fixed point below M, growing
				// past the breakpoint above it), so this loop is
				// short.
				x = next
			}
		}
	}
	return task.Infinity, false
}

// omegaValue evaluates Eq. 6 at window length y exactly as
// omegaDominance does — same workload formulas, same clamp, same
// top-(M−1) dominance sum — without the sort, the allocations, or any
// piece bookkeeping: every staircase (RT band and, via primeHP, the
// migrating band) reads through its period window, so the
// steady-state cost per task is a compare and a subtract. It is the
// kernel's fast-path evaluator.
func (sc *Scratch) omegaValue(y, cs task.Time) task.Time {
	capv := y - cs + 1
	var omega task.Time
	start := 0
	rtWin := sc.rtWin
	for _, end := range sc.coreEnd {
		var w task.Time
		wins := rtWin[start:end]
		start = end
		for i := range wins {
			win := &wins[i]
			if y >= win.hi || y < win.lo {
				win.refill(y)
			}
			r := y - win.lo
			if r > win.c {
				r = win.c
			}
			w += win.qc + r
		}
		if w > capv {
			w = capv
		}
		omega += w
	}
	k := sc.sysM - 1
	hw := sc.hpWin
	if k <= 0 {
		// M == 1: no carry-in set; only the NC staircases contribute.
		for j := range hw {
			h := &hw[j]
			var nc task.Time
			if y > 0 {
				w := &h.nc
				if y >= w.hi || y < w.lo {
					w.refill(y)
				}
				r := y - w.lo
				if r > w.c {
					r = w.c
				}
				nc = w.qc + r
				if nc > capv {
					nc = capv
				}
			}
			omega += nc
		}
		return omega
	}
	if k == 1 {
		// M == 2, the dominant platform shape: the carry-in set has
		// at most one member, so the top-k machinery reduces to a
		// running maximum — no diffs buffer at all.
		var best task.Time
		for j := range hw {
			h := &hw[j]
			var nc task.Time
			if y > 0 {
				w := &h.nc
				if y >= w.hi || y < w.lo {
					w.refill(y)
				}
				r := y - w.lo
				if r > w.c {
					r = w.c
				}
				nc = w.qc + r
				if nc > capv {
					nc = capv
				}
			}
			omega += nc
			ci := min(y, h.cm1)
			if z := y - h.xbar; z > 0 {
				w := &h.ci
				if z >= w.hi || z < w.lo {
					w.refill(z)
				}
				r := z - w.lo
				if r > w.c {
					r = w.c
				}
				ci += w.qc + r
			}
			if ci > capv {
				ci = capv
			}
			if d := ci - nc; d > best {
				best = d
			}
		}
		return omega + best
	}
	diffs := sc.diffs[:0]
	for j := range hw {
		// The windowed reads of workloadNC (Eq. 2) and workloadCI
		// (Eq. 4), written out inline: this loop runs once per
		// interferer per refinement and must not pay a call.
		h := &hw[j]
		var nc task.Time
		if y > 0 {
			w := &h.nc
			if y >= w.hi || y < w.lo {
				w.refill(y)
			}
			r := y - w.lo
			if r > w.c {
				r = w.c
			}
			nc = w.qc + r
			if nc > capv {
				nc = capv
			}
		}
		omega += nc
		ci := min(y, h.cm1)
		if z := y - h.xbar; z > 0 {
			w := &h.ci
			if z >= w.hi || z < w.lo {
				w.refill(z)
			}
			r := z - w.lo
			if r > w.c {
				r = w.c
			}
			ci += w.qc + r
		}
		if ci > capv {
			ci = capv
		}
		if d := ci - nc; d > 0 {
			diffs = append(diffs, diffTerm{v: d})
		}
	}
	sc.diffs = diffs
	if len(diffs) <= k {
		for i := range diffs {
			omega += diffs[i].v
		}
		return omega
	}
	// Top-k of the positive differences by bounded max-extraction; the
	// sum over the k largest values is selection-order independent, so
	// this matches the reference sort exactly.
	for pass := 0; pass < k; pass++ {
		best := 0
		for i := 1; i < len(diffs); i++ {
			if diffs[i].v > diffs[best].v {
				best = i
			}
		}
		omega += diffs[best].v
		diffs[best].v = -1
	}
	return omega
}

// omegaLine evaluates Eq. 6 at window length y exactly as
// omegaDominance does, and additionally reports the slope of Ω and the
// next breakpoint bp > y such that Ω is linear with that slope on
// [y, bp). It allocates nothing in steady state. The interferer band
// must be primed (primeHP) — MigratingWCRT always has.
func (sc *Scratch) omegaLine(y, cs task.Time) (omega, slope, bp task.Time) {
	capv := y - cs + 1
	bp = task.Infinity

	// Eq. 3: the partitioned RT band, one clamped staircase sum per
	// core, read through the same period windows as the fast path.
	start := 0
	rtWin := sc.rtWin
	for _, end := range sc.coreEnd {
		var wv, ws task.Time
		wb := task.Infinity
		wins := rtWin[start:end]
		start = end
		for i := range wins {
			win := &wins[i]
			if y >= win.hi || y < win.lo {
				win.refill(y)
			}
			if r := y - win.lo; r < win.c {
				wv += win.qc + r
				ws++
				if b := win.lo + win.c; b < wb {
					wb = b
				}
			} else {
				wv += win.qc + win.c
				if win.hi < wb {
					wb = win.hi
				}
			}
		}
		v, s, b := clampLine(y, cs, wv, ws, wb, capv)
		omega += v
		slope += s
		if b < bp {
			bp = b
		}
	}

	// Eq. 5: higher-priority migrating tasks. Every task contributes
	// its non-carry-in interference; the carry-in/non-carry-in
	// differences feed the top-(M−1) dominance selection (skipped
	// entirely when M == 1, where the carry-in set is empty).
	k := sc.sysM - 1
	diffs := sc.diffs[:0]
	hw := sc.hpWin
	for j := range hw {
		h := &hw[j]
		nv, ns, nb := h.nc.lineAt(y)
		nv, ns, nb = clampLine(y, cs, nv, ns, nb, capv)
		omega += nv
		slope += ns
		if nb < bp {
			bp = nb
		}
		if k > 0 {
			cv, cslope, cb := h.lineCI(y)
			cv, cslope, cb = clampLine(y, cs, cv, cslope, cb, capv)
			if cb < bp {
				bp = cb
			}
			diffs = append(diffs, diffTerm{v: cv - nv, s: cslope - ns})
		}
	}
	sc.diffs = diffs

	if len(diffs) > 0 {
		// Select the at-most-k largest positive differences by
		// bounded max-extraction (M is small; a full sort is waste).
		// Value ties break toward the larger slope so the selection
		// matches Ω's forward behaviour and stays stable for at least
		// one tick.
		nsel := 0
		for pass := 0; pass < k; pass++ {
			best := -1
			for i := range diffs {
				d := &diffs[i]
				if d.sel || d.v <= 0 {
					continue
				}
				if best < 0 || d.v > diffs[best].v || (d.v == diffs[best].v && d.s > diffs[best].s) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			diffs[best].sel = true
			nsel++
			omega += diffs[best].v
			slope += diffs[best].s
		}
		// The piece ends wherever the selected set could change: a
		// selected difference decaying to zero, a non-positive one
		// turning positive while slots are free, or an unselected one
		// overtaking a selected one with smaller slope.
		for i := range diffs {
			d := &diffs[i]
			if d.sel {
				if d.s < 0 {
					if b := satAdd(y, floorDiv(d.v-1, -d.s)+1); b < bp {
						bp = b
					}
				}
				continue
			}
			if d.v <= 0 && d.s <= 0 {
				continue
			}
			if d.v <= 0 && nsel < k {
				if b := satAdd(y, floorDiv(-d.v, d.s)+1); b < bp {
					bp = b
				}
				continue
			}
			for j := range diffs {
				sj := &diffs[j]
				if !sj.sel || sj.s >= d.s {
					continue
				}
				if b := satAdd(y, floorDiv(sj.v-d.v, d.s-sj.s)+1); b < bp {
					bp = b
				}
			}
		}
	}

	if bp <= y {
		bp = y + 1
	}
	return omega, slope, bp
}

// lineAt is workloadNC (Eq. 2) as a linear piece read through the
// cached window: value and slope at window length y, plus the
// absolute position of the next kink.
func (w *rtWindow) lineAt(y task.Time) (v, s, b task.Time) {
	if y <= 0 {
		// Below one tick the workload is pinned at zero; the first
		// job's ramp starts at y = 0.
		if w.c > 0 {
			return 0, 1, satAdd(y, w.c)
		}
		return 0, 0, task.Infinity
	}
	if y >= w.hi || y < w.lo {
		w.refill(y)
	}
	r := y - w.lo
	if r < w.c {
		return w.qc + r, 1, satAdd(y, w.c-r)
	}
	return w.qc + w.c, 0, satAdd(y, w.t-r)
}

// lineCI is workloadCI (Eq. 4) as a linear piece, read through the
// cached shifted window.
func (h *hpWindow) lineCI(y task.Time) (v, s, b task.Time) {
	var hv, hs, hb task.Time
	if y <= h.xbar {
		// The shifted staircase has not started: flat zero through
		// xbar, first ramp tick at xbar+1.
		hv, hs, hb = 0, 0, satAdd(h.xbar, 1)
	} else {
		hv, hs, hb = h.ci.lineAt(y - h.xbar)
		hb = satAdd(h.xbar, hb)
	}
	tv, ts, tb := h.cm1, task.Time(0), task.Infinity
	if y < h.cm1 {
		tv, ts, tb = y, 1, h.cm1+1
	}
	return hv + tv, hs + ts, min(hb, tb)
}

// clampLine applies the Eq. 3/5 interference clamp min(w, y−Cs+1) to a
// linear workload piece (wv, ws) valid until wb, tightening the kink
// to the clamp crossover when the two lines meet inside the piece
// (the clamp line has slope 1, so a crossover from below needs
// ws ≥ 2). While the clamp binds the term ignores the workload's
// internal kinks entirely, so the piece extends past wb to wherever
// the clamp could first release: the workload never shrinks, hence
// w(y) ≥ wv, and the cap line y−cs+1 cannot reach wv before
// y = wv + cs. That one observation turns the clamp-bound creep — the
// regime the iteration budget exists for — from a kink-by-kink walk
// into a single piece per clamp release.
func clampLine(y, cs, wv, ws, wb, capv task.Time) (task.Time, task.Time, task.Time) {
	if wv <= capv {
		b := wb
		if ws >= 2 {
			if cb := satAdd(y, floorDiv(capv-wv, ws-1)+1); cb < b {
				b = cb
			}
		}
		return wv, ws, b
	}
	b := satAdd(wv, cs)
	if ws >= 1 && wb > b {
		// The workload line outruns the cap line for as long as it
		// stays structurally valid, so the clamp holds to wb too.
		b = wb
	}
	return capv, 1, b
}

// responseTimes is ResponseTimes on the scratch: identical top-down
// computation, interferer list and result storage reused.
func (sc *Scratch) responseTimes(sec []task.SecurityTask, periods []task.Time, mode CarryInMode, resp []task.Time) []task.Time {
	resp = resp[:0]
	hp := sc.hp[:0]
	for i, s := range sec {
		r, ok := sc.MigratingWCRT(s.WCET, hp, s.MaxPeriod, mode)
		if !ok {
			// A diverged task still interferes with lower-priority
			// ones; bound its carry-in pessimistically with R = T so
			// the analysis of the rest remains sound.
			resp = append(resp, task.Infinity)
			hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: periods[i]})
			continue
		}
		resp = append(resp, r)
		hp = append(hp, Interferer{WCET: s.WCET, Period: periods[i], Resp: r})
	}
	sc.hp = hp[:0]
	return resp
}

// floorDiv returns ⌊a/b⌋ for b > 0 and any a (Go's / truncates toward
// zero, which differs for negative a).
func floorDiv(a, b task.Time) task.Time {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// satAdd adds a delta to a position, saturating at task.Infinity
// instead of wrapping (periods near the 2^62 sentinel would otherwise
// overflow the breakpoint arithmetic).
func satAdd(a, b task.Time) task.Time {
	if s := a + b; s >= a {
		return s
	}
	return task.Infinity
}
