package store_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac"
	"hydrac/internal/store"
	"hydrac/internal/wal"
)

func testBase() *hydrac.TaskSet {
	return &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 200, Core: -1, Priority: 0},
		},
	}
}

func newAnalyzer(t *testing.T) *hydrac.Analyzer {
	t.Helper()
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// monitorDelta is the k-th admissible probe delta of the tests'
// shared sequence.
func monitorDelta(k int) hydrac.Delta {
	return hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: fmt.Sprintf("mon%02d", k), WCET: 1,
		MaxPeriod: hydrac.Time(500 + 10*k), Core: -1, Priority: 100 + k,
	}}}
}

func setBytes(t *testing.T, set *hydrac.TaskSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hydrac.EncodeTaskSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reportBytes(t *testing.T, rep *hydrac.Report) []byte {
	t.Helper()
	cp := rep.Clone()
	cp.Timing = nil
	cp.FromCache = false
	var buf bytes.Buffer
	if err := hydrac.WriteReport(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// admitN drives n committed monitor deltas into sess.
func admitN(t *testing.T, sess *hydrac.Session, n int) {
	t.Helper()
	ctx := context.Background()
	for k := 0; k < n; k++ {
		_, admitted, err := sess.Admit(ctx, monitorDelta(k))
		if err != nil || !admitted {
			t.Fatalf("delta %d: admitted=%v err=%v", k, admitted, err)
		}
	}
}

// The tentpole property at store granularity: a recovered session's
// state AND its next report are byte-identical to a session that never
// restarted — including the placement cursor, which the probe delta's
// placement would expose if it drifted.
func TestRecoveredSessionBitIdentical(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()

	s, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "sess-a", testBase()); err != nil {
		t.Fatal(err)
	}
	sess, release, err := s.Acquire(ctx, "sess-a")
	if err != nil {
		t.Fatal(err)
	}
	admitN(t, sess, 5)
	wantSet := setBytes(t, sess.Set())
	wantCursor := sess.PlacementCursor()
	release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The uninterrupted twin: same base, same deltas, never persisted.
	twin, _, err := a.NewSession(ctx, testBase())
	if err != nil {
		t.Fatal(err)
	}
	admitN(t, twin, 5)

	s2, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	rec, release2, err := s2.Acquire(ctx, "sess-a")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if got := setBytes(t, rec.Set()); !bytes.Equal(got, wantSet) {
		t.Fatalf("recovered set differs:\ngot:  %s\nwant: %s", got, wantSet)
	}
	if got := rec.PlacementCursor(); got != wantCursor {
		t.Fatalf("recovered cursor = %d, want %d", got, wantCursor)
	}
	// Probe: the NEXT admission must also match byte-for-byte.
	recRep, recOK, err := rec.Admit(ctx, monitorDelta(5))
	if err != nil || !recOK {
		t.Fatalf("probe on recovered: admitted=%v err=%v", recOK, err)
	}
	twinRep, twinOK, err := twin.Admit(ctx, monitorDelta(5))
	if err != nil || !twinOK {
		t.Fatalf("probe on twin: admitted=%v err=%v", twinOK, err)
	}
	if !bytes.Equal(reportBytes(t, recRep), reportBytes(t, twinRep)) {
		t.Fatal("probe report after recovery differs from never-restarted session")
	}
}

// Compaction must preserve bit-identity and actually shed the old
// generation's files.
func TestCompactionRotatesGenerationsAndPreservesState(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()

	s, err := store.Open(dir, a, store.Options{CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "c", testBase()); err != nil {
		t.Fatal(err)
	}
	sess, release, err := s.Acquire(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	admitN(t, sess, 7) // 3 compactions (at 2, 4, 6) + 1 live record
	wantSet := setBytes(t, sess.Set())
	release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generations are gone: exactly one snapshot remains, and it
	// is not generation zero.
	ents, err := os.ReadDir(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatal(err)
	}
	var snaps, gen0 []string
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), "snap-") {
			snaps = append(snaps, de.Name())
		}
		if strings.HasPrefix(de.Name(), "g0-") {
			gen0 = append(gen0, de.Name())
		}
	}
	if len(snaps) != 1 || snaps[0] == "snap-0.json" {
		t.Fatalf("want exactly one post-compaction snapshot, got %v", snaps)
	}
	if len(gen0) != 0 {
		t.Fatalf("generation-0 WAL files survived compaction: %v", gen0)
	}

	s2, err := store.Open(dir, a, store.Options{CompactEvery: 2})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	rec, release2, err := s2.Acquire(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if got := setBytes(t, rec.Set()); !bytes.Equal(got, wantSet) {
		t.Fatal("state after compaction + recovery differs")
	}
}

// With MaxLive=1, creating a second session evicts the first; touching
// the first again re-hydrates it from disk with identical state.
func TestEvictionRehydratesTransparently(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	s, err := store.Open(t.TempDir(), a, store.Options{MaxLive: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// withSession acquires id, runs fn, and releases even when fn
	// fatals (defer runs during Goexit) — otherwise a failing
	// assertion would deadlock the deferred s.Close.
	withSession := func(id string, fn func(sess *hydrac.Session)) {
		t.Helper()
		sess, release, err := s.Acquire(ctx, id)
		if err != nil {
			t.Fatalf("acquire %s: %v", id, err)
		}
		defer release()
		fn(sess)
	}
	if _, err := s.Create(ctx, "first", testBase()); err != nil {
		t.Fatal(err)
	}
	var want []byte
	withSession("first", func(sess *hydrac.Session) {
		admitN(t, sess, 3)
		want = setBytes(t, sess.Set())
	})

	if _, err := s.Create(ctx, "second", testBase()); err != nil {
		t.Fatal(err) // evicts "first"
	}
	for round := 0; round < 3; round++ {
		// Evicts "second" and re-hydrates "first", then vice versa.
		withSession("first", func(sess *hydrac.Session) {
			if got := setBytes(t, sess.Set()); !bytes.Equal(got, want) {
				t.Fatalf("round %d: re-hydrated state differs", round)
			}
		})
		withSession("second", func(*hydrac.Session) {})
	}
	// Ops keep working across eviction boundaries.
	withSession("first", func(sess *hydrac.Session) {
		if _, admitted, err := sess.Admit(ctx, monitorDelta(3)); err != nil || !admitted {
			t.Fatalf("admit after re-hydration: admitted=%v err=%v", admitted, err)
		}
	})
}

func TestCreateValidation(t *testing.T) {
	ctx := context.Background()
	s, err := store.Open(t.TempDir(), newAnalyzer(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Create(ctx, "dup", testBase()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "dup", testBase()); !errors.Is(err, store.ErrExists) {
		t.Fatalf("duplicate id: got %v, want ErrExists", err)
	}
	for _, id := range []string{"", ".", "..", "a/b", "../escape", "no spaces", strings.Repeat("x", 129)} {
		if _, err := s.Create(ctx, id, testBase()); err == nil {
			t.Fatalf("id %q accepted", id)
		}
	}
	if _, _, err := s.Acquire(ctx, "missing"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("unknown id: got %v, want ErrNotFound", err)
	}
	ids := s.IDs()
	if len(ids) != 1 || ids[0] != "dup" {
		t.Fatalf("IDs() = %v", ids)
	}
}

// A WAL holding a delta the current analyzer denies must fail
// recovery loudly — serving a silently different state would betray
// an acknowledged commit.
func TestReplayDivergenceIsAnError(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()
	s, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "d", testBase()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a logged delta that can never be admitted: a security task
	// so heavy the band becomes unschedulable.
	var buf bytes.Buffer
	bad := hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: "crusher", WCET: 100, MaxPeriod: 101, Core: -1, Priority: 9,
	}}}
	if err := hydrac.EncodeDelta(&buf, &bad); err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(filepath.Join(dir, "d"), wal.Options{Prefix: "g0-"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := store.Open(dir, a, store.Options{}); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("recovery over a denied delta: got %v, want divergence error", err)
	}
}

// A directory that never reached its first snapshot (crash inside
// Create) is cleaned up, not served and not fatal.
func TestHalfCreatedSessionIsCleanedUp(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "halfborn"), 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir, newAnalyzer(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 0 {
		t.Fatalf("recovered %d sessions from a half-created dir, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "halfborn")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("half-created dir not removed: %v", err)
	}
}

// An unparseable latest snapshot must fail Open: falling back a
// generation would rewind acknowledged state.
func TestCorruptSnapshotFailsOpen(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()
	s, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "x", testBase()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "x", "snap-0.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir, a, store.Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

// NoSync stores still flush everything by Close: a graceful shutdown
// loses nothing even without per-commit fsync.
func TestNoSyncCloseFlushes(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()
	s, err := store.Open(dir, a, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(ctx, "n", testBase()); err != nil {
		t.Fatal(err)
	}
	sess, release, err := s.Acquire(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	admitN(t, sess, 3)
	want := setBytes(t, sess.Set())
	release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, release2, err := s2.Acquire(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if got := setBytes(t, rec.Set()); !bytes.Equal(got, want) {
		t.Fatal("NoSync store lost committed deltas across a graceful Close")
	}
}

// Concurrent traffic against a tiny live window: every op either
// completes or re-hydrates, never corrupts, and the survivors replay.
func TestConcurrentAcquireUnderEviction(t *testing.T) {
	ctx := context.Background()
	a := newAnalyzer(t)
	dir := t.TempDir()
	s, err := store.Open(dir, a, store.Options{MaxLive: 2})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	for i := 0; i < sessions; i++ {
		if _, err := s.Create(ctx, fmt.Sprintf("s%d", i), testBase()); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			id := fmt.Sprintf("s%d", i)
			for k := 0; k < 5; k++ {
				sess, release, err := s.Acquire(ctx, id)
				if err != nil {
					done <- fmt.Errorf("%s step %d: %w", id, k, err)
					return
				}
				_, admitted, err := sess.Admit(ctx, monitorDelta(k))
				release()
				if err != nil || !admitted {
					done <- fmt.Errorf("%s step %d: admitted=%v err=%v", id, k, admitted, err)
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything that was acknowledged survives a full restart.
	s2, err := store.Open(dir, a, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := setBytes(t, func() *hydrac.TaskSet {
		twin, _, err := a.NewSession(ctx, testBase())
		if err != nil {
			t.Fatal(err)
		}
		admitN(t, twin, 5)
		return twin.Set()
	}())
	for i := 0; i < sessions; i++ {
		rec, release, err := s2.Acquire(ctx, fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got := setBytes(t, rec.Set())
		release()
		if !bytes.Equal(got, want) {
			t.Fatalf("session s%d recovered to a different state", i)
		}
	}
}
