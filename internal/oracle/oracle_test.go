package oracle_test

import (
	"context"
	"testing"

	"hydrac/internal/admit"
	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/oracle"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

// smallConfig keeps the sets tractable for the linear-scan oracle:
// tick-resolution periods a couple of hundred ticks long at most.
func smallConfig(cores int) gen.Config {
	return gen.Config{
		Cores:           cores,
		RTTasksMin:      2 * cores,
		RTTasksMax:      4 * cores,
		SecTasksMin:     2,
		SecTasksMax:     4,
		RTPeriodMin:     10,
		RTPeriodMax:     40,
		SecMaxPeriodMin: 50,
		SecMaxPeriodMax: 150,
		SecurityShare:   0.35,
		Groups:          9,
		SetsPerGroup:    1,
		Partition:       partition.BestFit,
		MaxAttempts:     60,
		TicksPerMS:      1,
	}
}

func sameResult(t *testing.T, label string, want *core.Result, gotSched bool, gotPeriods, gotResp []task.Time) {
	t.Helper()
	if want.Schedulable != gotSched {
		t.Fatalf("%s: schedulable=%v, want %v", label, gotSched, want.Schedulable)
	}
	if !want.Schedulable {
		return
	}
	for i := range want.Periods {
		if want.Periods[i] != gotPeriods[i] {
			t.Fatalf("%s: period[%d]=%d, want %d", label, i, gotPeriods[i], want.Periods[i])
		}
		if want.Resp[i] != gotResp[i] {
			t.Fatalf("%s: resp[%d]=%d, want %d", label, i, gotResp[i], want.Resp[i])
		}
	}
}

// TestDifferentialOracle cross-checks four implementations of period
// selection on ~1k generated sets: Algorithm 2's binary search, its
// linear-scan ablation, the from-scratch oracle, and the incremental
// admission engine replaying the security band one task at a time.
// All four must agree bit for bit.
func TestDifferentialOracle(t *testing.T) {
	perGroup := 60
	if testing.Short() {
		perGroup = 8
	}
	ctx := context.Background()
	const seedBase = 20260729
	sets, unschedulable, verified := 0, 0, 0
	for _, cores := range []int{1, 2} {
		cfg := smallConfig(cores)
		for g := 0; g < cfg.Groups; g++ {
			for i := 0; i < perGroup; i++ {
				ts, err := cfg.GenerateAt(seedBase, g, i)
				if err != nil {
					continue // no partitionable draw in this slot
				}
				sets++
				cold, err := core.SelectPeriods(ts, core.Options{})
				if err != nil {
					t.Fatalf("cores=%d g=%d i=%d: cold selection failed on a generated set: %v", cores, g, i, err)
				}
				lin, err := core.SelectPeriods(ts, core.Options{LinearSearch: true})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "linear-scan ablation", cold, lin.Schedulable, lin.Periods, lin.Resp)
				ora, err := oracle.SelectPeriods(ts)
				if err != nil {
					t.Fatalf("cores=%d g=%d i=%d: oracle failed: %v", cores, g, i, err)
				}
				sameResult(t, "naive oracle", cold, ora.Schedulable, ora.Periods, ora.Resp)
				logOra, err := oracle.SelectPeriodsLog(ts)
				if err != nil {
					t.Fatalf("cores=%d g=%d i=%d: binary-search oracle failed: %v", cores, g, i, err)
				}
				sameResult(t, "binary-search oracle", cold, logOra.Schedulable, logOra.Periods, logOra.Resp)
				if err := oracle.VerifySelection(ts, cold.Schedulable, cold.Periods, cold.Resp, 1); err != nil {
					t.Fatalf("cores=%d g=%d i=%d: from-scratch verifier rejected the kernel: %v", cores, g, i, err)
				}
				if !cold.Schedulable {
					unschedulable++
				}
				verified += incrementalReplay(t, ctx, ts, cold)
			}
		}
	}
	if sets < 500 && !testing.Short() {
		t.Fatalf("only %d sets generated; corpus too thin to mean anything", sets)
	}
	if unschedulable == 0 {
		t.Error("corpus never exercised the unschedulable path")
	}
	if verified == 0 {
		t.Error("incremental replay never hit the verification fast path")
	}
	t.Logf("%d sets (%d unschedulable), %d hinted verifications", sets, unschedulable, verified)
}

// incrementalReplay admits ts's security tasks one at a time into an
// engine seeded with the RT band only, asserting every intermediate
// and the final state against a cold analysis of the same set. Returns
// the number of hint verifications the engine performed.
func incrementalReplay(t *testing.T, ctx context.Context, ts *task.Set, cold *core.Result) int {
	t.Helper()
	rtOnly := ts.Clone()
	rtOnly.Security = nil
	eng, _, err := admit.New(ctx, rtOnly, admit.Config{})
	if err != nil {
		t.Fatalf("engine rejected an RT band the generator partitioned: %v", err)
	}
	verified := 0
	for i, s := range ts.Security {
		out, err := eng.Apply(ctx, task.Delta{AddSecurity: []task.SecurityTask{s}})
		if err != nil {
			t.Fatalf("admitting %s: %v", s.Name, err)
		}
		verified += out.Stats.Selection.Verified
		stepCold, err := core.SelectPeriods(out.Set, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "incremental step", stepCold, out.Result.Schedulable, out.Result.Periods, out.Result.Resp)
		if !out.Admitted {
			// A subset is already unschedulable; the full set must be
			// too (admitting more tasks only adds interference).
			if cold.Schedulable {
				t.Fatalf("prefix through %s denied but the full set is schedulable", s.Name)
			}
			return verified
		}
		if i == len(ts.Security)-1 {
			sameResult(t, "final incremental state", cold, out.Result.Schedulable, out.Result.Periods, out.Result.Resp)
		}
	}
	return verified
}
