package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hydrac"
	"hydrac/internal/wal"
)

// ErrMoved reports a session this store USED to hold but handed off
// to another node: the local copy was surrendered and deleted, so the
// caller should re-route to the session's new owner rather than treat
// it as missing.
var ErrMoved = errors.New("store: session was handed off to another node")

// Export is one session's complete durable state in transfer form:
// the latest snapshot's placed set (raw task-file JSON) and placement
// cursor, plus every committed delta logged since that snapshot, in
// commit order. Importing it through the standard recovery replay
// reproduces the session bit-identically — the same machinery, and
// the same guarantee, as a crash restart.
type Export struct {
	// Set is the snapshot's task set, in the standard file schema.
	Set json.RawMessage
	// Cursor is the snapshot's next-fit placement cursor.
	Cursor int
	// Deltas are the WAL records (encoded deltas) after the snapshot.
	Deltas [][]byte
}

// Detach hands the session off: it freezes the session (waiting out
// in-flight operations), reads its snapshot + committed-delta log
// from disk, and calls transfer with the export. Only if transfer
// returns nil is the local copy surrendered — marked moved (further
// Acquires return ErrMoved) and deleted from disk, so a restart can
// never resurrect a stale twin of a session another node now owns.
// On transfer failure the session stays fully local and intact: the
// next Acquire re-hydrates it from the untouched disk state.
//
// The entry lock is held across transfer, so a concurrent request for
// this session blocks until the handoff settles and then either gets
// the intact local session (failure) or ErrMoved (success) — never a
// window where the state exists on both nodes or neither.
func (s *Store) Detach(ctx context.Context, id string, transfer func(Export) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	e := s.entries[id]
	_, wasMoved := s.movedIDs[id]
	s.mu.Unlock()
	if e == nil {
		if wasMoved {
			return fmt.Errorf("%w: %s", ErrMoved, id)
		}
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	e.mu.Lock()
	if e.moved {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrMoved, id)
	}
	// Close the live state first so the disk holds everything (a
	// NoSync WAL may have unsynced appends; Close flushes them) and
	// export from files, not memory — the bytes shipped are exactly
	// the bytes a restart would recover from.
	if e.wal != nil {
		_ = e.wal.Close()
	}
	e.sess, e.wal = nil, nil
	exp, err := s.exportLocked(e)
	if err != nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: exporting session %s: %v", ErrStorage, id, err)
	}
	if err := transfer(exp); err != nil {
		e.mu.Unlock()
		return fmt.Errorf("store: handing off session %s: %w", id, err)
	}
	e.moved = true
	// The receiver acknowledged: it is authoritative now. Deleting the
	// local directory is part of correctness, not cleanup — two nodes
	// must never both recover this id.
	if err := os.RemoveAll(e.dir); err != nil {
		s.logf("store: removing handed-off session %s: %v", id, err)
	}
	e.mu.Unlock()
	// Lock order: s.mu is never taken under e.mu, so drop the entry
	// lock first. The live LRU may still reference e; its eviction
	// close is a no-op on an already-torn-down entry.
	s.mu.Lock()
	delete(s.entries, id)
	s.movedIDs[id] = struct{}{}
	s.mu.Unlock()
	return nil
}

// exportLocked reads e's durable state from disk. e.mu must be
// write-held with the live WAL handle closed.
func (s *Store) exportLocked(e *entry) (Export, error) {
	gen, raw, cursor, err := readLatestSnapshotRaw(e.dir)
	if err != nil {
		return Export{}, err
	}
	recs, err := wal.ReadAll(e.dir, s.walOptions(gen))
	if err != nil {
		return Export{}, err
	}
	return Export{Set: raw, Cursor: cursor, Deltas: recs}, nil
}

// Import installs a session streamed from another node: persist the
// export as generation 0 (snapshot, then every delta appended to a
// fresh WAL), then recover it through the standard replay path. An
// import is therefore indistinguishable from a restart of a local
// session — same code, same bit-identity guarantee — and the session
// is fully durable before Import returns. ErrExists if the id is
// already held.
func (s *Store) Import(ctx context.Context, id string, exp Export) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid session id %q (want 1-128 chars of [a-zA-Z0-9_-])", id)
	}
	e := &entry{id: id, dir: filepath.Join(s.dir, id)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if _, ok := s.entries[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	s.entries[id] = e
	// The id may have left this node earlier and is now legitimately
	// coming back (a drain bounced it around the ring): the tombstone
	// is obsolete.
	delete(s.movedIDs, id)
	s.mu.Unlock()

	e.mu.Lock()
	err := s.importLocked(ctx, e, exp)
	e.mu.Unlock()
	if err != nil {
		s.mu.Lock()
		delete(s.entries, id)
		s.mu.Unlock()
		_ = os.RemoveAll(e.dir)
		return err
	}
	s.live.Add(id, e)
	return nil
}

// importLocked persists exp into e's directory and rehydrates. e.mu
// must be write-held. Input errors (undecodable set, replay
// divergence) come back raw; disk failures wrap ErrStorage.
func (s *Store) importLocked(ctx context.Context, e *entry, exp Export) error {
	// Validate the payload decodes BEFORE creating anything on disk.
	set, err := hydrac.DecodeTaskSet(bytes.NewReader(exp.Set))
	if err != nil {
		return fmt.Errorf("handoff snapshot set: %w", err)
	}
	if err := os.MkdirAll(e.dir, 0o755); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	if err := writeSnapshot(s.fs, e.dir, 0, set, exp.Cursor); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	l, _, err := wal.Open(e.dir, s.walOptions(0))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	for i, rec := range exp.Deltas {
		if err := l.Append(rec); err != nil {
			_ = l.Close()
			return fmt.Errorf("%w: persisting handoff delta %d: %v", ErrStorage, i, err)
		}
	}
	if err := l.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrStorage, err)
	}
	// Recover from what was just persisted — replay validates every
	// delta re-admits, exactly as a restart would.
	return s.rehydrate(ctx, e)
}

// readLatestSnapshotRaw is readLatestSnapshot without decoding the
// set: handoff ships the snapshot's raw bytes so the receiver
// persists exactly what the sender held.
func readLatestSnapshotRaw(dir string) (gen uint64, set json.RawMessage, cursor int, err error) {
	gens, err := listSnapshotGens(dir)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(gens) == 0 {
		return 0, nil, 0, fmt.Errorf("no snapshot in %s", dir)
	}
	gen = gens[len(gens)-1]
	raw, err := os.ReadFile(snapshotPath(dir, gen))
	if err != nil {
		return 0, nil, 0, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return 0, nil, 0, fmt.Errorf("parsing snapshot generation %d: %w", gen, err)
	}
	if sf.Version != snapshotVersion {
		return 0, nil, 0, fmt.Errorf("snapshot generation %d has version %d, this build reads %d", gen, sf.Version, snapshotVersion)
	}
	return gen, sf.Set, sf.NextFit, nil
}
