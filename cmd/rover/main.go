// Command rover reproduces the paper's embedded-platform experiments
// (§5.1, Figs. 5a and 5b) on the simulated RPi3 rover: intrusion
// detection latency and context-switch overhead for HYDRA-C vs HYDRA,
// plus the controlled pinned-vs-migrating comparison and the Table 2
// platform summary.
//
// Usage:
//
//	rover [-trials N] [-seed S] [-objects N] [-parallel N] [-progress]
//	      [-hist] [-table2]
//
// -parallel shards the trials over N workers (0 = all CPUs); for a
// fixed seed the output is identical at any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hydrac/internal/experiments"
	"hydrac/internal/metrics"
	"hydrac/internal/rover"
	"hydrac/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	trials := fs.Int("trials", 35, "number of attack trials (paper: 35)")
	seed := fs.Int64("seed", 1, "random seed")
	objects := fs.Int("objects", 64, "files in the protected image store")
	parallel := fs.Int("parallel", 0, "trial workers: 0 = all CPUs, 1 = serial; results are identical at any value")
	progress := fs.Bool("progress", false, "report trial progress on stderr")
	table2 := fs.Bool("table2", false, "print the Table 2 platform summary and exit")
	hist := fs.Bool("hist", false, "also print detection-latency histograms")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *table2 {
		fmt.Fprint(stdout, rover.TableTwo())
		return 0
	}

	cfg := rover.DefaultTrialConfig()
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.Objects = *objects
	cfg.Parallel = *parallel
	if *progress {
		// experiments.Fig5 rebases (done, total) over all its sweeps,
		// so one throttled printer covers the whole run. Each trial is
		// replayed once per comparison sweep, hence "trial runs": the
		// total is a multiple of -trials, not the trial count itself.
		cfg.Progress = sweep.ProgressPrinter(stderr, "rover: trial runs")
	}

	res, err := experiments.Fig5(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "rover:", err)
		return 1
	}
	fmt.Fprint(stdout, res.Render())

	if *hist {
		hi := res.HydraC.DetectionMS.Max()
		if h2 := res.Hydra.DetectionMS.Max(); h2 > hi {
			hi = h2
		}
		for _, s := range []*rover.SchemeResult{res.HydraC, res.Hydra} {
			fmt.Fprintf(stdout, "\n%s detection-latency distribution (ms):\n", s.Scheme)
			h := metrics.NewHistogram(0, hi+1, 8)
			h.AddSample(&s.DetectionMS)
			fmt.Fprint(stdout, h.Render(40))
		}
	}
	return 0
}
