module hydrac

go 1.21
