package hydradhttp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hydrac"
	"hydrac/internal/fleet"
	"hydrac/internal/hydradhttp"
	"hydrac/internal/store"
)

// fleetNode is one in-process fleet member: a real listener (the URL
// is needed before the handler exists, since every handler's fleet
// view must carry all URLs) behind a swappable handler. mw, when set,
// wraps every request — fault-injection tests use it to sabotage
// specific exchanges (e.g. eat a handoff acknowledgement).
type fleetNode struct {
	srv     *httptest.Server
	handler atomic.Pointer[hydradhttp.Handler]
	mw      atomic.Pointer[func(http.Handler) http.Handler]
	fl      *fleet.Fleet
	st      *store.Store
}

func (n *fleetNode) url() string { return n.srv.URL }

// startFleetPair boots two fleet members. durable=true gives each its
// own store; false runs memory-mode sessions.
func startFleetPair(t *testing.T, durable bool) (a, b *fleetNode) {
	t.Helper()
	an, err := hydrac.New(hydrac.WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*fleetNode{{}, {}}
	for _, n := range nodes {
		n := n
		n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := n.handler.Load()
			if h == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			var serve http.Handler = h
			if wrap := n.mw.Load(); wrap != nil {
				serve = (*wrap)(serve)
			}
			serve.ServeHTTP(w, r)
		}))
		t.Cleanup(n.srv.Close)
	}
	peers := []string{nodes[0].url(), nodes[1].url()}
	for _, n := range nodes {
		fl, err := fleet.New(fleet.Options{Self: n.url(), Peers: peers, ProbeEvery: -1, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		n.fl = fl
		cfg := hydradhttp.Config{Analyzer: an, MaxSessions: 64, CacheSize: 16, Fleet: fl, Logf: t.Logf}
		if durable {
			st, err := store.Open(t.TempDir(), an, store.Options{ProbeEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			n.st = st
			cfg.Store = st
		}
		n.handler.Store(hydradhttp.NewHandler(cfg))
	}
	return nodes[0], nodes[1]
}

// noRedirect returns a client that surfaces 307s instead of following
// them, so tests can assert the redirect envelope itself.
func noRedirect() *http.Client {
	return &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
}

func TestFleetCreateMintsSelfOwnedIDs(t *testing.T) {
	a, b := startFleetPair(t, false)
	for i := 0; i < 8; i++ {
		id := createSession(t, a.url())
		if !a.fl.Owns(id) {
			t.Fatalf("node A minted id %s it does not own", id)
		}
		if b.fl.Owns(id) {
			t.Fatalf("both nodes claim id %s", id)
		}
	}
}

// A non-owner answers 307 + X-Hydra-Owner + Location, and following
// the Location serves the session — both for GET and for POST admit
// (307 preserves method and body).
func TestFleetNonOwnerRedirects(t *testing.T) {
	a, b := startFleetPair(t, true)
	id := createSession(t, a.url())

	nr := noRedirect()
	resp, err := nr.Get(b.url() + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("GET on non-owner: %d, want 307", resp.StatusCode)
	}
	if owner := resp.Header.Get("X-Hydra-Owner"); owner != a.url() {
		t.Fatalf("X-Hydra-Owner = %q, want %q", owner, a.url())
	}
	if loc := resp.Header.Get("Location"); loc != a.url()+"/v1/session/"+id {
		t.Fatalf("Location = %q", loc)
	}

	// A standards-following client (http.Post replays the body on 307)
	// admits through the wrong node transparently.
	resp2, body := post(t, b.url()+"/v1/session/"+id+"/admit", admitBody(t, 0))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("admit via non-owner: %d %s", resp2.StatusCode, body)
	}
	if resp2.Header.Get("X-Hydra-Admitted") != "true" {
		t.Fatalf("delta not admitted: %s", body)
	}
}

// Drain hands every durable session to the peer; the drained node
// then redirects session traffic and new creates, and its healthz
// says draining.
func TestFleetDrainHandsOffAndRedirects(t *testing.T) {
	a, b := startFleetPair(t, true)
	var ids []string
	for i := 0; i < 3; i++ {
		id := createSession(t, a.url())
		resp, body := post(t, a.url()+"/v1/session/"+id+"/admit", admitBody(t, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit: %d %s", resp.StatusCode, body)
		}
		ids = append(ids, id)
	}
	// Control states, captured before the drain.
	want := map[string][]byte{}
	for _, id := range ids {
		resp, body := get(t, a.url()+"/v1/session/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-drain GET: %d", resp.StatusCode)
		}
		want[id] = body
	}

	moved, kept := a.handler.Load().Drain(context.Background())
	if moved != len(ids) || kept != 0 {
		t.Fatalf("Drain moved %d kept %d, want %d/0", moved, kept, len(ids))
	}

	// The drained node's healthz reports draining.
	resp, body := get(t, a.url()+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
		Fleet  struct {
			Self  string `json:"self"`
			Peers []struct {
				Addr  string `json:"addr"`
				State string `json:"state"`
			} `json:"peers"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz body: %v (%s)", err, body)
	}
	if hz.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", hz.Status)
	}
	if hz.Fleet.Self != a.url() || len(hz.Fleet.Peers) != 2 {
		t.Fatalf("healthz fleet block: %+v", hz.Fleet)
	}

	// Sessions now live on B, bit-identical, and A redirects to B.
	nr := noRedirect()
	for _, id := range ids {
		resp, err := nr.Get(a.url() + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("drained node GET: %d, want 307", resp.StatusCode)
		}
		if owner := resp.Header.Get("X-Hydra-Owner"); owner != b.url() {
			t.Fatalf("post-drain owner %q, want %q", owner, b.url())
		}
		got, body := get(t, b.url()+"/v1/session/"+id)
		if got.StatusCode != http.StatusOK {
			t.Fatalf("GET on new owner: %d %s", got.StatusCode, body)
		}
		if !bytes.Equal(body, want[id]) {
			t.Fatalf("session %s state diverged across handoff:\ngot  %s\nwant %s", id, body, want[id])
		}
	}

	// New creates on the draining node redirect to a healthy peer.
	resp3, err := nr.Post(a.url()+"/v1/session", "application/json", bytes.NewReader(baseBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("create on draining node: %d, want 307", resp3.StatusCode)
	}
	if owner := resp3.Header.Get("X-Hydra-Owner"); owner != b.url() {
		t.Fatalf("create redirect owner %q", owner)
	}

	// And a draining node refuses incoming handoffs.
	hreq, _ := json.Marshal(map[string]any{
		"version": 1, "session_id": "bounce", "next_fit": 0,
		"set": json.RawMessage(baseBody(t)), "deltas": []json.RawMessage{},
	})
	resp4, _ := post(t, a.url()+"/v1/handoff", hreq)
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("handoff to draining node: %d, want 503", resp4.StatusCode)
	}
}

// Handoff replays into memory mode too: no -data-dir on the receiver
// still accepts the stream (durability is per-node).
func TestFleetHandoffIntoMemoryMode(t *testing.T) {
	a, b := startFleetPair(t, false)
	id := createSession(t, b.url())
	for i := 0; i < 2; i++ {
		resp, body := post(t, b.url()+"/v1/session/"+id+"/admit", admitBody(t, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit: %d %s", resp.StatusCode, body)
		}
	}
	_, wantBody := get(t, b.url()+"/v1/session/"+id)

	// Hand the session to A by hand (memory mode has no Drain path):
	// ship the CURRENT set as snapshot with no deltas.
	hreq, _ := json.Marshal(map[string]any{
		"version": 1, "session_id": "copy-" + id, "next_fit": 0,
		"set": json.RawMessage(wantBody), "deltas": []json.RawMessage{},
	})
	resp, body := post(t, a.url()+"/v1/handoff", hreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: %d %s", resp.StatusCode, body)
	}
	// Duplicate import conflicts.
	resp2, _ := post(t, a.url()+"/v1/handoff", hreq)
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate handoff: %d, want 409", resp2.StatusCode)
	}
	// Bad version rejected.
	bad, _ := json.Marshal(map[string]any{"version": 99, "session_id": "x", "set": json.RawMessage(wantBody)})
	resp3, _ := post(t, a.url()+"/v1/handoff", bad)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad version: %d, want 400", resp3.StatusCode)
	}
}

// healthz carries uptime_seconds on plain single-node daemons too.
func TestHealthzUptime(t *testing.T) {
	a, err := hydrac.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hydradhttp.NewHandler(hydradhttp.Config{Analyzer: a}))
	defer srv.Close()
	_, body := get(t, srv.URL+"/healthz")
	var hz struct {
		Uptime *float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Uptime == nil || *hz.Uptime < 0 {
		t.Fatalf("uptime_seconds missing or negative in %s", body)
	}
}

// seedSessions creates n sessions on node a with one admitted delta
// each and returns their ids and control bodies.
func seedSessions(t *testing.T, a *fleetNode, n int) (ids []string, want map[string][]byte) {
	t.Helper()
	want = map[string][]byte{}
	for i := 0; i < n; i++ {
		id := createSession(t, a.url())
		resp, body := post(t, a.url()+"/v1/session/"+id+"/admit", admitBody(t, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit: %d %s", resp.StatusCode, body)
		}
		resp2, body2 := get(t, a.url()+"/v1/session/"+id)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("pre-drain GET: %d", resp2.StatusCode)
		}
		ids = append(ids, id)
		want[id] = body2
	}
	return ids, want
}

// The 'no twins' guarantee under a lost acknowledgement: the receiver
// durably commits the import but the sender never sees the 200 (eaten
// here by a middleware that answers 500 instead). The sender's retry
// carries the same handoff token, so the receiver acknowledges the
// duplicate and the session ends up on exactly one node — previously
// the retry answered 409, the sender kept its copy, and both nodes
// held diverging twins.
func TestFleetHandoffRetryAfterLostAck(t *testing.T) {
	a, b := startFleetPair(t, true)
	ids, want := seedSessions(t, a, 2)

	var eaten atomic.Int32
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/handoff" && eaten.Add(1) == 1 {
				// Commit for real, then lose the acknowledgement.
				next.ServeHTTP(httptest.NewRecorder(), r)
				http.Error(w, "ack lost", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	b.mw.Store(&mw)

	moved, kept := a.handler.Load().Drain(context.Background())
	if moved != len(ids) || kept != 0 {
		t.Fatalf("Drain moved %d kept %d, want %d/0", moved, kept, len(ids))
	}
	if eaten.Load() < 2 {
		t.Fatalf("sabotage never triggered a retry (saw %d handoff POSTs)", eaten.Load())
	}
	// Exactly one node holds each session: B serves it bit-identically,
	// A redirects (its copy is gone, not kept).
	nr := noRedirect()
	for _, id := range ids {
		got, body := get(t, b.url()+"/v1/session/"+id)
		if got.StatusCode != http.StatusOK {
			t.Fatalf("GET on receiver: %d %s", got.StatusCode, body)
		}
		if !bytes.Equal(body, want[id]) {
			t.Fatalf("session %s diverged across retried handoff:\ngot  %s\nwant %s", id, body, want[id])
		}
		resp, err := nr.Get(a.url() + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("sender answered %d for moved session, want 307 (twin kept alive?)", resp.StatusCode)
		}
	}
}

// When every POST acknowledgement is lost and the retry budget runs
// dry, the sender's last resort is the confirm probe: GET /v1/handoff
// asks the receiver whether the transfer committed, and a definite
// yes lets the drain surrender the local copy instead of keeping a
// twin.
func TestFleetHandoffConfirmRescuesLostAcks(t *testing.T) {
	a, b := startFleetPair(t, true)
	ids, want := seedSessions(t, a, 1)

	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/handoff" {
				next.ServeHTTP(httptest.NewRecorder(), r)
				http.Error(w, "ack lost", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	b.mw.Store(&mw)

	moved, kept := a.handler.Load().Drain(context.Background())
	if moved != 1 || kept != 0 {
		t.Fatalf("Drain moved %d kept %d, want 1/0 (confirm probe should rescue the handoff)", moved, kept)
	}
	got, body := get(t, b.url()+"/v1/session/"+ids[0])
	if got.StatusCode != http.StatusOK || !bytes.Equal(body, want[ids[0]]) {
		t.Fatalf("receiver state after confirm-rescued handoff: %d %s", got.StatusCode, body)
	}
}

// A failover successor that holds no copy answers 503, not a redirect:
// the only durable copy is on the downed owner, and 307ing to the next
// healthy peer — equally copyless — would make two healthy nodes
// redirect each other until the client's hop cap.
func TestFleetFailoverWithoutCopyAnswers503(t *testing.T) {
	a, b := startFleetPair(t, true)
	id := createSession(t, a.url())

	// Take the owner down and let B's prober notice (DownAfter = 2).
	a.srv.Close()
	for i := 0; i < 2; i++ {
		b.fl.ProbeOnce(context.Background())
	}

	resp, err := noRedirect().Get(b.url() + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failover miss answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("owner-down 503 carries no Retry-After")
	}
}

// An aborted drain accounts for every session exactly once:
// moved + kept must equal the starting population, with the
// not-yet-processed remainder counted as kept.
func TestFleetDrainAbortAccounting(t *testing.T) {
	a, b := startFleetPair(t, true)
	const n = 4
	seedSessions(t, a, n)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var posts atomic.Int32
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/handoff" && posts.Add(1) == 3 {
				// Abort the drain mid-flight: the 3rd transfer fails
				// and everything after it stays unprocessed.
				cancel()
				http.Error(w, "aborting", http.StatusServiceUnavailable)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	b.mw.Store(&mw)

	moved, kept := a.handler.Load().Drain(ctx)
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	if moved+kept != n {
		t.Fatalf("moved %d + kept %d = %d, want the full population %d", moved, kept, moved+kept, n)
	}
}

// Memory-mode receivers honour the handoff token too: a duplicate of
// a committed transfer is acknowledged, a mismatched token conflicts,
// and the confirm probe answers exactly for the committed token.
func TestFleetHandoffTokenMemoryMode(t *testing.T) {
	a, _ := startFleetPair(t, false)

	mk := func(id, token string) []byte {
		body, _ := json.Marshal(map[string]any{
			"version": 1, "session_id": id, "token": token, "next_fit": 0,
			"set": json.RawMessage(baseBody(t)), "deltas": []json.RawMessage{},
		})
		return body
	}
	resp, body := post(t, a.url()+"/v1/handoff", mk("tok-sess", "tok-A"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: %d %s", resp.StatusCode, body)
	}
	// Same token: acknowledged duplicate.
	resp2, body2 := post(t, a.url()+"/v1/handoff", mk("tok-sess", "tok-A"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retried handoff with matching token: %d %s, want 200", resp2.StatusCode, body2)
	}
	// Different token: genuine conflict.
	resp3, _ := post(t, a.url()+"/v1/handoff", mk("tok-sess", "tok-B"))
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("handoff with mismatched token: %d, want 409", resp3.StatusCode)
	}

	// The confirm probe: yes for the committed token, no otherwise.
	check := func(query string, want int) {
		t.Helper()
		resp, err := http.Get(a.url() + "/v1/handoff" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET /v1/handoff%s: %d, want %d", query, resp.StatusCode, want)
		}
	}
	check("?session=tok-sess&token=tok-A", http.StatusOK)
	check("?session=tok-sess&token=tok-B", http.StatusNotFound)
	check("?session=other&token=tok-A", http.StatusNotFound)
	check("?session=tok-sess", http.StatusBadRequest)

	// Unsupported methods still 405.
	req, _ := http.NewRequest(http.MethodPut, a.url()+"/v1/handoff", nil)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/handoff: %d, want 405", resp4.StatusCode)
	}
}
