package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm Time }{
		{4, 6, 2, 12},
		{7, 13, 1, 91},
		{10, 10, 10, 10},
		{1, 9, 1, 9},
		{12, 18, 6, 36},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, g, c.gcd)
		}
		if l := LCM(c.a, c.b); l != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, l, c.lcm)
		}
	}
	if LCM(0, 5) != 0 || LCM(5, 0) != 0 {
		t.Error("LCM with zero must be 0")
	}
}

func TestLCMSaturates(t *testing.T) {
	big := Time(1) << 61
	if got := LCM(big, big-1); got != Infinity {
		t.Errorf("overflowing LCM = %d, want Infinity", got)
	}
}

func TestLCMProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := 1 + Time(rng.Intn(1000))
		b := 1 + Time(rng.Intn(1000))
		l := LCM(a, b)
		return l%a == 0 && l%b == 0 && l >= a && l >= b && l <= a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHyperperiod(t *testing.T) {
	ts := &Set{
		Cores: 1,
		RT: []RTTask{
			{Name: "a", WCET: 1, Period: 4, Deadline: 4, Core: 0},
			{Name: "b", WCET: 1, Period: 6, Deadline: 6, Core: 0},
		},
		Security: []SecurityTask{
			{Name: "s", WCET: 1, MaxPeriod: 10, Period: 10, Priority: 0, Core: -1},
		},
	}
	if h := ts.Hyperperiod(); h != 60 {
		t.Errorf("hyperperiod = %d, want 60", h)
	}
	// Unassigned security period falls back to Tmax.
	ts.Security[0].Period = 0
	if h := ts.Hyperperiod(); h != 60 {
		t.Errorf("hyperperiod with Tmax fallback = %d, want 60", h)
	}
	empty := &Set{Cores: 1}
	if h := empty.Hyperperiod(); h != 0 {
		t.Errorf("empty hyperperiod = %d", h)
	}
}

func TestSimulationHorizon(t *testing.T) {
	ts := &Set{
		Cores: 1,
		RT: []RTTask{
			{Name: "a", WCET: 1, Period: 4, Deadline: 4, Core: 0},
			{Name: "b", WCET: 1, Period: 6, Deadline: 6, Core: 0},
		},
	}
	// Hyperperiod 12 fits under the cap.
	if h := ts.SimulationHorizon(1000, 5); h != 12 {
		t.Errorf("horizon = %d, want hyperperiod 12", h)
	}
	// Co-prime large periods: fall back to cycles × longest.
	ts.RT[0].Period = 997
	ts.RT[1].Period = 1009
	if h := ts.SimulationHorizon(10000, 5); h != 5*1009 {
		t.Errorf("horizon = %d, want %d", h, 5*1009)
	}
	// Cap binds last.
	if h := ts.SimulationHorizon(3000, 5); h != 3000 {
		t.Errorf("capped horizon = %d, want 3000", h)
	}
}
