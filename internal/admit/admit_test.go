package admit

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/partition"
	"hydrac/internal/task"
)

func baseSet() *task.Set {
	return &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
			{Name: "rt2", WCET: 4, Period: 40, Deadline: 40, Core: 0, Priority: 2},
		},
		Security: []task.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 200, Core: -1, Priority: 0},
			{Name: "sec1", WCET: 3, MaxPeriod: 400, Core: -1, Priority: 1},
		},
	}
}

// coldResult is the reference: a from-scratch Algorithm 1 run over the
// engine's committed (placed) state.
func coldResult(t *testing.T, ts *task.Set) *core.Result {
	t.Helper()
	res, err := core.SelectPeriods(ts, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEngineBaseMatchesCold(t *testing.T) {
	eng, out, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || !out.Result.Schedulable {
		t.Fatalf("base not admitted: %+v", out)
	}
	if !reflect.DeepEqual(out.Result, coldResult(t, eng.Snapshot())) {
		t.Fatal("base analysis diverged from cold")
	}
	if !out.Stats.FullSelection {
		t.Error("base analysis should have no hints")
	}
}

func TestEngineAdmitSecurityMatchesCold(t *testing.T) {
	eng, _, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Apply(context.Background(), task.Delta{
		AddSecurity: []task.SecurityTask{{Name: "sec2", WCET: 1, MaxPeriod: 300, Core: -1, Priority: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted {
		t.Fatal("schedulable admission denied")
	}
	if !reflect.DeepEqual(out.Result, coldResult(t, out.Set)) {
		t.Fatal("incremental admission diverged from cold analysis of the final set")
	}
	if out.Stats.FullSelection {
		t.Error("second analysis should warm-start from hints")
	}
	if out.Stats.CoresFromCache != 2 {
		t.Errorf("RT cores unchanged by a security delta: %d from cache, want 2", out.Stats.CoresFromCache)
	}
	if out.Stats.Selection.Verified == 0 && out.Stats.Selection.Adopted == 0 {
		t.Error("no task verified or adopted in place despite unchanged prefix")
	}
}

func TestEngineAdmitRTPlacesAndMatchesCold(t *testing.T) {
	eng, _, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Apply(context.Background(), task.Delta{
		AddRT: []task.RTTask{{Name: "rt3", WCET: 2, Period: 25, Deadline: 25, Core: -1, Priority: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted {
		t.Fatal("RT admission denied")
	}
	placed := out.Set.RT[len(out.Set.RT)-1]
	if placed.Name != "rt3" || placed.Core < 0 {
		t.Fatalf("rt3 not placed: %+v", placed)
	}
	if !reflect.DeepEqual(out.Result, coldResult(t, out.Set)) {
		t.Fatal("incremental RT admission diverged from cold")
	}
	// Best-fit: core 0 carries 2/20+4/40 = 0.2, core 1 carries 0.1;
	// rt3 fits both, so best-fit picks the fuller core 0.
	if placed.Core != 0 {
		t.Errorf("best-fit placed rt3 on core %d, want 0", placed.Core)
	}
	// Exactly one core changed; the other is served from the memo.
	if out.Stats.CoresChecked != 1 || out.Stats.CoresFromCache != 1 {
		t.Errorf("stats = %+v, want 1 checked / 1 cached", out.Stats)
	}
}

func TestEngineDeniesUnschedulableAdmission(t *testing.T) {
	eng, _, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	// A security task whose WCET swamps both cores cannot be admitted.
	out, err := eng.Apply(context.Background(), task.Delta{
		AddSecurity: []task.SecurityTask{{Name: "hog", WCET: 190, MaxPeriod: 200, Core: -1, Priority: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted || out.Result.Schedulable {
		t.Fatal("unschedulable admission committed")
	}
	if before.Hash() != eng.Snapshot().Hash() {
		t.Fatal("denied delta mutated the engine state")
	}
	if len(eng.Log()) != 0 {
		t.Fatal("denied delta logged")
	}
	// The engine must still admit afterwards (hints survived).
	out2, err := eng.Apply(context.Background(), task.Delta{
		AddSecurity: []task.SecurityTask{{Name: "light", WCET: 1, MaxPeriod: 300, Core: -1, Priority: 2}},
	})
	if err != nil || !out2.Admitted {
		t.Fatalf("engine wedged after a denial: %+v, %v", out2, err)
	}
}

func TestEngineRemoveUnknownName(t *testing.T) {
	eng, _, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), task.Delta{Remove: []string{"ghost"}}); err == nil {
		t.Fatal("removing an unknown task succeeded")
	} else if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error %q does not name the missing task", err)
	}
}

func TestEngineRemoveThenReAddRoundTrips(t *testing.T) {
	eng, first, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), task.Delta{Remove: []string{"sec1"}}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Apply(context.Background(), task.Delta{
		AddSecurity: []task.SecurityTask{{Name: "sec1", WCET: 3, MaxPeriod: 400, Core: -1, Priority: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same membership, but sec1 now sits at the end of the Security
	// slice: periods must match the original per task name.
	resByName := map[string]task.Time{}
	for i, s := range out.Set.Security {
		resByName[s.Name] = out.Result.Periods[i]
	}
	for i, s := range baseSet().Security {
		if resByName[s.Name] != first.Result.Periods[i] {
			t.Errorf("%s: period %d after round trip, want %d", s.Name, resByName[s.Name], first.Result.Periods[i])
		}
	}
	if !reflect.DeepEqual(out.Result, coldResult(t, out.Set)) {
		t.Fatal("round-tripped state diverged from cold")
	}
}

func TestEngineRemovalOnlyCommitsFromUnschedulableBase(t *testing.T) {
	base := baseSet()
	// Swamp the security band: unschedulable at Tmax, but the base is
	// the running system and must be representable.
	base.Security = append(base.Security, task.SecurityTask{Name: "hog", WCET: 190, MaxPeriod: 200, Core: -1, Priority: 2})
	eng, out, err := New(context.Background(), base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Schedulable {
		t.Fatal("swamped base should be unschedulable")
	}
	// Removing the hog must commit and restore schedulability.
	out2, err := eng.Apply(context.Background(), task.Delta{Remove: []string{"hog"}})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Admitted || !out2.Result.Schedulable {
		t.Fatalf("removal-only delta denied from unschedulable base: %+v", out2)
	}
	if !out2.Stats.FullSelection {
		t.Error("no hints should exist after an unschedulable commit")
	}
	if !reflect.DeepEqual(out2.Result, coldResult(t, out2.Set)) {
		t.Fatal("recovery diverged from cold")
	}
}

func TestEngineRTInfeasibleDeltaErrors(t *testing.T) {
	eng, _, err := New(context.Background(), baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	// WCET 30 of period 30 on every core: no placement keeps Eq. 1.
	_, err = eng.Apply(context.Background(), task.Delta{
		AddRT: []task.RTTask{{Name: "brick", WCET: 30, Period: 30, Deadline: 30, Core: -1, Priority: 9}},
	})
	if err == nil {
		t.Fatal("infeasible RT admission succeeded")
	}
	if before.Hash() != eng.Snapshot().Hash() {
		t.Fatal("failed delta mutated the engine state")
	}
}

func TestEngineUnassignedBaseIsPartitioned(t *testing.T) {
	base := baseSet()
	for i := range base.RT {
		base.RT[i].Core = -1
	}
	eng, out, err := New(context.Background(), base, Config{Heuristic: partition.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range eng.Snapshot().RT {
		if rt.Core < 0 {
			t.Fatalf("task %s left unplaced", rt.Name)
		}
	}
	if !reflect.DeepEqual(out.Result, coldResult(t, eng.Snapshot())) {
		t.Fatal("partitioned base diverged from cold")
	}
}

func TestEngineMixedBaseRejected(t *testing.T) {
	base := baseSet()
	base.RT[0].Core = -1
	if _, _, err := New(context.Background(), base, Config{}); err == nil {
		t.Fatal("mixed pinned/unassigned base accepted")
	}
}

func TestEngineReplayDeterminism(t *testing.T) {
	ctx := context.Background()
	eng, _, err := New(ctx, baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []task.Delta{
		{AddSecurity: []task.SecurityTask{{Name: "s2", WCET: 1, MaxPeriod: 250, Core: -1, Priority: 2}}},
		{AddRT: []task.RTTask{{Name: "rt3", WCET: 1, Period: 15, Deadline: 15, Core: -1, Priority: 3}}},
		{Remove: []string{"sec0"}},
		{Remove: []string{"rt3"}, AddSecurity: []task.SecurityTask{{Name: "s3", WCET: 2, MaxPeriod: 500, Core: -1, Priority: 5}}},
	}
	for _, d := range deltas {
		if _, err := eng.Apply(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	replay, _, err := New(ctx, baseSet(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range eng.Log() {
		if _, err := replay.Apply(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Snapshot().Hash() != replay.Snapshot().Hash() {
		t.Fatal("serial replay of the committed log diverged")
	}
}
