package core

import (
	"testing"

	"hydrac/internal/task"
)

func reactivePlatform() *task.Set {
	return &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "rt0", WCET: 30, Period: 100, Deadline: 100, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 40, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "watch", WCET: 20, MaxPeriod: 1000, Priority: 0, Core: -1},
			{Name: "audit", WCET: 35, MaxPeriod: 2000, Priority: 1, Core: -1},
		},
	}
}

func TestSelectPeriodsReactiveSizesForAlertMode(t *testing.T) {
	ts := reactivePlatform()
	res, err := SelectPeriodsReactive(ts, []Escalation{{Task: "watch", AlertWCET: 30}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("small escalation rejected")
	}
	base, err := SelectPeriods(ts, Options{})
	if err != nil || !base.Schedulable {
		t.Fatal(err)
	}
	for i, s := range ts.Security {
		// Alert-mode responses fit the deployed periods.
		if res.AlertResp[i] > res.Periods[i] {
			t.Errorf("%s: alert response %d exceeds period %d", s.Name, res.AlertResp[i], res.Periods[i])
		}
		// Quiescent mode is never worse than alert mode.
		if res.NormalResp[i] > res.AlertResp[i] {
			t.Errorf("%s: normal response %d above alert response %d", s.Name, res.NormalResp[i], res.AlertResp[i])
		}
		// Headroom costs frequency: reactive periods are never shorter
		// than the non-reactive selection for the escalated task.
		if res.Periods[i] < base.Periods[i] && s.Name == "watch" {
			t.Errorf("%s: reactive period %d below non-reactive %d", s.Name, res.Periods[i], base.Periods[i])
		}
		if res.Periods[i] > s.MaxPeriod {
			t.Errorf("%s: period %d beyond Tmax", s.Name, res.Periods[i])
		}
	}
}

func TestSelectPeriodsReactiveNoEscalations(t *testing.T) {
	ts := reactivePlatform()
	res, err := SelectPeriodsReactive(ts, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable || !base.Schedulable {
		t.Fatal("platform unschedulable")
	}
	for i := range ts.Security {
		if res.Periods[i] != base.Periods[i] {
			t.Errorf("task %d: reactive-with-no-escalations period %d != plain %d",
				i, res.Periods[i], base.Periods[i])
		}
	}
}

func TestSelectPeriodsReactiveInfeasibleEscalation(t *testing.T) {
	ts := reactivePlatform()
	// Escalating watch to nearly its Tmax starves audit.
	res, err := SelectPeriodsReactive(ts, []Escalation{
		{Task: "watch", AlertWCET: 990},
		{Task: "audit", AlertWCET: 1990},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatalf("massive concurrent escalation accepted: %+v", res)
	}
}

func TestSelectPeriodsReactiveValidation(t *testing.T) {
	ts := reactivePlatform()
	if _, err := SelectPeriodsReactive(ts, []Escalation{{Task: "ghost", AlertWCET: 10}}, Options{}); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := SelectPeriodsReactive(ts, []Escalation{{Task: "watch", AlertWCET: 5}}, Options{}); err == nil {
		t.Error("alert WCET below normal WCET accepted")
	}
	if _, err := SelectPeriodsReactive(ts, []Escalation{{Task: "watch", AlertWCET: 1001}}, Options{}); err == nil {
		t.Error("alert WCET above Tmax accepted")
	}
}
