package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	return out
}

func TestNewRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// Ownership must not depend on the order the membership list was
// given in: every node builds its ring from its own -peers flag, and
// agreement across the fleet is the whole point.
func TestOwnerIndependentOfInputOrder(t *testing.T) {
	nodes := nodeNames(7)
	r1, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), nodes...)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r2, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys(2000) {
			if r1.Owner(k) != r2.Owner(k) {
				t.Fatalf("owner of %q differs across input orderings: %q vs %q", k, r1.Owner(k), r2.Owner(k))
			}
		}
	}
}

// The hash must be stable across processes, platforms and Go
// versions — a rolling deploy where new nodes disagree with old ones
// about ownership would bounce every session. Pin literal values.
func TestOwnerPinned(t *testing.T) {
	r, err := New([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"0123456789abcdef0123456789abcdef": "http://c:1",
		"session-alpha":                    "http://a:1",
		"session-beta":                     "http://a:1",
		"":                                 "http://a:1",
	}
	for id, w := range want {
		if got := r.Owner(id); got != w {
			t.Errorf("Owner(%q) = %q, want %q", id, got, w)
		}
	}
}

func TestAllIDsOwnedExactlyOnce(t *testing.T) {
	nodes := nodeNames(5)
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	member := map[string]bool{}
	for _, n := range nodes {
		member[n] = true
	}
	for _, k := range keys(5000) {
		own := r.Owner(k)
		if !member[own] {
			t.Fatalf("Owner(%q) = %q: not a member", k, own)
		}
		succ := r.Successors(k)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors(%q) has %d entries, want %d", k, len(succ), len(nodes))
		}
		if succ[0] != own {
			t.Fatalf("Successors(%q)[0] = %q, want owner %q", k, succ[0], own)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) repeats %q", k, s)
			}
			seen[s] = true
			if !member[s] {
				t.Fatalf("Successors(%q) includes non-member %q", k, s)
			}
		}
	}
}

// Removing a node must move ONLY that node's ids (to some surviving
// node), and adding a node must only STEAL ids (no id moves between
// two nodes that were present both before and after). This is the
// exact minimal-movement property of consistent hashing — not a
// statistical bound, an invariant.
func TestMembershipChangeMovesOnlyTheAffectedIDs(t *testing.T) {
	nodes := nodeNames(6)
	full, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := keys(8000)

	t.Run("leave", func(t *testing.T) {
		leaver := nodes[2]
		smaller, err := New(append(append([]string(nil), nodes[:2]...), nodes[3:]...), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range ids {
			before, after := full.Owner(k), smaller.Owner(k)
			if before == leaver {
				moved++
				if after == leaver {
					t.Fatalf("id %q still owned by removed node", k)
				}
				// The orphaned id must land on its failover successor:
				// the first surviving node in the old ring's walk order.
				succ := full.Successors(k)
				if len(succ) < 2 || after != succ[1] {
					t.Fatalf("id %q moved to %q, want ring successor %q", k, after, succ[1])
				}
			} else if before != after {
				t.Fatalf("id %q moved %q -> %q although its owner did not leave", k, before, after)
			}
		}
		if moved == 0 {
			t.Fatal("no ids were owned by the removed node — test vacuous")
		}
		assertMovementBound(t, moved, len(ids), len(nodes))
	})

	t.Run("join", func(t *testing.T) {
		joiner := "http://10.0.0.99:8080"
		bigger, err := New(append(append([]string(nil), nodes...), joiner), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range ids {
			before, after := full.Owner(k), bigger.Owner(k)
			if before != after {
				moved++
				if after != joiner {
					t.Fatalf("id %q moved %q -> %q on a join; only the joiner may steal", k, before, after)
				}
			}
		}
		if moved == 0 {
			t.Fatal("joiner stole nothing — test vacuous")
		}
		assertMovementBound(t, moved, len(ids), len(nodes)+1)
	})
}

// assertMovementBound checks the moved share is near the ideal K/N:
// with DefaultReplicas virtual nodes the ownership share concentrates
// around 1/N, so 2.5x the ideal is a comfortable yet meaningful cap
// (a naive mod-N hash would move ~ (N-1)/N of all ids).
func assertMovementBound(t *testing.T, moved, total, n int) {
	t.Helper()
	ideal := float64(total) / float64(n)
	if limit := 2.5 * ideal; float64(moved) > limit {
		t.Fatalf("%d of %d ids moved; want <= %.0f (2.5 x K/N with N=%d)", moved, total, limit, n)
	}
	t.Logf("moved %d / %d ids (ideal K/N = %.0f)", moved, total, ideal)
}

// Shares must be roughly balanced — the ring exists so one node never
// owns the fleet.
func TestOwnershipRoughlyBalanced(t *testing.T) {
	nodes := nodeNames(4)
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	ids := keys(20000)
	for _, k := range ids {
		counts[r.Owner(k)]++
	}
	ideal := float64(len(ids)) / float64(len(nodes))
	for n, c := range counts {
		if f := float64(c); f < ideal/2 || f > ideal*2 {
			t.Errorf("node %s owns %d ids; want within [%.0f, %.0f]", n, c, ideal/2, ideal*2)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r, err := New(nodeNames(16), 0)
	if err != nil {
		b.Fatal(err)
	}
	ids := keys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(ids[i%len(ids)])
	}
}
