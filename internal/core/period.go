package core

import (
	"context"
	"fmt"
	"sort"

	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// Result is the outcome of period selection for one task set.
type Result struct {
	// Schedulable reports whether every security task admits a period
	// within [Rs, Tmax] (Algorithm 1, lines 2–4).
	Schedulable bool
	// Periods holds the selected period T*s per security task, in the
	// same order as the input set's Security slice. Nil when
	// unschedulable.
	Periods []task.Time
	// Resp holds the final WCRT per security task (same order),
	// computed with every selected period in place.
	Resp []task.Time
}

// Options tunes SelectPeriods. The zero value is the paper's
// configuration.
type Options struct {
	// CarryIn selects the Eq. 8 maximisation strategy.
	CarryIn CarryInMode
	// LinearSearch replaces Algorithm 2's logarithmic search with a
	// downward linear scan. Exponentially slower; kept for the
	// ablation benchmark and as a test oracle.
	LinearSearch bool
	// SkipOptimization pins every period at Tmax after the feasibility
	// check — the "w/o period optimisation" reference of Fig. 7b.
	SkipOptimization bool
	// AnalysisWorkers bounds the worker group the per-core Eq. 1 RTA
	// screen fans out over: the cores' verdicts are independent, so
	// they can be computed concurrently and merged in core order.
	// 0 or 1 runs the screen serially (byte-identical legacy
	// behaviour); any value yields bit-identical results by the same
	// ordered-merge argument as the sweep engine.
	AnalysisWorkers int
}

// setSchedulable dispatches the Eq. 1 screen serially or across the
// configured worker group.
func setSchedulable(ts *task.Set, workers int) bool {
	if workers <= 1 {
		return rta.SetSchedulable(ts)
	}
	return rta.SetSchedulableWorkers(ts, workers)
}

// SelectPeriods is Algorithm 1: given a task set whose RT tasks are
// already partitioned and schedulable, it chooses the minimum feasible
// period for every security task in priority order, so the security
// band executes as frequently as schedulability permits.
//
// The returned periods and response times follow the order of
// ts.Security. The input set is not modified.
func SelectPeriods(ts *task.Set, opt Options) (*Result, error) {
	return SelectPeriodsCtx(context.Background(), ts, opt)
}

// SelectPeriodsCtx is SelectPeriods with cancellation: the search is
// abandoned between priority levels and between binary-search probes
// when ctx is done, returning ctx.Err(). Analysis of a large set can
// take seconds; a service serving many clients needs to shed the work
// of a caller that hung up.
//
// The kernel workspace is borrowed from DefaultScratchPool for the
// duration of the call; services that thread their own scratch use
// SelectPeriodsCtxWith.
func SelectPeriodsCtx(ctx context.Context, ts *task.Set, opt Options) (*Result, error) {
	sc := DefaultScratchPool.Get(nil, SizeHint(ts))
	defer DefaultScratchPool.Put(sc)
	return SelectPeriodsCtxWith(ctx, ts, opt, sc)
}

// SelectPeriodsCtxWith is SelectPeriodsCtx on a caller-owned Scratch:
// identical results — a Reset re-primes every buffer — with zero
// steady-state allocations for callers that keep one workspace per
// worker (AnalyzeBatch, the sweep engine, the baselines). The scratch
// must not be shared across goroutines while the call runs, and the
// returned Result never aliases its buffers.
func SelectPeriodsCtxWith(ctx context.Context, ts *task.Set, opt Options, sc *Scratch) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned; run partition.Assign first", t.Name)
		}
	}
	if !setSchedulable(ts, opt.AnalysisWorkers) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1; HYDRA-C requires a feasible legacy system")
	}

	sys := NewSystem(ts)
	sec := ts.SecurityByPriority()
	n := len(sec)
	if n == 0 {
		return &Result{Schedulable: true, Periods: []task.Time{}, Resp: []task.Time{}}, nil
	}

	// One scratch serves the whole analysis: every probe below reuses
	// its buffers, so the search loops run allocation-free.
	sc.Reset(sys)
	sc.ensure(n)

	// Line 1: Ts := Tmax for every task, compute response times.
	periods := sc.periods[:0]
	for _, s := range sec {
		periods = append(periods, s.MaxPeriod)
	}
	sc.periods = periods
	resp := sc.responseTimes(sec, periods, opt.CarryIn, sc.resp)
	sc.resp = resp

	// Lines 2–4: if any task misses even at Tmax, the set is
	// unschedulable within the designer bounds.
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, nil
		}
	}

	if !opt.SkipOptimization {
		// Lines 5–9: from highest to lowest priority, shrink each
		// period as far as every lower-priority task tolerates.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := resp[i], sec[i].MaxPeriod
			var star task.Time
			if opt.LinearSearch {
				star = linearMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
			} else {
				star = logMinPeriod(ctx, sc, sec, periods, resp, i, lo, hi, opt.CarryIn)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			periods[i] = star
			// Line 8: refresh the WCRT of every lower-priority task
			// under the newly fixed period. The search's last feasible
			// probe is exactly the star (the binary search only
			// shrinks star on feasible probes), so its captured
			// response vector is that refresh, already computed.
			if sc.probeFrom == i && sc.probeCand == star {
				// The captured probe state IS the post-fix state, so the
				// component caches captured alongside it stay coherent.
				copy(resp[i+1:], sc.probeResp[i+1:len(sec)])
				copy(sc.rtAt[i+1:], sc.probeRT[i+1:len(sec)])
				copy(sc.ncAt[i+1:], sc.probeNC[i+1:len(sec)])
				copy(sc.ckAt[i+1:], sc.probeCK[i+1:len(sec)])
			} else {
				recomputeBelow(sc, sec, periods, resp, i, opt.CarryIn)
			}
		}
	}

	// Report in the original ts.Security order.
	outPeriods := make([]task.Time, n)
	outResp := make([]task.Time, n)
	byName := securityIndex(ts.Security)
	for i, s := range sec {
		j := byName[s.Name]
		outPeriods[j] = periods[i]
		outResp[j] = resp[i]
	}
	return &Result{Schedulable: true, Periods: outPeriods, Resp: outResp}, nil
}

// logMinPeriod is Algorithm 2: a logarithmic (binary) search over
// [lo, hi] for the smallest period of sec[i] that keeps every
// lower-priority security task schedulable (Rj ≤ Tmax_j). hi (= Tmax)
// is always feasible because Algorithm 1 verified it first, so the
// feasible set initialised with {Tmax} is never empty.
//
// The search probes lo before bisecting: lo = Rs is the least period
// any search could return, and on paper-scale workloads more than
// half of all searches end exactly there — one probe instead of
// log2(Tmax−Rs). When lo is infeasible the bisection proceeds on
// [lo+1, hi], which returns the identical star by the monotone-
// feasibility assumption Algorithm 2 itself rests on (the same
// argument as the resumable path's two-probe verification, pinned by
// the differential oracle corpus).
func logMinPeriod(ctx context.Context, sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	if ctx.Err() != nil {
		return hi // the caller surfaces ctx.Err()
	}
	if lowerPrioritySchedulable(sc, sec, periods, resp, i, lo, mode) {
		return lo
	}
	lo++
	star := hi // T̂s initialised to {Tmax}; its minimum so far.
	for lo <= hi {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		mid := (lo + hi) / 2
		if lowerPrioritySchedulable(sc, sec, periods, resp, i, mid, mode) {
			if mid < star {
				star = mid
			}
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return star
}

// linearMinPeriod scans downward from hi; it is the brute-force oracle
// for Algorithm 2 and the ablation benchmark.
func linearMinPeriod(ctx context.Context, sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, lo, hi task.Time, mode CarryInMode) task.Time {
	star := hi
	for t := hi; t >= lo; t-- {
		if ctx.Err() != nil {
			return star // the caller surfaces ctx.Err()
		}
		if !lowerPrioritySchedulable(sc, sec, periods, resp, i, t, mode) {
			break
		}
		star = t
	}
	return star
}

// lowerPrioritySchedulable checks Algorithm 2 line 5: with sec[i]'s
// period set to cand (and every unprocessed task still at Tmax), does
// every lower-priority security task keep Rj ≤ Tmax_j? Response times
// are recomputed top-down from task i+1 because carry-in bounds of
// deeper tasks depend on the response times above them. The probe
// runs allocation-free on the scratch and restores periods[i]
// directly on every exit path (a deferred restore would cost a
// closure per probe of the binary search).
func lowerPrioritySchedulable(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, cand task.Time, mode CarryInMode) bool {
	if mode == Dominance {
		if ok, decided := probeWarm(sc, sec, periods, resp, i, cand); decided {
			return ok
		}
	}
	saved := periods[i]
	periods[i] = cand

	hp := sc.hp[:0]
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	ok := true
	for j := i + 1; j < len(sec); j++ {
		r, fine := sc.MigratingWCRT(sec[j].WCET, hp, sec[j].MaxPeriod, mode)
		if !fine || r > sec[j].MaxPeriod {
			ok = false
			sc.lastViol = j
			break
		}
		sc.probeResp[j] = r
		sc.probeRT[j] = -1
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
	sc.hp = hp[:0]
	periods[i] = saved
	if ok {
		// Remember the full response vector of this feasible probe:
		// when the search settles on this candidate, the line-8
		// refresh can reuse it verbatim (same inputs, same fixpoints).
		sc.probeFrom, sc.probeCand = i, cand
	} else {
		sc.probeFrom = -1
	}
	return ok
}

// probeWarm is the warm-started form of the Algorithm 2 probe for
// the Dominance mode: identical verdict and identical captured
// response vector, with most per-task fixpoints collapsed to a single
// Ω evaluation. It reports decided = false only when a task's tick
// scale defeats the budget argument below; the caller then runs the
// cold probe.
//
// Two monotonicity facts carry the equivalence proof:
//
//  1. The pre-probe response vector bounds the in-probe one from
//     below. A probe only shrinks periods[i] (the candidate never
//     exceeds the period resp[] was computed under), which only adds
//     interference, and workloadCI is nondecreasing in the
//     interferer's response time (x̄ = C−1+T−R) — so by induction
//     down the chain every in-probe response time is ≥ its resp[]
//     entry. (In the resumable path resp[j] below the probed task
//     still holds the all-Tmax value — a weaker but equally sound
//     lower bound.)
//  2. Iterating the monotone refinement f(x) = ⌊Ω(x)/M⌋ + Cs from
//     any x₀ ≤ lfp converges to the SAME least fixed point
//     (fixpointPrimed). So starting each task's fixpoint at resp[j]
//     instead of Cs changes the refinement count, never the value —
//     and for the common task the probe does not move at all,
//     f(resp[j]) = resp[j] and one evaluation settles it.
//
// The skipped refinements make the iteration budget the one place the
// verdicts could drift: the naive creep from Cs lifts x by ≥ 1 tick
// per refinement, so a task with Tmax − Cs < MaxFixpointIterations
// provably resolves (converges or overruns Tmax) within the budget,
// and the warm start cannot disagree with a budget-exhaustion verdict
// that cannot happen. Tasks at 2^40-tick scales fail that gate and
// take the cold probe, whose line mode counts refinements faithfully.
// Exhaustive mode never comes here (the caller gates on Dominance).
func probeWarm(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, cand task.Time) (feasible, decided bool) {
	saved := periods[i]
	periods[i] = cand
	hp := sc.hp[:0]
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	sc.chg, sc.chgWild = sc.chg[:0], false
	if cand != saved {
		sc.chg = append(sc.chg, chainDelta{c: sec[i].WCET, oldP: saved, newP: cand, oldR: resp[i], newR: resp[i]})
	}
	// Victim-first rejection: the task that sank the previous probe
	// usually sinks this one too. Its response under the STALE chain
	// (resp[] entries for i+1..v−1, each a certified lower bound on
	// the in-probe value — probeWarm's fact 1) lower-bounds the
	// in-probe response by Ω-monotonicity, so a limit overrun here is
	// a sound verdict without touching the tasks in between. A pass
	// proves nothing and falls through to the full scan.
	if v := sc.lastViol; v > i && v < len(sec) {
		cs, limit := sec[v].WCET, sec[v].MaxPeriod
		if cs <= limit && limit-cs < MaxFixpointIterations {
			hpv := hp
			for j := i + 1; j < v; j++ {
				hpv = append(hpv, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: resp[j]})
			}
			r, _, _, _, fine := warmResp(sc, v, cs, limit, resp[v], hpv)
			if !fine || r > limit {
				sc.hp = hp[:0]
				periods[i] = saved
				sc.probeFrom = -1
				return false, true
			}
		}
	}
	verdict, certain := true, true
	for j := i + 1; j < len(sec); j++ {
		cs, limit := sec[j].WCET, sec[j].MaxPeriod
		if cs > limit {
			// The cold probe refuses this before iterating; the
			// verdict is chain-independent.
			verdict = false
			break
		}
		if limit-cs >= MaxFixpointIterations {
			certain = false
			break
		}
		r, rt, nc, ck, fine := warmResp(sc, j, cs, limit, resp[j], hp)
		if !fine || r > limit {
			verdict = false
			sc.lastViol = j
			break
		}
		sc.probeResp[j] = r
		sc.probeRT[j], sc.probeNC[j], sc.probeCK[j] = rt, nc, ck
		if r != resp[j] {
			sc.chg = append(sc.chg, chainDelta{c: cs, oldP: periods[j], newP: periods[j], oldR: resp[j], newR: r})
		}
		hp = append(hp, Interferer{WCET: cs, Period: periods[j], Resp: r})
	}
	sc.hp = hp[:0]
	periods[i] = saved
	if !certain {
		return false, false
	}
	if verdict {
		// Every entry above was the exact in-probe fixpoint, so the
		// captured vector is reusable for the line-8 refresh exactly
		// as the cold probe's is.
		sc.probeFrom, sc.probeCand = i, cand
	} else {
		sc.probeFrom = -1
	}
	return verdict, true
}

// recomputeBelow refreshes resp[i+1:] after periods[i] was fixed
// (Algorithm 1 line 8). resp[i] itself depends only on tasks above i
// and is already final.
func recomputeBelow(sc *Scratch, sec []task.SecurityTask, periods, resp []task.Time, i int, mode CarryInMode) {
	hp := sc.hp[:0]
	for k := 0; k <= i; k++ {
		hp = append(hp, Interferer{WCET: sec[k].WCET, Period: periods[k], Resp: resp[k]})
	}
	// The component caches were last refreshed with sec[i] still
	// unfixed, i.e. periods[i] = Tmax_i: the chg list starts with that
	// period change and grows with every response this refresh moves,
	// exactly as in probeWarm.
	sc.chg, sc.chgWild = sc.chg[:0], false
	if oldP := sec[i].MaxPeriod; periods[i] != oldP {
		sc.chg = append(sc.chg, chainDelta{c: sec[i].WCET, oldP: oldP, newP: periods[i], oldR: resp[i], newR: resp[i]})
	}
	for j := i + 1; j < len(sec); j++ {
		cs, limit := sec[j].WCET, sec[j].MaxPeriod
		var r, rt, nc, ck task.Time
		var ok bool
		if mode == Dominance && cs <= limit && limit-cs < MaxFixpointIterations {
			// Warm-start from the previous response time: fixing
			// periods[i] only shrank a period, so the stale resp[j] is
			// a lower bound on the new fixpoint (probeWarm's facts 1–2
			// verbatim; the budget gate is the same too).
			r, rt, nc, ck, ok = warmResp(sc, j, cs, limit, resp[j], hp)
		} else {
			r, ok = sc.MigratingWCRT(cs, hp, limit, mode)
			rt = -1
		}
		if !ok {
			r = task.Infinity
			rt = -1
			// An unbounded response in the chain defeats the Lipschitz
			// bound arithmetic; exact layers remain available.
			sc.chgWild = true
		} else if r != resp[j] {
			sc.chg = append(sc.chg, chainDelta{c: cs, oldP: periods[j], newP: periods[j], oldR: resp[j], newR: r})
		}
		sc.rtAt[j], sc.ncAt[j], sc.ckAt[j] = rt, nc, ck
		resp[j] = r
		hp = append(hp, Interferer{WCET: sec[j].WCET, Period: periods[j], Resp: r})
	}
	sc.hp = hp[:0]
}

// warmResp resolves sec[j]'s response time against the (possibly
// perturbed) chain hp, for Dominance mode inside the budget gate. It
// layers three checks, cheapest first, around the cached component
// split Ω_j(resp[j]) = RT + ΣNC + top-k:
//
//  1. Bound layer, O(|chg|) arithmetic, no chain scan: the cached RT
//     part is chain-independent, the cached ΣNC part is corrected
//     EXACTLY for every period in sc.chg (two staircase reads each),
//     and the cached top-k bound is lifted by diffShift's Lipschitz
//     correction per perturbed entry. If even this upper bound keeps
//     f(resp[j]) ≤ resp[j], the pre-probe response is already the
//     least fixed point reachable from below (fact 2 in probeWarm).
//  2. Exact layer: re-run only the pruned top-k carry-in scan against
//     the live chain and recheck with the exact Ω.
//  3. The task genuinely moved: warm-started fixpoint.
//
// Returned rt/nc/ck are the components at r for re-caching (nc and rt
// exact, ck an upper bound after a layer-1 accept); rt = −1 when
// unavailable (line-mode convergence).
func warmResp(sc *Scratch, j int, cs, limit, rj task.Time, hp []Interferer) (r, rt, nc, ck task.Time, fine bool) {
	primed := false
	if cached := sc.rtAt[j]; cached >= 0 && !sc.chgWild && rj >= cs && rj <= limit {
		nc = sc.ncAt[j]
		ck = sc.ckAt[j]
		for k := range sc.chg {
			e := &sc.chg[k]
			if e.newP != e.oldP {
				nc += clampInterference(workloadNC(rj, e.c, e.newP), rj, cs) - clampInterference(workloadNC(rj, e.c, e.oldP), rj, cs)
			}
			ck += e.diffShift(rj, cs)
		}
		if (cached+nc+ck)/task.Time(sc.sysM)+cs <= rj {
			return rj, cached, nc, ck, true
		}
		sc.primeHP(hp)
		primed = true
		ck = sc.carryIn(rj, cs)
		if (cached+nc+ck)/task.Time(sc.sysM)+cs <= rj {
			return rj, cached, nc, ck, true
		}
	}
	if !primed {
		sc.primeHP(hp)
	}
	start := cs
	if rj > cs && rj <= limit {
		start = rj
	}
	r, ok := sc.fixpointPrimed(cs, start, limit)
	if ok && sc.lastY == r {
		return r, sc.lastRT, sc.lastNC, sc.lastCK, true
	}
	return r, -1, 0, 0, ok
}

func indexByName(sec []task.SecurityTask, name string) int {
	for i, s := range sec {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// securityIndex maps each security-task name to its index in sec,
// first occurrence winning — the same resolution rule as indexByName,
// built once instead of rescanned per task (the remap at the end of a
// selection was O(n²)).
func securityIndex(sec []task.SecurityTask) map[string]int {
	idx := make(map[string]int, len(sec))
	for i, s := range sec {
		if _, ok := idx[s.Name]; !ok {
			idx[s.Name] = i
		}
	}
	return idx
}

// Apply writes the selected periods into a clone of ts and returns it;
// convenient for feeding the simulator. It panics if res is not
// schedulable.
func Apply(ts *task.Set, res *Result) *task.Set {
	if !res.Schedulable {
		panic("core.Apply: result is not schedulable")
	}
	cp := ts.Clone()
	for i := range cp.Security {
		cp.Security[i].Period = res.Periods[i]
		cp.Security[i].Core = -1
	}
	return cp
}

// SortSecurityByPriority is a small helper for callers that need the
// priority order index mapping used by Result fields.
func SortSecurityByPriority(sec []task.SecurityTask) []task.SecurityTask {
	out := append([]task.SecurityTask(nil), sec...)
	sort.Slice(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}
