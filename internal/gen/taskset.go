package gen

import (
	"fmt"
	"math"
	"math/rand"

	"hydrac/internal/partition"
	"hydrac/internal/seed"
	"hydrac/internal/task"
)

// Config mirrors Table 3 of the paper. Durations are ticks (ms).
type Config struct {
	// Cores is M.
	Cores int
	// RTTasksMin/Max bound N_R (paper: [3M, 10M]).
	RTTasksMin, RTTasksMax int
	// SecTasksMin/Max bound N_S (paper: [2M, 5M]).
	SecTasksMin, SecTasksMax int
	// RTPeriodMin/Max bound the log-uniform RT period draw
	// (paper: [10, 1000] ms).
	RTPeriodMin, RTPeriodMax task.Time
	// SecMaxPeriodMin/Max bound the log-uniform Tmax draw
	// (paper: [1500, 3000] ms).
	SecMaxPeriodMin, SecMaxPeriodMax task.Time
	// SecurityShare is the fraction of the total minimum utilisation
	// assigned to the security band (paper: at least 30%; the
	// generator uses the share exactly).
	SecurityShare float64
	// Groups is the number of base-utilisation groups (paper: 10):
	// group i covers normalised utilisation ((0.01+0.1i)M, (0.1+0.1i)M].
	Groups int
	// SetsPerGroup is the number of task sets per group (paper: 250).
	SetsPerGroup int
	// Partition chooses the RT allocation heuristic (paper: best-fit).
	Partition partition.Heuristic
	// MaxAttempts bounds the redraws used to find an RT-schedulable
	// set per requested sample before giving up (the paper only
	// considers sets whose RT band partitions successfully).
	MaxAttempts int
	// TicksPerMS scales the millisecond bounds above into integer
	// ticks. A finer resolution keeps integer WCET rounding from
	// distorting the drawn utilisations; 0 means 1 tick per ms.
	TicksPerMS task.Time
	// UtilizationTolerance accepts a draw only if its realised
	// normalised utilisation lands within the group range extended by
	// this slack on both sides (rounding drifts it slightly);
	// 0 means 0.005.
	UtilizationTolerance float64
	// PeriodClasses, when non-empty, replaces the log-uniform RT
	// period draw with a uniform choice among these values (already in
	// ticks — TicksPerMS is not applied). Automotive task sets use the
	// classic {1,2,5,10,20,50,100,200,1000} ms classes (Kramer,
	// Ziegenbein, Hamann — WATERS 2015).
	PeriodClasses []task.Time
}

// AutomotivePeriodsMS returns the WATERS 2015 automotive period
// classes in milliseconds; scale by your tick resolution before
// assigning to PeriodClasses.
func AutomotivePeriodsMS() []task.Time {
	return []task.Time{1, 2, 5, 10, 20, 50, 100, 200, 1000}
}

// TableThree returns the paper's exact Table 3 configuration for M
// cores.
func TableThree(cores int) Config {
	return Config{
		Cores:           cores,
		RTTasksMin:      3 * cores,
		RTTasksMax:      10 * cores,
		SecTasksMin:     2 * cores,
		SecTasksMax:     5 * cores,
		RTPeriodMin:     10,
		RTPeriodMax:     1000,
		SecMaxPeriodMin: 1500,
		SecMaxPeriodMax: 3000,
		SecurityShare:   0.30,
		Groups:          10,
		SetsPerGroup:    250,
		Partition:       partition.BestFit,
		MaxAttempts:     400,
		TicksPerMS:      10,
	}
}

// GroupRange returns the normalised-utilisation interval of group i:
// U/M ∈ [0.01+0.1i, 0.1+0.1i].
func (c Config) GroupRange(i int) (lo, hi float64) {
	return 0.01 + 0.1*float64(i), 0.1 + 0.1*float64(i)
}

// Generate draws one task set in utilisation group g. The total
// minimum utilisation U = Σ Cr/Tr + Σ Cs/Tmax is drawn uniformly in
// the group's range (scaled by M), split (1−share)/share between the
// RT and security bands, and divided among tasks with Randfixedsum.
// RT tasks get RM priorities and are partitioned with the configured
// heuristic; draws whose RT band cannot be partitioned (Eq. 1 on every
// core) are rejected and retried, matching the paper's "only
// schedulable task sets" rule. Security tasks get max-period-monotonic
// priorities and no core binding.
//
// The returned error is non-nil only if MaxAttempts consecutive draws
// fail, which happens for the highest utilisation groups where almost
// no set is partitionable — callers typically count that sample as
// "unschedulable for every scheme".
func (c Config) Generate(rng *rand.Rand, g int) (*task.Set, error) {
	if g < 0 || g >= c.Groups {
		return nil, fmt.Errorf("gen: group %d out of range [0,%d)", g, c.Groups)
	}
	lo, hi := c.GroupRange(g)
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		ts, err := c.draw(rng, lo, hi)
		if err != nil {
			lastErr = err
			continue
		}
		return ts, nil
	}
	return nil, fmt.Errorf("gen: no partitionable set in group %d after %d attempts: %w", g, attempts, lastErr)
}

// GenerateAt draws sweep item (g, i) from a private RNG derived from
// (base, g, i) via seed.At. Unlike Generate, whose output depends on
// every draw made before it on the shared stream, GenerateAt is a
// pure function of its arguments — the entry point the parallel
// sweep engine uses so that any execution order yields the same task
// set per item. Redraw attempts consume the item's own stream only.
func (c Config) GenerateAt(base int64, g, i int) (*task.Set, error) {
	return c.Generate(rand.New(rand.NewSource(seed.At(base, g, i))), g)
}

func (c Config) draw(rng *rand.Rand, lo, hi float64) (*task.Set, error) {
	scale := c.TicksPerMS
	if scale <= 0 {
		scale = 1
	}
	tol := c.UtilizationTolerance
	if tol <= 0 {
		tol = 0.005
	}
	m := float64(c.Cores)
	uTotal := (lo + rng.Float64()*(hi-lo)) * m
	uSec := uTotal * c.SecurityShare
	uRT := uTotal - uSec

	nr := c.RTTasksMin + rng.Intn(c.RTTasksMax-c.RTTasksMin+1)
	ns := c.SecTasksMin + rng.Intn(c.SecTasksMax-c.SecTasksMin+1)

	// Per-task utilisation caps: an RT task must fit alone on one core.
	rtU, err := RandFixedSum(rng, nr, uRT, 0.0001, 0.999)
	if err != nil {
		return nil, err
	}
	secU, err := RandFixedSum(rng, ns, uSec, 0.0001, 0.999)
	if err != nil {
		return nil, err
	}

	ts := &task.Set{Cores: c.Cores}
	for i := 0; i < nr; i++ {
		var period task.Time
		if len(c.PeriodClasses) > 0 {
			period = c.PeriodClasses[rng.Intn(len(c.PeriodClasses))]
		} else {
			period = LogUniform(rng, c.RTPeriodMin*scale, c.RTPeriodMax*scale)
		}
		wcet := roundWCET(period, rtU[i])
		ts.RT = append(ts.RT, task.RTTask{
			Name:     fmt.Sprintf("rt%02d", i),
			WCET:     wcet,
			Period:   period,
			Deadline: period, // implicit deadlines, as in the paper's experiments
			Core:     -1,
		})
	}
	task.AssignRateMonotonic(ts.RT)

	for i := 0; i < ns; i++ {
		tmax := LogUniform(rng, c.SecMaxPeriodMin*scale, c.SecMaxPeriodMax*scale)
		ts.Security = append(ts.Security, task.SecurityTask{
			Name:      fmt.Sprintf("sec%02d", i),
			WCET:      roundWCET(tmax, secU[i]),
			MaxPeriod: tmax,
			Core:      -1,
		})
	}
	task.AssignMaxPeriodMonotonic(ts.Security)

	// Integer rounding drifts the realised utilisation away from the
	// drawn one; keep only draws that still land in the group.
	if u := ts.NormalizedUtilization(); u < lo-tol || u > hi+tol {
		return nil, fmt.Errorf("realised utilisation %.4f drifted outside group [%.2f, %.2f]", u, lo, hi)
	}

	if err := partition.Assign(ts, c.Partition); err != nil {
		return nil, err
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// roundWCET converts a utilisation share into an integer WCET for the
// given period, clamped to [1, period].
func roundWCET(period task.Time, u float64) task.Time {
	wcet := task.Time(math.Round(float64(period) * u))
	if wcet < 1 {
		wcet = 1
	}
	if wcet > period {
		wcet = period
	}
	return wcet
}
