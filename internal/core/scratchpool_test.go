package core

import (
	"math/rand"
	"sync"
	"testing"

	"hydrac/internal/task"
)

func TestScratchTierClasses(t *testing.T) {
	cases := []struct {
		n, tier int
	}{
		{0, 0}, {1, 0}, {16, 0},
		{17, 1}, {32, 1},
		{33, 2}, {64, 2},
		{65, 3}, {128, 3},
		{513, 6}, {1024, 6},
		// Linear 1024-wide chunks above the power-of-two range: a
		// 2k-task scratch and a 6k-task scratch must not share a tier.
		{1025, 7}, {2048, 7},
		{2049, 8}, {3072, 8},
		{8192, 13},
		{8193, 14}, {100000, 14},
	}
	if want := scratchTier(100000); want != scratchTiers-1 {
		t.Fatalf("open-ended tier index %d != scratchTiers-1 = %d", want, scratchTiers-1)
	}
	for _, c := range cases {
		if got := scratchTier(c.n); got != c.tier {
			t.Errorf("scratchTier(%d) = %d, want %d", c.n, got, c.tier)
		}
	}
}

// A pooled, heavily reused scratch must compute exactly what a fresh
// one computes, across systems of different shapes interleaved in one
// pool — the bit-identity contract the service layers rely on.
func TestScratchPoolReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pool := NewScratchPool()
	for trial := 0; trial < 500; trial++ {
		sys, hp, cs := randKernelCase(rng)
		limit := cs + rng.Int63n(2000)
		wantR, wantOK := NewScratch(sys).MigratingWCRT(cs, hp, limit, Dominance)
		sc := pool.Get(sys, len(hp))
		gotR, gotOK := sc.MigratingWCRT(cs, hp, limit, Dominance)
		pool.Put(sc)
		if gotR != wantR || gotOK != wantOK {
			t.Fatalf("trial %d: pooled scratch (%d,%v) != fresh scratch (%d,%v)",
				trial, gotR, gotOK, wantR, wantOK)
		}
	}
}

// Put must drop the System reference so pooled scratches never pin an
// analysed set's demand slices.
func TestScratchPoolPutDropsSystem(t *testing.T) {
	pool := NewScratchPool()
	sys := &System{M: 2, RTCores: [][]Demand{{{WCET: 1, Period: 10}}, nil}}
	sc := pool.Get(sys, 4)
	if sc.sys != sys {
		t.Fatal("Get(sys) did not prime the scratch")
	}
	pool.Put(sc)
	if sc.sys != nil {
		t.Fatal("Put left the System pinned")
	}
	pool.Put(nil) // must not panic
}

// The pool must be safe under concurrent Get/Put with correct results
// per goroutine (run with -race).
func TestScratchPoolConcurrent(t *testing.T) {
	pool := NewScratchPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for trial := 0; trial < 100; trial++ {
				sys, hp, cs := randKernelCase(rng)
				limit := cs + rng.Int63n(1500)
				sc := pool.Get(sys, len(hp))
				gotR, gotOK := sc.MigratingWCRT(cs, hp, limit, Dominance)
				pool.Put(sc)
				wantR, wantOK := naiveMigratingWCRT(sys, cs, hp, limit)
				if gotR != wantR || gotOK != wantOK {
					t.Errorf("goroutine %d trial %d: pooled (%d,%v) != naive (%d,%v)",
						g, trial, gotR, gotOK, wantR, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// SelectPeriodsCtxWith on a pooled scratch must agree with the
// convenience entry point across random valid sets.
func TestSelectPeriodsWithPooledScratch(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 5, Period: 40, Deadline: 40, Core: 1, Priority: 1},
		},
		Security: []task.SecurityTask{
			{Name: "s0", WCET: 3, MaxPeriod: 300, Priority: 0, Core: -1},
			{Name: "s1", WCET: 4, MaxPeriod: 400, Priority: 1, Core: -1},
		},
	}
	want, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewScratchPool()
	for trial := 0; trial < 10; trial++ {
		sc := pool.Get(nil, len(ts.Security))
		got, err := SelectPeriodsCtxWith(t.Context(), ts, Options{}, sc)
		pool.Put(sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schedulable != want.Schedulable {
			t.Fatalf("trial %d: schedulable drifted", trial)
		}
		for i := range want.Periods {
			if got.Periods[i] != want.Periods[i] || got.Resp[i] != want.Resp[i] {
				t.Fatalf("trial %d task %d: (%d,%d) != (%d,%d)", trial, i,
					got.Periods[i], got.Resp[i], want.Periods[i], want.Resp[i])
			}
		}
	}
}
