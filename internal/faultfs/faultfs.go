// Package faultfs is the fault-injection seam under the durability
// stack: a narrow interface over the os.File operations the WAL and
// session store perform (open, write, sync, truncate, rename, remove,
// directory sync), a passthrough implementation backed by the real
// os package, and a scriptable Injector that makes exactly one kind of
// storage fault happen at exactly one point — fail the Nth sync, fail
// every write after the Kth, tear a write in half, run the disk out of
// space during compaction.
//
// Production code never imports the injector: wal.Options.FS and
// store.Options.FS default to the passthrough OS implementation, so
// the seam costs one interface call per file operation on paths that
// are dominated by the fsync anyway. The chaos suite (internal/chaos)
// and the store/wal unit tests script the injector to prove the
// degraded-mode and recovery guarantees: no committed delta is ever
// lost and recovery is bit-identical, no matter which operation fails.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
)

// File is the slice of *os.File the WAL and snapshot writers use.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
	Name() string
}

// FS is the slice of the os package the durability stack writes
// through. Read-only operations (ReadFile) are included so torn-write
// artefacts written through a faulty FS are read back through the same
// seam in tests.
type FS interface {
	// OpenFile opens name exactly like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads name exactly like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Rename renames oldpath to newpath exactly like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove unlinks name exactly like os.Remove.
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations inside it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS: every call goes straight to the os
// package. The zero value is ready to use.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Default returns fs, or the passthrough OS when fs is nil — the
// defaulting rule every Options.FS field shares.
func Default(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}

// Op names one interceptable file operation.
type Op string

const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpSyncDir  Op = "syncdir"
)

// ErrInjected is the default error injected rules return; tests match
// it to tell scripted faults from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// ENOSPC is the "disk full" errno, exported so scripts read naturally:
// Fail(Rule{Op: OpWrite, Err: faultfs.ENOSPC}).
var ENOSPC error = syscall.ENOSPC

// Rule scripts one fault. A rule matches a call when the operation
// matches and Path (when non-empty) is a substring of the file path.
// Matching calls are counted per rule; whether a matching call fails
// depends on Nth/After:
//
//   - Nth > 0: exactly the Nth matching call fails (one-shot).
//   - After > 0: every matching call after the first After succeed.
//   - neither: every matching call fails.
//
// A write failed by a rule with Torn set writes the first half of the
// buffer before returning the error — the torn-write fault the WAL's
// tail repair exists for.
type Rule struct {
	Op    Op
	Path  string
	Nth   int
	After int
	Err   error // nil means ErrInjected
	Torn  bool

	n int // matching calls seen, guarded by the injector's mutex
}

// fire reports whether this matching call fails. Caller holds the
// injector lock.
func (r *Rule) fire() bool {
	r.n++
	switch {
	case r.Nth > 0:
		return r.n == r.Nth
	case r.After > 0:
		return r.n > r.After
	default:
		return true
	}
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Injector wraps an FS with scripted faults. Safe for concurrent use;
// rules are evaluated in the order they were added and the first
// firing rule wins. The zero value is not usable — build with Wrap.
type Injector struct {
	inner FS

	mu    sync.Mutex
	rules []*Rule
	// counts tallies every intercepted call per op, fault or not, so
	// tests can assert "the sync that failed was the one under the
	// compaction snapshot" by position.
	counts map[Op]int
}

// Wrap builds an injector over inner (nil inner means the real OS).
func Wrap(inner FS) *Injector {
	return &Injector{inner: Default(inner), counts: map[Op]int{}}
}

// Fail adds one scripted rule and returns the injector for chaining.
func (in *Injector) Fail(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &r)
	return in
}

// Reset drops every rule (already-armed counts included); the disk
// "heals". Counters survive so post-recovery assertions can still see
// the full history.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Count returns how many calls of op the injector has intercepted.
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// check counts the call and returns the scripted outcome: the error to
// inject (nil for none) and whether a torn write was requested.
func (in *Injector) check(op Op, path string) (error, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.fire() {
			return r.err(), r.Torn
		}
	}
	return nil, false
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := in.check(OpOpen, name); err != nil {
		return nil, fmt.Errorf("open %s: %w", name, err)
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename, newpath); err != nil {
		return fmt.Errorf("rename %s: %w", newpath, err)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove, name); err != nil {
		return fmt.Errorf("remove %s: %w", name, err)
	}
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if err, _ := in.check(OpSyncDir, dir); err != nil {
		return fmt.Errorf("syncdir %s: %w", dir, err)
	}
	return in.inner.SyncDir(dir)
}

// faultFile intercepts the per-file operations of one open handle.
type faultFile struct {
	inner File
	in    *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err, torn := f.in.check(OpWrite, f.inner.Name()); err != nil {
		n := 0
		if torn && len(p) > 1 {
			// Half the buffer lands before the "crash": the classic
			// torn frame the WAL's tail repair truncates away.
			n, _ = f.inner.Write(p[: len(p)/2 : len(p)/2])
		}
		return n, fmt.Errorf("write %s: %w", f.inner.Name(), err)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err, _ := f.in.check(OpSync, f.inner.Name()); err != nil {
		return fmt.Errorf("sync %s: %w", f.inner.Name(), err)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err, _ := f.in.check(OpTruncate, f.inner.Name()); err != nil {
		return fmt.Errorf("truncate %s: %w", f.inner.Name(), err)
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error {
	if err, _ := f.in.check(OpClose, f.inner.Name()); err != nil {
		_ = f.inner.Close() // never leak the real descriptor
		return fmt.Errorf("close %s: %w", f.inner.Name(), err)
	}
	return f.inner.Close()
}

func (f *faultFile) Name() string { return f.inner.Name() }
