package baseline

import (
	"math/rand"
	"testing"

	"hydrac/internal/gen"
	"hydrac/internal/rta"
	"hydrac/internal/task"
)

// A platform where the aggressive greedy starves the lower-priority
// task but the lookahead variant keeps both schedulable: two monitors
// forced onto the same core.
func starvationSet() *task.Set {
	return &task.Set{
		Cores: 1,
		RT: []task.RTTask{
			{Name: "rt", WCET: 20, Period: 100, Deadline: 100, Core: 0, Priority: 0},
		},
		Security: []task.SecurityTask{
			{Name: "hi", WCET: 30, MaxPeriod: 500, Priority: 0, Core: -1},
			{Name: "lo", WCET: 100, MaxPeriod: 400, Priority: 1, Core: -1},
		},
	}
}

func TestAggressiveStarvesWhereLookaheadSurvives(t *testing.T) {
	ts := starvationSet()
	// Aggressive: hi pinned at its WCRT (30+20=... R=50? compute:
	// x0=30 -> 30+20=50 -> ceil(50/100)*20 -> 50). Period 50 means hi
	// consumes 60% of the core, leaving too little for lo (C=100,
	// Tmax=400) on top of the RT task.
	ares, err := HydraAggressive(ts)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Schedulable {
		t.Fatalf("aggressive unexpectedly schedulable: %+v", ares)
	}
	// Lookahead: hi's period search is constrained by lo's Tmax.
	lres, err := Hydra(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !lres.Schedulable {
		t.Fatal("lookahead variant must schedule this set")
	}
	for i, s := range ts.Security {
		if lres.Resp[i] > lres.Periods[i] || lres.Periods[i] > s.MaxPeriod {
			t.Errorf("%s: R=%d T=%d Tmax=%d inconsistent", s.Name, lres.Resp[i], lres.Periods[i], s.MaxPeriod)
		}
	}
}

func TestAggressivePinsToWCRT(t *testing.T) {
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "rt", WCET: 20, Period: 100, Deadline: 100, Core: 0, Priority: 0},
		},
		Security: []task.SecurityTask{
			{Name: "a", WCET: 10, MaxPeriod: 1000, Priority: 0, Core: -1},
			{Name: "b", WCET: 15, MaxPeriod: 1000, Priority: 1, Core: -1},
		},
	}
	res, err := HydraAggressive(ts)
	if err != nil || !res.Schedulable {
		t.Fatal(err)
	}
	for i := range ts.Security {
		if res.Periods[i] != res.Resp[i] {
			t.Errorf("task %d: aggressive period %d != WCRT %d", i, res.Periods[i], res.Resp[i])
		}
	}
	// a lands on the empty core 1 (min WCRT); b then prefers core 1?
	// No: with a@T=10 on core 1, b's WCRT there is 15+10·k; on core 0
	// it is 15+20=35 at worst. Verify consistency instead of guessing:
	demands := [][]rta.Demand{
		{{WCET: 20, Period: 100}},
		nil,
	}
	for _, s := range ts.SecurityByPriority() {
		i := 0
		for j, x := range ts.Security {
			if x.Name == s.Name {
				i = j
			}
		}
		r, ok := rta.ResponseTime(s.WCET, demands[res.Cores[i]], s.MaxPeriod)
		if !ok || r != res.Resp[i] {
			t.Errorf("%s: reported R=%d, recomputed (%d,%v) on core %d", s.Name, res.Resp[i], r, ok, res.Cores[i])
		}
		demands[res.Cores[i]] = append(demands[res.Cores[i]], rta.Demand{WCET: s.WCET, Period: res.Periods[i]})
	}
}

// The lookahead variant never reports shorter periods than what its
// own per-core final response times justify, and across random
// workloads its acceptance dominates the aggressive variant's.
func TestLookaheadDominatesAggressiveAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 30
	agg, look, total := 0, 0, 0
	for g := 0; g < 8; g++ {
		for i := 0; i < 5; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			total++
			ares, err := HydraAggressive(ts)
			if err != nil {
				t.Fatal(err)
			}
			lres, err := Hydra(ts)
			if err != nil {
				t.Fatal(err)
			}
			if ares.Schedulable {
				agg++
				if !lres.Schedulable {
					t.Fatalf("group %d: aggressive schedulable but lookahead not", g)
				}
			}
			if lres.Schedulable {
				look++
			}
		}
	}
	if total < 20 {
		t.Skipf("only %d sets generated", total)
	}
	if look < agg {
		t.Fatalf("lookahead accepted %d < aggressive %d", look, agg)
	}
	if look == agg {
		t.Log("warning: no separation observed on this seed")
	}
}
