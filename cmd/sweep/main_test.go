package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// runCapture executes run() with captured stdout/stderr.
func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestTable3Flag(t *testing.T) {
	code, out, _ := runCapture(t, "-table3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Table 3 (M=2)", "Table 3 (M=4)", "sets/group 250"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, _ := runCapture(t, "-cores", "17"); code != 2 {
		t.Errorf("-cores 17 exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-cores", "1"); code != 2 {
		t.Errorf("-cores 1 exit %d, want 2", code)
	}
	if code, _, stderr := runCapture(t, "-fig", "9"); code != 2 || !strings.Contains(stderr, "-fig") {
		t.Errorf("-fig 9 exit %d stderr %q, want 2 with a naming error", code, stderr)
	}
	if code, _, stderr := runCapture(t, "-no-such-flag"); code != 2 || !strings.Contains(stderr, "flag") {
		t.Errorf("unknown flag exit %d stderr %q, want 2", code, stderr)
	}
	// -h prints usage and succeeds, as the pre-refactor flag.Parse did.
	if code, _, stderr := runCapture(t, "-h"); code != 0 || !strings.Contains(stderr, "-parallel") {
		t.Errorf("-h exit %d, want 0 with usage on stderr", code)
	}
}

// TestTinySweepGolden pins the full stdout of a tiny Fig. 6 sweep.
// This is the CLI-level determinism contract: same seed, same bytes,
// release after release. Regenerate testdata/fig6_tiny.golden only on
// a deliberate generator or analysis change.
func TestTinySweepGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fig6_tiny.golden")
	if err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCapture(t, "-fig", "6", "-cores", "2", "-sets", "3", "-seed", "2020")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != string(want) {
		t.Errorf("tiny sweep diverged from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestParallelFlagEquivalence asserts the -parallel wiring changes
// nothing but wall-clock: byte-identical stdout at 1, 3, and all-CPU
// workers, across figure kinds.
func TestParallelFlagEquivalence(t *testing.T) {
	for _, fig := range []string{"6", "7a", "7b"} {
		base := []string{"-fig", fig, "-cores", "2", "-sets", "3", "-seed", "7"}
		_, ref, _ := runCapture(t, append(base, "-parallel", "1")...)
		if ref == "" {
			t.Fatalf("fig %s: empty serial output", fig)
		}
		for _, par := range []string{"3", "0"} {
			if _, got, _ := runCapture(t, append(base, "-parallel", par)...); got != ref {
				t.Errorf("fig %s: -parallel %s output differs from serial", fig, par)
			}
		}
	}
}

func TestJSONOutputParses(t *testing.T) {
	code, out, _ := runCapture(t, "-fig", "7a", "-cores", "2", "-sets", "2", "-seed", "1", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var doc struct {
		Cores  int `json:"Cores"`
		Groups []struct {
			Acceptance map[string]float64 `json:"acceptance_pct"`
		} `json:"Groups"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if doc.Cores != 2 || len(doc.Groups) != 10 {
		t.Fatalf("JSON malformed: %+v", doc)
	}
}

func TestProgressReporting(t *testing.T) {
	code, _, stderr := runCapture(t,
		"-fig", "6", "-cores", "2", "-sets", "2", "-seed", "1", "-progress", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "fig 6 (M=2)") || !strings.Contains(stderr, "20/20 (100%)") {
		t.Errorf("progress output missing milestones:\n%s", stderr)
	}
}
