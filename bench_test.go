// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus ablations over the repository's own design
// choices. Each benchmark prints/reports the quantities the paper
// plots, at reduced sample sizes; run cmd/rover and cmd/sweep for the
// full-size experiments.
//
//	go test -bench=. -benchmem
package hydrac_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hydrac/internal/baseline"
	"hydrac/internal/core"
	"hydrac/internal/experiments"
	"hydrac/internal/gen"
	"hydrac/internal/partition"
	"hydrac/internal/rover"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

// BenchmarkFig5aDetectionTime regenerates Fig. 5a: mean intrusion
// detection time on the rover platform, HYDRA-C vs HYDRA. Metrics:
// detection means in ms per scheme and the relative speedup in %.
func BenchmarkFig5aDetectionTime(b *testing.B) {
	cfg := rover.DefaultTrialConfig()
	cfg.Trials = 10
	var hc, h *rover.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		hc, h, err = rover.RunTrials(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hc.DetectionMS.Mean(), "HYDRA-C_ms")
	b.ReportMetric(h.DetectionMS.Mean(), "HYDRA_ms")
	b.ReportMetric(100*(h.DetectionMS.Mean()-hc.DetectionMS.Mean())/h.DetectionMS.Mean(), "speedup_%")
}

// BenchmarkFig5bContextSwitches regenerates Fig. 5b: context switches
// over the 45 s observation window. The controlled comparison (same
// periods, pinned vs migrating) isolates the migration overhead the
// paper attributes the 1.75x ratio to.
func BenchmarkFig5bContextSwitches(b *testing.B) {
	cfg := rover.DefaultTrialConfig()
	cfg.Trials = 10
	var mig, pin *rover.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		mig, pin, err = rover.RunControlled(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mig.ContextSwitches.Mean(), "migrating_cs")
	b.ReportMetric(pin.ContextSwitches.Mean(), "pinned_cs")
	b.ReportMetric(mig.ContextSwitches.Mean()/pin.ContextSwitches.Mean(), "cs_ratio")
}

// BenchmarkFig6PeriodDistance regenerates Fig. 6: normalised distance
// between achieved and maximum period vectors across utilisation
// groups (2 cores). Metrics: mean distance in the lowest and highest
// populated groups — the paper's downward trend.
func BenchmarkFig6PeriodDistance(b *testing.B) {
	cfg := experiments.DefaultSweepConfig(2)
	cfg.SetsPerGroup = 8
	var res *experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err = experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Groups[0].Distance.Mean(), "dist_low_util")
	for g := len(res.Groups) - 1; g >= 0; g-- {
		if res.Groups[g].Distance.N() > 0 {
			b.ReportMetric(res.Groups[g].Distance.Mean(), "dist_high_util")
			break
		}
	}
}

// BenchmarkFig7aAcceptanceRatio regenerates Fig. 7a: acceptance ratio
// per scheme (2 cores). Metrics: mid-utilisation (group 5) acceptance
// for HYDRA-C and HYDRA — the gap the paper highlights.
func BenchmarkFig7aAcceptanceRatio(b *testing.B) {
	cfg := experiments.DefaultSweepConfig(2)
	cfg.SetsPerGroup = 8
	var res *experiments.Fig7aResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err = experiments.Fig7a(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := res.Groups[5]
	b.ReportMetric(mid.Acceptance[experiments.SchemeHydraC].Ratio(), "HYDRA-C_%")
	b.ReportMetric(mid.Acceptance[experiments.SchemeHydra].Ratio(), "HYDRA_%")
	b.ReportMetric(mid.Acceptance[experiments.SchemeGlobalTMax].Ratio(), "GLOBAL-TMax_%")
	b.ReportMetric(mid.Acceptance[experiments.SchemeHydraTMax].Ratio(), "HYDRA-TMax_%")
}

// BenchmarkFig7bPeriodVectorDiff regenerates Fig. 7b: normalised
// period-vector differences (2 cores). Metrics: the two series at a
// low-utilisation group where both schemes schedule.
func BenchmarkFig7bPeriodVectorDiff(b *testing.B) {
	cfg := experiments.DefaultSweepConfig(2)
	cfg.SetsPerGroup = 8
	var res *experiments.Fig7bResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err = experiments.Fig7b(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, g := range res.Groups {
		if g.VsHydra.N() > 0 {
			b.ReportMetric(g.VsHydra.Mean(), "vs_HYDRA")
			break
		}
	}
	b.ReportMetric(res.Groups[1].VsNoOpt.Mean(), "vs_no_opt")
}

// BenchmarkSweepParallel measures the sweep engine's scaling on the
// Fig. 6 pipeline: the same work grid at 1, 2, 4 and all-CPU workers.
// Every iteration runs the identical fixed-seed sweep, so the
// reported dist_low_util must agree across sub-benchmarks (the
// engine's determinism contract) and only ns/op should move. Compare
// workers=1 against workers=4 for the speedup.
func BenchmarkSweepParallel(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := experiments.DefaultSweepConfig(2)
			cfg.SetsPerGroup = 16
			cfg.Seed = 1
			cfg.Parallel = w
			var res *experiments.Fig6Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = experiments.Fig6(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Groups[0].Distance.Mean(), "dist_low_util")
		})
	}
}

// BenchmarkTable3Generation measures the Table-3 workload generator:
// cost of drawing one partitioned, RT-schedulable task set (2 cores,
// mid utilisation).
func BenchmarkTable3Generation(b *testing.B) {
	cfg := gen.TableThree(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(rng, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RoverAnalysis measures the full rover configuration
// pipeline (Table 2 platform): Algorithm 1 on the paper's task set.
func BenchmarkTable2RoverAnalysis(b *testing.B) {
	ts := rover.TaskSet()
	for i := 0; i < b.N; i++ {
		res, err := core.SelectPeriods(ts, core.Options{})
		if err != nil || !res.Schedulable {
			b.Fatal("rover set must be schedulable")
		}
	}
}

// --------------------------------------------------------- ablations

// BenchmarkAblationCarryInDominance vs ...Exhaustive quantify the cost
// of the literal Eq. 8 enumeration against the dominance selection.
func BenchmarkAblationCarryInDominance(b *testing.B) {
	benchCarryIn(b, core.Dominance)
}

// BenchmarkAblationCarryInExhaustive is the exponential counterpart.
func BenchmarkAblationCarryInExhaustive(b *testing.B) {
	benchCarryIn(b, core.Exhaustive)
}

func benchCarryIn(b *testing.B, mode core.CarryInMode) {
	rng := rand.New(rand.NewSource(3))
	cfg := gen.TableThree(2)
	ts, err := cfg.Generate(rng, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectPeriods(ts, core.Options{CarryIn: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLogSearch vs ...LinearSearch quantify Algorithm 2's
// logarithmic search against a downward linear scan.
func BenchmarkAblationLogSearch(b *testing.B) { benchSearch(b, false) }

// BenchmarkAblationLinearSearch is the brute-force counterpart.
func BenchmarkAblationLinearSearch(b *testing.B) { benchSearch(b, true) }

func benchSearch(b *testing.B, linear bool) {
	ts := rover.TaskSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectPeriods(ts, core.Options{LinearSearch: linear}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitionHeuristics compares the RT bin-packing
// heuristics' cost on Table-3 workloads.
func BenchmarkAblationPartitionHeuristics(b *testing.B) {
	for _, h := range []partition.Heuristic{partition.BestFit, partition.FirstFit, partition.WorstFit} {
		b.Run(h.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			cfg := gen.TableThree(4)
			cfg.Partition = h
			sets := make([]*task.Set, 0, 16)
			for len(sets) < 16 {
				ts, err := cfg.Generate(rng, 3)
				if err != nil {
					continue
				}
				for j := range ts.RT {
					ts.RT[j].Core = -1
				}
				sets = append(sets, ts)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := sets[i%len(sets)].Clone()
				if err := partition.Assign(ts, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMigrationPolicies compares simulator throughput and
// context-switch counts across the three runtime policies on the same
// configured workload.
func BenchmarkAblationMigrationPolicies(b *testing.B) {
	base := rover.TaskSet()
	hres, err := baseline.HydraAggressive(base)
	if err != nil || !hres.Schedulable {
		b.Fatal("rover set must be HYDRA-schedulable")
	}
	ts := baseline.ApplyPartitioned(base, hres)
	for _, pol := range []sim.Policy{sim.SemiPartitioned, sim.FullyPartitioned, sim.Global} {
		b.Run(pol.String(), func(b *testing.B) {
			var cs int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(ts, sim.Config{Policy: pol, Horizon: 45000})
				if err != nil {
					b.Fatal(err)
				}
				cs = res.ContextSwitches
			}
			b.ReportMetric(float64(cs), "context_switches")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulated ticks per second
// on a dense 4-core workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cfg := gen.TableThree(4)
	var ts *task.Set
	for {
		cand, err := cfg.Generate(rng, 5)
		if err != nil {
			continue
		}
		res, err := core.SelectPeriods(cand, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Schedulable {
			ts = core.Apply(cand, res)
			break
		}
	}
	const horizon = 200000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ts, sim.Config{Policy: sim.SemiPartitioned, Horizon: horizon}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(horizon*b.N)/b.Elapsed().Seconds(), "ticks/s")
}
