// Package oracle is a deliberately naive re-implementation of the
// paper's period-selection procedure, used as a differential test
// oracle for internal/core and the incremental engine. It optimises
// for being obviously correct, not for speed:
//
//   - the minimum period is found by a downward linear scan, never a
//     binary search;
//   - every feasibility probe recomputes every response time from
//     scratch — no memoization, no threaded interferer lists, no
//     reuse of previous fixpoints;
//   - the workload, interference and fixpoint equations (Eqs. 2–8
//     with the dominance carry-in bound) are restated here from the
//     paper rather than shared with internal/core, so a transcription
//     slip in either implementation makes the differential tests
//     scream instead of being self-consistent.
//
// Anything beyond small task sets is intractable here — that is the
// point. The property tests keep the sets small.
package oracle

import (
	"fmt"
	"sort"

	"hydrac/internal/task"
)

// Result mirrors core.Result field for field (kept separate so this
// package does not depend on the code it checks).
type Result struct {
	Schedulable bool
	Periods     []task.Time
	Resp        []task.Time
}

// SelectPeriods is Algorithm 1, restated naively: highest priority
// first, scan each security task's period down from Tmax while every
// lower-priority task remains schedulable, recomputing the whole
// response-time picture at every probe. Output order follows
// ts.Security, like core.SelectPeriods.
func SelectPeriods(ts *task.Set) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned", t.Name)
		}
	}
	if !rtBandSchedulable(ts) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1")
	}
	sec := securityByPriority(ts)
	n := len(sec)
	periods := make([]task.Time, n)
	for i, s := range sec {
		periods[i] = s.MaxPeriod
	}
	// Feasibility at Tmax (Algorithm 1, lines 2–4).
	resp := responseTimes(ts, sec, periods)
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, nil
		}
	}
	// Lines 5–9: downward scan per priority level.
	for i := 0; i < n; i++ {
		lo := responseTimes(ts, sec, periods)[i]
		star := sec[i].MaxPeriod
		for cand := sec[i].MaxPeriod; cand >= lo; cand-- {
			if !feasibleWith(ts, sec, periods, i, cand) {
				break
			}
			star = cand
		}
		periods[i] = star
	}
	// Final response times under the selected periods.
	resp = responseTimes(ts, sec, periods)
	out := &Result{Schedulable: true, Periods: make([]task.Time, n), Resp: make([]task.Time, n)}
	for i, s := range sec {
		for j := range ts.Security {
			if ts.Security[j].Name == s.Name {
				out.Periods[j] = periods[i]
				out.Resp[j] = resp[i]
			}
		}
	}
	return out, nil
}

// feasibleWith checks Algorithm 2 line 5: with sec[i]'s period set to
// cand (tasks above at their chosen periods, tasks below still at
// Tmax), does every lower-priority task keep R ≤ Tmax? The whole
// response-time picture is recomputed from scratch.
func feasibleWith(ts *task.Set, sec []task.SecurityTask, periods []task.Time, i int, cand task.Time) bool {
	probe := append([]task.Time(nil), periods...)
	probe[i] = cand
	resp := responseTimes(ts, sec, probe)
	for j := i + 1; j < len(sec); j++ {
		if resp[j] > sec[j].MaxPeriod {
			return false
		}
	}
	return true
}

// rtByCore groups the RT band by its core assignment, so each Ω
// evaluation reads every RT task once instead of rescanning the whole
// band per core. This is a data-layout transcription of Eq. 3's
// per-core sums, not memoization: nothing computed is cached.
func rtByCore(ts *task.Set) [][]task.RTTask {
	byCore := make([][]task.RTTask, ts.Cores)
	for _, rt := range ts.RT {
		byCore[rt.Core] = append(byCore[rt.Core], rt)
	}
	return byCore
}

// responseTimes computes the WCRT of every security task top-down
// under the given period vector (priority order), Eqs. 6–8 with the
// dominance carry-in bound. A task whose fixpoint diverges past its
// Tmax gets task.Infinity and interferes below with the pessimistic
// R = T bound, exactly as §4.4 prescribes.
func responseTimes(ts *task.Set, sec []task.SecurityTask, periods []task.Time) []task.Time {
	resp := make([]task.Time, len(sec))
	responseTimesFrom(ts, rtByCore(ts), sec, periods, resp, 0)
	return resp
}

// responseTimesFrom fills resp[from:] top-down, trusting resp[:from]
// as the already-computed higher-priority responses. Response times
// depend only on strictly higher-priority tasks, so recomputation
// below a probe point never needs to revisit the prefix.
func responseTimesFrom(ts *task.Set, byCore [][]task.RTTask, sec []task.SecurityTask, periods, resp []task.Time, from int) {
	for i := from; i < len(sec); i++ {
		r, ok := migratingWCRT(ts, byCore, sec, periods, resp, i)
		if !ok {
			r = task.Infinity
		}
		resp[i] = r
	}
}

// migratingWCRT is the Eq. 7 fixpoint x ← ⌊Ω(x)/M⌋ + Cs for sec[i],
// with interference from the partitioned RT band (Eq. 3) and the
// higher-priority migrating tasks (Eq. 5, dominance carry-in).
func migratingWCRT(ts *task.Set, byCore [][]task.RTTask, sec []task.SecurityTask, periods, resp []task.Time, i int) (task.Time, bool) {
	cs := sec[i].WCET
	limit := sec[i].MaxPeriod
	if cs > limit {
		return 0, false
	}
	x := cs
	// 1<<22 mirrors core.MaxFixpointIterations: the iteration bound is
	// part of the analysis definition (non-convergence after that many
	// refinements counts as divergence), restated here literally so
	// the oracle stays import-free of the code it checks.
	for iter := 0; iter < 1<<22; iter++ {
		next := omega(ts, byCore, sec, periods, resp, i, x)/task.Time(ts.Cores) + cs
		if next == x {
			return x, true
		}
		if next > limit || next < x {
			return 0, false
		}
		x = next
	}
	return 0, false
}

// omega is Eq. 6: RT interference per core plus migrating
// interference, the at-most-(M−1) carry-in set chosen by dominance
// (largest positive CI−NC differences).
func omega(ts *task.Set, byCore [][]task.RTTask, sec []task.SecurityTask, periods, resp []task.Time, i int, x task.Time) task.Time {
	cs := sec[i].WCET
	var total task.Time
	for m := 0; m < ts.Cores; m++ {
		var w task.Time
		for _, rt := range byCore[m] {
			w += workloadNC(x, rt.WCET, rt.Period)
		}
		total += clamp(w, x, cs)
	}
	var diffs []task.Time
	for k := 0; k < i; k++ {
		r := resp[k]
		if r == task.Infinity {
			// Diverged above: pessimistic carry-in with R = T.
			r = periods[k]
		}
		nc := clamp(workloadNC(x, sec[k].WCET, periods[k]), x, cs)
		ci := clamp(workloadCI(x, sec[k].WCET, periods[k], r), x, cs)
		total += nc
		if d := ci - nc; d > 0 {
			diffs = append(diffs, d)
		}
	}
	sort.Slice(diffs, func(a, b int) bool { return diffs[a] > diffs[b] })
	for k := 0; k < len(diffs) && k < ts.Cores-1; k++ {
		total += diffs[k]
	}
	return total
}

// workloadNC is Eq. 2.
func workloadNC(x, c, t task.Time) task.Time {
	if x <= 0 {
		return 0
	}
	w := (x / t) * c
	if rem := x % t; rem < c {
		w += rem
	} else {
		w += c
	}
	return w
}

// workloadCI is Eq. 4.
func workloadCI(x, c, t, r task.Time) task.Time {
	xbar := c - 1 + t - r
	head := x - xbar
	if head < 0 {
		head = 0
	}
	tail := c - 1
	if x < tail {
		tail = x
	}
	return workloadNC(head, c, t) + tail
}

// clamp is the Eq. 3/5 bound W ↦ min(W, x − Cs + 1).
func clamp(w, x, cs task.Time) task.Time {
	if cap := x - cs + 1; w > cap {
		return cap
	}
	return w
}

// rtBandSchedulable is Eq. 1 per core, restated: the classic
// uniprocessor recurrence x ← Cr + Σ ⌈x/Ti⌉·Ci over each core's
// higher-priority tasks.
func rtBandSchedulable(ts *task.Set) bool {
	for m := 0; m < ts.Cores; m++ {
		var onCore []task.RTTask
		for _, t := range ts.RT {
			if t.Core == m {
				onCore = append(onCore, t)
			}
		}
		sort.Slice(onCore, func(a, b int) bool { return onCore[a].Priority < onCore[b].Priority })
		for i, t := range onCore {
			x := t.WCET
			for {
				next := t.WCET
				for _, h := range onCore[:i] {
					next += ((x + h.Period - 1) / h.Period) * h.WCET
				}
				if next == x {
					break
				}
				if next > t.Deadline || next < x {
					return false
				}
				x = next
			}
			if x > t.Deadline {
				return false
			}
		}
	}
	return true
}

// securityByPriority returns the security tasks highest priority
// first.
func securityByPriority(ts *task.Set) []task.SecurityTask {
	out := append([]task.SecurityTask(nil), ts.Security...)
	sort.Slice(out, func(a, b int) bool { return out[a].Priority < out[b].Priority })
	return out
}
