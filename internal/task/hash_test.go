package task

import (
	"regexp"
	"testing"
)

func hashSet() *Set {
	return &Set{
		Cores: 2,
		RT: []RTTask{
			{Name: "a", WCET: 2, Period: 10, Deadline: 10, Core: 0, Priority: 0},
			{Name: "b", WCET: 3, Period: 20, Deadline: 20, Core: 1, Priority: 1},
		},
		Security: []SecurityTask{
			{Name: "s1", WCET: 5, MaxPeriod: 100, Priority: 0, Core: -1},
			{Name: "s2", WCET: 7, MaxPeriod: 200, Priority: 1, Core: -1},
		},
	}
}

func TestHashStableAndHex(t *testing.T) {
	h1, h2 := hashSet().Hash(), hashSet().Hash()
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h1) {
		t.Fatalf("hash is not 64 hex chars: %q", h1)
	}
	if c := hashSet().Clone(); c.Hash() != h1 {
		t.Fatal("clone hashes differently")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := hashSet().Hash()
	mutations := map[string]func(*Set){
		"cores":        func(s *Set) { s.Cores = 3 },
		"rt wcet":      func(s *Set) { s.RT[0].WCET++ },
		"rt period":    func(s *Set) { s.RT[1].Period++ },
		"rt deadline":  func(s *Set) { s.RT[1].Deadline-- },
		"rt core":      func(s *Set) { s.RT[0].Core = 1 },
		"rt priority":  func(s *Set) { s.RT[0].Priority = 7 },
		"rt name":      func(s *Set) { s.RT[0].Name = "a2" },
		"sec wcet":     func(s *Set) { s.Security[0].WCET++ },
		"sec period":   func(s *Set) { s.Security[0].Period = 50 },
		"sec tmax":     func(s *Set) { s.Security[1].MaxPeriod++ },
		"sec priority": func(s *Set) { s.Security[0].Priority = 5 },
		"sec core":     func(s *Set) { s.Security[0].Core = 0 },
		"sec name":     func(s *Set) { s.Security[1].Name = "s2b" },
		"drop rt":      func(s *Set) { s.RT = s.RT[:1] },
		"drop sec":     func(s *Set) { s.Security = s.Security[:1] },
		"swap sec": func(s *Set) {
			s.Security[0], s.Security[1] = s.Security[1], s.Security[0]
		},
	}
	for name, mutate := range mutations {
		s := hashSet()
		mutate(s)
		if s.Hash() == base {
			t.Errorf("%s: mutation did not change the hash", name)
		}
	}
}

// TestHashFieldBoundaries guards against length-extension style
// collisions between adjacent string fields: moving a byte between a
// name's end and the next field must change the hash.
func TestHashFieldBoundaries(t *testing.T) {
	a := &Set{Cores: 1, RT: []RTTask{{Name: "ab", WCET: 1, Period: 10, Deadline: 10, Core: 0}}}
	b := &Set{Cores: 1, RT: []RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}}}
	if a.Hash() == b.Hash() {
		t.Fatal("name boundary collision")
	}
}
