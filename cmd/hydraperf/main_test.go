package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hydrac/internal/regression"
)

// writeTree materialises a minimal regression tree with one fast load
// case, returning the tree root.
func writeTree(t *testing.T) string {
	t.Helper()
	tree := t.TempDir()
	caseDir := filepath.Join(tree, "cases", "selftest-smoke")
	if err := os.MkdirAll(caseDir, 0o755); err != nil {
		t.Fatal(err)
	}
	profile := `kind: load
concurrency: [2]
duration: 120ms
mix:
  dup: 1
daemon:
  cache: 64
  sessions: 16
workload:
  cores: 4
  group: 3
  seed: 3
  sets: 2
  batch: 2
`
	experiment := "optimization_goal: throughput\ntolerance: 0.40\n"
	if err := os.WriteFile(filepath.Join(caseDir, "profile.yaml"), []byte(profile), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(caseDir, "experiment.yaml"), []byte(experiment), 0o644); err != nil {
		t.Fatal(err)
	}
	return tree
}

// The acceptance pair: `check -selftest regression` must exit nonzero
// (an injected 5ms sleep in every head request is caught), and
// `check -selftest aa` (identical in-process sides) must exit zero.
func TestCheckSelftestRegressionFails(t *testing.T) {
	tree := writeTree(t)
	err := run([]string{"check", "-selftest", "regression", "-tree", tree, "-samples", "4"}, os.Stdout)
	if !errors.Is(err, errRegressed) {
		t.Fatalf("injected regression not gated: err = %v", err)
	}
}

func TestCheckSelftestAAPasses(t *testing.T) {
	tree := writeTree(t)
	if err := run([]string{"check", "-selftest", "aa", "-tree", tree, "-samples", "4"}, os.Stdout); err != nil {
		t.Fatalf("A/A check failed: %v", err)
	}
}

// `run` (not check) reports the regression but does not fail, and its
// artifacts — per-case JSON, markdown table, history record — land
// where the flags point.
func TestRunWritesArtifacts(t *testing.T) {
	tree := writeTree(t)
	outDir := filepath.Join(t.TempDir(), "results")
	mdFile := filepath.Join(t.TempDir(), "verdicts.md")
	err := run([]string{"run", "-selftest", "regression", "-tree", tree,
		"-samples", "4", "-out", outDir, "-md", mdFile, "-record", "testrun"}, os.Stdout)
	if err != nil {
		t.Fatalf("run must not gate: %v", err)
	}

	raw, err := os.ReadFile(filepath.Join(outDir, "selftest-smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res regression.CaseResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Case != "selftest-smoke" || res.Verdict != regression.VerdictRegressed || len(res.Base) != 4 {
		t.Fatalf("result JSON wrong: %+v", res)
	}

	md, err := os.ReadFile(mdFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "| selftest-smoke | throughput |") {
		t.Fatalf("markdown table missing case row:\n%s", md)
	}

	entries, err := regression.ReadHistory(filepath.Join(tree, "history"), "selftest-smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Label != "testrun" || entries[0].Verdict != regression.VerdictRegressed {
		t.Fatalf("history record wrong: %+v", entries)
	}

	// The recorded history renders through the history subcommand.
	if err := run([]string{"history", "-tree", tree, "selftest-smoke"}, os.Stdout); err != nil {
		t.Fatalf("history render: %v", err)
	}
}

func TestListShowsCases(t *testing.T) {
	tree := writeTree(t)
	if err := run([]string{"list", "-tree", tree}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestBadUsage(t *testing.T) {
	tree := writeTree(t)
	for _, tc := range [][]string{
		{},
		{"frobnicate"},
		{"check", "-selftest", "bogus", "-tree", tree},
		{"check", "-tree", tree, "stray-arg"},
		{"check", "-cases", "no-such-case", "-selftest", "aa", "-tree", tree},
		{"history", "-tree", tree},                 // missing case name
		{"history", "-tree", tree, "no-such-case"}, // no history yet
	} {
		if err := run(tc, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}

// The real tree in this repository must load cleanly: every shipped
// case validates, and at least the six ISSUE-mandated scenarios exist.
func TestShippedTreeLoads(t *testing.T) {
	cases, err := regression.LoadCases("../../test/regression/cases", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 6 {
		t.Fatalf("shipped tree has %d cases, want at least 6", len(cases))
	}
	for _, c := range cases {
		if c.Profile.Kind == regression.KindLoad {
			if _, err := c.BuildSource(); err != nil {
				t.Errorf("case %s: building traffic source: %v", c.Name, err)
			}
		}
	}
}
