// Package seed derives independent, reproducible RNG seeds for sweep
// items. It is the root of the repository's determinism contract (see
// DESIGN.md): work items must take all randomness from At — never
// from a shared stream — so an item's outcome is a pure function of
// its coordinates, independent of which worker runs it or when.
package seed

// At derives the private RNG seed of item (group, index) from a base
// seed by splitmix64-style mixing. group doubles as a stream
// discriminator for callers with several independent sweeps over one
// base seed.
func At(base int64, group, index int) int64 {
	h := mix64(uint64(base))
	h = mix64(h ^ uint64(int64(group)))
	h = mix64(h ^ uint64(int64(index)))
	return int64(h)
}

// mix64 is the splitmix64 finaliser (Vigna 2015): a bijective avalanche
// mix whose increments decorrelate consecutive inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
