// Monitor suite: all four security-task classes of the paper's
// Table 1 integrated into one platform — file-system checking
// (Tripwire-like), network packet monitoring (Bro/Snort-like),
// hardware event monitoring (perf-counter statistics) and
// application-specific checking (kernel-module profile). HYDRA-C
// picks every period; the simulation then drives the actual detector
// implementations against three concurrent attacks.
//
// Run with: go run ./examples/monitorsuite
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hydrac"
	"hydrac/internal/ids"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A moderately loaded two-core platform with four monitors.
	ts := &task.Set{
		Cores: 2,
		RT: []task.RTTask{
			{Name: "control", WCET: 90, Period: 300, Deadline: 300, Core: 0, Priority: 0},
			{Name: "telemetry", WCET: 140, Period: 700, Deadline: 700, Core: 1, Priority: 1},
			{Name: "logger", WCET: 60, Period: 900, Deadline: 900, Core: 0, Priority: 2},
		},
		Security: []task.SecurityTask{
			{Name: "netmon", WCET: 45, MaxPeriod: 1500, Priority: 0, Core: -1},
			{Name: "hwmon", WCET: 30, MaxPeriod: 2000, Priority: 1, Core: -1},
			{Name: "kmodcheck", WCET: 25, MaxPeriod: 4000, Priority: 2, Core: -1},
			{Name: "fscheck", WCET: 420, MaxPeriod: 8000, Priority: 3, Core: -1},
		},
	}
	analyzer, err := hydrac.New()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.Analyze(context.Background(), ts)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Schedulable {
		log.Fatal("monitor suite does not fit — relax Tmax bounds")
	}
	fmt.Println("periods selected by HYDRA-C (Table 1 monitor classes):")
	for _, v := range rep.Tasks {
		fmt.Printf("  %-10s C=%-4d T*=%-5d (Tmax %d)  %.2f Hz\n",
			v.Name, wcetOf(ts, v.Name), v.Period, v.MaxPeriod, 1000/float64(v.Period))
	}

	configured, err := rep.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sim.Run(configured, sim.Config{
		Policy: sim.SemiPartitioned, Horizon: 30000, RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n30 s mission: %d context switches, %d migrations, RT misses %d\n\n",
		out.ContextSwitches, out.Migrations, out.RTDeadlineMisses)

	// --- attack 1: command injection over the network ---------------
	// Traffic arrives every 25 ms; each netmon job drains and inspects
	// whatever accumulated since the previous job.
	ring := ids.NewCaptureRing(4096)
	mon := ids.NewPacketMonitor(ids.DefaultRules()...)
	attackNet := task.Time(4321)
	var netDetect task.Time = -1
	captured := task.Time(0)
	injected := false
	for _, job := range out.JobsOf("netmon") {
		if job.Finish < 0 || len(job.Intervals) == 0 {
			continue
		}
		start := job.Intervals[0].Start
		for ; captured < start; captured += 25 {
			ring.Capture(int64(captured), ids.BenignTraffic(rng, 1)[0])
			if !injected && captured >= attackNet {
				ring.Capture(int64(attackNet), "SET-PARAM CMD;rm -rf /flash")
				injected = true
			}
		}
		if len(mon.Inspect(ring.Drain(ring.Pending()))) > 0 {
			netDetect = job.Finish
			break
		}
	}
	report("netmon", "command injection", attackNet, netDetect)

	// --- attack 2: counter anomaly (crypto-miner footprint) ---------
	model := ids.NewCounterModel(rng, ids.CounterSample{Instructions: 2e6, CacheMisses: 8e3, Branches: 4e5}, 0.04)
	hw := ids.NewHWMonitor(3.0)
	attackHW := task.Time(9000)
	var hwDetect task.Time = -1
	for _, job := range out.JobsOf("hwmon") {
		if job.Finish < 0 || len(job.Intervals) == 0 {
			continue
		}
		start := job.Intervals[0].Start
		if start >= attackHW {
			model.Compromise()
		}
		s := model.Sample()
		if start < attackHW {
			hw.Calibrate(s)
			continue
		}
		if hw.Check(s) {
			hwDetect = job.Finish
			break
		}
	}
	report("hwmon", "counter anomaly", attackHW, hwDetect)

	// --- attack 3: rootkit module ------------------------------------
	reg := ids.NewModuleRegistry(ids.DefaultRoverModules()...)
	chk := ids.NewModuleChecker(reg)
	attackKM := task.Time(12500)
	reg.Insert(ids.RootkitName(1))
	km, err := ids.DetectionTime(out.JobsOf("kmodcheck"), ids.ScanModel{WCET: 25, Objects: 1}, attackKM, 0)
	if err != nil {
		log.Fatal(err)
	}
	if unexpected, _ := chk.Check(reg); len(unexpected) == 1 && km.Detected {
		report("kmodcheck", "rootkit insmod", attackKM, km.At)
	} else {
		report("kmodcheck", "rootkit insmod", attackKM, -1)
	}

	// --- attack 4: file tamper ---------------------------------------
	store := ids.NewFileSystem(rng, 24, 128)
	base := store.Snapshot()
	victim := rng.Intn(store.Len())
	attackFS := task.Time(6789)
	store.Tamper(rng, victim)
	fs, err := ids.DetectionTime(out.JobsOf("fscheck"), ids.ScanModel{WCET: 420, Objects: 24}, attackFS, victim)
	if err != nil {
		log.Fatal(err)
	}
	if bad := base.Scan(store); len(bad) == 1 && fs.Detected {
		report("fscheck", "data-store tamper", attackFS, fs.At)
	} else {
		report("fscheck", "data-store tamper", attackFS, -1)
	}
}

func report(mon, attack string, at, detect task.Time) {
	if detect < 0 {
		fmt.Printf("%-10s %-20s at t=%-6d NOT DETECTED within horizon\n", mon, attack, at)
		return
	}
	fmt.Printf("%-10s %-20s at t=%-6d detected t=%-6d latency %d ms\n", mon, attack, at, detect, detect-at)
}

// wcetOf looks a security task's WCET up by name.
func wcetOf(ts *task.Set, name string) task.Time {
	for _, s := range ts.Security {
		if s.Name == name {
			return s.WCET
		}
	}
	return 0
}
