package hydrac_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"hydrac"
	"hydrac/internal/gen"
)

// benchAnalyzerSet draws one mid-utilisation Table-3 set; heavy enough
// that period selection does real work.
func benchAnalyzerSet(b *testing.B) *hydrac.TaskSet {
	b.Helper()
	ts, err := gen.TableThree(2).Generate(rand.New(rand.NewSource(11)), 4)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkAnalyzeCold measures the full pipeline with caching
// disabled: every iteration validates, selects periods and shapes a
// report from scratch. Metric: ns/op is the per-request analysis cost
// an uncached service pays.
func BenchmarkAnalyzeCold(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ts := benchAnalyzerSet(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(ctx, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCached measures the repeated-traffic path: the same
// set re-submitted against a warm LRU. The gap to BenchmarkAnalyzeCold
// is what the cache buys an admission-control service per duplicate
// request (hash + lookup + clone instead of the full analysis).
func BenchmarkAnalyzeCached(b *testing.B) {
	a, err := hydrac.New(hydrac.WithCache(16))
	if err != nil {
		b.Fatal(err)
	}
	ts := benchAnalyzerSet(b)
	ctx := context.Background()
	if _, err := a.Analyze(ctx, ts); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := a.Analyze(ctx, ts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.FromCache {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkAnalyzeBatch measures bulk admission over the sweep
// engine at full parallelism, reports per second.
func BenchmarkAnalyzeBatch(b *testing.B) {
	cfg := gen.TableThree(2)
	var sets []*hydrac.TaskSet
	for i := 0; i < 32; i++ {
		ts, err := cfg.Generate(rand.New(rand.NewSource(int64(i+1))), i%6)
		if err != nil {
			b.Fatal(err)
		}
		sets = append(sets, ts)
	}
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AnalyzeBatch(ctx, sets); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sets)), "sets/batch")
}

// benchAdmitBase draws a deterministic 50-task set (RT + security) for
// the incremental-admission benchmarks: big enough that Algorithm 1
// dominates, the scale the ISSUE's ≥5x speedup criterion names.
func benchAdmitBase(b *testing.B) *hydrac.TaskSet {
	b.Helper()
	cfg := gen.TableThree(4)
	rng := rand.New(rand.NewSource(2))
	for attempt := 0; attempt < 4096; attempt++ {
		ts, err := cfg.Generate(rng, 4)
		if err != nil {
			continue
		}
		if len(ts.RT)+len(ts.Security) == 50 {
			return ts
		}
	}
	b.Fatal("no 50-task draw found")
	return nil
}

// benchDeltaMonitor is the 1-task delta the admit benchmarks replay.
func benchDeltaMonitor() hydrac.Delta {
	return hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
		Name: "probe_mon", WCET: 5, MaxPeriod: 30000, Core: -1, Priority: 1000,
	}}}
}

// BenchmarkAnalyzeCold50 is the from-scratch cost of analysing the
// 51-task set (base + the probe monitor) — the work an admission
// service without the incremental engine pays on every delta.
func BenchmarkAnalyzeCold50(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sess, _, err := a.NewSession(ctx, benchAdmitBase(b))
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sess.Admit(ctx, benchDeltaMonitor()); err != nil {
		b.Fatal(err)
	}
	ts := sess.Set() // the exact post-delta set, fully placed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(ctx, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// loadCorpusSet reads a golden-corpus task set from disk.
func loadCorpusSet(b *testing.B, path string) *hydrac.TaskSet {
	b.Helper()
	f, err := os.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ts, err := hydrac.DecodeTaskSet(f)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkAnalyzeColdHuge is the from-scratch analysis of the largest
// corpus entry: 2048 tasks on 128 cores, overloaded so the search runs
// to an unschedulable verdict. This is the massive-scale cold bound the
// scale work targets (≤5s acceptance; the regression case pins it).
func BenchmarkAnalyzeColdHuge(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ts := loadCorpusSet(b, "testdata/corpus/huge-overload.json")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(ctx, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitDeltaHuge is delta admission at massive scale: a warm
// session over the schedulable 1024-task/64-core corpus entry admits a
// fresh bottom-priority monitor each iteration. Every monitor lands
// strictly below the whole prior set in priority order, so the trusted
// prefix is adopted and only the new task is searched — the sublinear
// path the ≤100ms acceptance bound names. Monitors are not removed
// (removal invalidates the trusted prefix); the set grows by one tiny
// task per iteration, deterministically, so paired regression runs see
// identical work.
func BenchmarkAdmitDeltaHuge(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sess, _, err := a.NewSession(ctx, loadCorpusSet(b, "testdata/corpus/huge-schedulable.json"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := hydrac.Delta{AddSecurity: []hydrac.SecurityTask{{
			Name: fmt.Sprintf("probe_mon%d", i), WCET: 1, MaxPeriod: 30000, Core: -1, Priority: 1000 + i,
		}}}
		_, admitted, err := sess.Admit(ctx, d)
		if err != nil {
			b.Fatal(err)
		}
		if !admitted {
			b.Fatal("huge-set probe monitor denied")
		}
	}
}

// BenchmarkAdmitDelta is the incremental cost of the same delta: one
// Admit of the probe monitor against a warm 50-task session. The
// session state is restored outside the timer each iteration, so
// ns/op is the pure warm-path admission. Compare with
// BenchmarkAnalyzeCold50: the acceptance bar is ≥5x.
func BenchmarkAdmitDelta(b *testing.B) {
	a, err := hydrac.New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sess, _, err := a.NewSession(ctx, benchAdmitBase(b))
	if err != nil {
		b.Fatal(err)
	}
	d := benchDeltaMonitor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, admitted, err := sess.Admit(ctx, d)
		if err != nil {
			b.Fatal(err)
		}
		if !admitted {
			b.Fatal("probe monitor denied")
		}
		b.StopTimer()
		if _, _, err := sess.Remove(ctx, "probe_mon"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
