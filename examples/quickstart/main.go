// Quickstart: integrate a security monitor into a legacy two-core
// real-time system with HYDRA-C, through the service API:
//
//  1. describe the partitioned RT tasks and the security tasks,
//  2. build an Analyzer (one per process; it is concurrency-safe and
//     caches reports across calls),
//  3. Analyze — validation, Algorithm 1 period selection and a
//     simulation run in one call, one structured Report out,
//  4. apply the report and render the schedule as a Gantt chart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hydrac"
)

func main() {
	// Step 1 — the legacy system: two RT tasks pinned to two cores
	// (the paper's Fig. 1 setup), plus one security monitor to
	// integrate. Times are in ticks (think milliseconds).
	ts := &hydrac.TaskSet{
		Cores: 2,
		RT: []hydrac.RTTask{
			{Name: "control", WCET: 12, Period: 40, Deadline: 40, Core: 0, Priority: 0},
			{Name: "vision", WCET: 25, Period: 100, Deadline: 100, Core: 1, Priority: 1},
		},
		Security: []hydrac.SecurityTask{
			{Name: "scanner", WCET: 30, MaxPeriod: 500, Priority: 0, Core: -1},
		},
	}

	// Step 2 — the analyzer: period selection plus a 400-tick
	// semi-partitioned simulation of every admitted set.
	a, err := hydrac.New(
		hydrac.WithSimulation(hydrac.SimConfig{
			Policy:  hydrac.SemiPartitioned,
			Horizon: 400,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — analyze: as frequent as schedulability allows.
	rep, err := a.Analyze(context.Background(), ts)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Schedulable {
		log.Fatal("the security task cannot meet its Tmax bound on this platform")
	}
	for _, v := range rep.Tasks {
		fmt.Printf("%s: period %d ticks (WCRT %d, designer bound %d)\n",
			v.Name, v.Period, v.WCRT, v.MaxPeriod)
	}
	s := rep.Simulation
	fmt.Printf("\nsimulated %d ticks: %d context switches, %d migrations, "+
		"deadline misses RT %d / security %d\n",
		s.Horizon, s.ContextSwitches, s.Migrations,
		s.RTDeadlineMisses, s.SecurityDeadlineMisses)

	// Step 4 — look at the schedule: apply the selected periods and
	// re-run with interval recording for the chart.
	configured, err := rep.ApplyTo(ts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := hydrac.Simulate(configured, hydrac.SimConfig{
		Policy:          hydrac.SemiPartitioned,
		Horizon:         400,
		RecordIntervals: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(hydrac.Gantt(out, 0, 400, 4))
}
