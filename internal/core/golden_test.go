package core

import (
	"math/rand"
	"testing"

	"hydrac/internal/gen"
	"hydrac/internal/task"
)

// Golden regression fixtures: exact period vectors for fixed seeds.
// These pin down the numerical behaviour of the whole pipeline
// (generator → partitioning → Algorithm 1) so refactoring cannot
// silently change results. If an *intentional* analysis change breaks
// them, regenerate with `go test -run TestGolden -v` and review the
// diff like any other behavioural change.
func TestGoldenRoverPeriods(t *testing.T) {
	ts := roverLikeSet() // kmod priority 0, tripwire priority 1
	res, err := SelectPeriods(ts, Options{})
	if err != nil || !res.Schedulable {
		t.Fatal(err)
	}
	want := map[string]task.Time{"kmod": 1006, "tripwire": 9812}
	for i, s := range ts.Security {
		if res.Periods[i] != want[s.Name] {
			t.Errorf("%s: period %d, want %d", s.Name, res.Periods[i], want[s.Name])
		}
	}
	// And the reversed priority order (the shipped rover.TaskSet).
	ts.Security[0].Priority, ts.Security[1].Priority = 1, 0
	res, err = SelectPeriods(ts, Options{})
	if err != nil || !res.Schedulable {
		t.Fatal(err)
	}
	want = map[string]task.Time{"kmod": 2783, "tripwire": 7582}
	for i, s := range ts.Security {
		if res.Periods[i] != want[s.Name] {
			t.Errorf("reversed %s: period %d, want %d", s.Name, res.Periods[i], want[s.Name])
		}
	}
}

func TestGoldenGeneratedPipeline(t *testing.T) {
	// One fixed draw through the Table-3 generator; both the drawn
	// structure and the selected periods are pinned.
	rng := rand.New(rand.NewSource(20200309)) // DATE 2020 conference date
	cfg := gen.TableThree(2)
	ts, err := cfg.Generate(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.RT) == 0 || len(ts.Security) == 0 {
		t.Fatal("degenerate draw")
	}
	res, err := SelectPeriods(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("golden draw must be schedulable (group 3)")
	}
	// Structural goldens.
	if got := ts.NormalizedUtilization(); got < 0.31-0.01 || got > 0.40+0.01 {
		t.Errorf("normalised utilisation %.4f outside group 3", got)
	}
	// Behavioural goldens: every period strictly inside (R, Tmax] is
	// wrong — it must equal the smallest feasible value, which for the
	// lowest-priority task is its own WCRT.
	sec := ts.SecurityByPriority()
	last := sec[len(sec)-1]
	li := -1
	for i, s := range ts.Security {
		if s.Name == last.Name {
			li = i
		}
	}
	if res.Periods[li] != res.Resp[li] {
		t.Errorf("lowest-priority task %s: period %d != WCRT %d (nothing constrains it from below)",
			last.Name, res.Periods[li], res.Resp[li])
	}
	// Full-vector snapshot for this seed.
	sum := task.Time(0)
	for _, p := range res.Periods {
		sum += p
	}
	const goldenSum = 94684
	if sum != goldenSum {
		t.Errorf("period-vector sum %d, golden %d — analysis behaviour changed; review and re-pin", sum, goldenSum)
	}
}
