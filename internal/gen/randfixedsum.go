// Package gen generates synthetic task sets for the design-space
// exploration of §5.2, following Table 3: Randfixedsum utilisation
// splitting (Emberson, Stafford & Davis, WATERS 2010), log-uniform
// period sampling, utilisation grouping, and best-fit RT partitioning.
package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// RandFixedSum draws n values, each within [lo, hi], that sum to total,
// uniformly over the (n−1)-simplex slice defined by those bounds. It
// is a Go port of Roger Stafford's randfixedsum algorithm, the
// standard task-utilisation generator for multiprocessor task sets
// (it supports total > 1, unlike UUniFast).
//
// It returns an error when the request is infeasible
// (total ∉ [n·lo, n·hi]) or malformed.
func RandFixedSum(rng *rand.Rand, n int, total, lo, hi float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("randfixedsum: n must be positive, got %d", n)
	}
	if hi < lo {
		return nil, fmt.Errorf("randfixedsum: empty range [%g, %g]", lo, hi)
	}
	if total < float64(n)*lo-1e-12 || total > float64(n)*hi+1e-12 {
		return nil, fmt.Errorf("randfixedsum: sum %g unreachable with %d values in [%g, %g]", total, n, lo, hi)
	}
	if n == 1 {
		return []float64{total}, nil
	}
	if hi == lo {
		out := make([]float64, n)
		for i := range out {
			out[i] = lo
		}
		return out, nil
	}

	// Rescale to the unit cube: s ∈ [0, n].
	s := (total - float64(n)*lo) / (hi - lo)
	k := int(math.Max(math.Min(math.Floor(s), float64(n-1)), 0))
	s = math.Max(math.Min(s, float64(k+1)), float64(k))

	s1 := make([]float64, n) // s − (k … k−n+1)
	s2 := make([]float64, n) // (k+n … k+1) − s
	for i := 0; i < n; i++ {
		s1[i] = s - float64(k-i)
		s2[i] = float64(k+n-i) - s
	}

	// Probability tables. w[i][j] carries (scaled) simplex volumes;
	// t[i][j] is the threshold for the Bernoulli branch during
	// sampling. Row i corresponds to i+1 summands.
	const huge = math.MaxFloat64
	tiny := math.Nextafter(0, 1)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n+1)
	}
	t := make([][]float64, n-1)
	for i := range t {
		t[i] = make([]float64, n)
	}
	w[0][1] = huge
	for i := 2; i <= n; i++ {
		for j := 1; j <= i; j++ {
			tmp1 := w[i-2][j] * s1[j-1] / float64(i)
			tmp2 := w[i-2][j-1] * s2[n-i+j-1] / float64(i)
			w[i-1][j] = tmp1 + tmp2
			tmp3 := w[i-1][j] + tiny
			if s2[n-i+j-1] > s1[j-1] {
				t[i-2][j-1] = tmp2 / tmp3
			} else {
				t[i-2][j-1] = 1 - tmp1/tmp3
			}
		}
	}

	// Sample one vector.
	x := make([]float64, n)
	sm, pr := 0.0, 1.0
	j := k + 1
	sCur := s
	for i := n - 1; i >= 1; i-- {
		var e float64
		if rng.Float64() <= t[i-1][j-1] {
			e = 1
		}
		sx := math.Pow(rng.Float64(), 1/float64(i))
		sm += (1 - sx) * pr * sCur / float64(i+1)
		pr *= sx
		x[n-i-1] = sm + pr*e
		sCur -= e
		j -= int(e)
	}
	x[n-1] = sm + pr*sCur

	// Random permutation, then scale back to [lo, hi].
	rng.Shuffle(n, func(a, b int) { x[a], x[b] = x[b], x[a] })
	for i := range x {
		x[i] = lo + (hi-lo)*x[i]
	}
	return x, nil
}

// LogUniform draws an integer duration log-uniformly from [lo, hi],
// i.e. exp(U(ln lo, ln hi)) rounded to the nearest tick — Table 3's
// period distribution.
func LogUniform(rng *rand.Rand, lo, hi int64) int64 {
	if lo <= 0 || hi < lo {
		panic(fmt.Sprintf("gen.LogUniform: invalid range [%d, %d]", lo, hi))
	}
	if lo == hi {
		return lo
	}
	v := math.Exp(math.Log(float64(lo)) + rng.Float64()*(math.Log(float64(hi))-math.Log(float64(lo))))
	r := int64(math.Round(v))
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	return r
}
