package oracle

import (
	"fmt"

	"hydrac/internal/task"
)

// SelectPeriodsLog is Algorithm 1 with Algorithm 2's logarithmic
// search substituted for the downward creep: per priority level it
// probes lo = Rs first, then bisects [lo+1, Tmax], exactly mirroring
// core's logMinPeriod probe order. Every probe still recomputes every
// affected response time from scratch; the only structural savings
// over the creep oracle are (a) O(log Tmax) probes per level instead
// of O(Tmax), and (b) a probe recomputes only priority levels at and
// below the probed task, because a response time depends only on
// strictly higher-priority tasks — a fact of Eqs. 5–7, not a cache.
// No fixpoint, workload, or response value survives from one probe to
// the next.
//
// The pair (SelectPeriods, SelectPeriodsLog) is differentially tested
// on dense small-set corpora, which independently validates the
// monotone-feasibility assumption the binary search rests on; the
// large-n band then runs this variant where the creep is intractable.
func SelectPeriodsLog(ts *task.Set) (*Result, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	for _, t := range ts.RT {
		if t.Core < 0 {
			return nil, fmt.Errorf("RT task %s is not partitioned", t.Name)
		}
	}
	if !rtBandSchedulable(ts) {
		return nil, fmt.Errorf("RT band is not schedulable under Eq. 1")
	}
	sec := securityByPriority(ts)
	n := len(sec)
	byCore := rtByCore(ts)
	periods := make([]task.Time, n)
	for i, s := range sec {
		periods[i] = s.MaxPeriod
	}
	resp := responseTimes(ts, sec, periods)
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			return &Result{Schedulable: false}, nil
		}
	}
	base := make([]task.Time, n)
	scratch := make([]task.Time, n)
	probe := make([]task.Time, n)
	for i := 0; i < n; i++ {
		// Responses under the current state (stars above, Tmax at and
		// below level i). The prefix base[:i] is still valid from the
		// previous level — those tasks see only higher-priority
		// interference, which level i's fix did not touch.
		responseTimesFrom(ts, byCore, sec, periods, base, i)
		lo, hi := base[i], sec[i].MaxPeriod
		star := hi
		if feasibleFrom(ts, byCore, sec, periods, base, scratch, probe, i, lo) {
			star = lo
		} else {
			l, h := lo+1, hi
			for l <= h {
				mid := (l + h) / 2
				if feasibleFrom(ts, byCore, sec, periods, base, scratch, probe, i, mid) {
					if mid < star {
						star = mid
					}
					h = mid - 1
				} else {
					l = mid + 1
				}
			}
		}
		periods[i] = star
	}
	resp = responseTimes(ts, sec, periods)
	out := &Result{Schedulable: true, Periods: make([]task.Time, n), Resp: make([]task.Time, n)}
	for i, s := range sec {
		for j := range ts.Security {
			if ts.Security[j].Name == s.Name {
				out.Periods[j] = periods[i]
				out.Resp[j] = resp[i]
			}
		}
	}
	return out, nil
}

// feasibleFrom is Algorithm 2 line 5 with sec[i]'s period set to cand:
// recompute every response at and below level i from scratch (levels
// above are independent of the probe and come from base) and require
// Rj ≤ Tmax for every lower-priority task. The scan stops at the first
// violation — tasks below it cannot change the verdict.
func feasibleFrom(ts *task.Set, byCore [][]task.RTTask, sec []task.SecurityTask, periods, base, scratch, probe []task.Time, i int, cand task.Time) bool {
	n := len(sec)
	copy(probe, periods)
	probe[i] = cand
	copy(scratch[:i], base[:i])
	for j := i; j < n; j++ {
		r, ok := migratingWCRT(ts, byCore, sec, probe, scratch, j)
		if !ok {
			r = task.Infinity
		}
		scratch[j] = r
		if j > i && r > sec[j].MaxPeriod {
			return false
		}
	}
	return true
}

// VerifySelection cross-checks a claimed period selection (in
// ts.Security order, as core.Result reports it) against from-scratch
// recomputation with this package's restated equations. It asserts:
//
//  1. the schedulability verdict matches feasibility at Tmax
//     (including MaxFixpointIterations budget divergence, which the
//     restated fixpoint reproduces literally);
//  2. for a schedulable claim, the response vector recomputed from
//     scratch under the claimed periods is bit-identical to the
//     claimed one and every response meets its Tmax;
//  3. for every stride-th priority level i (plus the first and last),
//     the claimed period satisfies Algorithm 1's stopping condition:
//     with higher-priority periods fixed at their claimed values and
//     i..n still at Tmax, the probe at the claimed star is feasible
//     and — unless star equals the level's response lower bound — the
//     probe at star−1 is infeasible.
//
// Condition 3 is the local characterisation of the downward creep's
// stopping point; under the monotone-feasibility property (validated
// independently by the creep-vs-binary-search differential tests on
// dense small-set corpora) it pins the selection uniquely, at two
// from-scratch probes per sampled level instead of the creep's
// O(Tmax). stride ≤ 1 checks every level.
func VerifySelection(ts *task.Set, schedulable bool, claimedPeriods, claimedResp []task.Time, stride int) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	if !rtBandSchedulable(ts) {
		return fmt.Errorf("oracle: RT band is not schedulable under Eq. 1")
	}
	sec := securityByPriority(ts)
	n := len(sec)
	byCore := rtByCore(ts)
	atTmax := make([]task.Time, n)
	for i, s := range sec {
		atTmax[i] = s.MaxPeriod
	}
	resp := responseTimes(ts, sec, atTmax)
	feasible := true
	for i, s := range sec {
		if resp[i] > s.MaxPeriod {
			feasible = false
			break
		}
	}
	if feasible != schedulable {
		return fmt.Errorf("oracle: claimed schedulable=%v but from-scratch feasibility at Tmax is %v", schedulable, feasible)
	}
	if !schedulable {
		return nil
	}
	if len(claimedPeriods) != n || len(claimedResp) != n {
		return fmt.Errorf("oracle: claimed vectors have length %d/%d, want %d", len(claimedPeriods), len(claimedResp), n)
	}
	// Map the claim (ts.Security order) into priority order.
	periods := make([]task.Time, n)
	wantResp := make([]task.Time, n)
	byName := make(map[string]int, n)
	for j := range ts.Security {
		byName[ts.Security[j].Name] = j
	}
	for i, s := range sec {
		j, ok := byName[s.Name]
		if !ok {
			return fmt.Errorf("oracle: security task %s missing from claim", s.Name)
		}
		periods[i] = claimedPeriods[j]
		wantResp[i] = claimedResp[j]
	}
	// (2) Bit-identical responses under the claimed periods.
	resp = responseTimes(ts, sec, periods)
	for i, s := range sec {
		if resp[i] != wantResp[i] {
			return fmt.Errorf("oracle: %s: from-scratch response %d != claimed %d", s.Name, resp[i], wantResp[i])
		}
		if resp[i] > s.MaxPeriod {
			return fmt.Errorf("oracle: %s: claimed selection infeasible, R=%d > Tmax=%d", s.Name, resp[i], s.MaxPeriod)
		}
		if periods[i] < 1 || periods[i] > s.MaxPeriod {
			return fmt.Errorf("oracle: %s: claimed period %d outside (0, %d]", s.Name, periods[i], s.MaxPeriod)
		}
	}
	// (3) Stride-sampled stopping condition per priority level. The
	// level's lower bound lo is resp[i] itself: at the moment Algorithm
	// 1 scans level i the tasks above already hold their final periods,
	// and a response depends only on strictly higher-priority tasks.
	if stride < 1 {
		stride = 1
	}
	probeBase := make([]task.Time, n)
	scratch := make([]task.Time, n)
	probe := make([]task.Time, n)
	for i := 0; i < n; i++ {
		if i%stride != 0 && i != n-1 {
			continue
		}
		// Algorithm 1's state when scanning level i: levels above fixed
		// at their stars, level i and below still at Tmax.
		copy(probeBase[:i], periods[:i])
		for j := i; j < n; j++ {
			probeBase[j] = sec[j].MaxPeriod
		}
		lo := resp[i]
		star := periods[i]
		if star < lo {
			return fmt.Errorf("oracle: %s: claimed period %d below the level's response lower bound %d", sec[i].Name, star, lo)
		}
		if !feasibleFrom(ts, byCore, sec, probeBase, resp, scratch, probe, i, star) {
			return fmt.Errorf("oracle: %s: probe at claimed period %d is infeasible", sec[i].Name, star)
		}
		if star > lo && feasibleFrom(ts, byCore, sec, probeBase, resp, scratch, probe, i, star-1) {
			return fmt.Errorf("oracle: %s: claimed period %d is not minimal, %d also feasible", sec[i].Name, star, star-1)
		}
	}
	return nil
}
