package sim

import (
	"math/rand"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/gen"
	"hydrac/internal/task"
)

func TestReleaseJitterSlowsReleases(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
	}
	strict, err := Run(ts, Config{Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := Run(ts, Config{Horizon: 1000, ReleaseJitter: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Stats["a"].Completed != 100 {
		t.Fatalf("strict run completed %d, want 100", strict.Stats["a"].Completed)
	}
	// With up to +10 jitter the mean inter-arrival is ≈15: clearly
	// fewer jobs, never more.
	got := jittered.Stats["a"].Completed
	if got >= 100 || got < 50 {
		t.Fatalf("jittered run completed %d, want within [50, 100)", got)
	}
}

func TestExecutionVariationShrinksDemand(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 10, Period: 20, Deadline: 20, Core: 0}},
	}
	full, err := Run(ts, Config{Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	varied, err := Run(ts, Config{Horizon: 2000, ExecutionVariation: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if varied.CoreBusy[0] >= full.CoreBusy[0] {
		t.Fatalf("varied busy %d !< full busy %d", varied.CoreBusy[0], full.CoreBusy[0])
	}
	if varied.Stats["a"].MaxResponse > full.Stats["a"].MaxResponse {
		t.Fatalf("variation increased the max response: %d > %d",
			varied.Stats["a"].MaxResponse, full.Stats["a"].MaxResponse)
	}
	if varied.RTDeadlineMisses != 0 {
		t.Fatal("deadline misses under reduced demand")
	}
}

func TestConfigValidation(t *testing.T) {
	ts := &task.Set{
		Cores: 1,
		RT:    []task.RTTask{{Name: "a", WCET: 1, Period: 10, Deadline: 10, Core: 0}},
	}
	if _, err := Run(ts, Config{Horizon: 100, ExecutionVariation: 1.0}); err == nil {
		t.Error("variation 1.0 accepted")
	}
	if _, err := Run(ts, Config{Horizon: 100, ExecutionVariation: -0.1}); err == nil {
		t.Error("negative variation accepted")
	}
	if _, err := Run(ts, Config{Horizon: 100, ReleaseJitter: -1}); err == nil {
		t.Error("negative jitter accepted")
	}
}

// The WCRT analysis covers sporadic arrivals and any execution demand
// up to the WCET. Analysis-accepted sets must therefore stay clean
// under randomized jitter and demand variation — the sporadic
// counterpart of the synchronous conformance test.
func TestSporadicConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 40
	checked := 0
	for g := 0; g < 7 && checked < 12; g++ {
		for i := 0; i < 4; i++ {
			ts, err := cfg.Generate(rng, g)
			if err != nil {
				continue
			}
			res, err := core.SelectPeriods(ts, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Schedulable {
				continue
			}
			applied := core.Apply(ts, res)
			out, err := Run(applied, Config{
				Policy:             SemiPartitioned,
				Horizon:            300000,
				ReleaseJitter:      500,
				ExecutionVariation: 0.4,
				Seed:               int64(g*100 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.RTDeadlineMisses != 0 {
				t.Fatalf("group %d: RT misses under sporadic arrivals", g)
			}
			if out.SecurityDeadlineMisses != 0 {
				t.Fatalf("group %d: security misses under sporadic arrivals", g)
			}
			for j, s := range applied.Security {
				st := out.Stats[s.Name]
				if st != nil && st.Completed > 0 && st.MaxResponse > res.Resp[j] {
					t.Fatalf("group %d: %s sporadic response %d exceeds bound %d",
						g, s.Name, st.MaxResponse, res.Resp[j])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no sets exercised")
	}
}
