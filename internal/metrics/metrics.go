// Package metrics holds the statistics used by the paper's evaluation:
// Euclidean period-vector distances (Figs. 6 and 7b), acceptance
// ratios (Fig. 7a), and basic descriptive statistics for the rover
// trials (Fig. 5).
package metrics

import (
	"math"
	"sort"

	"hydrac/internal/task"
)

// NormalizedPeriodDistance is the y-axis of Fig. 6: the Euclidean
// distance between the achieved period vector T* and the designer
// bound vector Tmax, normalised by ‖Tmax‖ so the result lies in
// [0, 1). A larger value means the security tasks run further below
// their slowest acceptable rate, i.e. more frequently.
func NormalizedPeriodDistance(periods, maxPeriods []task.Time) float64 {
	return NormalizedVectorDistance(periods, maxPeriods, maxPeriods)
}

// NormalizedVectorDistance is the y-axis of Fig. 7b: ‖a − b‖ / ‖ref‖.
// The paper compares HYDRA-C's period vector against a reference
// scheme's vector, normalising by the maximum-period vector.
func NormalizedVectorDistance(a, b, ref []task.Time) float64 {
	if len(a) != len(b) || len(a) != len(ref) || len(a) == 0 {
		return 0
	}
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		r := float64(ref[i])
		den += r * r
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// Acceptance accumulates a schedulability ratio.
type Acceptance struct {
	Accepted int
	Total    int
}

// Add records one task set's verdict.
func (a *Acceptance) Add(ok bool) {
	a.Total++
	if ok {
		a.Accepted++
	}
}

// Merge folds another accumulator into a; counts combine exactly, so
// sharded sweeps reproduce the serial ratio.
func (a *Acceptance) Merge(o *Acceptance) {
	a.Accepted += o.Accepted
	a.Total += o.Total
}

// Ratio returns Accepted/Total in percent, the y-axis of Fig. 7a
// ("number of schedulable task sets over the generated one").
func (a Acceptance) Ratio() float64 {
	if a.Total == 0 {
		return 0
	}
	return 100 * float64(a.Accepted) / float64(a.Total)
}

// Sample is a running collection of float64 observations.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// Merge appends every observation of o, preserving o's insertion
// order. Because Sample keeps raw values, merging contiguous shard
// partials in shard order reproduces the serial sample exactly —
// including the floating-point accumulation order of Mean and Std —
// which is what makes parallel sweeps bit-identical to serial ones.
func (s *Sample) Merge(o *Sample) { s.values = append(s.values, o.values...) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation (0 for n < 2).
func (s *Sample) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank
// on a sorted copy.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
