package hydradhttp

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultQueueWait bounds how long an over-capacity request may wait
// for an execution slot before being shed. Short on purpose: past
// ~100ms a queued admission request is adding latency without adding
// throughput, and the client's retry (with backoff) is the better
// place for that wait to live.
const DefaultQueueWait = 100 * time.Millisecond

// gate is the overload-protection layer in front of the route mux: a
// counting semaphore bounds concurrently executing requests, a short
// bounded wait queue absorbs bursts, and everything beyond that is
// shed immediately with 429 + Retry-After. Nothing queues unboundedly:
// a request is either executing, waiting (briefly, capacity-bounded),
// or told to go away — so a traffic spike degrades into fast cheap
// rejections instead of a latency collapse or an OOM.
//
// /healthz bypasses the gate entirely: the health probe must keep
// answering precisely when the service is saturated, because that is
// when operators look at it.
type gate struct {
	next http.Handler
	// slots is the execution semaphore; cap = MaxInflight. nil when
	// the gate is disabled (MaxInflight 0).
	slots chan struct{}
	// tickets bounds executing + waiting; cap = MaxInflight + MaxQueue.
	// A request that cannot take a ticket without blocking is shed.
	tickets chan struct{}
	// wait is the longest a ticketed request waits for a slot.
	wait time.Duration
	// reqTimeout, when positive, is the per-request deadline applied
	// to the handler's context (gated routes only).
	reqTimeout time.Duration

	// shed counts 429 responses; deadlined counts 503s from request
	// deadlines expiring in the queue. Reported on /healthz.
	shed      atomic.Int64
	deadlined atomic.Int64
}

func newGate(next http.Handler, cfg Config) *gate {
	g := &gate{next: next, wait: cfg.QueueWait, reqTimeout: cfg.RequestTimeout}
	if g.wait <= 0 {
		g.wait = DefaultQueueWait
	}
	if cfg.MaxInflight > 0 {
		maxQueue := cfg.MaxQueue
		if maxQueue < 0 {
			maxQueue = 0
		}
		g.slots = make(chan struct{}, cfg.MaxInflight)
		g.tickets = make(chan struct{}, cfg.MaxInflight+maxQueue)
	}
	return g
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		g.next.ServeHTTP(w, r)
		return
	}
	// The per-request deadline starts before the queue, so time spent
	// waiting for a slot counts against it — a request cannot use the
	// queue to outlive its own budget. (A client's own deadline only
	// reaches us as a connection close, i.e. plain cancellation.)
	if g.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if g.slots == nil {
		g.next.ServeHTTP(w, r)
		return
	}
	select {
	case g.tickets <- struct{}{}:
	default:
		// Executing + waiting are both full: shed now, cheaply.
		g.shedNow(w)
		return
	}
	defer func() { <-g.tickets }()
	select {
	case g.slots <- struct{}{}:
		// Fast path: a slot was free, no queue wait.
	default:
		timer := time.NewTimer(g.wait)
		select {
		case g.slots <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			// Waited the full queue budget without a slot freeing:
			// the server is saturated, push the wait to the client.
			g.shedNow(w)
			return
		case <-r.Context().Done():
			timer.Stop()
			if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
				g.deadlined.Add(1)
				writeError(w, http.StatusServiceUnavailable,
					errors.New("request deadline expired while queued for admission"))
			}
			// Plain cancellation means the client hung up — no
			// response is owed.
			return
		}
	}
	defer func() { <-g.slots }()
	g.next.ServeHTTP(w, r)
}

func (g *gate) shedNow(w http.ResponseWriter) {
	g.shed.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(g.wait))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("server is at capacity (max inflight %d, queue %d); retry with backoff",
			cap(g.slots), cap(g.tickets)-cap(g.slots)))
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, rounding up so clients never come back early.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// healthSnapshot is the admission block reported on /healthz.
func (g *gate) healthSnapshot() map[string]any {
	m := map[string]any{
		"shed":          g.shed.Load(),
		"deadline_503s": g.deadlined.Load(),
	}
	if g.slots == nil {
		m["max_inflight"] = 0
		return m
	}
	inflight := len(g.slots)
	queued := len(g.tickets) - inflight
	if queued < 0 {
		queued = 0 // the two reads race; clamp rather than report nonsense
	}
	m["max_inflight"] = cap(g.slots)
	m["max_queue"] = cap(g.tickets) - cap(g.slots)
	m["queue_wait_ms"] = g.wait.Milliseconds()
	m["inflight"] = inflight
	m["queued"] = queued
	return m
}
