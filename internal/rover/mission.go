package rover

import (
	"fmt"
	"math/rand"

	"hydrac/internal/core"
	"hydrac/internal/ids"
	"hydrac/internal/sim"
	"hydrac/internal/task"
)

// Mission co-simulates the whole stack: the HYDRA-C schedule drives
// which task runs when; completed navigation jobs move the rover
// through the grid world; completed camera jobs store real frames in
// the image store; the Tripwire task's execution trace determines when
// the (actually tampered) frame is re-hashed; the kernel-module
// checker's trace determines when the (actually inserted) rootkit is
// noticed. It is the end-to-end integration the proof-of-concept of
// §5.1 performs on hardware.
type MissionConfig struct {
	// Seed drives world generation and attack placement.
	Seed int64
	// Horizon is the mission length in ms.
	Horizon task.Time
	// WorldW, WorldH and Density shape the arena.
	WorldW, WorldH int
	Density        float64
}

// DefaultMissionConfig returns a 90-second mission in a 24×12 arena.
func DefaultMissionConfig() MissionConfig {
	return MissionConfig{Seed: 1, Horizon: 90_000, WorldW: 24, WorldH: 12, Density: 0.12}
}

// MissionReport is the outcome.
type MissionReport struct {
	// Moves and Frames count completed navigation steps and captured
	// camera frames.
	Moves, Frames int
	// TamperedFrame names the frame the shellcode attack modified.
	TamperedFrame string
	// TamperAt / TamperDetectedAt bound the integrity-violation window.
	TamperAt, TamperDetectedAt task.Time
	// RootkitAt / RootkitDetectedAt bound the rootkit window.
	RootkitAt, RootkitDetectedAt task.Time
	// ContextSwitches and Migrations summarise scheduler overhead.
	ContextSwitches, Migrations int
	// RTDeadlineMisses must be zero for a valid mission.
	RTDeadlineMisses int
}

// RunMission executes one mission under the HYDRA-C configuration.
func RunMission(cfg MissionConfig) (*MissionReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := TaskSet()
	res, err := core.SelectPeriods(ts, core.Options{})
	if err != nil {
		return nil, err
	}
	if !res.Schedulable {
		return nil, fmt.Errorf("rover: mission task set unschedulable")
	}
	out, err := sim.Run(core.Apply(ts, res), sim.Config{
		Policy: sim.SemiPartitioned, Horizon: cfg.Horizon, RecordIntervals: true,
	})
	if err != nil {
		return nil, err
	}
	rep := &MissionReport{
		ContextSwitches:  out.ContextSwitches,
		Migrations:       out.Migrations,
		RTDeadlineMisses: out.RTDeadlineMisses,
	}
	if rep.RTDeadlineMisses != 0 {
		return rep, fmt.Errorf("rover: RT deadline misses during the mission")
	}

	// Replay the world against the schedule: one navigation step per
	// completed nav job, one stored frame per completed camera job.
	world := NewWorld(rng, cfg.WorldW, cfg.WorldH, cfg.Density)
	var frames []ids.File
	for _, job := range out.JobLog {
		if job.Finish < 0 {
			continue
		}
		switch job.Task {
		case "navigation":
			world.NavigationStep()
			rep.Moves++
		case "camera":
			frames = append(frames, ids.File{
				Name: fmt.Sprintf("img_%04d.raw", rep.Frames),
				Data: world.CaptureFrame(),
			})
			rep.Frames++
		}
	}
	if rep.Frames == 0 {
		return rep, fmt.Errorf("rover: no frames captured")
	}
	store := ids.FromFiles(frames)
	baseline := store.Snapshot()

	// Attacks land in the middle third of the mission.
	rep.TamperAt = cfg.Horizon/3 + task.Time(rng.Int63n(int64(cfg.Horizon/3)))
	rep.RootkitAt = cfg.Horizon/3 + task.Time(rng.Int63n(int64(cfg.Horizon/3)))
	victim := rng.Intn(store.Len())
	rep.TamperedFrame = store.Name(victim)
	if !store.Tamper(rng, victim) {
		return rep, fmt.Errorf("rover: tamper failed")
	}
	if bad := baseline.Scan(store); len(bad) != 1 || bad[0] != victim {
		return rep, fmt.Errorf("rover: integrity scan did not isolate the tampered frame")
	}

	tw, err := ids.DetectionTime(out.JobsOf("tripwire"),
		ids.ScanModel{WCET: TripwireWCET, Objects: store.Len()}, rep.TamperAt, victim)
	if err != nil {
		return rep, err
	}
	if !tw.Detected {
		return rep, fmt.Errorf("rover: tamper not detected within the mission")
	}
	rep.TamperDetectedAt = tw.At

	registry := ids.NewModuleRegistry(ids.DefaultRoverModules()...)
	checker := ids.NewModuleChecker(registry)
	registry.Insert(ids.RootkitName(int(cfg.Seed)))
	if unexpected, _ := checker.Check(registry); len(unexpected) != 1 {
		return rep, fmt.Errorf("rover: rootkit invisible to the checker")
	}
	km, err := ids.DetectionTime(out.JobsOf("kmodcheck"),
		ids.ScanModel{WCET: KmodWCET, Objects: 1}, rep.RootkitAt, 0)
	if err != nil {
		return rep, err
	}
	if !km.Detected {
		return rep, fmt.Errorf("rover: rootkit not detected within the mission")
	}
	rep.RootkitDetectedAt = km.At
	return rep, nil
}
