// Package hydraclient is a minimal retrying HTTP client for hydrad
// traffic. It exists because a robust daemon that sheds load with 429
// is only half of the overload story — the other half is a client
// that backs off instead of hammering. The policy is deliberately
// boring: capped exponential backoff with jitter, the server's
// Retry-After honoured (but capped, so a hostile or confused header
// cannot stall the caller), every wait bounded by the caller's
// context, and only transport failures and retryable statuses
// (429 and 5xx) retried — a 4xx is the caller's bug and retrying it
// would just be load.
package hydraclient

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Defaults for Config zero values.
const (
	DefaultMaxRetries = 3
	DefaultBaseDelay  = 10 * time.Millisecond
	DefaultMaxDelay   = 1 * time.Second
)

// Config shapes a Client. The zero value is usable: http.DefaultClient,
// DefaultMaxRetries attempts, Default{Base,Max}Delay backoff.
type Config struct {
	// Client is the underlying HTTP client; nil uses http.DefaultClient.
	Client *http.Client
	// MaxRetries is the retry budget beyond the first attempt;
	// negative disables retries, 0 means DefaultMaxRetries.
	MaxRetries int
	// BaseDelay is the first backoff step (doubles per retry).
	BaseDelay time.Duration
	// MaxDelay caps both the backoff growth and any server-sent
	// Retry-After.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
}

// Client retries idempotent hydrad requests with backoff. Safe for
// concurrent use.
type Client struct {
	hc         *http.Client
	maxRetries int
	base, max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client from cfg.
func New(cfg Config) *Client {
	c := &Client{
		hc:         cfg.Client,
		maxRetries: cfg.MaxRetries,
		base:       cfg.BaseDelay,
		max:        cfg.MaxDelay,
	}
	if c.hc == nil {
		c.hc = http.DefaultClient
	}
	switch {
	case c.maxRetries < 0:
		c.maxRetries = 0
	case c.maxRetries == 0:
		c.maxRetries = DefaultMaxRetries
	}
	if c.base <= 0 {
		c.base = DefaultBaseDelay
	}
	if c.max <= 0 {
		c.max = DefaultMaxDelay
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

// Retryable reports whether an HTTP status merits a retry: 429 (the
// server shed us and told us to come back) and the 5xx family (the
// server, not the request, was the problem), except 501 — a missing
// implementation will still be missing on the next attempt.
func Retryable(status int) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	return status >= 500 && status != http.StatusNotImplemented
}

// Do issues one logical request, retrying transport errors and
// retryable statuses within the retry budget. The response body is
// always fully drained and closed (keeping the underlying connection
// reusable). It returns the final attempt's status: a nil error with
// a non-200 status means the server answered and either the status
// was not retryable or the budget ran out. A non-nil error is a
// transport failure or an expired context.
func (c *Client) Do(ctx context.Context, method, url, contentType string, body []byte) (int, error) {
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := c.once(ctx, method, url, contentType, body)
		if err == nil && !Retryable(status) {
			return status, nil
		}
		if ctx.Err() != nil {
			return status, ctx.Err()
		}
		if attempt >= c.maxRetries {
			return status, err
		}
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			return status, ctx.Err()
		}
	}
}

func (c *Client) once(ctx context.Context, method, url, contentType string, body []byte) (status int, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// backoff picks the next wait: the server's Retry-After when sent
// (capped at MaxDelay), otherwise equal-jittered exponential backoff —
// uniformly drawn from [d/2, d] where d doubles per attempt up to
// MaxDelay, so synchronized clients de-synchronize instead of
// re-arriving as one thundering herd.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.max {
			retryAfter = c.max
		}
		return retryAfter
	}
	d := c.base
	for i := 0; i < attempt && d < c.max; i++ {
		d *= 2
	}
	if d > c.max {
		d = c.max
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	return jittered
}
