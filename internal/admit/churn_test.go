package admit

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/task"
)

// TestEngineChurnMatchesCold drives a long random sequence of security
// add / remove / replace deltas — the shapes the trusted-prefix fast
// path classifies differently — through one engine, pinning every
// intermediate result bit-identical to a cold analysis of the same
// set. The walk must traverse the adoption path, the two-probe
// verification path, and full searches; the final tallies prove all
// three ran.
func TestEngineChurnMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	ctx := context.Background()
	eng, _, err := New(ctx, churnBase(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	live := []string{"sec0", "sec1", "sec2", "sec3"}
	prio := map[string]int{"sec0": 0, "sec1": 3, "sec2": 5, "sec3": 7}
	next := 4
	freePriority := func() int {
		used := make(map[int]bool, len(prio))
		for _, p := range prio {
			used[p] = true
		}
		for {
			if p := rng.Intn(40); !used[p] {
				return p
			}
		}
	}
	adopted, verified, searched := 0, 0, 0
	for step := 0; step < 120; step++ {
		var d task.Delta
		op := rng.Intn(3)
		switch {
		case op == 0 && len(live) > 2: // remove a random task
			i := rng.Intn(len(live))
			d.Remove = []string{live[i]}
			delete(prio, live[i])
			live = append(live[:i], live[i+1:]...)
		case op == 1 && len(live) > 2: // replace: remove + add at a fresh priority
			i := rng.Intn(len(live))
			d.Remove = []string{live[i]}
			delete(prio, live[i])
			live = append(live[:i], live[i+1:]...)
			fallthrough
		default: // add at a random unused priority
			s := task.SecurityTask{
				Name:      fmt.Sprintf("sec%d", next),
				WCET:      task.Time(1 + rng.Intn(3)),
				MaxPeriod: task.Time(150 + rng.Intn(400)),
				Core:      -1,
				Priority:  freePriority(),
			}
			next++
			d.AddSecurity = append(d.AddSecurity, s)
			live = append(live, s.Name)
			prio[s.Name] = s.Priority
		}
		out, err := eng.Apply(ctx, d)
		if err != nil {
			t.Fatalf("step %d (%+v): %v", step, d, err)
		}
		adopted += out.Stats.Selection.Adopted
		verified += out.Stats.Selection.Verified
		searched += out.Stats.Selection.Searched
		cold := coldResult(t, out.Set)
		if !reflect.DeepEqual(out.Result, cold) {
			t.Fatalf("step %d (%+v): incremental result diverged from cold\n got %+v\nwant %+v",
				step, d, out.Result, cold)
		}
		if !out.Admitted {
			// Rejected candidate: the committed state must be untouched
			// and still match a cold run.
			snap := eng.Snapshot()
			if res, err := core.SelectPeriods(snap, core.Options{}); err != nil || !res.Schedulable {
				t.Fatalf("step %d: committed state no longer schedulable after a denial", step)
			}
			if len(d.AddSecurity) > 0 {
				added := d.AddSecurity[0].Name
				for k, name := range live {
					if name == added {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
				delete(prio, added)
			}
			for _, name := range d.Remove {
				live = append(live, name)
				for _, s := range eng.Snapshot().Security {
					if s.Name == name {
						prio[name] = s.Priority
					}
				}
			}
		}
	}
	t.Logf("churn tallies: adopted=%d verified=%d searched=%d", adopted, verified, searched)
	if adopted == 0 || verified == 0 || searched == 0 {
		t.Fatalf("churn walk did not traverse all selection paths: adopted=%d verified=%d searched=%d",
			adopted, verified, searched)
	}
}

func churnBase() *task.Set {
	return &task.Set{
		Cores: 3,
		RT: []task.RTTask{
			{Name: "rt0", WCET: 2, Period: 20, Deadline: 20, Core: 0, Priority: 0},
			{Name: "rt1", WCET: 3, Period: 30, Deadline: 30, Core: 1, Priority: 1},
			{Name: "rt2", WCET: 4, Period: 40, Deadline: 40, Core: 2, Priority: 2},
			{Name: "rt3", WCET: 2, Period: 50, Deadline: 50, Core: 0, Priority: 3},
		},
		Security: []task.SecurityTask{
			{Name: "sec0", WCET: 2, MaxPeriod: 300, Core: -1, Priority: 0},
			{Name: "sec1", WCET: 1, MaxPeriod: 250, Core: -1, Priority: 3},
			{Name: "sec2", WCET: 2, MaxPeriod: 400, Core: -1, Priority: 5},
			{Name: "sec3", WCET: 1, MaxPeriod: 350, Core: -1, Priority: 7},
		},
	}
}
