package experiments

import (
	"fmt"
	"strings"

	"hydrac/internal/rover"
)

// Fig5Result bundles the rover experiment outcomes: the full-pipeline
// comparison the paper runs (each scheme configures its own periods)
// and the controlled comparison that isolates the migration mechanism
// (identical periods, pinned vs migrating scheduler).
type Fig5Result struct {
	HydraC, Hydra     *rover.SchemeResult
	Migrating, Pinned *rover.SchemeResult
}

// Fig5 runs both rover comparisons. A caller-supplied cfg.Progress is
// rebased to one rolling (done, total) series spanning every trial
// sweep Fig5 runs, so callers need not know how many sweeps make up
// the figure.
func Fig5(cfg rover.TrialConfig) (*Fig5Result, error) {
	if report := cfg.Progress; report != nil {
		const sweeps = 2 // RunTrials + RunControlled below
		finished := 0
		cfg.Progress = func(done, total int) {
			report(finished+done, sweeps*total)
			if done == total {
				finished += total
			}
		}
	}
	hc, h, err := rover.RunTrials(cfg)
	if err != nil {
		return nil, err
	}
	mig, pin, err := rover.RunControlled(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{HydraC: hc, Hydra: h, Migrating: mig, Pinned: pin}, nil
}

// Render prints Fig. 5a (detection time) and Fig. 5b (context
// switches) rows for both comparisons.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5a — intrusion detection time (rover trials)\n")
	row := func(s *rover.SchemeResult) {
		fmt.Fprintf(&b, "  %-10s periods: tripwire %5d ms, kmodcheck %5d ms | detection mean %7.0f ms (±%5.0f) = %.3g cycles | undetected %d\n",
			s.Scheme, s.TripwirePeriod, s.KmodPeriod,
			s.DetectionMS.Mean(), s.DetectionMS.Std(), s.MeanDetectionCycles(), s.Undetected)
	}
	row(r.HydraC)
	row(r.Hydra)
	speedup := 100 * (r.Hydra.DetectionMS.Mean() - r.HydraC.DetectionMS.Mean()) / r.Hydra.DetectionMS.Mean()
	fmt.Fprintf(&b, "  HYDRA-C detects %.1f%% faster than HYDRA (paper: 19.05%% on hardware)\n", speedup)

	b.WriteString("Fig. 5b — context switches over the 45 s window\n")
	csRow := func(s *rover.SchemeResult) {
		fmt.Fprintf(&b, "  %-10s mean %7.1f (±%.1f)\n", s.Scheme, s.ContextSwitches.Mean(), s.ContextSwitches.Std())
	}
	csRow(r.HydraC)
	csRow(r.Hydra)
	fmt.Fprintf(&b, "  CS ratio HYDRA-C/HYDRA: %.2fx (paper: 1.75x on hardware)\n",
		r.HydraC.ContextSwitches.Mean()/r.Hydra.ContextSwitches.Mean())

	b.WriteString("Controlled (same periods, scheduler isolated)\n")
	row(r.Migrating)
	row(r.Pinned)
	csRow(r.Migrating)
	csRow(r.Pinned)
	fmt.Fprintf(&b, "  controlled CS ratio migrating/pinned: %.2fx\n",
		r.Migrating.ContextSwitches.Mean()/r.Pinned.ContextSwitches.Mean())
	return b.String()
}
