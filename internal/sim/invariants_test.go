package sim

import (
	"math/rand"
	"testing"

	"hydrac/internal/core"
	"hydrac/internal/gen"
)

// Every policy must pass the internal invariant checks (work
// conservation, band ordering, single dispatch) on randomized
// workloads. A failure here is a scheduler bug, not a workload issue.
func TestInvariantsAcrossPoliciesAndWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := gen.TableThree(2)
	cfg.MaxAttempts = 30
	exercised := 0
	for g := 0; g < 8 && exercised < 10; g++ {
		ts, err := cfg.Generate(rng, g)
		if err != nil {
			continue
		}
		res, err := core.SelectPeriods(ts, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			continue
		}
		applied := core.Apply(ts, res)
		for _, pol := range []Policy{SemiPartitioned, Global} {
			if _, err := Run(applied, Config{
				Policy: pol, Horizon: 100000, DebugChecks: true,
				ReleaseJitter: 100, ExecutionVariation: 0.3, Seed: int64(g),
			}); err != nil {
				t.Fatalf("group %d policy %v: %v", g, pol, err)
			}
		}
		// Fully-partitioned needs core bindings: bind each security
		// task to core 0 for the invariant run.
		pinned := applied.Clone()
		for i := range pinned.Security {
			pinned.Security[i].Core = i % pinned.Cores
		}
		if _, err := Run(pinned, Config{
			Policy: FullyPartitioned, Horizon: 100000, DebugChecks: true, Seed: int64(g),
		}); err != nil {
			t.Fatalf("group %d fully-partitioned: %v", g, err)
		}
		exercised++
	}
	if exercised == 0 {
		t.Fatal("no workloads exercised")
	}
}
