// Command hydrad serves the HYDRA-C admission-control pipeline over
// HTTP: clients POST task sets (the same JSON schema cmd/hydrac
// reads) and receive versioned analysis reports. One long-lived
// hydrac.Analyzer backs every request, so the report cache is shared
// across clients — repeated admission checks of the same workload are
// served from memory.
//
// Usage:
//
//	hydrad [-addr HOST:PORT] [-cache N] [-heuristic H]
//	       [-baselines hydra,global-tmax,...] [-sim-horizon N] [-sim-seed S]
//
// Endpoints:
//
//	POST /v1/analyze        one task set in, one report envelope out
//	POST /v1/analyze/batch  {"task_sets": [...]} in, a reports envelope out
//	GET  /healthz           liveness + configuration summary
//
// Errors are JSON ({"error": "..."}): 400 for malformed or invalid
// input, 405 for wrong methods, 413 for oversized bodies, 422 for
// sets the pipeline rejects (an RT band that is infeasible under
// Eq. 1 or that no heuristic can place). An unschedulable *security*
// band is NOT an error — the report says so.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hydrac"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// maxBodyBytes bounds request bodies; the largest paper-scale task
// sets encode to a few kilobytes, so a megabyte leaves two orders of
// magnitude of headroom while keeping hostile payloads cheap.
const maxBodyBytes = 1 << 20

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hydrad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheSize := fs.Int("cache", 1024, "report cache entries (0 disables)")
	heuristic := fs.String("heuristic", "best-fit", "partitioning heuristic: best-fit | first-fit | worst-fit | next-fit")
	baselines := fs.String("baselines", "", "comma-separated baseline schemes to attach to every report (hydra, hydra-aggressive, hydra-tmax, global-tmax)")
	simHorizon := fs.Int64("sim-horizon", 0, "when positive, simulate every admitted set for this many ticks")
	simSeed := fs.Int64("sim-seed", 0, "seed for the simulation's jitter/variation randomness")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "hydrad: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	a, summary, err := buildAnalyzer(*cacheSize, *heuristic, *baselines, *simHorizon, *simSeed)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
	srv := &http.Server{
		Handler:           newHandler(a, summary),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "hydrad: listening on %s\n", ln.Addr())

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "hydrad: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "hydrad:", err)
			return 1
		}
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "hydrad:", err)
		return 1
	}
}

// buildAnalyzer translates flags into Analyzer options and a summary
// for /healthz.
func buildAnalyzer(cacheSize int, heuristic, baselines string, simHorizon, simSeed int64) (*hydrac.Analyzer, map[string]any, error) {
	var opts []hydrac.AnalyzerOption
	summary := map[string]any{
		"cache":     cacheSize,
		"heuristic": heuristic,
	}
	h, err := hydrac.ParseHeuristic(heuristic)
	if err != nil {
		return nil, nil, err
	}
	opts = append(opts, hydrac.WithHeuristic(h), hydrac.WithCache(cacheSize))
	if baselines != "" {
		var schemes []hydrac.Scheme
		for _, name := range strings.Split(baselines, ",") {
			sch, err := hydrac.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, err
			}
			schemes = append(schemes, sch)
		}
		opts = append(opts, hydrac.WithBaselines(schemes...))
		summary["baselines"] = schemes
	}
	if simHorizon > 0 {
		opts = append(opts, hydrac.WithSimulation(hydrac.SimConfig{
			Policy: hydrac.SemiPartitioned, Horizon: simHorizon, Seed: simSeed,
		}))
		summary["sim_horizon"] = simHorizon
	}
	a, err := hydrac.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	return a, summary, nil
}

// server carries the shared analyzer behind the HTTP surface.
type server struct {
	analyzer *hydrac.Analyzer
	summary  map[string]any
}

// newHandler wires the routes; separated from run so tests can mount
// it on httptest servers.
func newHandler(a *hydrac.Analyzer, summary map[string]any) http.Handler {
	s := &server{analyzer: a, summary: summary}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.analyze)
	mux.HandleFunc("/v1/analyze/batch", s.analyzeBatch)
	mux.HandleFunc("/healthz", s.healthz)
	return mux
}

// batchRequest is the body of POST /v1/analyze/batch. Each element is
// one task set in the standard file schema.
type batchRequest struct {
	TaskSets []json.RawMessage `json:"task_sets"`
}

func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	ts, err := hydrac.DecodeTaskSet(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, badRequestStatus(err), err)
		return
	}
	rep, err := s.analyzer.Analyze(r.Context(), ts)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := hydrac.WriteReport(w, rep); err != nil {
		// Headers are gone; nothing to do but note it server-side.
		return
	}
}

func (s *server) analyzeBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestStatus(err), fmt.Errorf("decoding batch request: %w", err))
		return
	}
	if len(req.TaskSets) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch request carries no task sets"))
		return
	}
	sets := make([]*hydrac.TaskSet, len(req.TaskSets))
	for i, raw := range req.TaskSets {
		ts, err := hydrac.DecodeTaskSet(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task set %d: %w", i, err))
			return
		}
		sets[i] = ts
	}
	reps, err := s.analyzer.AnalyzeBatch(r.Context(), sets)
	if err != nil {
		writeAnalysisError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hydrac.WriteReports(w, reps)
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"report_version": hydrac.ReportVersion,
		"config":         s.summary,
	})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return true
	}
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

// writeAnalysisError maps pipeline failures: a dead client context is
// not worth a response, everything else is the client's input.
func writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	if r.Context().Err() != nil {
		return // the client hung up; the analysis was shed
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// badRequestStatus distinguishes an oversized body (413) from plain
// bad input (400).
func badRequestStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
