package core

import (
	"sync"

	"hydrac/internal/task"
)

// ScratchPool recycles Scratch workspaces across analyses. A Scratch
// is ~10 slices that grow to the analysed set's size; the service
// layers (Analyzer.Analyze, AnalyzeBatch workers, the admission
// engine, the baselines) each used to allocate a fresh one per
// analysis, which at steady state is pure garbage — a Reset re-primes
// every buffer, so a recycled Scratch is state-equivalent to a fresh
// one and results are bit-identical either way.
//
// The pool is size-tiered: a returned Scratch is filed under the
// capacity class of its selection buffers, and a borrower asks for the
// class of the set it is about to analyse. Small analyses therefore
// never pin the giant buffers a one-off huge set grew (those age out
// of their own tier under GC pressure, the usual sync.Pool contract),
// and big analyses don't churn through undersized scratches that
// would immediately reallocate every buffer.
//
// The zero value is not usable; use NewScratchPool. All methods are
// safe for concurrent use — but the Scratches themselves keep their
// single-goroutine ownership rule: between Get and Put exactly one
// goroutine may touch a Scratch.
type ScratchPool struct {
	tiers [scratchTiers]sync.Pool
}

// The capacity classes: powers of two from scratchTierMin to
// scratchTierPow2Max, then scratchTierChunk-wide linear chunks up to
// scratchTierChunkMax, then one open-ended top tier. The geometric
// classes keep small analyses from pinning big buffers; the linear
// chunks keep thousand-task analyses from all colliding in one
// open-ended tier, where a 2k-task borrower would churn through
// scratches grown for 6k-task sets (or vice versa, reallocating every
// buffer on first touch). Past scratchTierChunkMax sizes are rare
// enough that one shared tier suffices.
const (
	scratchTierMin      = 16   // capacity class of tier 0
	scratchTierPow2Max  = 1024 // largest power-of-two class
	scratchTierChunk    = 1024 // width of the linear classes above it
	scratchTierChunkMax = 8192 // largest chunked class; beyond is open-ended

	// 16..1024 doubling → 7 classes, (1024, 8192] in 1024-wide chunks
	// → 7 classes, plus the open-ended top tier.
	scratchTiers = 7 + (scratchTierChunkMax-scratchTierPow2Max)/scratchTierChunk + 1
)

// scratchTier files a capacity n into its class: the smallest
// power-of-two class ≥ n, the smallest linear chunk ≥ n above the
// power-of-two range, or the open-ended top tier.
func scratchTier(n int) int {
	limit, t := scratchTierMin, 0
	for limit < scratchTierPow2Max {
		if n <= limit {
			return t
		}
		limit <<= 1
		t++
	}
	if n <= scratchTierPow2Max {
		return t
	}
	if n <= scratchTierChunkMax {
		return t + 1 + (n-scratchTierPow2Max-1)/scratchTierChunk
	}
	return scratchTiers - 1
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return &ScratchPool{}
}

// DefaultScratchPool serves the convenience entry points that have no
// longer-lived owner to borrow from (System.MigratingWCRT,
// SelectPeriodsCtx, the baselines). Long-lived services may share it
// or hold their own pool; the tiers keep unrelated workload sizes
// from interfering either way.
var DefaultScratchPool = NewScratchPool()

// Get borrows a Scratch suitable for a largest band of about n tasks
// — use the larger of the set's RT and security bands, the same
// metric Put files by (sizeHint computes it for a task set). Any
// value is safe; buffers still grow on demand. When sys is non-nil
// the scratch comes back primed for it, exactly as NewScratch(sys)
// would be.
func (p *ScratchPool) Get(sys *System, n int) *Scratch {
	sc, _ := p.tiers[scratchTier(n)].Get().(*Scratch)
	if sc == nil {
		sc = NewScratch(nil)
	}
	if sys != nil {
		sc.Reset(sys)
	}
	return sc
}

// Put returns a borrowed Scratch. The caller must not touch sc (or
// any state aliasing its buffers) afterwards. Put(nil) is a no-op so
// deferred returns need no branching.
func (p *ScratchPool) Put(sc *Scratch) {
	if sc == nil {
		return
	}
	// Drop the System so a pooled scratch never pins an analysed
	// set's demand slices beyond the analysis that borrowed it.
	sc.sys = nil
	p.tiers[scratchTier(sc.sizeClass())].Put(sc)
}

// SizeHint is the Get hint for analysing ts: the larger of its two
// task bands, matching the metric Put files returned scratches by
// (rtWin scales with the RT band, probeResp/hpWin with the security
// band).
func SizeHint(ts *task.Set) int {
	if len(ts.RT) > len(ts.Security) {
		return len(ts.RT)
	}
	return len(ts.Security)
}

// sizeClass is the capacity a scratch is filed under when returned:
// the largest of its per-band buffers. probeResp tracks the security
// band of selection runs, but fixpoint-only borrowers (GlobalTMax,
// the MigratingWCRT convenience wrapper) grow only rtWin/hpWin —
// filing by probeResp alone would park a huge scratch in the small
// tier, exactly the pinning the tiers exist to prevent.
func (sc *Scratch) sizeClass() int {
	n := cap(sc.probeResp)
	if c := cap(sc.hpWin); c > n {
		n = c
	}
	if c := cap(sc.rtWin); c > n {
		n = c
	}
	return n
}
