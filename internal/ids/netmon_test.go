package ids

import (
	"math/rand"
	"testing"
)

func TestCaptureRingBasics(t *testing.T) {
	r := NewCaptureRing(3)
	for i := 0; i < 3; i++ {
		if seq := r.Capture(int64(i), "p"); seq != i {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if r.Pending() != 3 || r.Dropped() != 0 {
		t.Fatalf("pending %d dropped %d", r.Pending(), r.Dropped())
	}
	r.Capture(3, "overflow")
	if r.Pending() != 3 || r.Dropped() != 1 {
		t.Fatalf("after overflow: pending %d dropped %d", r.Pending(), r.Dropped())
	}
	batch := r.Drain(2)
	if len(batch) != 2 || batch[0].Seq != 1 {
		t.Fatalf("drain returned %+v (oldest first after drop of seq 0)", batch)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending %d after drain", r.Pending())
	}
	if rest := r.Drain(10); len(rest) != 1 {
		t.Fatalf("final drain %+v", rest)
	}
}

func TestCaptureRingInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewCaptureRing(0)
}

func TestPacketMonitorMatchesSignatures(t *testing.T) {
	mon := NewPacketMonitor(DefaultRules()...)
	rng := rand.New(rand.NewSource(1))
	ring := NewCaptureRing(64)
	for i, p := range BenignTraffic(rng, 20) {
		ring.Capture(int64(i), p)
	}
	evil := ring.Capture(20, "GET /x CMD;rm -rf /data")
	for i, p := range BenignTraffic(rng, 5) {
		ring.Capture(int64(21+i), p)
	}
	alerts := mon.Inspect(ring.Drain(ring.Pending()))
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly one", alerts)
	}
	if alerts[0].Rule != "rover-cmd-inject" || alerts[0].Packet.Seq != evil {
		t.Fatalf("wrong alert: %+v", alerts[0])
	}
}

func TestPacketMonitorBenignTrafficClean(t *testing.T) {
	mon := NewPacketMonitor(DefaultRules()...)
	rng := rand.New(rand.NewSource(2))
	var batch []Packet
	for i, p := range BenignTraffic(rng, 500) {
		batch = append(batch, Packet{Seq: i, Payload: p})
	}
	if alerts := mon.Inspect(batch); len(alerts) != 0 {
		t.Fatalf("false positives on benign traffic: %+v", alerts)
	}
}

// Detection latency composes with the scheduler trace exactly like the
// other monitors: the monitor job that drains the ring after the
// malicious packet arrived raises the alert, so the period chosen by
// HYDRA-C bounds the exposure window.
func TestPacketMonitorPeriodBoundsExposure(t *testing.T) {
	mon := NewPacketMonitor(DefaultRules()...)
	ring := NewCaptureRing(1024)
	rng := rand.New(rand.NewSource(3))
	const period = 500
	attackAt := int64(1234)
	var detectedAt int64 = -1
	seqTime := int64(0)
	for now := int64(0); now <= 4000 && detectedAt < 0; now += period {
		// Traffic since the last job.
		for ; seqTime < now; seqTime += 100 {
			payload := BenignTraffic(rng, 1)[0]
			if seqTime <= attackAt && attackAt < seqTime+100 {
				payload = "BEGIN-EXFIL " + payload
			}
			ring.Capture(seqTime, payload)
		}
		if len(mon.Inspect(ring.Drain(ring.Pending()))) > 0 {
			detectedAt = now
		}
	}
	if detectedAt < 0 {
		t.Fatal("exfil packet never detected")
	}
	latency := detectedAt - attackAt
	if latency < 0 || latency > period {
		t.Fatalf("latency %d outside (0, period=%d]", latency, period)
	}
}

func TestHWMonitorDetectsCompromise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := NewCounterModel(rng, CounterSample{Instructions: 1e6, CacheMisses: 5e3, Branches: 2e5}, 0.03)
	mon := NewHWMonitor(3.0)
	for i := 0; i < 200; i++ {
		mon.Calibrate(model.Sample())
	}
	if mon.Samples() != 200 {
		t.Fatalf("samples %d", mon.Samples())
	}
	// Benign samples: expect essentially no alarms (3-sigma).
	alarms := 0
	for i := 0; i < 200; i++ {
		if mon.Check(model.Sample()) {
			alarms++
		}
	}
	if alarms > 5 {
		t.Fatalf("%d/200 false alarms at 3 sigma", alarms)
	}
	// Compromised samples: a +50% shift at 3% noise is > 10 sigma.
	model.Compromise()
	hits := 0
	for i := 0; i < 50; i++ {
		if mon.Check(model.Sample()) {
			hits++
		}
	}
	if hits < 48 {
		t.Fatalf("only %d/50 compromised samples flagged", hits)
	}
	model.Restore()
	if mon.Check(model.Sample()) && mon.Check(model.Sample()) && mon.Check(model.Sample()) {
		t.Fatal("restored model still always flagged")
	}
}

func TestHWMonitorUncalibratedNeverAlarms(t *testing.T) {
	mon := NewHWMonitor(3.0)
	if mon.Check(CounterSample{CacheMisses: 1e9, Branches: 1e9}) {
		t.Fatal("uncalibrated monitor alarmed")
	}
	mon.Calibrate(CounterSample{CacheMisses: 100, Branches: 100})
	if mon.Check(CounterSample{CacheMisses: 1e9, Branches: 1e9}) {
		t.Fatal("single-sample monitor alarmed")
	}
}
